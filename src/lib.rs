//! Umbrella crate for the SMPI-rs workspace.
//!
//! Re-exports every workspace crate so that integration tests under `tests/`
//! and runnable examples under `examples/` can reach the whole system through
//! a single dependency.

pub use packetnet;
pub use simix;
pub use smpi;
pub use smpi_calibrate as calibrate;
pub use smpi_metrics as metrics;
pub use smpi_obs as obs;
pub use smpi_platform as platform;
pub use smpi_replay as replay;
pub use smpi_sweep as sweep;
pub use smpi_workloads as workloads;
pub use surf_sim as surf;
