//! Capture → replay end-to-end: cross-validation against the on-line
//! simulation, model-swap replay, determinism, and the golden trace file.

use std::sync::Arc;

use smpi_suite::platform::{gdx, griffon, RoutedPlatform};
use smpi_suite::replay;
use smpi_suite::smpi::{TiTrace, World};
use smpi_suite::surf::TransferModel;
use smpi_suite::workloads::{build_graph, dt_rank, ep_rank, DtClass, DtGraph, EpConfig};

fn griffon_world() -> World {
    let rp = Arc::new(RoutedPlatform::new(griffon()));
    World::smpi(rp, TransferModel::default_affine())
}

fn gdx_world() -> World {
    let rp = Arc::new(RoutedPlatform::new(gdx()));
    World::smpi(rp, TransferModel::default_affine())
}

fn dt_online(world: &World, class: DtClass, shape: DtGraph) -> smpi_suite::smpi::RunReport<f64> {
    let graph = Arc::new(build_graph(class, shape));
    let g = Arc::clone(&graph);
    world.run(graph.num_nodes(), move |ctx| dt_rank(ctx, &g, class))
}

/// NAS DT on griffon: the replayed makespan must match the on-line
/// simulated makespan within 0.1% on the same platform/model (it is in
/// fact bit-identical: same simcall stream, same kernel).
#[test]
fn dt_cross_validation_on_griffon() {
    let world = griffon_world().capture(true);
    let online = dt_online(&world, DtClass::W, DtGraph::Bh);
    let cv = replay::cross_validate(&world, &online);
    assert!(
        cv.within(0.001),
        "DT replay drifted: online {} vs replayed {} (rel {:.2e})",
        cv.online,
        cv.replayed,
        cv.rel_err
    );
    assert_eq!(cv.online, cv.replayed, "same-world replay should be exact");
}

/// NAS EP on griffon. EP's compute bursts are *measured* (wall-clock
/// sampling), so two online runs differ — but the captured trace pins the
/// measured values, and its replay must reproduce this run's makespan.
#[test]
fn ep_cross_validation_on_griffon() {
    let cfg = EpConfig {
        total_pairs: 1 << 16,
        blocks_per_rank: 8,
        sampling_ratio: 1.0,
    };
    let world = griffon_world().capture(true);
    let online = world.run(8, move |ctx| ep_rank(ctx, cfg));
    let cv = replay::cross_validate(&world, &online);
    assert!(
        cv.within(0.001),
        "EP replay drifted: online {} vs replayed {} (rel {:.2e})",
        cv.online,
        cv.replayed,
        cv.rel_err
    );
}

/// Model-swap power: a trace captured on griffon replays against gdx (a
/// different topology and link speed) without executing any application
/// code, and predicts a different — but finite, positive — makespan.
#[test]
fn griffon_trace_replays_against_gdx() {
    let world = griffon_world().capture(true);
    let online = dt_online(&world, DtClass::S, DtGraph::Bh);
    let trace = online.ti_trace.as_ref().unwrap();
    let on_gdx = replay::replay(&gdx_world(), trace);
    assert!(on_gdx.sim_time > 0.0 && on_gdx.sim_time.is_finite());
    assert_eq!(on_gdx.finish_times.len(), trace.num_ranks());
    // Different platform, different prediction (the whole point of replay).
    assert_ne!(on_gdx.sim_time, online.sim_time);
}

/// Determinism: two identical online runs produce byte-identical captured
/// traces and byte-identical `to_json()` reports. The host-dependent
/// report fields — `wall`, the wall-clock half of the self-profile
/// (`wall_seconds`, per-phase timings, kernel solve histogram), and the
/// time series' solver timings — are removed in one call through the
/// [`smpi_obs::Deterministic`] trait before comparing.
#[test]
fn identical_runs_are_byte_identical() {
    use smpi_obs::Deterministic as _;
    let run = || {
        let world = griffon_world()
            .capture(true)
            .metrics(true)
            .tracing(true)
            .timeseries(true);
        let mut report = dt_online(&world, DtClass::S, DtGraph::Bh);
        report.strip_nondeterminism();
        (
            report.ti_trace.as_ref().unwrap().encode(),
            report.to_json(),
            report.paje(),
        )
    };
    let (trace_a, json_a, paje_a) = run();
    let (trace_b, json_b, paje_b) = run();
    assert_eq!(trace_a, trace_b, "captured traces differ between runs");
    assert_eq!(json_a, json_b, "to_json() differs between runs");
    assert_eq!(paje_a, paje_b, "paje() differs between runs");
}

/// Replay reproduces the on-line run's telemetry byte-identically: the
/// replayed simcall stream equals the captured one on the same
/// platform/model, so every time-series bucket must agree once the
/// host-dependent solver timings are stripped. Uses a memory-free
/// workload (sendrecv + allreduce + compute) because replay does not
/// re-execute `shared_malloc`, so `mem_hwm` would legitimately differ
/// for workloads that allocate.
#[test]
fn replay_reproduces_the_timeseries_byte_identically() {
    let app = |ctx: &smpi_suite::smpi::Ctx| {
        let comm = ctx.world();
        let n = ctx.size();
        ctx.compute(5e6 * (1.0 + ctx.rank() as f64 / n as f64));
        let to = (ctx.rank() + 1) % n;
        let from = ((ctx.rank() + n) - 1) % n;
        let buf = vec![ctx.rank() as f64; 16 * 1024];
        let mut got = vec![0.0f64; buf.len()];
        ctx.sendrecv(&buf, to, 7, &mut got, from as i32, 7, &comm);
        assert_eq!(got[0], from as f64);
        let mine = [ctx.rank() as f64];
        let _ = ctx.allreduce(&mine, &smpi_suite::smpi::op::sum::<f64>(), &comm);
    };
    let world = griffon_world().capture(true).timeseries(true);
    let mut online = world.run(4, app);
    let trace = online.ti_trace.take().unwrap();

    let replay_world = griffon_world().timeseries(true);
    let mut replayed = replay::replay(&replay_world, &trace);
    assert_eq!(replayed.sim_time, online.sim_time);

    use smpi_obs::Deterministic as _;
    let mut ts_online = online.timeseries.take().unwrap();
    let mut ts_replay = replayed.timeseries.take().unwrap();
    ts_online.strip_nondeterminism();
    ts_replay.strip_nondeterminism();
    assert_eq!(
        ts_online.to_json(),
        ts_replay.to_json(),
        "replayed time series diverged from the on-line one"
    );
}

/// The checked-in golden trace: DT class S (BH graph, 5 ranks) captured
/// with regions on. Guards both the capture layer and the codec against
/// silent format drift. Regenerate with
/// `BLESS=1 cargo test --test replay_e2e`.
#[test]
fn captured_trace_matches_golden_file() {
    let world = griffon_world().capture(true).metrics(true);
    let online = dt_online(&world, DtClass::S, DtGraph::Bh);
    let encoded = online.ti_trace.as_ref().unwrap().encode();
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/dt_s_bh.tit");
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(golden_path, &encoded).unwrap();
    }
    let golden = std::fs::read_to_string(golden_path).expect("golden file (run with BLESS=1)");
    assert_eq!(
        encoded, golden,
        "captured trace drifted from the golden file"
    );
    // And the golden file itself decodes and replays.
    let trace = TiTrace::decode(&golden).unwrap();
    let report = replay::replay(&griffon_world(), &trace);
    assert_eq!(report.sim_time, online.sim_time);
}

/// The checked-in `TITRACE2` golden: the same DT-S capture as the v1
/// golden, in the binary delta-encoded container. Guards the v2 wire
/// format (opcodes, deltas, dictionary, anchor compression) against
/// silent drift, and pins the v1 <-> v2 relationship: the binary golden
/// decodes to exactly the captured trace, while the v1 text golden is its
/// lossy downgrade (logical collectives re-spelled as region entries).
/// Regenerate both with `BLESS=1 cargo test --test replay_e2e`.
#[test]
fn captured_trace_matches_v2_golden_file() {
    use smpi_suite::smpi::{decode_v2, encode_v2};

    let world = griffon_world().capture(true).metrics(true);
    let online = dt_online(&world, DtClass::S, DtGraph::Bh);
    let trace = online.ti_trace.as_ref().unwrap();
    let encoded = encode_v2(trace);
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/dt_s_bh.tit2");
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(golden_path, &encoded).unwrap();
    }
    let golden = std::fs::read(golden_path).expect("golden file (run with BLESS=1)");
    assert_eq!(
        encoded, golden,
        "captured v2 trace drifted from the golden file"
    );

    // Cross-format equality: v2 is lossless, v1 is the downgrade.
    let v2 = decode_v2(&golden).unwrap();
    assert_eq!(&v2, trace, "binary golden must decode to the capture");
    let v1_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/dt_s_bh.tit");
    let v1 = TiTrace::decode(&std::fs::read_to_string(v1_path).unwrap()).unwrap();
    assert_eq!(
        v1,
        v2.downgraded(),
        "v1 and v2 goldens must describe the same capture"
    );

    // Replaying the binary golden reproduces the on-line makespan with
    // rel err 0 on the capture platform.
    let report = replay::replay(&griffon_world(), &v2);
    assert_eq!(report.sim_time, online.sim_time);
}
