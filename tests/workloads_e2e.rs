//! End-to-end workload integration: DT and EP on both backends.

use std::sync::Arc;

use smpi_suite::platform::{flat_cluster, ClusterConfig, RoutedPlatform};
use smpi_suite::smpi::{MpiProfile, World};
use smpi_suite::surf::TransferModel;
use smpi_suite::workloads::{build_graph, dt_rank, ep_rank, DtClass, DtGraph, EpConfig};

fn platform(n: usize) -> Arc<RoutedPlatform> {
    Arc::new(RoutedPlatform::new(flat_cluster(
        "w",
        n,
        &ClusterConfig::default(),
    )))
}

fn dt_checksum(world: &World, class: DtClass, shape: DtGraph) -> (f64, f64) {
    let graph = Arc::new(build_graph(class, shape));
    let g = Arc::clone(&graph);
    let report = world.run(graph.num_nodes(), move |ctx| dt_rank(ctx, &g, class));
    (report.results.iter().sum(), report.sim_time)
}

#[test]
fn dt_class_s_checksums_agree_across_backends() {
    // Without folding, the data path is exact: both backends must compute
    // the identical checksum (time differs, data must not).
    for shape in [DtGraph::Bh, DtGraph::Wh, DtGraph::Sh] {
        let graph = build_graph(DtClass::S, shape);
        let n = graph.num_nodes();
        let smpi = World::smpi(platform(n), TransferModel::ideal()).ram_folding(false);
        let packet = World::testbed(platform(n), MpiProfile::openmpi_like()).ram_folding(false);
        let (c1, t1) = dt_checksum(&smpi, DtClass::S, shape);
        let (c2, t2) = dt_checksum(&packet, DtClass::S, shape);
        assert!(c1.is_finite() && c1 != 0.0);
        assert_eq!(c1, c2, "{shape:?}: data must be backend-independent");
        assert!(t1 > 0.0 && t2 > 0.0);
    }
}

#[test]
fn dt_bh_is_slower_than_wh() {
    // The Fig. 15 trend at class W scale, on both backends.
    for make in [
        |n: usize| World::smpi(platform(n), TransferModel::ideal()),
        |n: usize| World::testbed(platform(n), MpiProfile::openmpi_like()),
    ] {
        let nodes = build_graph(DtClass::W, DtGraph::Bh).num_nodes();
        let (_, bh) = dt_checksum(&make(nodes), DtClass::W, DtGraph::Bh);
        let (_, wh) = dt_checksum(&make(nodes), DtClass::W, DtGraph::Wh);
        assert!(
            bh > wh * 1.3,
            "BH ({bh}) must be clearly slower than WH ({wh})"
        );
    }
}

#[test]
fn dt_folding_changes_memory_not_time() {
    let shape = DtGraph::Wh;
    let class = DtClass::S;
    let n = build_graph(class, shape).num_nodes();
    let folded = {
        let world = World::smpi(platform(n), TransferModel::ideal()).ram_folding(true);
        let graph = Arc::new(build_graph(class, shape));
        let g = Arc::clone(&graph);
        world.run(n, move |ctx| dt_rank(ctx, &g, class))
    };
    let unfolded = {
        let world = World::smpi(platform(n), TransferModel::ideal()).ram_folding(false);
        let graph = Arc::new(build_graph(class, shape));
        let g = Arc::clone(&graph);
        world.run(n, move |ctx| dt_rank(ctx, &g, class))
    };
    assert_eq!(
        folded.sim_time, unfolded.sim_time,
        "folding must not change timing"
    );
    assert!(folded.memory.peak_bytes < unfolded.memory.peak_bytes);
    assert_eq!(
        folded.memory.logical_peak_bytes,
        unfolded.memory.logical_peak_bytes
    );
}

#[test]
fn ep_verifies_at_full_sampling() {
    // At ratio 1.0 every block executes: the reduced sums must match a
    // serial tally of the same stream.
    let cfg = EpConfig {
        total_pairs: 1 << 16,
        blocks_per_rank: 8,
        sampling_ratio: 1.0,
    };
    let world = World::smpi(platform(4), TransferModel::ideal());
    let report = world.run(4, move |ctx| ep_rank(ctx, cfg));
    let serial = smpi_suite::workloads::ep_block(0, cfg.total_pairs);
    let expected_accept: f64 = serial.q.iter().sum();
    let r = report.results[0];
    assert!((r.sx - serial.sx).abs() < 1e-6, "{} vs {}", r.sx, serial.sx);
    assert!((r.sy - serial.sy).abs() < 1e-6);
    assert_eq!(r.accepted, expected_accept);
    // All ranks agree (allreduce).
    for other in &report.results {
        assert_eq!(other, &r);
    }
}

#[test]
fn ep_sampling_reduces_wall_time_not_simulated_time() {
    let base = EpConfig {
        total_pairs: 1 << 22,
        blocks_per_rank: 64,
        sampling_ratio: 1.0,
    };
    let run = |ratio: f64| {
        let cfg = EpConfig {
            sampling_ratio: ratio,
            ..base
        };
        let world = World::smpi(platform(4), TransferModel::ideal()).cpu_factor(1.0);
        world.run(4, move |ctx| ep_rank(ctx, cfg))
    };
    let full = run(1.0);
    let quarter = run(0.25);
    // Simulated time stays within a factor ~2 (mean replay vs full run).
    let ratio_sim = quarter.sim_time / full.sim_time;
    assert!(
        (0.4..2.5).contains(&ratio_sim),
        "simulated time drifted: {ratio_sim}"
    );
    // Wall time drops substantially (not strictly 4x on a noisy machine).
    assert!(
        quarter.wall.as_secs_f64() < full.wall.as_secs_f64() * 0.7,
        "sampling did not speed the simulation up: {:?} vs {:?}",
        quarter.wall,
        full.wall
    );
}
