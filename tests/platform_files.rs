//! The shipped platform files parse and match the programmatic builders.

use smpi_suite::platform::HostIx;
use smpi_suite::platform::{from_xml, gdx, griffon, RoutedPlatform};

fn check(file: &str, reference: smpi_suite::platform::Platform) {
    let path = format!("{}/platforms/{file}", env!("CARGO_MANIFEST_DIR"));
    let xml = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing {path}: {e} (run export_platforms)"));
    let parsed = from_xml(&xml).expect("platform file parses");
    assert_eq!(parsed.num_hosts(), reference.num_hosts());
    assert_eq!(parsed.num_links(), reference.num_links());
    let rp = RoutedPlatform::new(parsed);
    let rr = RoutedPlatform::new(reference);
    for (a, b) in [(0u32, 1u32), (0, rr.platform().num_hosts() as u32 - 1)] {
        assert_eq!(
            rp.route(HostIx(a), HostIx(b)).len(),
            rr.route(HostIx(a), HostIx(b)).len()
        );
        let (la, lb) = (
            rp.latency(HostIx(a), HostIx(b)),
            rr.latency(HostIx(a), HostIx(b)),
        );
        assert!((la - lb).abs() < 1e-12, "latency {la} vs {lb}"); // unit formatting rounding
    }
}

#[test]
fn griffon_file_matches_builder() {
    check("griffon.xml", griffon());
}

#[test]
fn gdx_file_matches_builder() {
    check("gdx.xml", gdx());
}
