//! Cross-crate integration: the full paper pipeline with accuracy gates.
//!
//! These tests mirror the headline claims of the evaluation (§7) at reduced
//! scale so they run in CI time. The error bounds are intentionally looser
//! than the measured values in EXPERIMENTS.md — they are regression alarms,
//! not benchmarks.

use std::sync::Arc;

use smpi_suite::calibrate::{
    fit_best_affine, fit_default_affine, fit_piecewise, pingpong, RouteRef,
};
use smpi_suite::metrics::ErrorSummary;
use smpi_suite::platform::{flat_cluster, ClusterConfig, HostIx, RoutedPlatform};
use smpi_suite::smpi::{MpiProfile, World};
use smpi_suite::workloads::{timed_alltoall, timed_scatter};

fn small_cluster(n: usize) -> Arc<RoutedPlatform> {
    Arc::new(RoutedPlatform::new(flat_cluster(
        "it",
        n,
        &ClusterConfig::default(),
    )))
}

fn cal_sizes() -> Vec<u64> {
    let mut v = Vec::new();
    let mut s = 1u64;
    while s <= 1 << 22 {
        v.push(s);
        v.push(s * 3 / 2);
        s *= 2;
    }
    v.sort_unstable();
    v.dedup();
    v
}

struct Calibrated {
    rp: Arc<RoutedPlatform>,
    model: surf_sim::TransferModel,
    samples: Vec<smpi_suite::calibrate::Sample>,
    route: RouteRef,
}

fn calibrate() -> Calibrated {
    let rp = small_cluster(16);
    let testbed = World::testbed(Arc::clone(&rp), MpiProfile::openmpi_like());
    let samples = pingpong(&testbed, 0, 1, &cal_sizes(), 1);
    let route = RouteRef {
        latency: rp.latency(HostIx(0), HostIx(1)),
        bandwidth: rp.bandwidth(HostIx(0), HostIx(1)),
    };
    let model = fit_piecewise(&samples, 3, route);
    Calibrated {
        rp,
        model,
        samples,
        route,
    }
}

#[test]
fn accuracy_ordering_piecewise_best_default() {
    let cal = calibrate();
    let truth: Vec<f64> = cal.samples.iter().map(|s| s.time).collect();
    let e = |m: &surf_sim::TransferModel| {
        let p = smpi_suite::calibrate::predict(m, &cal.samples, cal.route);
        ErrorSummary::compare(&p, &truth).mean
    };
    let pw = e(&cal.model);
    let bf = e(&fit_best_affine(&cal.samples, cal.route));
    let da = e(&fit_default_affine(&cal.samples, cal.route));
    assert!(pw < bf, "piecewise {pw} !< best-fit {bf}");
    assert!(bf < da, "best-fit {bf} !< default {da}");
    assert!(pw < 0.10, "piecewise error too large: {pw}");
}

#[test]
fn smpi_scatter_tracks_testbed_within_20_percent() {
    let cal = calibrate();
    let chunk = 64 * 1024; // 512 KiB chunks: rendezvous regime
    let smpi = World::smpi(Arc::clone(&cal.rp), cal.model.clone())
        .run(16, move |ctx| timed_scatter(ctx, chunk));
    let open = World::testbed(Arc::clone(&cal.rp), MpiProfile::openmpi_like())
        .run(16, move |ctx| timed_scatter(ctx, chunk));
    let e = ErrorSummary::compare(&smpi.results, &open.results);
    assert!(e.mean < 0.20, "scatter error {e}");
}

#[test]
fn contention_blind_underestimates_alltoall() {
    let cal = calibrate();
    let chunk = 64 * 1024;
    let run_max = |world: &World| -> f64 {
        world
            .run(8, move |ctx| timed_alltoall(ctx, chunk))
            .results
            .into_iter()
            .fold(0.0, f64::max)
    };
    let with = run_max(&World::smpi(Arc::clone(&cal.rp), cal.model.clone()));
    let without = run_max(&World::new(
        Arc::clone(&cal.rp),
        smpi_suite::smpi::Backend::Surf {
            model: surf_sim::TransferModel::ideal(),
            engine: surf_sim::EngineConfig {
                contention: false,
                tcp_window: None,
                class_folding: true,
            },
        },
        MpiProfile::smpi(),
    ));
    let truth = run_max(&World::testbed(
        Arc::clone(&cal.rp),
        MpiProfile::openmpi_like(),
    ));
    // The paper's Fig. 11 shape: ignoring contention underestimates badly;
    // modelling it lands close.
    assert!(
        without < truth * 0.7,
        "no-contention should underestimate: {without} vs truth {truth}"
    );
    let e = ErrorSummary::compare(&[with], &[truth]);
    assert!(e.mean < 0.25, "contention-aware error {e}");
}

#[test]
fn simulation_is_faster_than_simulated_reality() {
    // Fig. 17's core claim: in the folded configuration (§3.2 — no
    // application bytes moved, as the paper's large-scale runs require),
    // SMPI's wall-clock time is far below the simulated execution time.
    let cal = calibrate();
    let chunk_bytes = 4 * 1024 * 1024; // 4 MiB messages
    let report = World::smpi(Arc::clone(&cal.rp), cal.model.clone()).run(16, move |ctx| {
        smpi_suite::workloads::timed_scatter_folded(ctx, chunk_bytes)
    });
    assert!(
        report.wall.as_secs_f64() < report.sim_time,
        "simulation ({}s) slower than simulated time ({}s)",
        report.wall.as_secs_f64(),
        report.sim_time
    );
}

#[test]
fn platform_xml_roundtrip_preserves_simulation_results() {
    use smpi_suite::platform::{from_xml, to_xml};
    let rp = small_cluster(8);
    let xml = to_xml(rp.platform());
    let rp2 = Arc::new(RoutedPlatform::new(from_xml(&xml).expect("parse")));
    let chunk = 16 * 1024;
    let run = |rp: Arc<RoutedPlatform>| {
        World::smpi(rp, surf_sim::TransferModel::default_affine())
            .run(8, move |ctx| timed_scatter(ctx, chunk))
            .results
    };
    assert_eq!(
        run(rp),
        run(rp2),
        "XML roundtrip changed simulation results"
    );
}

#[test]
fn full_runs_are_deterministic_across_repetitions() {
    let cal = calibrate();
    let run = || {
        World::smpi(Arc::clone(&cal.rp), cal.model.clone())
            .run(8, |ctx| {
                let comm = ctx.world();
                let mine = vec![ctx.rank() as f64; 1000];
                let all = ctx.allgather(&mine, &comm);
                let sum = ctx.allreduce(
                    &[all.iter().sum::<f64>()],
                    &smpi_suite::smpi::op::sum(),
                    &comm,
                );
                (sum[0], ctx.wtime())
            })
            .results
    };
    assert_eq!(run(), run());
}
