//! Property-based tests of collectives on random data, sizes and roots.
//!
//! Each property is checked against a sequential reference computation: the
//! collectives must move and combine *real data* correctly regardless of
//! communicator size, message length or root choice (on-line simulation is
//! only useful if the application's results are the application's results).

use std::sync::Arc;

use proptest::prelude::*;
use smpi_suite::platform::{flat_cluster, ClusterConfig, RoutedPlatform};
use smpi_suite::smpi::{op, World};
use smpi_suite::surf::TransferModel;

fn world(n: usize) -> World {
    let rp = Arc::new(RoutedPlatform::new(flat_cluster(
        "p",
        n,
        &ClusterConfig::default(),
    )));
    World::smpi(rp, TransferModel::default_affine())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn bcast_delivers_root_data(
        p in 1usize..10,
        root_seed in 0usize..100,
        data in proptest::collection::vec(-1e12f64..1e12, 1..64),
    ) {
        let root = root_seed % p;
        let payload = data.clone();
        let len = payload.len();
        let report = world(p).run(p, move |ctx| {
            let comm = ctx.world();
            let mut buf = vec![0.0f64; len];
            if ctx.rank() == root {
                buf.copy_from_slice(&payload);
            }
            ctx.bcast(&mut buf, root, &comm);
            buf
        });
        for res in &report.results {
            prop_assert_eq!(res, &data);
        }
    }

    #[test]
    fn scatter_gather_roundtrip(
        p in 1usize..9,
        root_seed in 0usize..100,
        chunk in 1usize..32,
        seed in 0u64..1_000_000,
    ) {
        let root = root_seed % p;
        let data: Vec<i64> = (0..p * chunk).map(|i| (seed as i64).wrapping_mul(31).wrapping_add(i as i64)).collect();
        let expect = data.clone();
        let report = world(p).run(p, move |ctx| {
            let comm = ctx.world();
            let send = (ctx.rank() == root).then(|| data.clone());
            let mine = ctx.scatter(send.as_deref(), chunk, root, &comm);
            ctx.gather(&mine, root, &comm)
        });
        prop_assert_eq!(report.results[root].as_ref().unwrap(), &expect);
    }

    #[test]
    fn allreduce_sums_match_reference(
        p in 1usize..9,
        values in proptest::collection::vec(-1e6f64..1e6, 1..16),
    ) {
        let len = values.len();
        let vals = values.clone();
        let report = world(p).run(p, move |ctx| {
            let mine: Vec<f64> = vals.iter().map(|v| v * (ctx.rank() + 1) as f64).collect();
            ctx.allreduce(&mine, &op::sum::<f64>(), &ctx.world())
        });
        let rank_factor: f64 = (1..=p).map(|r| r as f64).sum();
        for res in &report.results {
            prop_assert_eq!(res.len(), len);
            for (j, &got) in res.iter().enumerate() {
                let expect = values[j] * rank_factor;
                prop_assert!(
                    (got - expect).abs() <= 1e-9 * expect.abs().max(1.0),
                    "elem {j}: {got} vs {expect}"
                );
            }
        }
    }

    #[test]
    fn alltoall_is_a_transpose(p in 1usize..9, chunk in 1usize..8) {
        let report = world(p).run(p, move |ctx| {
            let r = ctx.rank();
            let send: Vec<u64> = (0..p * chunk)
                .map(|i| (r * 1000 + i) as u64)
                .collect();
            ctx.alltoall(&send, &ctx.world())
        });
        for (r, res) in report.results.iter().enumerate() {
            for (j, &v) in res.iter().enumerate() {
                let src = j / chunk;
                let k = j % chunk;
                prop_assert_eq!(v, (src * 1000 + r * chunk + k) as u64);
            }
        }
    }

    #[test]
    fn scan_prefix_property(p in 1usize..10, x0 in -100i64..100) {
        let report = world(p).run(p, move |ctx| {
            let mine = [x0 + ctx.rank() as i64];
            ctx.scan(&mine, &op::sum::<i64>(), &ctx.world())
        });
        for (r, res) in report.results.iter().enumerate() {
            let expect: i64 = (0..=r as i64).map(|i| x0 + i).sum();
            prop_assert_eq!(res[0], expect);
        }
    }

    #[test]
    fn reduce_scatter_equals_reduce_then_scatterv(
        p in 2usize..7,
        chunk in 1usize..5,
    ) {
        let counts: Vec<usize> = (0..p).map(|i| chunk + i % 2).collect();
        let total: usize = counts.iter().sum();
        let report = world(p).run(p, move |ctx| {
            let r = ctx.rank() as i64;
            let data: Vec<i64> = (0..total as i64).map(|i| i * (r + 1)).collect();
            ctx.reduce_scatter(&data, &counts, &op::sum::<i64>(), &ctx.world())
        });
        let factor: i64 = (1..=p as i64).sum();
        let mut offset = 0usize;
        for (r, res) in report.results.iter().enumerate() {
            for (k, &v) in res.iter().enumerate() {
                prop_assert_eq!(v, (offset + k) as i64 * factor);
            }
            offset += res.len();
            let _ = r;
        }
    }

    /// Random sizes crossing the eager/rendezvous boundary never deadlock
    /// and always deliver intact data.
    #[test]
    fn ring_exchange_any_size(
        p in 2usize..6,
        len in prop_oneof![1usize..64, 8_000usize..9_000, 9_000usize..20_000],
    ) {
        let report = world(p).run(p, move |ctx| {
            let comm = ctx.world();
            let r = ctx.rank();
            let pp = ctx.size();
            let data = vec![r as u8; len];
            let mut incoming = vec![0u8; len];
            ctx.sendrecv(
                &data,
                (r + 1) % pp,
                0,
                &mut incoming,
                ((r + pp - 1) % pp) as i32,
                0,
                &comm,
            );
            incoming
        });
        for (r, res) in report.results.iter().enumerate() {
            let left = (r + p - 1) % p;
            prop_assert!(res.iter().all(|&b| b == left as u8));
        }
    }
}
