//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this shim implements
//! the subset of the criterion API the workspace's benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`black_box`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is intentionally simple but honest: after a short warm-up,
//! each benchmark runs `sample_size` samples, where every sample times a
//! batch of iterations sized to run for at least a few milliseconds. The
//! per-iteration mean, best sample, and spread are printed to stdout.

pub use std::hint::black_box;

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group: {name} ==");
        BenchmarkGroup {
            _c: self,
            name,
            sample_size: 10,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&name.into(), 10, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the target measurement time. Accepted for API compatibility;
    /// the shim sizes batches adaptively instead.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks a closure under `id`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().0);
        run_benchmark(&label, self.sample_size, f);
        self
    }

    /// Benchmarks a closure that receives `input` by reference.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().0);
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `group/function/parameter`-style id.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    /// Id distinguished only by a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(format!("{parameter}"))
    }
}

/// Conversion accepted by `bench_function` / `bench_with_input` id slots.
pub trait IntoBenchmarkId {
    /// Converts to a concrete id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self)
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    sample_size: usize,
    result: Option<Stats>,
}

#[derive(Debug, Clone, Copy)]
struct Stats {
    mean_ns: f64,
    best_ns: f64,
    worst_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, keeping its return value alive via [`black_box`].
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and batch sizing: grow the batch until one batch takes
        // at least ~5 ms, so short routines are timed over many iterations.
        let mut batch: u64 = 1;
        let batch_floor = Duration::from_millis(5);
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = t.elapsed();
            if elapsed >= batch_floor || batch >= 1 << 20 {
                break;
            }
            // Scale toward the floor, at least doubling.
            let scale = if elapsed.is_zero() {
                8.0
            } else {
                (batch_floor.as_secs_f64() / elapsed.as_secs_f64()).clamp(2.0, 8.0)
            };
            batch = ((batch as f64 * scale) as u64).max(batch * 2);
        }

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            samples.push(t.elapsed().as_secs_f64() * 1e9 / batch as f64);
        }
        let best = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let worst = samples.iter().cloned().fold(0.0, f64::max);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        self.result = Some(Stats {
            mean_ns: mean,
            best_ns: best,
            worst_ns: worst,
            iters: batch * self.sample_size as u64,
        });
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        sample_size,
        result: None,
    };
    f(&mut b);
    match b.result {
        Some(s) => println!(
            "{label:<56} time: {} (best {}, worst {}, {} iters)",
            fmt_ns(s.mean_ns),
            fmt_ns(s.best_ns),
            fmt_ns(s.worst_ns),
            s.iters
        ),
        None => println!("{label:<56} (no measurement: Bencher::iter never called)"),
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Bundles benchmark functions under one name, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_measures() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(2);
        let mut ran = 0u32;
        g.bench_function("spin", |b| {
            b.iter(|| {
                ran += 1;
                std::hint::black_box(ran)
            })
        });
        g.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
        assert!(ran > 0);
    }
}
