//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this shim implements
//! the subset of the proptest API the workspace's property tests rely on:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(...)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_oneof!`],
//! * the [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map`,
//! * numeric range strategies, tuples, [`collection::vec`], [`option::of`].
//!
//! Generation is **deterministic**: each test draws from a splitmix64
//! stream seeded by the test's module path and name, so failures reproduce
//! exactly across runs and machines. There is no shrinking — a failing case
//! is reported with its case index and message.

use std::fmt;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Failure raised by `prop_assert*` inside a property body.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(msg: String) -> Self {
        TestCaseError(msg)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic splitmix64 generator.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG seeded from a test's fully-qualified name.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name gives a stable per-test seed.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform draw in `[0, n)` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

pub mod strategy {
    //! The value-generation abstraction.

    use super::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Generates values of type `Value` from a [`TestRng`].
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        /// Generates an intermediate value, then generates from the strategy
        /// `f` builds from it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { base: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    /// Boxes a strategy, erasing its concrete type but keeping `Value`.
    /// Going through a function (rather than an `as` cast) pins the boxed
    /// `Value` to the source strategy's, which keeps `prop_oneof!` arms
    /// inferring correctly.
    pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }

    /// Uniform choice between boxed strategies (the `prop_oneof!` backend).
    pub struct OneOf<V> {
        options: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> OneOf<V> {
        /// Builds from a non-empty option list.
        pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { options }
        }
    }

    impl<V> Strategy for OneOf<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let ix = rng.below(self.options.len() as u64) as usize;
            self.options[ix].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (rng.next_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($n:ident . $ix:tt),+))*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$ix.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Anything usable as the vector-length parameter of [`vec()`].
    pub trait SizeRange {
        /// Draws a length.
        fn sample(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn sample(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn sample(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty size range");
            lo + rng.below((hi - lo + 1) as u64) as usize
        }
    }

    /// Generates `Vec`s whose length is drawn from `size` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::strategy::Strategy;
    use super::TestRng;

    /// Generates `None` about a quarter of the time, otherwise `Some` of the
    /// inner strategy.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*`.
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
    pub use crate::{ProptestConfig, TestCaseError};
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng =
                $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cfg.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "property {} failed at case {}/{}: {}",
                        stringify!($name),
                        case,
                        cfg.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_impl!{ @cfg ($cfg) $($rest)* }
    };
}

/// Asserts inside a property body; failure aborts the case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                $($fmt)+
            )));
        }
    };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
                l,
                r
            )));
        }
    }};
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(::std::vec![
            $($crate::strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::for_test("ranges");
        for _ in 0..1000 {
            let x = (3u32..17).generate(&mut rng);
            assert!((3..17).contains(&x));
            let f = (0.5f64..2.0).generate(&mut rng);
            assert!((0.5..2.0).contains(&f));
            let i = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn determinism_per_test_name() {
        let draw = || {
            let mut rng = crate::TestRng::for_test("fixed");
            crate::collection::vec((0u64..100, 0.0f64..1.0), 1..10).generate(&mut rng)
        };
        assert_eq!(format!("{:?}", draw()), format!("{:?}", draw()));
    }

    #[test]
    fn flat_map_and_map_compose() {
        let strat = (1usize..5).prop_flat_map(|n| crate::collection::vec(0u32..10, n));
        let mut rng = crate::TestRng::for_test("fm");
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((1..5).contains(&v.len()));
        }
        let doubled = (0u32..10).prop_map(|x| x * 2);
        assert_eq!(doubled.generate(&mut rng) % 2, 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_roundtrip(v in crate::collection::vec(0u32..50, 1..8), k in 1u32..4) {
            prop_assert!(!v.is_empty());
            prop_assert!(v.iter().all(|&x| x < 50), "out of range: {v:?}");
            prop_assert_eq!(k >= 1, true);
        }

        #[test]
        fn oneof_selects_all_arms(x in prop_oneof![0usize..10, 100usize..110]) {
            prop_assert!(x < 10 || (100..110).contains(&x));
        }
    }
}
