//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a minimal API-compatible shim implemented over `std::sync`. Only the
//! surface actually used by the workspace is provided: [`Mutex`] with a
//! panic-free `lock()` returning the guard directly, [`MutexGuard`], and a
//! [`Condvar`] whose `wait` takes `&mut MutexGuard` (parking_lot style).
//!
//! Poisoning is deliberately ignored, matching parking_lot semantics: a
//! panicking actor thread must not poison the maestro's view of shared
//! state (the simix baton protocol already serializes all access).

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion primitive (parking_lot-compatible subset).
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take ownership of the
    // underlying std guard (std's wait consumes it); always `Some` outside
    // that window.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available. Unlike `std`, returns
    /// the guard directly (poisoning is ignored).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        MutexGuard { inner: Some(guard) }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// A condition variable whose `wait` reborrows the guard in place.
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Blocks until notified, atomically releasing and re-acquiring the
    /// guarded mutex.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present");
        let inner = match self.0.wait(inner) {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.inner = Some(inner);
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn condvar_baton_roundtrip() {
        let shared = Arc::new((Mutex::new(false), Condvar::new()));
        let s2 = Arc::clone(&shared);
        let t = std::thread::spawn(move || {
            let (m, c) = &*s2;
            let mut flag = m.lock();
            *flag = true;
            c.notify_all();
        });
        let (m, c) = &*shared;
        let mut flag = m.lock();
        while !*flag {
            c.wait(&mut flag);
        }
        drop(flag);
        t.join().unwrap();
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
