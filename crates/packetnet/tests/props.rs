//! Property-based tests of the packet-level simulator.

use packetnet::{PacketConfig, PacketNet};
use proptest::prelude::*;
use smpi_platform::{flat_cluster, ClusterConfig, HostIx, RoutedPlatform};

fn cluster(n: usize) -> RoutedPlatform {
    RoutedPlatform::new(flat_cluster(
        "pp",
        n,
        &ClusterConfig {
            link_bandwidth: 125e6,
            link_latency: 20e-6,
            ..ClusterConfig::default()
        },
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every message completes, exactly once, and the clock is monotone.
    #[test]
    fn all_messages_complete_once(
        msgs in proptest::collection::vec((0u32..6, 0u32..6, 0u64..2_000_000), 1..24)
    ) {
        let rp = cluster(6);
        let mut net = PacketNet::new(&rp, PacketConfig::default());
        let mut expected = Vec::new();
        for &(s, d, b) in &msgs {
            if s == d {
                continue; // self-messages are the runtime's job
            }
            expected.push(net.start_message(&rp, HostIx(s), HostIx(d), b));
        }
        let mut done = Vec::new();
        let mut last = net.now();
        while let Some((t, ids)) = net.advance_to_next() {
            prop_assert!(t >= last);
            last = t;
            done.extend(ids);
        }
        done.sort();
        expected.sort();
        prop_assert_eq!(done, expected);
    }

    /// Message time is monotone in size for a lone flow.
    #[test]
    fn time_monotone_in_size(a in 1u64..1_000_000, b in 1u64..1_000_000) {
        let (small, large) = (a.min(b), a.max(b));
        let rp = cluster(2);
        let time = |bytes: u64| {
            let mut net = PacketNet::new(&rp, PacketConfig::default());
            net.start_message(&rp, HostIx(0), HostIx(1), bytes);
            net.run_to_completion().as_secs()
        };
        prop_assert!(time(small) <= time(large) + 1e-15);
    }

    /// A lone message is never faster than the ideal flow-model bound
    /// (latency + payload/bandwidth): packets only add overhead.
    #[test]
    fn never_beats_the_fluid_bound(bytes in 1u64..4_000_000) {
        let rp = cluster(2);
        let mut net = PacketNet::new(&rp, PacketConfig::default());
        net.start_message(&rp, HostIx(0), HostIx(1), bytes);
        let t = net.run_to_completion().as_secs();
        let fluid = 2.0 * 20e-6 + bytes as f64 / 125e6;
        prop_assert!(
            t >= fluid - 1e-12,
            "packet sim too fast: {t} < fluid bound {fluid}"
        );
    }

    /// Two equal flows into one destination finish together and take
    /// roughly twice the lone-flow time (fair sharing).
    #[test]
    fn incast_fairness(kbytes in 128u64..512) {
        let bytes = kbytes * 1024;
        let rp = cluster(3);
        let lone = {
            let mut net = PacketNet::new(&rp, PacketConfig::default());
            net.start_message(&rp, HostIx(1), HostIx(0), bytes);
            net.run_to_completion().as_secs()
        };
        let mut net = PacketNet::new(&rp, PacketConfig::default());
        net.start_message(&rp, HostIx(1), HostIx(0), bytes);
        net.start_message(&rp, HostIx(2), HostIx(0), bytes);
        let mut finishes = Vec::new();
        while let Some((t, ids)) = net.advance_to_next() {
            for _ in ids {
                finishes.push(t.as_secs());
            }
        }
        prop_assert_eq!(finishes.len(), 2);
        let spread = (finishes[1] - finishes[0]).abs();
        prop_assert!(spread <= lone * 0.05, "unfair finish spread {spread}");
        // Fixed per-hop costs don't double, so the ratio sits slightly
        // below 2 and approaches it with size.
        let ratio = finishes[1] / lone;
        prop_assert!((1.7..2.1).contains(&ratio), "sharing ratio {ratio}");
    }
}
