//! The packet-level discrete-event network simulator.
//!
//! This engine plays the role of the *physical clusters* in the reproduction:
//! the paper validates SMPI against real Grid'5000 runs, and the SimGrid flow
//! model itself was validated against the packet-level GTNetS simulator. Here
//! messages are cut into MTU-sized frames that traverse the platform
//! **store-and-forward**: a frame is fully serialized onto a channel
//! (`wire_bytes / bandwidth`), propagates (`latency`), must completely arrive
//! at the next node, and only then competes for the next channel.
//!
//! Each link direction is a **channel** with round-robin fair queuing across
//! flows — the packet-granularity analogue of TCP bandwidth sharing, and the
//! mechanism that produces real contention behaviour at switch ports.
//!
//! The engine also offers `exec`/`sleep` actions so entire MPI applications
//! can be timed against it; on the simulated "real" cluster every rank has a
//! node of its own, so compute actions don't share.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

use smpi_obs::{FlowAttribution, Rec};
use smpi_platform::spec::Dir;
use smpi_platform::{HostIx, RoutedPlatform, SharingPolicy};
use surf_sim::{SimTime, Slab};

use crate::config::PacketConfig;

/// Handle to an ongoing packet-net action (message, exec or sleep).
///
/// Action slots are recycled once the action completes (same slab idiom as
/// the flow-level kernel), so the handle carries the slot's generation: a
/// stale handle can never alias a newer action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PacketActionId {
    slot: u32,
    gen: u32,
}

impl PacketActionId {
    /// Packs the handle into a single `u64` (`generation << 32 | slot`),
    /// unique for the lifetime of the simulator; used by callers to key
    /// their own tables.
    pub fn raw(self) -> u64 {
        (u64::from(self.gen) << 32) | u64::from(self.slot)
    }

    /// Rebuilds a handle from its [`raw`](Self::raw) packing.
    pub fn from_raw(raw: u64) -> Self {
        PacketActionId {
            slot: raw as u32,
            gen: (raw >> 32) as u32,
        }
    }
}

/// One directional transmission channel (a link direction).
#[derive(Debug, Default)]
struct Channel {
    /// Per-flow frame queues (flow = transfer action index).
    queues: HashMap<u32, VecDeque<Frame>>,
    /// Round-robin service order of flows with queued frames.
    rr: VecDeque<u32>,
    /// Whether a frame is currently being serialized.
    busy: bool,
    /// Frames currently queued (excluding the one being serialized).
    depth: u32,
}

/// A frame in flight or queued.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Frame {
    /// The transfer this frame belongs to.
    transfer: u32,
    /// Application payload bytes.
    payload: u32,
    /// Index of the hop this frame is about to cross (into the route).
    hop: u16,
    /// When the frame entered the current hop's channel (store-and-forward
    /// hop latency = arrival time minus this).
    queued_at: SimTime,
}

#[derive(Debug)]
enum Pending {
    Transfer {
        route_channels: Vec<u32>,
        frames_remaining: u64,
        /// Contention attribution (per-channel queue waits + the share
        /// integral); allocated only for messages started while recording.
        attr: Option<Box<FlowAttribution>>,
    },
    Delay,
}

/// Heap events carry their payload inline (ordered by `(time, seq)` in the
/// heap entry; the derived `Ord` on the payload is never reached because
/// `seq` is unique).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    /// A channel finished serializing a frame and may start the next one.
    ChannelIdle(u32),
    /// A frame fully arrived at the node after `hop`.
    Arrive(Frame),
    /// A delay action (exec or sleep) finished.
    DelayDone(PacketActionId),
}

/// The packet-level simulator over a routed platform.
#[derive(Debug)]
pub struct PacketNet {
    config: PacketConfig,
    now: SimTime,
    /// Channel state; indexing derives from the platform links (two slots per
    /// link: forward then reverse; `Shared` links alias both to forward).
    channels: Vec<Channel>,
    /// Per-channel (bandwidth, latency).
    chan_bw: Vec<f64>,
    chan_lat: Vec<f64>,
    /// `true` when the channel never queues (FatPipe).
    chan_fat: Vec<bool>,
    shared_dirs: Vec<bool>,
    /// Live actions; slots are recycled on completion, so memory stays
    /// proportional to the number of *concurrent* actions, not the total
    /// ever started.
    actions: Slab<Pending>,
    heap: BinaryHeap<Reverse<(SimTime, u64, Event)>>,
    seq: u64,
    /// Number of host compute speeds, for exec durations.
    host_speeds: Vec<f64>,
    /// Routes are translated to channel sequences lazily and memoized.
    route_cache: HashMap<(HostIx, HostIx), (Vec<u32>, Vec<f64>)>,
    /// Observability sink; disabled by default (every emit is one branch).
    rec: Rec,
    /// Attribution of completed transfers keyed by `PacketActionId::raw()`,
    /// awaiting pickup via [`take_attribution`](Self::take_attribution).
    done_attr: HashMap<u64, FlowAttribution>,
}

impl PacketNet {
    /// Builds the packet simulator for a platform.
    pub fn new(rp: &RoutedPlatform, config: PacketConfig) -> Self {
        PacketNet::new_perturbed(rp, config, None)
    }

    /// Like [`new`](Self::new), but scales the platform's nominal
    /// parameters by a [`PlatformPerturbation`](smpi_platform::PlatformPerturbation)
    /// overlay: both direction
    /// channels of a platform link share its bandwidth/latency factors
    /// (jitter models the physical link, not a direction), and host speeds
    /// scale per host. `None` — or the identity overlay — is bit-exact
    /// with the unperturbed constructor.
    pub fn new_perturbed(
        rp: &RoutedPlatform,
        config: PacketConfig,
        perturb: Option<&smpi_platform::PlatformPerturbation>,
    ) -> Self {
        let p = rp.platform();
        let nlinks = p.num_links();
        let mut channels = Vec::with_capacity(nlinks * 2);
        let mut chan_bw = Vec::with_capacity(nlinks * 2);
        let mut chan_lat = Vec::with_capacity(nlinks * 2);
        let mut chan_fat = Vec::with_capacity(nlinks * 2);
        let mut shared_dirs = Vec::with_capacity(nlinks);
        for (ix, link) in p.links().iter().enumerate() {
            let (fb, fl) = perturb.map_or((1.0, 1.0), |o| {
                (o.bandwidth_factor(ix), o.latency_factor(ix))
            });
            // Two slots per link; Shared aliases both directions to slot 0.
            for _ in 0..2 {
                channels.push(Channel::default());
                chan_bw.push(link.bandwidth * fb);
                chan_lat.push(link.latency * fl);
                chan_fat.push(link.policy == SharingPolicy::FatPipe);
            }
            shared_dirs.push(matches!(
                link.policy,
                SharingPolicy::Shared | SharingPolicy::FatPipe
            ));
        }
        let host_speeds = p
            .host_indices()
            .enumerate()
            .map(|(i, h)| p.host_speed(h) * perturb.map_or(1.0, |o| o.host_factor(i)))
            .collect();
        PacketNet {
            config,
            now: SimTime::ZERO,
            channels,
            chan_bw,
            chan_lat,
            chan_fat,
            shared_dirs,
            actions: Slab::new(),
            heap: BinaryHeap::new(),
            seq: 0,
            host_speeds,
            route_cache: HashMap::new(),
            rec: Rec::disabled(),
            done_attr: HashMap::new(),
        }
    }

    /// Attaches an observability recorder. While enabled, the simulator
    /// emits frame counters (`packetnet.frames.*`), per-channel queue-depth
    /// high-water marks (`packetnet.chan.<i>.queue_depth`), per-channel
    /// wire-byte integrals (`packetnet.chan.<i>.bytes`), and a log2
    /// histogram of per-hop store-and-forward latencies in nanoseconds
    /// (`packetnet.hop_latency_ns`); messages started from now on also
    /// carry a contention attribution accumulator (see
    /// [`take_attribution`](Self::take_attribution)).
    pub fn set_recorder(&mut self, rec: Rec) {
        self.rec = rec;
    }

    /// Takes the contention attribution of a *completed* message: its wire
    /// byte integral plus per-channel queue waits, with the queue waits
    /// doubling as the packet backend's bottleneck-residency measure (a
    /// frame waits exactly when its port is busy with other traffic).
    /// Returns `None` when the message recorded nothing.
    pub fn take_attribution(&mut self, id: PacketActionId) -> Option<FlowAttribution> {
        self.done_attr.remove(&id.raw())
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The framing configuration.
    pub fn config(&self) -> &PacketConfig {
        &self.config
    }

    fn channel_of(&self, link: u32, dir: Dir) -> u32 {
        let base = link * 2;
        if self.shared_dirs[link as usize] {
            base
        } else {
            match dir {
                Dir::Forward => base,
                Dir::Reverse => base + 1,
            }
        }
    }

    fn schedule(&mut self, at: SimTime, event: Event) {
        self.heap.push(Reverse((at, self.seq, event)));
        self.seq += 1;
    }

    fn route_channels(
        &mut self,
        rp: &RoutedPlatform,
        src: HostIx,
        dst: HostIx,
    ) -> (Vec<u32>, Vec<f64>) {
        if let Some(cached) = self.route_cache.get(&(src, dst)) {
            return cached.clone();
        }
        let hops = rp.route(src, dst);
        assert!(
            !hops.is_empty(),
            "packet-net transfers require distinct hosts"
        );
        let chans: Vec<u32> = hops
            .iter()
            .map(|h| self.channel_of(h.link.0, h.dir))
            .collect();
        let lats: Vec<f64> = chans.iter().map(|&c| self.chan_lat[c as usize]).collect();
        self.route_cache
            .insert((src, dst), (chans.clone(), lats.clone()));
        (chans, lats)
    }

    /// Starts a message of `bytes` from `src` to `dst`. Frames are enqueued
    /// at the source channel immediately.
    pub fn start_message(
        &mut self,
        rp: &RoutedPlatform,
        src: HostIx,
        dst: HostIx,
        bytes: u64,
    ) -> PacketActionId {
        let (route_channels, _route_latencies) = self.route_channels(rp, src, dst);
        let nframes = self.config.frame_count(bytes);
        let attr = if self.rec.is_enabled() {
            Some(Box::new(FlowAttribution::new(route_channels.clone())))
        } else {
            None
        };
        let (slot, gen) = self.actions.insert(Pending::Transfer {
            route_channels: route_channels.clone(),
            frames_remaining: nframes,
            attr,
        });
        let id = PacketActionId { slot, gen };

        self.rec.with(|r| {
            use smpi_obs::Recorder;
            r.counter_add("packetnet.messages", 1);
            r.counter_add("packetnet.frames.total", nframes);
        });

        // Enqueue all frames at the first channel.
        let full = self.config.mtu_payload as u64;
        let first = route_channels[0];
        let mut left = bytes;
        for _ in 0..nframes {
            let payload = left.min(full) as u32;
            left = left.saturating_sub(full);
            self.enqueue_frame(
                first,
                Frame {
                    transfer: id.slot,
                    payload,
                    hop: 0,
                    queued_at: SimTime::ZERO,
                },
            );
        }
        id
    }

    /// Starts a computation of `flops` on `host` (no sharing: one rank per
    /// physical node on the emulated testbed).
    pub fn start_exec(&mut self, host: HostIx, flops: f64) -> PacketActionId {
        let speed = self.host_speeds[host.0 as usize];
        self.start_sleep(flops / speed)
    }

    /// Starts a pure delay.
    pub fn start_sleep(&mut self, seconds: f64) -> PacketActionId {
        assert!(seconds >= 0.0 && seconds.is_finite());
        let (slot, gen) = self.actions.insert(Pending::Delay);
        let id = PacketActionId { slot, gen };
        self.schedule(self.now + seconds, Event::DelayDone(id));
        id
    }

    /// `true` once the action completed (its slot has been recycled or its
    /// generation superseded).
    pub fn is_done(&self, id: PacketActionId) -> bool {
        !self.actions.contains(id.slot, id.gen)
    }

    /// Number of actions currently in flight.
    pub fn running_actions(&self) -> usize {
        self.actions.len()
    }

    /// High-water mark of concurrently live actions.
    pub fn peak_actions(&self) -> usize {
        self.actions.peak()
    }

    /// Fills `out[i]` with channel `i`'s instantaneous utilization: a
    /// store-and-forward port is either serializing a frame (1.0) or idle
    /// (0.0) — there is no fractional sharing at packet level.
    pub fn channel_utilizations(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.channels.iter().map(|c| if c.busy { 1.0 } else { 0.0 }));
    }

    fn enqueue_frame(&mut self, chan: u32, mut frame: Frame) {
        frame.queued_at = self.now;
        if self.chan_fat[chan as usize] {
            // FatPipe: serialize without queuing (infinite parallel lanes).
            let ser = self.config.wire_bytes(frame.payload) as f64 / self.chan_bw[chan as usize];
            let at = self.now + ser + self.chan_lat[chan as usize];
            self.schedule(at, Event::Arrive(frame));
            return;
        }
        let (was_busy, depth) = {
            let c = &mut self.channels[chan as usize];
            let was_busy = c.busy;
            let q = c.queues.entry(frame.transfer).or_default();
            if q.is_empty() {
                c.rr.push_back(frame.transfer);
            }
            q.push_back(frame);
            c.depth += 1;
            (was_busy, c.depth)
        };
        if self.rec.is_enabled() {
            self.rec.with(|r| {
                use smpi_obs::Recorder;
                if was_busy {
                    r.counter_add("packetnet.frames.queued_behind", 1);
                }
                r.hwm(&format!("packetnet.chan.{chan}.queue_depth"), depth as f64);
            });
        }
        if !was_busy {
            self.transmit_next(chan);
        }
    }

    /// Pops the next frame (round-robin across flows) and serializes it.
    fn transmit_next(&mut self, chan: u32) {
        let cix = chan as usize;
        let (frame, now_busy) = {
            let c = &mut self.channels[cix];
            debug_assert!(!c.busy);
            let flow = match c.rr.pop_front() {
                Some(f) => f,
                None => return,
            };
            let q = c.queues.get_mut(&flow).expect("flow queue exists");
            let frame = q.pop_front().expect("queued flow has frames");
            if q.is_empty() {
                c.queues.remove(&flow);
            } else {
                c.rr.push_back(flow);
            }
            c.busy = true;
            c.depth -= 1;
            (frame, true)
        };
        debug_assert!(now_busy);
        let ser = self.config.wire_bytes(frame.payload) as f64 / self.chan_bw[cix];
        self.schedule(self.now + ser, Event::ChannelIdle(chan));
        self.schedule(self.now + ser + self.chan_lat[cix], Event::Arrive(frame));
    }

    fn on_arrive(&mut self, frame: Frame) -> Option<PacketActionId> {
        let now = self.now;
        let (chan, next_chan, finished) = {
            let pending = self
                .actions
                .get_mut(frame.transfer)
                .expect("frame belongs to a live action");
            let Pending::Transfer {
                route_channels,
                frames_remaining,
                attr,
            } = pending
            else {
                unreachable!("frame belongs to a non-transfer action");
            };
            let chan = route_channels[frame.hop as usize];
            if let Some(a) = attr.as_deref_mut() {
                let wire = self.config.wire_bytes(frame.payload) as f64;
                if frame.hop == 0 {
                    // Each frame crosses every channel of the route, so its
                    // wire bytes enter the share integral exactly once.
                    a.share_bytes += wire;
                }
                // Store-and-forward hop time minus this frame's own
                // serialization and propagation: pure queueing behind other
                // traffic — the port-contention residency of this flow.
                let ser = wire / self.chan_bw[chan as usize];
                let wait =
                    (now.duration_since(frame.queued_at) - ser - self.chan_lat[chan as usize])
                        .max(0.0);
                if wait > 0.0 {
                    a.add_queue(chan, wait);
                    a.add_bottleneck(chan, wait);
                }
            }
            let next_hop = frame.hop as usize + 1;
            if next_hop < route_channels.len() {
                (chan, Some(route_channels[next_hop]), false)
            } else {
                *frames_remaining -= 1;
                (chan, None, *frames_remaining == 0)
            }
        };
        if self.rec.is_enabled() {
            // Per-channel wire-byte integral, the packet analogue of the
            // flow kernel's `surf.link.<i>.bytes`; per channel, the
            // per-flow share integrals sum to exactly this counter.
            let wire = self.config.wire_bytes(frame.payload) as f64;
            self.rec.with(|r| {
                use smpi_obs::Recorder;
                r.fcounter_add(&format!("packetnet.chan.{chan}.bytes"), wire);
            });
        }
        if let Some(chan) = next_chan {
            self.enqueue_frame(
                chan,
                Frame {
                    hop: frame.hop + 1,
                    ..frame
                },
            );
            None
        } else if finished {
            // Every frame has fully arrived, so nothing in the heap can
            // reference this slot any more: safe to recycle.
            let gen = self.actions.generation(frame.transfer);
            let done = self.actions.remove(frame.transfer);
            let id = PacketActionId {
                slot: frame.transfer,
                gen,
            };
            if let Pending::Transfer {
                attr: Some(attr), ..
            } = done
            {
                self.done_attr.insert(id.raw(), *attr);
            }
            Some(id)
        } else {
            None
        }
    }

    /// Advances to the next instant at which at least one action completes,
    /// returning the completed actions. Returns `None` when fully drained.
    pub fn advance_to_next(&mut self) -> Option<(SimTime, Vec<PacketActionId>)> {
        let mut completed = Vec::new();
        while let Some(&Reverse((t, _, _))) = self.heap.peek() {
            // Drain every event at instant `t`.
            self.now = t;
            while let Some(&Reverse((t2, _, ev))) = self.heap.peek() {
                if t2 != t {
                    break;
                }
                self.heap.pop();
                match ev {
                    Event::ChannelIdle(chan) => {
                        self.channels[chan as usize].busy = false;
                        self.transmit_next(chan);
                    }
                    Event::Arrive(frame) => {
                        if self.rec.is_enabled() {
                            let hop_ns = (self.now.as_secs() - frame.queued_at.as_secs()) * 1e9;
                            self.rec.with(|r| {
                                use smpi_obs::Recorder;
                                r.observe("packetnet.hop_latency_ns", hop_ns);
                                r.counter_add("packetnet.frames.hops", 1);
                            });
                        }
                        if let Some(done) = self.on_arrive(frame) {
                            completed.push(done);
                        }
                    }
                    Event::DelayDone(id) => {
                        self.actions.remove(id.slot);
                        completed.push(id);
                    }
                }
            }
            if !completed.is_empty() {
                return Some((self.now, completed));
            }
        }
        None
    }

    /// Runs until quiescent, returning the final time.
    pub fn run_to_completion(&mut self) -> SimTime {
        while self.advance_to_next().is_some() {}
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smpi_platform::{flat_cluster, ClusterConfig, RoutedPlatform};

    fn cluster(n: usize, bw: f64, lat: f64) -> RoutedPlatform {
        RoutedPlatform::new(flat_cluster(
            "t",
            n,
            &ClusterConfig {
                link_bandwidth: bw,
                link_latency: lat,
                ..ClusterConfig::default()
            },
        ))
    }

    /// Closed form for a single pipelined message over equal-bandwidth hops:
    /// the first channel serializes every frame back-to-back; on each further
    /// hop the tail of the message is delayed by one more frame time. A short
    /// trailing frame rides right behind the last full frame, so the per-hop
    /// increment is a *full* frame serialization whenever full frames exist.
    fn pipelined(cfg: &PacketConfig, bytes: u64, hops: usize, bw: f64, lat_total: f64) -> f64 {
        let full_frames = bytes / cfg.mtu_payload as u64;
        let rem = (bytes % cfg.mtu_payload as u64) as u32;
        let full_ser = cfg.wire_bytes(cfg.mtu_payload) as f64 / bw;
        let rem_ser = cfg.wire_bytes(rem) as f64 / bw;
        let first_chan =
            full_frames as f64 * full_ser + if rem > 0 || bytes == 0 { rem_ser } else { 0.0 };
        let per_hop = if full_frames > 0 { full_ser } else { rem_ser };
        first_chan + (hops - 1) as f64 * per_hop + lat_total
    }

    #[test]
    fn single_frame_message_time() {
        let rp = cluster(2, 125e6, 50e-6);
        let cfg = PacketConfig::default();
        let mut net = PacketNet::new(&rp, cfg);
        let id = net.start_message(&rp, HostIx(0), HostIx(1), 1000);
        let (t, done) = net.advance_to_next().unwrap();
        assert_eq!(done, vec![id]);
        let ser = cfg.wire_bytes(1000) as f64 / 125e6;
        // Store-and-forward across 2 links: serialize twice, 2 latencies.
        let expect = 2.0 * ser + 100e-6;
        assert!((t.as_secs() - expect).abs() < 1e-12, "{t} vs {expect}");
    }

    #[test]
    fn multi_frame_message_pipelines() {
        let rp = cluster(2, 125e6, 50e-6);
        let cfg = PacketConfig::default();
        let mut net = PacketNet::new(&rp, cfg);
        let bytes = 10 * 1448 + 7;
        net.start_message(&rp, HostIx(0), HostIx(1), bytes);
        let (t, _) = net.advance_to_next().unwrap();
        let expect = pipelined(&cfg, bytes, 2, 125e6, 100e-6);
        assert!(
            (t.as_secs() - expect).abs() < 1e-12,
            "{} vs {}",
            t.as_secs(),
            expect
        );
    }

    #[test]
    fn zero_byte_message_still_sends_a_header_frame() {
        let rp = cluster(2, 125e6, 10e-6);
        let cfg = PacketConfig::default();
        let mut net = PacketNet::new(&rp, cfg);
        net.start_message(&rp, HostIx(0), HostIx(1), 0);
        let (t, _) = net.advance_to_next().unwrap();
        let expect = 2.0 * (90.0 / 125e6) + 20e-6;
        assert!((t.as_secs() - expect).abs() < 1e-12);
    }

    #[test]
    fn two_flows_into_same_destination_share_fairly() {
        // Flows 1->0 and 2->0 share host 0's incoming channel: each message
        // takes about twice as long as it would alone.
        let rp = cluster(3, 125e6, 0.0);
        let cfg = PacketConfig::default();
        let bytes = 200 * 1448;
        let mut alone = PacketNet::new(&rp, cfg);
        alone.start_message(&rp, HostIx(1), HostIx(0), bytes);
        let t_alone = alone.run_to_completion().as_secs();

        let mut both = PacketNet::new(&rp, cfg);
        both.start_message(&rp, HostIx(1), HostIx(0), bytes);
        both.start_message(&rp, HostIx(2), HostIx(0), bytes);
        let t_both = both.run_to_completion().as_secs();
        let ratio = t_both / t_alone;
        assert!(
            (ratio - 2.0).abs() < 0.1,
            "sharing ratio {ratio}, expected ~2"
        );
    }

    #[test]
    fn attribution_conserves_bytes_and_charges_queue_waits() {
        let rec = Rec::enabled();
        let rp = cluster(3, 125e6, 10e-6);
        let cfg = PacketConfig::default();
        let mut net = PacketNet::new(&rp, cfg);
        net.set_recorder(rec.clone());
        let bytes = 50 * 1448;
        let a = net.start_message(&rp, HostIx(1), HostIx(0), bytes);
        let b = net.start_message(&rp, HostIx(2), HostIx(0), bytes);
        net.run_to_completion();
        let aa = net.take_attribution(a).expect("attribution for a");
        let ab = net.take_attribution(b).expect("attribution for b");
        // Conservation: per channel, the per-flow share integrals sum to
        // the channel's wire-byte counter.
        let report = rec.snapshot().unwrap();
        let mut per_chan: HashMap<u32, f64> = HashMap::new();
        for attr in [&aa, &ab] {
            assert!(attr.share_bytes >= bytes as f64, "wire bytes ≥ payload");
            for &c in &attr.route {
                *per_chan.entry(c).or_insert(0.0) += attr.share_bytes;
            }
        }
        assert!(!per_chan.is_empty());
        for (c, total) in per_chan {
            let counter = report.fcounter(&format!("packetnet.chan.{c}.bytes"));
            assert!(
                (counter - total).abs() <= 1e-9 * counter.max(1.0),
                "channel {c}: flows sum to {total}, counter says {counter}"
            );
        }
        // Both flows funnel into host 0's port: each spends time queued
        // behind the other, and the packet backend reports that queueing
        // as its bottleneck residency.
        assert!(aa.bottlenecked_secs() > 0.0, "a never queued: {aa:?}");
        assert!(ab.bottlenecked_secs() > 0.0, "b never queued: {ab:?}");
        assert_eq!(aa.queue_secs, aa.bottleneck_secs);
        assert!(
            net.take_attribution(a).is_none(),
            "attribution is taken exactly once"
        );
    }

    #[test]
    fn no_recorder_means_no_attribution() {
        let rp = cluster(2, 125e6, 0.0);
        let mut net = PacketNet::new(&rp, PacketConfig::default());
        let id = net.start_message(&rp, HostIx(0), HostIx(1), 5000);
        net.run_to_completion();
        assert!(net.take_attribution(id).is_none());
    }

    #[test]
    fn shared_cluster_links_contend_bidirectionally() {
        // Cluster builders use Shared links: simultaneous opposite-direction
        // messages share the capacity and take ~2x as long (the effect that
        // drives Fig. 11).
        let rp = cluster(2, 125e6, 0.0);
        let cfg = PacketConfig::default();
        let bytes = 100 * 1448;
        let mut one = PacketNet::new(&rp, cfg);
        one.start_message(&rp, HostIx(0), HostIx(1), bytes);
        let t_one = one.run_to_completion().as_secs();

        let mut both = PacketNet::new(&rp, cfg);
        both.start_message(&rp, HostIx(0), HostIx(1), bytes);
        both.start_message(&rp, HostIx(1), HostIx(0), bytes);
        let t_both = both.run_to_completion().as_secs();
        let ratio = t_both / t_one;
        assert!((ratio - 2.0).abs() < 0.1, "ratio {ratio}");
    }

    #[test]
    fn split_duplex_directions_are_independent() {
        use smpi_platform::{Platform, SharingPolicy};
        let mut p = Platform::new();
        let h0 = p.add_host("h0", 1e9);
        let h1 = p.add_host("h1", 1e9);
        let n0 = p.host_node(h0);
        let n1 = p.host_node(h1);
        p.link_between(n0, n1, "wire", 125e6, 0.0, SharingPolicy::SplitDuplex);
        let rp = RoutedPlatform::new(p);
        let cfg = PacketConfig::default();
        let bytes = 100 * 1448;
        let mut one = PacketNet::new(&rp, cfg);
        one.start_message(&rp, HostIx(0), HostIx(1), bytes);
        let t_one = one.run_to_completion().as_secs();

        let mut duplex = PacketNet::new(&rp, cfg);
        duplex.start_message(&rp, HostIx(0), HostIx(1), bytes);
        duplex.start_message(&rp, HostIx(1), HostIx(0), bytes);
        let t_duplex = duplex.run_to_completion().as_secs();
        assert!(
            (t_duplex - t_one).abs() < 1e-9,
            "split duplex should not slow down: {t_duplex} vs {t_one}"
        );
    }

    #[test]
    fn exec_and_sleep_complete() {
        let rp = cluster(2, 125e6, 0.0);
        let mut net = PacketNet::new(&rp, PacketConfig::default());
        let e = net.start_exec(HostIx(0), 2e9); // node speed 1e9 => 2 s
        let s = net.start_sleep(0.5);
        let (t1, d1) = net.advance_to_next().unwrap();
        assert_eq!(d1, vec![s]);
        assert!((t1.as_secs() - 0.5).abs() < 1e-12);
        let (t2, d2) = net.advance_to_next().unwrap();
        assert_eq!(d2, vec![e]);
        assert!((t2.as_secs() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn slots_recycle_and_stale_handles_stay_done() {
        let rp = cluster(2, 125e6, 0.0);
        let mut net = PacketNet::new(&rp, PacketConfig::default());
        let a = net.start_sleep(0.1);
        assert_eq!(net.running_actions(), 1);
        net.advance_to_next();
        assert!(net.is_done(a));
        assert_eq!(net.running_actions(), 0);
        // The slot is reused, but the generation bump keeps raw tokens
        // distinct and the stale handle permanently done.
        let b = net.start_sleep(0.2);
        assert_ne!(a.raw(), b.raw());
        assert!(net.is_done(a));
        assert!(!net.is_done(b));
        net.advance_to_next();
        assert!(net.is_done(b));
        assert_eq!(net.peak_actions(), 1);
    }

    #[test]
    fn byte_conservation_over_random_messages() {
        // All messages complete; completion count equals message count.
        let rp = cluster(4, 125e6, 1e-6);
        let mut net = PacketNet::new(&rp, PacketConfig::default());
        let mut started = 0;
        for (s, d, b) in [
            (0u32, 1u32, 5000u64),
            (1, 2, 123),
            (2, 3, 1_000_000),
            (3, 0, 0),
            (0, 2, 777_777),
            (1, 3, 1448),
        ] {
            net.start_message(&rp, HostIx(s), HostIx(d), b);
            started += 1;
        }
        let mut completed = 0;
        while let Some((_, done)) = net.advance_to_next() {
            completed += done.len();
        }
        assert_eq!(completed, started);
    }

    #[test]
    fn determinism() {
        let run = || {
            let rp = cluster(4, 125e6, 1e-6);
            let mut net = PacketNet::new(&rp, PacketConfig::default());
            for (s, d, b) in [(0u32, 1u32, 50_000u64), (2, 1, 50_000), (3, 1, 80_000)] {
                net.start_message(&rp, HostIx(s), HostIx(d), b);
            }
            let mut trace = Vec::new();
            while let Some((t, done)) = net.advance_to_next() {
                trace.push((t, done));
            }
            trace
        };
        assert_eq!(run(), run());
    }
}
