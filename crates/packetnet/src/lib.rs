//! # packetnet — packet-level ground truth for the SMPI reproduction
//!
//! The paper validates SMPI against real executions on Grid'5000 clusters.
//! Without that hardware, this crate provides the closest synthetic
//! equivalent: a packet-level (MTU-framed, store-and-forward, FIFO-queued)
//! discrete-event network simulator, the same class of simulator (GTNetS)
//! that the SimGrid flow model was originally validated against.
//!
//! Everything that produces the paper's measured *shapes* is mechanistic
//! here rather than assumed:
//!
//! * per-frame wire overhead → small messages behave differently from the
//!   asymptotic rate (the first segment of the piece-wise model);
//! * store-and-forward pipelining → per-hop cost visible at small sizes;
//! * round-robin fair queuing at link channels → contention at shared switch
//!   ports (what the "SMPI with contention" bars of Figs. 7/11 track);
//! * full-duplex channels on `SplitDuplex` links → bidirectional exchange
//!   patterns (pairwise all-to-all) run at full rate each way.

pub mod config;
pub mod net;

pub use config::PacketConfig;
pub use net::{PacketActionId, PacketNet};
