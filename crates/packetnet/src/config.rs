//! Packet-level simulation parameters.

/// Framing parameters of the simulated interconnect.
///
/// Defaults model TCP over Gigabit Ethernet with standard 1500-byte MTU:
/// 1448 bytes of application payload per segment (TCP with timestamps), and
/// 90 bytes of wire overhead per frame (Ethernet preamble + header + FCS +
/// inter-frame gap + IP + TCP headers). These two constants are what create
/// the *piece-wise* behaviour the paper's model captures: messages that fit
/// one frame see a much better effective rate per byte than the asymptotic
/// payload rate.
#[derive(Debug, Clone, Copy)]
pub struct PacketConfig {
    /// Application payload carried by one full frame, bytes.
    pub mtu_payload: u32,
    /// Wire overhead added to every frame's payload, bytes.
    pub frame_overhead: u32,
}

impl Default for PacketConfig {
    fn default() -> Self {
        PacketConfig {
            mtu_payload: 1448,
            frame_overhead: 90,
        }
    }
}

impl PacketConfig {
    /// Number of frames needed for a message of `bytes` (at least one: even
    /// zero-byte MPI messages put a header frame on the wire).
    pub fn frame_count(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            1
        } else {
            bytes.div_ceil(self.mtu_payload as u64)
        }
    }

    /// Bytes on the wire for a frame carrying `payload` bytes.
    pub fn wire_bytes(&self, payload: u32) -> u32 {
        payload + self.frame_overhead
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_counts() {
        let c = PacketConfig::default();
        assert_eq!(c.frame_count(0), 1);
        assert_eq!(c.frame_count(1), 1);
        assert_eq!(c.frame_count(1448), 1);
        assert_eq!(c.frame_count(1449), 2);
        assert_eq!(c.frame_count(14480), 10);
    }

    #[test]
    fn wire_overhead() {
        let c = PacketConfig::default();
        assert_eq!(c.wire_bytes(1448), 1538);
        assert_eq!(c.wire_bytes(0), 90);
    }
}
