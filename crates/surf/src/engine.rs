//! The SURF simulation engine: resources, actions, and the sequential clock.
//!
//! This is the "simulation kernel" of Fig. 1 in the paper. It owns
//!
//! * **links** (bandwidth + latency) and **hosts** (compute speed),
//! * **actions**: ongoing network transfers, CPU executions, and sleeps,
//! * the simulated **clock**.
//!
//! The kernel is strictly sequential (§5.1): callers start actions, then
//! repeatedly call [`Simulation::advance_to_next`] to jump the clock to the
//! next completion. Network rates are recomputed with the max-min solver
//! ([`crate::lmm`]) whenever the set of active flows changes; CPU actions on
//! the same host share its compute power the same way.
//!
//! Transfers are two-phase, matching the flow model validated in the SimGrid
//! papers: a pure-latency phase (the flow does not consume bandwidth) then a
//! transfer phase at rate `min(segment bound, max-min share)`.
//!
//! # Per-event cost
//!
//! The kernel is engineered so that the cost of one simulated event depends
//! only on the *currently live* actions (and usually only on the affected
//! ones), never on the total number of actions ever started:
//!
//! * actions live in a generation-tagged [`Slab`] whose
//!   slots are recycled on completion, so iteration and memory stay
//!   proportional to the peak concurrency;
//! * the next completion is found through a lazily-invalidated binary heap
//!   of predicted completion times instead of a linear scan — a heap entry
//!   is trusted only if its generation matches the slot and its time matches
//!   the slot's cached prediction, so rate changes simply publish a new
//!   entry and orphan the old one;
//! * the max-min problem is re-solved *incrementally*: each link and host
//!   keeps a persistent, birth-ordered set of the actions it constrains, a
//!   change marks its constraints dirty, and only the connected component of
//!   the constraint↔action graph reachable from dirty constraints is
//!   re-shared. Remaining work is folded in lazily, at an action's own rate
//!   changes, rather than on every global step. Topology edits with live
//!   actions fall back to a full rebuild
//!   ([`set_full_reshare`](Simulation::set_full_reshare) forces that mode
//!   permanently, which is what the `repro -- kernel` baseline measures).

use crate::ids::{ActionId, HostId, LinkId};
use crate::lmm::{CnstId, MaxMinProblem};
use crate::model::TransferModel;
use crate::slab::Slab;
use crate::time::SimTime;
use smpi_obs::{FlowAttribution, KernelProfile, Rec};
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, HashMap};
use std::time::Instant;

/// Relative tolerance when deciding that an action's remaining work is done.
const COMPLETION_EPS: f64 = 1e-9;

/// Minimum total coupled variables across a reshare before independent
/// components are considered worth dispatching to worker threads. Below
/// this, spawn overhead dwarfs the solves. The threshold also defines the
/// `parallel_components` counter (a property of the workload, not the
/// host), so it must not depend on runtime core counts.
const PARALLEL_MIN_VARS: usize = 256;

/// One dirty component's max-min problem plus the bookkeeping needed to
/// apply its solution back to engine actions.
struct BuiltComponent {
    problem: MaxMinProblem,
    /// Constraint index → kernel link (None for host constraints).
    cnst_link: Vec<Option<u32>>,
    /// Member slots in birth order.
    sharing: Vec<u32>,
    /// Member index → solver variable index (identity when unfolded; the
    /// route-class representative when folded).
    var_of: Vec<u32>,
    /// Members folded away into class representatives (0 when unfolded).
    folded: u64,
}

/// A solved component, ready to merge in component-birth order.
struct SolvedComponent {
    rates: Vec<f64>,
    bottlenecks: Option<Vec<Option<CnstId>>>,
    ns: f64,
}

/// Birth-ordered key of an action inside constraint user sets: the start
/// sequence number first, so iteration replays creation order.
type UserKey = (u64, u32);

/// A network link: one direction of a cable, or a switch backplane.
#[derive(Debug, Clone)]
struct Link {
    /// Nominal bandwidth in bytes/s (the max-min capacity).
    bandwidth: f64,
    /// Nominal one-way latency contribution in seconds.
    latency: f64,
    /// When `false`, flows crossing this link are not subject to its
    /// capacity constraint (the "no contention" scenario of Figs. 7 and 11).
    contended: bool,
    /// Transfer-phase flows currently constrained by this link, in birth
    /// order. Only maintained while the link participates in contention.
    users: BTreeSet<UserKey>,
}

/// A compute host with a speed in flop/s.
#[derive(Debug, Clone)]
struct Host {
    speed: f64,
    /// Executions currently sharing this host, in birth order.
    users: BTreeSet<UserKey>,
}

#[derive(Debug, Clone)]
enum ActionKind {
    /// Network transfer across `route`.
    Transfer {
        /// The route with duplicate links removed (first occurrence kept):
        /// a link crossed twice still constrains — and accounts — the flow
        /// once, mirroring the solver's own membership deduplication.
        route: Vec<LinkId>,
        /// Remaining seconds of the latency phase.
        latency_left: f64,
        /// Remaining bytes once in the transfer phase.
        bytes_left: f64,
        /// Individual rate bound from the transfer model segment.
        bound: f64,
    },
    /// CPU execution on a host.
    Exec { host: HostId, flops_left: f64 },
    /// Pure delay (used by `sample_*` replay and `MPI_Wtime`-style waits).
    Sleep { ends_at: SimTime },
}

/// Per-flow contention-attribution accumulator. Exists only while a
/// recorder is attached (`None` on the disabled path, so the hot loop pays
/// one pointer check) and only on transfers.
#[derive(Debug, Clone)]
struct AttrAcc {
    /// Kernel link currently bottlenecking this flow — the saturated
    /// constraint that froze its rate at the latest reshare — or `None`
    /// when the flow is limited by its own model bound (or crosses no
    /// contended link).
    bottleneck: Option<u32>,
    /// Integrals accumulated so far.
    acc: FlowAttribution,
}

#[derive(Debug, Clone)]
struct Action {
    kind: ActionKind,
    /// Current allocated rate (bytes/s or flop/s); 0 during latency phase.
    rate: f64,
    /// Birth sequence number; total order over all actions ever started.
    seq: u64,
    /// Cached predicted completion instant; `INFINITY` when the action can
    /// make no progress (then it has no heap entry).
    pred: SimTime,
    /// Instant up to which `*_left` has been charged. Work is folded in
    /// lazily, when the rate changes, not on every global step.
    last_update: SimTime,
    /// Contention attribution; only allocated for transfers started while
    /// recording.
    attr: Option<Box<AttrAcc>>,
}

/// Engine configuration knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Globally disable link capacity constraints. Equivalent to marking
    /// every link un-contended; used to mimic the contention-blind
    /// simulators the paper compares against.
    pub contention: bool,
    /// Optional TCP-window rate cap: a flow's rate is additionally bounded by
    /// `tcp_window / (2 * route_latency)` (CM02-style). `None` disables it.
    pub tcp_window: Option<f64>,
    /// Uniform-round class folding (on by default); see
    /// [`Simulation::set_class_folding`]. Exposed here so full-stack
    /// harnesses can run the folding ablation without reaching into the
    /// kernel.
    pub class_folding: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            contention: true,
            tcp_window: None,
            class_folding: true,
        }
    }
}

/// One action that can make no progress, inside a [`StallError`].
#[derive(Debug, Clone)]
pub struct StuckAction {
    /// Handle of the stuck action.
    pub id: ActionId,
    /// `"transfer"`, `"exec"` or `"sleep"`.
    pub kind: &'static str,
    /// Remaining work: bytes (or latency seconds) for transfers, flops for
    /// executions.
    pub remaining: f64,
    /// The allocated rate when the simulation stalled (typically 0).
    pub rate: f64,
    /// The (deduplicated) route for transfers; empty otherwise.
    pub route: Vec<LinkId>,
}

/// Running actions exist but none of them can ever complete (for example a
/// flow whose model bound is 0 bytes/s). Returned by
/// [`Simulation::try_advance_to_next`] instead of silently spinning.
#[derive(Debug, Clone)]
pub struct StallError {
    /// Simulated time at which the stall was detected.
    pub at: SimTime,
    /// Every action that is stuck, in birth order.
    pub stuck: Vec<StuckAction>,
}

impl std::fmt::Display for StallError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "simulation stalled at {}: {} action(s) cannot progress",
            self.at,
            self.stuck.len()
        )?;
        for s in self.stuck.iter().take(8) {
            write!(
                f,
                "; {} {} ({} left at rate {}",
                s.kind, s.id, s.remaining, s.rate
            )?;
            if s.route.is_empty() {
                write!(f, ")")?;
            } else {
                write!(f, " via ")?;
                for (i, l) in s.route.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{l}")?;
                }
                write!(f, ")")?;
            }
        }
        if self.stuck.len() > 8 {
            write!(f, "; … and {} more", self.stuck.len() - 8)?;
        }
        Ok(())
    }
}

impl std::error::Error for StallError {}

/// Heap entry: `(predicted completion, birth seq, slot, generation)`. The
/// entry is trusted only if the generation still matches the slot *and* the
/// time still matches the slot's cached prediction; anything else is an
/// orphan from an earlier rate and is dropped when popped.
type HeapEntry = Reverse<(SimTime, u64, u32, u32)>;

/// What happened to a completion candidate at the event instant.
enum Verdict {
    Done,
    EnterBandwidth,
    Repush,
}

/// The sequential simulation kernel.
#[derive(Debug)]
pub struct Simulation {
    now: SimTime,
    links: Vec<Link>,
    hosts: Vec<Host>,
    actions: Slab<Action>,
    heap: BinaryHeap<HeapEntry>,
    /// Next birth sequence number.
    next_seq: u64,
    /// Links / hosts whose user set changed since the last re-share.
    dirty_links: BTreeSet<u32>,
    dirty_hosts: BTreeSet<u32>,
    /// Topology changed under live actions: the next re-share rebuilds the
    /// whole problem and every constraint user set.
    full_dirty: bool,
    /// Ablation/testing hook: always re-share from scratch.
    force_full: bool,
    /// Uniform-round class folding (on by default): solve one representative
    /// per route-equivalence class when a component is uniform. Ablation
    /// hook mirrors `force_full`; see [`set_class_folding`]
    /// (Self::set_class_folding).
    class_folding: bool,
    config: EngineConfig,
    /// Observability sink; disabled by default (every emit is one branch).
    rec: Rec,
    /// Last emitted utilization per link, to suppress duplicate gauge
    /// samples across reshares. Only maintained while `rec` is enabled.
    last_util: Vec<f64>,
    /// Attribution of completed transfers, keyed by `ActionId::raw()`,
    /// awaiting pickup via [`take_attribution`](Self::take_attribution).
    /// Only populated for transfers that carried an accumulator.
    done_attr: HashMap<u64, FlowAttribution>,
    /// Always-on solver introspection (plain counters + inline histograms;
    /// see `KernelProfile` for why this is not gated on `rec`).
    kstats: KernelProfile,
    /// Epoch-stamped visit marks for [`collect_dirty_components`]
    /// (Self::collect_dirty_components), indexed by action slot / link /
    /// host. A mark is set iff its entry equals `comp_epoch`, so clearing
    /// between reshares is a single counter bump instead of a memset.
    comp_stamp: Vec<u64>,
    link_stamp: Vec<u64>,
    host_stamp: Vec<u64>,
    comp_epoch: u64,
    /// Epoch-stamped scratch for [`build_component`](Self::build_component):
    /// maps a link / host to its constraint's insertion index in the
    /// component currently being built. Same stamping scheme as
    /// `comp_stamp`, sharing `comp_epoch` (each user bumps the epoch before
    /// use, so the phases can never read each other's marks).
    cnst_scratch_links: Vec<(u64, u32)>,
    cnst_scratch_hosts: Vec<(u64, u32)>,
}

impl Default for Simulation {
    fn default() -> Self {
        Self::new()
    }
}

impl Simulation {
    /// Creates an empty simulation with default configuration.
    pub fn new() -> Self {
        Self::with_config(EngineConfig::default())
    }

    /// Creates an empty simulation with the given configuration.
    pub fn with_config(config: EngineConfig) -> Self {
        Simulation {
            now: SimTime::ZERO,
            links: Vec::new(),
            hosts: Vec::new(),
            actions: Slab::new(),
            heap: BinaryHeap::new(),
            next_seq: 0,
            dirty_links: BTreeSet::new(),
            dirty_hosts: BTreeSet::new(),
            full_dirty: false,
            force_full: false,
            class_folding: config.class_folding,
            config,
            rec: Rec::disabled(),
            last_util: Vec::new(),
            done_attr: HashMap::new(),
            kstats: KernelProfile::default(),
            comp_stamp: Vec::new(),
            link_stamp: Vec::new(),
            host_stamp: Vec::new(),
            comp_epoch: 0,
            cnst_scratch_links: Vec::new(),
            cnst_scratch_hosts: Vec::new(),
        }
    }

    /// Attaches an observability recorder. While enabled, the engine emits
    /// `surf.reshares`, per-link `surf.link.<i>.util` gauge timelines, and
    /// per-link `surf.link.<i>.bytes` counters integrating delivered work,
    /// and every transfer started from now on carries a contention
    /// attribution accumulator (see
    /// [`take_attribution`](Self::take_attribution)).
    pub fn set_recorder(&mut self, rec: Rec) {
        self.rec = rec;
        self.last_util = vec![0.0; self.links.len()];
    }

    /// Takes the contention attribution of a *completed* transfer: its
    /// time-integrated bandwidth share and per-link bottleneck residency.
    /// Returns `None` when the action recorded nothing (recorder disabled
    /// at start time, non-transfer action, or already taken).
    pub fn take_attribution(&mut self, action: ActionId) -> Option<FlowAttribution> {
        self.done_attr.remove(&action.raw())
    }

    /// Snapshot of the always-on solver introspection counters.
    pub fn kernel_profile(&self) -> KernelProfile {
        self.kstats.clone()
    }

    /// Cumulative wall-clock nanoseconds spent in max-min solves
    /// (host-dependent: telemetry consumers strip it before byte-identity
    /// comparisons).
    pub fn solver_wall_ns(&self) -> f64 {
        self.kstats.solve_ns.sum
    }

    /// Fills `out[i]` with link `i`'s instantaneous utilization in
    /// `[0, 1]`: allocated transfer rate over nominal bandwidth, counting
    /// only flows past their latency phase (same accounting as the
    /// recorder's `surf.link.<i>.util` gauges, but allocation-free into a
    /// caller-owned buffer so the maestro can poll it every event).
    pub fn link_utilizations(&self, out: &mut Vec<f64>) {
        out.clear();
        out.resize(self.links.len(), 0.0);
        for (_slot, _gen, a) in self.actions.iter() {
            if let ActionKind::Transfer {
                route,
                latency_left,
                ..
            } = &a.kind
            {
                if *latency_left <= 0.0 {
                    for l in route {
                        out[l.index()] += a.rate;
                    }
                }
            }
        }
        for (li, u) in out.iter_mut().enumerate() {
            *u /= self.links[li].bandwidth;
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Forces every re-share to rebuild the max-min problem from scratch
    /// instead of re-solving only the affected component. Semantically
    /// identical, much slower on large simulations; kept as the reference
    /// implementation for differential tests and the `repro -- kernel`
    /// baseline.
    pub fn set_full_reshare(&mut self, force: bool) {
        self.force_full = force;
    }

    /// Enables or disables uniform-round class folding (on by default):
    /// when every flow of a dirty component carries the same weight and the
    /// same rate-bound bit pattern (an *eager collective round*), flows with
    /// identical constraint sets are folded into one solver variable per
    /// route-equivalence class and the representative's share is replicated
    /// to the rest. The fold is bitwise-exact under that precondition
    /// (DESIGN §16); heterogeneous components always take the unfolded
    /// path. Ablation hook mirroring
    /// [`set_full_reshare`](Self::set_full_reshare).
    pub fn set_class_folding(&mut self, enabled: bool) {
        self.class_folding = enabled;
    }

    /// Adds a link with `bandwidth` bytes/s and `latency` seconds.
    pub fn add_link(&mut self, bandwidth: f64, latency: f64) -> LinkId {
        assert!(bandwidth > 0.0 && bandwidth.is_finite());
        assert!(latency >= 0.0 && latency.is_finite());
        if !self.actions.is_empty() {
            self.full_dirty = true;
        }
        self.links.push(Link {
            bandwidth,
            latency,
            contended: true,
            users: BTreeSet::new(),
        });
        LinkId::from_index(self.links.len() - 1)
    }

    /// Marks a link as contention-free (infinite multiplexing capacity).
    pub fn set_link_contended(&mut self, link: LinkId, contended: bool) {
        if !self.actions.is_empty() {
            // Live flows may gain or lose this constraint: rebuild.
            self.full_dirty = true;
        }
        self.links[link.index()].contended = contended;
    }

    /// Nominal bandwidth of a link in bytes/s.
    pub fn link_bandwidth(&self, link: LinkId) -> f64 {
        self.links[link.index()].bandwidth
    }

    /// Nominal latency of a link in seconds.
    pub fn link_latency(&self, link: LinkId) -> f64 {
        self.links[link.index()].latency
    }

    /// Adds a host computing at `speed` flop/s.
    pub fn add_host(&mut self, speed: f64) -> HostId {
        assert!(speed > 0.0 && speed.is_finite());
        if !self.actions.is_empty() {
            self.full_dirty = true;
        }
        self.hosts.push(Host {
            speed,
            users: BTreeSet::new(),
        });
        HostId::from_index(self.hosts.len() - 1)
    }

    /// Compute speed of a host in flop/s.
    pub fn host_speed(&self, host: HostId) -> f64 {
        self.hosts[host.index()].speed
    }

    /// Sum of nominal latencies along a route.
    pub fn route_latency(&self, route: &[LinkId]) -> f64 {
        route.iter().map(|l| self.links[l.index()].latency).sum()
    }

    /// Minimum nominal bandwidth along a route.
    pub fn route_bandwidth(&self, route: &[LinkId]) -> f64 {
        route
            .iter()
            .map(|l| self.links[l.index()].bandwidth)
            .fold(f64::INFINITY, f64::min)
    }

    /// Starts a network transfer of `bytes` along `route`, using `model` to
    /// derive the latency and the individual rate bound from the message
    /// size. Returns immediately; completion is reported by
    /// [`advance_to_next`](Self::advance_to_next).
    pub fn start_transfer(
        &mut self,
        route: &[LinkId],
        bytes: f64,
        model: &TransferModel,
    ) -> ActionId {
        assert!(bytes >= 0.0 && bytes.is_finite());
        assert!(!route.is_empty(), "transfer route cannot be empty");
        let seg = model.segment_for(bytes);
        let raw_latency = self.route_latency(route);
        let raw_bandwidth = self.route_bandwidth(route);
        let latency = seg.lat_factor * raw_latency;
        let mut bound = seg.bw_factor * raw_bandwidth;
        if let Some(window) = self.config.tcp_window {
            if latency > 0.0 {
                bound = bound.min(window / (2.0 * latency));
            }
        }
        // Keep the first occurrence of each link: crossing a link twice does
        // not double its constraint (the solver deduplicates memberships),
        // and must not double its utilization/byte accounting either.
        let mut dedup: Vec<LinkId> = Vec::with_capacity(route.len());
        for &l in route {
            if !dedup.contains(&l) {
                dedup.push(l);
            }
        }
        self.push_action(ActionKind::Transfer {
            route: dedup,
            latency_left: latency,
            bytes_left: bytes,
            bound,
        })
    }

    /// Starts a CPU execution of `flops` on `host`. Concurrent executions on
    /// the same host share its speed max-min fairly.
    pub fn start_exec(&mut self, host: HostId, flops: f64) -> ActionId {
        assert!(flops >= 0.0 && flops.is_finite());
        self.push_action(ActionKind::Exec {
            host,
            flops_left: flops,
        })
    }

    /// Starts a pure delay of `duration` simulated seconds.
    pub fn start_sleep(&mut self, duration: f64) -> ActionId {
        assert!(duration >= 0.0 && duration.is_finite());
        self.push_action(ActionKind::Sleep {
            ends_at: self.now + duration,
        })
    }

    fn push_action(&mut self, kind: ActionKind) -> ActionId {
        let seq = self.next_seq;
        self.next_seq += 1;
        let attr = match &kind {
            ActionKind::Transfer { route, .. } if self.rec.is_enabled() => {
                Some(Box::new(AttrAcc {
                    bottleneck: None,
                    acc: FlowAttribution::new(route.iter().map(|l| l.index() as u32).collect()),
                }))
            }
            _ => None,
        };
        let action = Action {
            kind,
            rate: 0.0,
            seq,
            pred: SimTime::INFINITY,
            last_update: self.now,
            attr,
        };
        let (slot, gen) = self.actions.insert(action);
        let id = ActionId::new(slot, gen);
        enum Disp {
            At(SimTime),
            Bandwidth,
            ExecOn(usize),
        }
        let disp = match &self.actions.get(slot).expect("just inserted").kind {
            ActionKind::Transfer { latency_left, .. } if *latency_left > 0.0 => {
                Disp::At(self.now + *latency_left)
            }
            ActionKind::Transfer { .. } => Disp::Bandwidth,
            ActionKind::Exec { host, .. } => Disp::ExecOn(host.index()),
            ActionKind::Sleep { ends_at } => Disp::At(*ends_at),
        };
        match disp {
            Disp::At(pred) => self.set_pred(slot, pred),
            Disp::Bandwidth => self.enter_bandwidth(slot),
            Disp::ExecOn(hi) => {
                self.hosts[hi].users.insert((seq, slot));
                self.dirty_hosts.insert(hi as u32);
            }
        }
        id
    }

    /// A transfer's latency phase ended (or was absent): register it on its
    /// contended links, or — if no capacity constraint applies — freeze it
    /// at its model bound directly, exactly as the solver would.
    fn enter_bandwidth(&mut self, slot: u32) {
        let (seq, route, bound) = {
            let a = self.actions.get(slot).expect("live transfer");
            match &a.kind {
                ActionKind::Transfer { route, bound, .. } => (a.seq, route.clone(), *bound),
                _ => unreachable!("enter_bandwidth on a non-transfer"),
            }
        };
        let mut constrained = false;
        if self.config.contention {
            for l in &route {
                let li = l.index();
                if self.links[li].contended {
                    self.links[li].users.insert((seq, slot));
                    self.dirty_links.insert(li as u32);
                    constrained = true;
                }
            }
        }
        if !constrained {
            let now = self.now;
            let pred = {
                let a = self.actions.get_mut(slot).expect("live transfer");
                a.rate = bound;
                a.last_update = now;
                Self::predict(a, now)
            };
            self.set_pred(slot, pred);
        }
    }

    /// Publishes a new predicted completion for `slot` (and a heap entry,
    /// unless the action can make no progress).
    fn set_pred(&mut self, slot: u32, pred: SimTime) {
        let gen = self.actions.generation(slot);
        let a = self.actions.get_mut(slot).expect("live action");
        a.pred = pred;
        if !pred.is_infinite() {
            self.heap.push(Reverse((pred, a.seq, slot, gen)));
        }
    }

    /// The completion instant implied by the action's current rate and
    /// remaining work, measured from `now`. Mirrors the event arithmetic of
    /// the pre-slab kernel exactly.
    fn predict(a: &Action, now: SimTime) -> SimTime {
        match &a.kind {
            ActionKind::Transfer {
                latency_left,
                bytes_left,
                ..
            } => {
                if *latency_left > 0.0 {
                    now + *latency_left
                } else if a.rate > 0.0 {
                    now + *bytes_left / a.rate
                } else if *bytes_left <= 0.0 {
                    now
                } else {
                    SimTime::INFINITY
                }
            }
            ActionKind::Exec { flops_left, .. } => {
                if a.rate > 0.0 {
                    now + *flops_left / a.rate
                } else if *flops_left <= 0.0 {
                    now
                } else {
                    SimTime::INFINITY
                }
            }
            ActionKind::Sleep { ends_at } => *ends_at,
        }
    }

    /// Charges the work done at the current rate since `last_update`.
    fn fold(a: &mut Action, t: SimTime) {
        let dt = t.duration_since(a.last_update);
        let rate = a.rate;
        if dt > 0.0 {
            match &mut a.kind {
                ActionKind::Transfer {
                    latency_left,
                    bytes_left,
                    ..
                } => {
                    if *latency_left > 0.0 {
                        *latency_left -= dt;
                        if *latency_left <= COMPLETION_EPS * dt.max(1.0) {
                            *latency_left = 0.0;
                        }
                    } else {
                        *bytes_left -= rate * dt;
                    }
                }
                ActionKind::Exec { flops_left, .. } => {
                    *flops_left -= rate * dt;
                }
                ActionKind::Sleep { .. } => {}
            }
        }
        a.last_update = t;
    }

    /// `true` once the action has completed. A recycled slot bumps its
    /// generation, so handles of completed actions stay "done" forever.
    pub fn is_done(&self, action: ActionId) -> bool {
        !self.actions.contains(action.slot, action.gen)
    }

    /// Number of actions still running.
    pub fn running_actions(&self) -> usize {
        self.actions.len()
    }

    /// High-water mark of concurrently running actions (the slab's peak).
    pub fn peak_actions(&self) -> usize {
        self.actions.peak()
    }

    /// Current allocated rate of a running action (bytes/s or flop/s), or
    /// `None` once it completed. Rates are up to date only after the next
    /// event query (they are recomputed lazily).
    pub fn action_rate(&self, action: ActionId) -> Option<f64> {
        self.actions
            .get_tagged(action.slot, action.gen)
            .map(|a| a.rate)
    }

    /// Re-solves whatever part of the max-min problem is out of date.
    fn flush_reshare(&mut self) {
        if self.full_dirty
            || (self.force_full && !(self.dirty_links.is_empty() && self.dirty_hosts.is_empty()))
        {
            self.reshare_full();
        } else if !(self.dirty_links.is_empty() && self.dirty_hosts.is_empty()) {
            self.reshare_incremental();
        } else {
            return;
        }
        // Lazy-heap hygiene: orphaned entries accumulate with every
        // re-share; once they dominate, rebuild the heap from the live
        // predictions so memory stays proportional to the active set.
        if self.heap.len() > 64 && self.heap.len() > 2 * self.actions.len() {
            self.rebuild_heap();
        }
    }

    fn rebuild_heap(&mut self) {
        self.kstats.heap_rebuilds += 1;
        self.heap.clear();
        for (slot, gen, a) in self.actions.iter() {
            if !a.pred.is_infinite() {
                self.heap.push(Reverse((a.pred, a.seq, slot, gen)));
            }
        }
    }

    /// Rebuilds constraint user sets and re-solves the whole problem.
    /// Reference implementation: the incremental path must match it bitwise
    /// (see `tests/engine_props.rs`).
    fn reshare_full(&mut self) {
        self.kstats.reshares += 1;
        self.kstats.full_reshares += 1;
        let now = self.now;
        for l in &mut self.links {
            l.users.clear();
        }
        for h in &mut self.hosts {
            h.users.clear();
        }
        let mut order: Vec<UserKey> = self.actions.iter().map(|(s, _g, a)| (a.seq, s)).collect();
        order.sort_unstable();

        let mut problem = MaxMinProblem::new();
        let mut link_cnst: Vec<Option<CnstId>> = vec![None; self.links.len()];
        let mut host_cnst: Vec<Option<CnstId>> = vec![None; self.hosts.len()];
        // Reverse map: constraint insertion index → kernel link (`None`
        // for host constraints), to translate solver bottlenecks.
        let mut cnst_link: Vec<Option<u32>> = Vec::new();
        let mut sharing: Vec<u32> = Vec::new();
        let mut unconstrained: Vec<u32> = Vec::new();
        {
            let actions = &mut self.actions;
            let links = &mut self.links;
            let hosts = &mut self.hosts;
            let contention = self.config.contention;
            for &(seq, slot) in &order {
                let a = actions.get_mut(slot).expect("live action");
                Self::fold(a, now);
                match &a.kind {
                    ActionKind::Transfer {
                        route,
                        latency_left,
                        bound,
                        ..
                    } => {
                        if *latency_left > 0.0 {
                            continue; // not consuming bandwidth yet
                        }
                        let mut cnsts = Vec::with_capacity(route.len());
                        if contention {
                            for l in route {
                                let li = l.index();
                                if !links[li].contended {
                                    continue;
                                }
                                links[li].users.insert((seq, slot));
                                let c = match link_cnst[li] {
                                    Some(c) => c,
                                    None => {
                                        let c = problem.add_constraint(links[li].bandwidth);
                                        debug_assert_eq!(c.index(), cnst_link.len());
                                        cnst_link.push(Some(li as u32));
                                        link_cnst[li] = Some(c);
                                        c
                                    }
                                };
                                cnsts.push(c);
                            }
                        }
                        if cnsts.is_empty() {
                            // No capacity constraint: the solver would freeze
                            // the flow at its own bound; do it directly.
                            unconstrained.push(slot);
                        } else {
                            problem.add_variable(*bound, &cnsts);
                            sharing.push(slot);
                        }
                    }
                    ActionKind::Exec { host, .. } => {
                        let hi = host.index();
                        hosts[hi].users.insert((seq, slot));
                        let c = match host_cnst[hi] {
                            Some(c) => c,
                            None => {
                                let c = problem.add_constraint(hosts[hi].speed);
                                debug_assert_eq!(c.index(), cnst_link.len());
                                cnst_link.push(None);
                                host_cnst[hi] = Some(c);
                                c
                            }
                        };
                        problem.add_variable(f64::INFINITY, &[c]);
                        sharing.push(slot);
                    }
                    ActionKind::Sleep { .. } => {}
                }
            }
        }
        let (rates, bottlenecks) = self.solve_timed(&problem, sharing.len());
        for (k, &slot) in sharing.iter().enumerate() {
            self.set_bottleneck(slot, k, &bottlenecks, &cnst_link);
            self.apply_rate(slot, rates[k]);
        }
        for &slot in &unconstrained {
            let a = self.actions.get_mut(slot).expect("live");
            let bound = match &a.kind {
                ActionKind::Transfer { bound, .. } => *bound,
                _ => unreachable!(),
            };
            if let Some(attr) = a.attr.as_deref_mut() {
                attr.bottleneck = None;
            }
            self.apply_rate(slot, bound);
        }
        self.dirty_links.clear();
        self.dirty_hosts.clear();
        self.full_dirty = false;
        self.record_reshare(true);
    }

    /// Solves `problem`, always timing the solve and recording the coupled
    /// component size (`vars`); per-variable bottlenecks are computed only
    /// while recording (attribution is meaningless — and not free —
    /// otherwise).
    fn solve_timed(
        &mut self,
        problem: &MaxMinProblem,
        vars: usize,
    ) -> (Vec<f64>, Option<Vec<Option<CnstId>>>) {
        let t0 = Instant::now();
        let out = if self.rec.is_enabled() {
            let (rates, bottlenecks) = problem.solve_with_bottlenecks();
            (rates, Some(bottlenecks))
        } else {
            (problem.solve(), None)
        };
        self.kstats.solve_ns.observe(t0.elapsed().as_nanos() as f64);
        self.kstats.component_vars.observe(vars as f64);
        out
    }

    /// Publishes variable `k`'s solved bottleneck into the attribution
    /// accumulator of the action in `slot`, translated to a kernel link.
    fn set_bottleneck(
        &mut self,
        slot: u32,
        k: usize,
        bottlenecks: &Option<Vec<Option<CnstId>>>,
        cnst_link: &[Option<u32>],
    ) {
        let Some(b) = bottlenecks else { return };
        if let Some(attr) = self
            .actions
            .get_mut(slot)
            .expect("live action")
            .attr
            .as_deref_mut()
        {
            attr.bottleneck = b[k].and_then(|c| cnst_link[c.index()]);
        }
    }

    /// Collects the connected components of the constraint↔action graph
    /// reachable from the dirty constraints, one BFS per unvisited seed.
    /// Visited marks are epoch stamps in per-slot/link/host scratch vectors
    /// (O(1) membership, reset by bumping `comp_epoch`), members are
    /// deduplicated by action slot and sorted into birth order per
    /// component, and the component list is sorted by its oldest member —
    /// the *component-birth order* that parallel solving merges results
    /// back in.
    fn collect_dirty_components(&mut self) -> Vec<Vec<UserKey>> {
        self.comp_epoch += 1;
        let epoch = self.comp_epoch;
        if self.comp_stamp.len() < self.actions.capacity_slots() {
            self.comp_stamp.resize(self.actions.capacity_slots(), 0);
        }
        if self.link_stamp.len() < self.links.len() {
            self.link_stamp.resize(self.links.len(), 0);
        }
        if self.host_stamp.len() < self.hosts.len() {
            self.host_stamp.resize(self.hosts.len(), 0);
        }
        let seeds: Vec<(bool, u32)> = self
            .dirty_links
            .iter()
            .map(|&l| (true, l))
            .chain(self.dirty_hosts.iter().map(|&h| (false, h)))
            .collect();
        let mut comps: Vec<Vec<UserKey>> = Vec::new();
        let mut stack: Vec<(bool, u32)> = Vec::new();
        for (seed_is_link, seed) in seeds {
            let mark = if seed_is_link {
                &mut self.link_stamp[seed as usize]
            } else {
                &mut self.host_stamp[seed as usize]
            };
            if *mark == epoch {
                continue; // already swallowed by an earlier component
            }
            *mark = epoch;
            stack.push((seed_is_link, seed));
            let mut affected: Vec<UserKey> = Vec::new();
            while let Some((is_link, ix)) = stack.pop() {
                let users = if is_link {
                    &self.links[ix as usize].users
                } else {
                    &self.hosts[ix as usize].users
                };
                for &key in users {
                    let (_seq, slot) = key;
                    if self.comp_stamp[slot as usize] == epoch {
                        continue;
                    }
                    self.comp_stamp[slot as usize] = epoch;
                    affected.push(key);
                    match &self.actions.get(slot).expect("user of a constraint").kind {
                        ActionKind::Transfer { route, .. } => {
                            for l in route {
                                let li = l.index();
                                if self.links[li].contended && self.link_stamp[li] != epoch {
                                    self.link_stamp[li] = epoch;
                                    stack.push((true, li as u32));
                                }
                            }
                        }
                        ActionKind::Exec { host, .. } => {
                            let hi = host.index();
                            if self.host_stamp[hi] != epoch {
                                self.host_stamp[hi] = epoch;
                                stack.push((false, hi as u32));
                            }
                        }
                        ActionKind::Sleep { .. } => unreachable!("sleeps have no constraints"),
                    }
                }
            }
            if !affected.is_empty() {
                affected.sort_unstable();
                comps.push(affected);
            }
        }
        comps.sort_by_key(|m| m[0]);
        comps
    }

    /// Builds one component's max-min problem. Constraints are added in
    /// first-use order and variables in birth order — the same relative
    /// order a full rebuild would use, so per-component arithmetic is
    /// identical. When the component is *uniform* (every member shares one
    /// bound bit pattern; engine variables all have weight 1) and class
    /// folding is enabled, members with identical constraint sets are folded
    /// into a single class variable with their multiplicity; the uniformity
    /// precondition makes the folded solve bitwise-equal to the expanded
    /// one (see `lmm.rs` module docs and DESIGN §16).
    fn build_component(&mut self, members: &[UserKey]) -> BuiltComponent {
        self.comp_epoch += 1;
        let epoch = self.comp_epoch;
        if self.cnst_scratch_links.len() < self.links.len() {
            self.cnst_scratch_links.resize(self.links.len(), (0, 0));
        }
        if self.cnst_scratch_hosts.len() < self.hosts.len() {
            self.cnst_scratch_hosts.resize(self.hosts.len(), (0, 0));
        }
        let mut problem = MaxMinProblem::new();
        // Component constraints in insertion order; entry `k` is the id with
        // `index() == k`, so the epoch scratch can store bare indices.
        let mut cnst_ids: Vec<CnstId> = Vec::new();
        let mut cnst_link: Vec<Option<u32>> = Vec::new();
        let mut sharing: Vec<u32> = Vec::with_capacity(members.len());
        let mut member_cnsts: Vec<Vec<CnstId>> = Vec::with_capacity(members.len());
        let mut member_bound: Vec<f64> = Vec::with_capacity(members.len());
        let mut uniform_bits: Option<u64> = None;
        let mut uniform = true;
        for &(_seq, slot) in members {
            let (cnsts, bound) = match &self.actions.get(slot).expect("live action").kind {
                ActionKind::Transfer { route, bound, .. } => {
                    let mut cnsts = Vec::with_capacity(route.len());
                    for l in route {
                        let li = l.index();
                        if !self.links[li].contended {
                            continue;
                        }
                        let (stamp, k) = self.cnst_scratch_links[li];
                        let c = if stamp == epoch {
                            cnst_ids[k as usize]
                        } else {
                            let c = problem.add_constraint(self.links[li].bandwidth);
                            debug_assert_eq!(c.index(), cnst_link.len());
                            self.cnst_scratch_links[li] = (epoch, cnst_ids.len() as u32);
                            cnst_ids.push(c);
                            cnst_link.push(Some(li as u32));
                            c
                        };
                        cnsts.push(c);
                    }
                    (cnsts, *bound)
                }
                ActionKind::Exec { host, .. } => {
                    let hi = host.index();
                    let (stamp, k) = self.cnst_scratch_hosts[hi];
                    let c = if stamp == epoch {
                        cnst_ids[k as usize]
                    } else {
                        let c = problem.add_constraint(self.hosts[hi].speed);
                        debug_assert_eq!(c.index(), cnst_link.len());
                        self.cnst_scratch_hosts[hi] = (epoch, cnst_ids.len() as u32);
                        cnst_ids.push(c);
                        cnst_link.push(None);
                        c
                    };
                    (vec![c], f64::INFINITY)
                }
                ActionKind::Sleep { .. } => unreachable!(),
            };
            uniform &= *uniform_bits.get_or_insert(bound.to_bits()) == bound.to_bits();
            member_cnsts.push(cnsts);
            member_bound.push(bound);
            sharing.push(slot);
        }

        let mut var_of: Vec<u32> = Vec::with_capacity(members.len());
        let mut folded = 0u64;
        if self.class_folding && uniform && members.len() >= 2 {
            // One solver variable per route-equivalence class, in order of
            // each class's oldest member. Keys borrow the members' constraint
            // lists as-is (no per-member allocation or sort): constraints are
            // numbered in first-use order over deduplicated stored routes, so
            // equal routes produce equal lists. Two orderings of the same
            // constraint set would land in separate classes, which costs a
            // fold but never exactness — folding is exact for *any* partition
            // of same-bound unit-weight members into identical-set classes.
            let mut class_of: HashMap<&[CnstId], u32> = HashMap::new();
            let mut class_rep: Vec<u32> = Vec::new();
            let mut class_count: Vec<u32> = Vec::new();
            for (i, cnsts) in member_cnsts.iter().enumerate() {
                match class_of.entry(cnsts.as_slice()) {
                    std::collections::hash_map::Entry::Occupied(e) => {
                        let k = *e.get();
                        class_count[k as usize] += 1;
                        var_of.push(k);
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        let k = class_rep.len() as u32;
                        e.insert(k);
                        class_rep.push(i as u32);
                        class_count.push(1);
                        var_of.push(k);
                    }
                }
            }
            let bound = member_bound[0];
            for (&rep, &count) in class_rep.iter().zip(&class_count) {
                problem.add_variable_class(bound, count, &member_cnsts[rep as usize]);
            }
            folded = (member_cnsts.len() - class_rep.len()) as u64;
        } else {
            for (i, cnsts) in member_cnsts.iter().enumerate() {
                problem.add_variable(member_bound[i], cnsts);
                var_of.push(i as u32);
            }
        }
        BuiltComponent {
            problem,
            cnst_link,
            sharing,
            var_of,
            folded,
        }
    }

    /// Solves one built component; pure, so components can be dispatched to
    /// worker threads. Wall-clock timing is returned for the (wallclock-
    /// stripped) `solve_ns` histogram; rates and bottlenecks are fully
    /// deterministic, so thread scheduling cannot perturb results.
    fn solve_component(problem: &MaxMinProblem, record: bool) -> SolvedComponent {
        let t0 = Instant::now();
        let (rates, bottlenecks) = if record {
            let (r, b) = problem.solve_with_bottlenecks();
            (r, Some(b))
        } else {
            (problem.solve(), None)
        };
        SolvedComponent {
            rates,
            bottlenecks,
            ns: t0.elapsed().as_nanos() as f64,
        }
    }

    /// Re-solves only the connected components of the constraint↔action
    /// graph reachable from dirty constraints. Components are independent
    /// sub-problems (their constraint λ arithmetic never interacts), so they
    /// are solved separately — on worker threads when there are several and
    /// enough coupled variables to amortize the spawns — and the results are
    /// merged back in component-birth order, keeping every counter and rate
    /// bitwise-deterministic regardless of the host's core count.
    fn reshare_incremental(&mut self) {
        let now = self.now;
        let comps = self.collect_dirty_components();
        self.kstats.reshares += 1;
        self.kstats
            .cascade
            .observe(comps.iter().map(|m| m.len()).sum::<usize>() as f64);

        let builts: Vec<BuiltComponent> = comps.iter().map(|m| self.build_component(m)).collect();

        let record = self.rec.is_enabled();
        let total_vars: usize = builts.iter().map(|b| b.problem.num_variables()).sum();
        // `parallel_components` counts components in parallel-*ready*
        // batches — a property of the simulation, not of the host — so the
        // counter is identical on a 1-core laptop and a 64-core CI runner.
        // Whether threads are actually spawned additionally depends on the
        // cores available right now.
        let parallel_ready = builts.len() >= 2 && total_vars >= PARALLEL_MIN_VARS;
        if parallel_ready {
            self.kstats.parallel_components += builts.len() as u64;
        }
        let workers = if parallel_ready {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(builts.len())
        } else {
            1
        };
        let solved: Vec<SolvedComponent> = if workers > 1 {
            let mut out: Vec<Option<SolvedComponent>> = Vec::new();
            out.resize_with(builts.len(), || None);
            let chunk = builts.len().div_ceil(workers);
            std::thread::scope(|s| {
                for (bs, os) in builts.chunks(chunk).zip(out.chunks_mut(chunk)) {
                    s.spawn(move || {
                        for (b, o) in bs.iter().zip(os.iter_mut()) {
                            *o = Some(Self::solve_component(&b.problem, record));
                        }
                    });
                }
            });
            out.into_iter()
                .map(|o| o.expect("every component solved"))
                .collect()
        } else {
            builts
                .iter()
                .map(|b| Self::solve_component(&b.problem, record))
                .collect()
        };

        for (b, s) in builts.iter().zip(&solved) {
            self.kstats.solve_ns.observe(s.ns);
            self.kstats
                .component_vars
                .observe(b.problem.num_variables() as f64);
            self.kstats.classes_folded += b.folded;
            for (i, &slot) in b.sharing.iter().enumerate() {
                let k = b.var_of[i] as usize;
                let a = self.actions.get_mut(slot).expect("live action");
                Self::fold(a, now);
                self.set_bottleneck(slot, k, &s.bottlenecks, &b.cnst_link);
                self.apply_rate(slot, s.rates[k]);
            }
        }
        self.dirty_links.clear();
        self.dirty_hosts.clear();
        self.record_reshare(false);
    }

    /// Installs a freshly solved rate and publishes the new prediction.
    /// Expects remaining work to already be folded up to `self.now`.
    fn apply_rate(&mut self, slot: u32, rate: f64) {
        let now = self.now;
        let pred = {
            let a = self.actions.get_mut(slot).expect("live action");
            a.rate = rate;
            Self::predict(a, now)
        };
        self.set_pred(slot, pred);
    }

    /// Emits the reshare counters and per-link utilization gauges. Called
    /// only when recording, right after rates were recomputed. Utilization
    /// sums each flow **once per distinct link** of its route (routes are
    /// stored deduplicated), so a loopback route can never report > 100%.
    fn record_reshare(&mut self, full: bool) {
        if !self.rec.is_enabled() {
            return;
        }
        if self.last_util.len() < self.links.len() {
            self.last_util.resize(self.links.len(), 0.0);
        }
        let mut used = vec![0.0; self.links.len()];
        for (_slot, _gen, a) in self.actions.iter() {
            if let ActionKind::Transfer {
                route,
                latency_left,
                ..
            } = &a.kind
            {
                if *latency_left <= 0.0 {
                    for l in route {
                        used[l.index()] += a.rate;
                    }
                }
            }
        }
        let now = self.now.as_secs();
        let links = &self.links;
        let last_util = &mut self.last_util;
        self.rec.with(|r| {
            use smpi_obs::Recorder;
            r.counter_add("surf.reshares", 1);
            if full {
                r.counter_add("surf.reshares.full", 1);
            }
            for (li, &rate) in used.iter().enumerate() {
                let util = rate / links[li].bandwidth;
                if (util - last_util[li]).abs() > 1e-12 {
                    r.gauge_set(&format!("surf.link.{li}.util"), now, util);
                    last_util[li] = util;
                }
            }
        });
    }

    /// Integrates delivered bytes per link over the step `[now, now + dt]`,
    /// for the observability byte counters, and accumulates the per-flow
    /// attribution: the same byte delta into the flow's share integral
    /// (identical arithmetic, so per-link conservation is exact) and `dt`
    /// of residency against the flow's current bottleneck link (or the
    /// unattributed bucket when its own bound is the limit). Each flow is
    /// charged once per distinct route link.
    fn integrate_bytes(&mut self, dt: f64) {
        let now = self.now;
        let actions = &mut self.actions;
        self.rec.with(|r| {
            use smpi_obs::Recorder;
            for (_slot, _gen, a) in actions.iter_mut() {
                let rate = a.rate;
                let last_update = a.last_update;
                if let ActionKind::Transfer {
                    route,
                    latency_left,
                    bytes_left,
                    ..
                } = &a.kind
                {
                    if *latency_left > 0.0 {
                        continue; // latency phase: no bandwidth, no residency
                    }
                    let delta = if rate > 0.0 {
                        // Remaining bytes as of `now` (work since the last
                        // fold has not been charged to `bytes_left` yet).
                        let eff = (*bytes_left - rate * now.duration_since(last_update)).max(0.0);
                        let delta = (rate * dt).min(eff);
                        for l in route {
                            r.fcounter_add(&format!("surf.link.{}.bytes", l.index()), delta);
                        }
                        delta
                    } else {
                        0.0
                    };
                    if let Some(attr) = a.attr.as_deref_mut() {
                        attr.acc.share_bytes += delta;
                        match attr.bottleneck {
                            Some(li) => attr.acc.add_bottleneck(li, dt),
                            None => attr.acc.unattributed_secs += dt,
                        }
                    }
                }
            }
        });
    }

    /// `true` when the heap entry still describes the live action in `slot`.
    fn entry_valid(&self, t: SimTime, slot: u32, gen: u32) -> bool {
        self.actions
            .get_tagged(slot, gen)
            .is_some_and(|a| a.pred == t)
    }

    /// Latest prediction that should be examined together with an event at
    /// `target`: the completion-tolerance rule expressed in time units.
    fn candidate_horizon(&self, slot: u32, target: SimTime) -> SimTime {
        let a = self.actions.get(slot).expect("live action");
        let slack = match &a.kind {
            ActionKind::Sleep { .. } => 0.0,
            ActionKind::Transfer { latency_left, .. } if *latency_left > 0.0 => {
                COMPLETION_EPS * target.as_secs().max(1.0)
            }
            _ => {
                if a.rate > 0.0 {
                    COMPLETION_EPS + 1e-12 / a.rate
                } else {
                    COMPLETION_EPS
                }
            }
        };
        target + slack
    }

    /// The simulated time of the next action completion, or `None` if no
    /// action is running. Returns `SimTime::INFINITY` when actions are
    /// running but none can progress (the stall condition).
    pub fn next_event_time(&mut self) -> Option<SimTime> {
        self.flush_reshare();
        loop {
            match self.heap.peek() {
                None => {
                    return if self.actions.is_empty() {
                        None
                    } else {
                        Some(SimTime::INFINITY)
                    };
                }
                Some(&Reverse((t, _seq, slot, gen))) => {
                    if self.entry_valid(t, slot, gen) {
                        return Some(t);
                    }
                    self.kstats.heap_orphans += 1;
                    self.heap.pop();
                }
            }
        }
    }

    /// Removes a completed action from the slab and from every constraint
    /// user set it occupied, marking those constraints dirty.
    fn complete(&mut self, slot: u32) {
        // Generation *before* removal: it identifies the handle callers
        // hold (removal bumps it for the next tenant).
        let gen = self.actions.generation(slot);
        let a = self.actions.remove(slot);
        if let Some(attr) = a.attr {
            self.done_attr
                .insert(ActionId::new(slot, gen).raw(), attr.acc);
        }
        let key = (a.seq, slot);
        match &a.kind {
            ActionKind::Transfer {
                route,
                latency_left,
                ..
            } => {
                if *latency_left <= 0.0 {
                    for l in route {
                        let li = l.index();
                        if self.links[li].users.remove(&key) {
                            self.dirty_links.insert(li as u32);
                        }
                    }
                }
            }
            ActionKind::Exec { host, .. } => {
                let hi = host.index();
                if self.hosts[hi].users.remove(&key) {
                    self.dirty_hosts.insert(hi as u32);
                }
            }
            ActionKind::Sleep { .. } => {}
        }
    }

    fn stall_error(&self) -> StallError {
        let mut stuck: Vec<(u64, StuckAction)> = self
            .actions
            .iter()
            .map(|(slot, gen, a)| {
                let (kind, remaining, route) = match &a.kind {
                    ActionKind::Transfer {
                        route,
                        latency_left,
                        bytes_left,
                        ..
                    } => {
                        let rem = if *latency_left > 0.0 {
                            *latency_left
                        } else {
                            *bytes_left
                        };
                        ("transfer", rem, route.clone())
                    }
                    ActionKind::Exec { flops_left, .. } => ("exec", *flops_left, Vec::new()),
                    ActionKind::Sleep { .. } => ("sleep", 0.0, Vec::new()),
                };
                (
                    a.seq,
                    StuckAction {
                        id: ActionId::new(slot, gen),
                        kind,
                        remaining,
                        rate: a.rate,
                        route,
                    },
                )
            })
            .collect();
        stuck.sort_by_key(|(seq, _)| *seq);
        StallError {
            at: self.now,
            stuck: stuck.into_iter().map(|(_, s)| s).collect(),
        }
    }

    /// Advances the clock to the next completion instant and returns the
    /// actions that completed there (possibly several). Returns `Ok(None)`
    /// when no action is running (the simulation is quiescent), and
    /// `Err(StallError)` when actions are running but none of them can ever
    /// finish (e.g. a zero-rate flow).
    ///
    /// Latency-phase expirations are handled internally: if the next event is
    /// a transfer entering its transfer phase, rates are recomputed and the
    /// search continues, so callers only ever observe *completions*.
    pub fn try_advance_to_next(&mut self) -> Result<Option<(SimTime, Vec<ActionId>)>, StallError> {
        loop {
            self.flush_reshare();
            // Next valid event (drop orphaned heap entries on the way).
            let target = loop {
                let Some(&Reverse((t, _seq, slot, gen))) = self.heap.peek() else {
                    if self.actions.is_empty() {
                        return Ok(None);
                    }
                    return Err(self.stall_error());
                };
                if self.entry_valid(t, slot, gen) {
                    break t;
                }
                self.kstats.heap_orphans += 1;
                self.heap.pop();
            };

            let dt = target.duration_since(self.now);
            if dt > 0.0 && self.rec.is_enabled() {
                self.integrate_bytes(dt);
            }
            self.now = target;

            // Drain every event whose prediction falls within the completion
            // tolerance of `target`, so simultaneous completions are
            // observed in one batch as the pre-slab kernel did.
            let mut candidates: Vec<(u64, u32, u32)> = Vec::new();
            while let Some(&Reverse((t, seq, slot, gen))) = self.heap.peek() {
                if !self.entry_valid(t, slot, gen) {
                    self.kstats.heap_orphans += 1;
                    self.heap.pop();
                    continue;
                }
                if t > self.candidate_horizon(slot, target) {
                    break;
                }
                self.heap.pop();
                candidates.push((seq, slot, gen));
            }
            candidates.sort_unstable(); // completions in birth order
            candidates.dedup();

            let mut done: Vec<ActionId> = Vec::new();
            for &(_seq, slot, gen) in &candidates {
                // Identical predictions can be published more than once
                // (e.g. a re-share that did not change the rate); a later
                // duplicate of an action completed this batch is stale.
                if !self.actions.contains(slot, gen) {
                    continue;
                }
                let verdict = {
                    let a = self.actions.get_mut(slot).expect("live candidate");
                    let was_latency = matches!(
                        &a.kind,
                        ActionKind::Transfer { latency_left, .. } if *latency_left > 0.0
                    );
                    Self::fold(a, target);
                    // One nanosecond of work at the current rate absorbs the
                    // floating-point residue of the lazy folding.
                    let tol = a.rate * COMPLETION_EPS + 1e-12;
                    match &a.kind {
                        ActionKind::Transfer {
                            latency_left,
                            bytes_left,
                            ..
                        } => {
                            if *latency_left > 0.0 {
                                Verdict::Repush
                            } else if *bytes_left <= tol {
                                Verdict::Done
                            } else if was_latency {
                                Verdict::EnterBandwidth
                            } else {
                                Verdict::Repush
                            }
                        }
                        ActionKind::Exec { flops_left, .. } => {
                            if *flops_left <= tol {
                                Verdict::Done
                            } else {
                                Verdict::Repush
                            }
                        }
                        ActionKind::Sleep { ends_at } => {
                            if *ends_at <= target {
                                Verdict::Done
                            } else {
                                Verdict::Repush
                            }
                        }
                    }
                };
                match verdict {
                    Verdict::Done => {
                        self.complete(slot);
                        done.push(ActionId::new(slot, gen));
                    }
                    Verdict::EnterBandwidth => self.enter_bandwidth(slot),
                    Verdict::Repush => {
                        let pred = {
                            let a = self.actions.get(slot).expect("live candidate");
                            Self::predict(a, target)
                        };
                        self.set_pred(slot, pred);
                    }
                }
            }
            if !done.is_empty() {
                // Every completion past the first in this batch would have
                // cost its own reshare/solve in a one-event-per-step kernel.
                self.kstats.batched_completions += (done.len() - 1) as u64;
                return Ok(Some((self.now, done)));
            }
            // Otherwise only latency phases ended (or predictions were a
            // hair early): rates are refreshed at the top of the loop.
        }
    }

    /// Panicking convenience wrapper around
    /// [`try_advance_to_next`](Self::try_advance_to_next); most callers
    /// treat a stall as a fatal modelling error.
    pub fn advance_to_next(&mut self) -> Option<(SimTime, Vec<ActionId>)> {
        match self.try_advance_to_next() {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TransferModel;

    fn approx(a: f64, b: f64) {
        assert!(
            (a - b).abs() <= 1e-9 * (1.0 + b.abs()),
            "expected ~{b}, got {a}"
        );
    }

    #[test]
    fn single_transfer_latency_plus_size_over_bw() {
        let mut sim = Simulation::new();
        let l = sim.add_link(100.0, 0.5);
        let a = sim.start_transfer(&[l], 1000.0, &TransferModel::ideal());
        let (t, done) = sim.advance_to_next().unwrap();
        assert_eq!(done, vec![a]);
        approx(t.as_secs(), 0.5 + 10.0);
        assert!(sim.is_done(a));
        assert!(sim.advance_to_next().is_none());
    }

    #[test]
    fn zero_byte_transfer_takes_latency_only() {
        let mut sim = Simulation::new();
        let l = sim.add_link(100.0, 0.25);
        sim.start_transfer(&[l], 0.0, &TransferModel::ideal());
        let (t, done) = sim.advance_to_next().unwrap();
        assert_eq!(done.len(), 1);
        approx(t.as_secs(), 0.25);
    }

    #[test]
    fn two_concurrent_transfers_share_the_link() {
        let mut sim = Simulation::new();
        let l = sim.add_link(100.0, 0.0);
        let a = sim.start_transfer(&[l], 1000.0, &TransferModel::ideal());
        let b = sim.start_transfer(&[l], 1000.0, &TransferModel::ideal());
        let (t, done) = sim.advance_to_next().unwrap();
        // Both share 50 B/s, both finish at t=20 simultaneously.
        approx(t.as_secs(), 20.0);
        assert!(done.contains(&a) && done.contains(&b));
    }

    #[test]
    fn short_flow_finishes_then_long_flow_speeds_up() {
        let mut sim = Simulation::new();
        let l = sim.add_link(100.0, 0.0);
        let short = sim.start_transfer(&[l], 500.0, &TransferModel::ideal());
        let long = sim.start_transfer(&[l], 1500.0, &TransferModel::ideal());
        let (t1, d1) = sim.advance_to_next().unwrap();
        assert_eq!(d1, vec![short]);
        approx(t1.as_secs(), 10.0); // 500 B at 50 B/s
        let (t2, d2) = sim.advance_to_next().unwrap();
        assert_eq!(d2, vec![long]);
        // Long had 1000 B left, now alone at 100 B/s: +10 s.
        approx(t2.as_secs(), 20.0);
    }

    #[test]
    fn no_contention_config_ignores_sharing() {
        let mut sim = Simulation::with_config(EngineConfig {
            contention: false,
            tcp_window: None,
            class_folding: true,
        });
        let l = sim.add_link(100.0, 0.0);
        sim.start_transfer(&[l], 1000.0, &TransferModel::ideal());
        sim.start_transfer(&[l], 1000.0, &TransferModel::ideal());
        let (t, done) = sim.advance_to_next().unwrap();
        // Both get the full bandwidth, finishing together at t=10.
        approx(t.as_secs(), 10.0);
        assert_eq!(done.len(), 2);
    }

    #[test]
    fn per_link_contention_flag() {
        let mut sim = Simulation::new();
        let l = sim.add_link(100.0, 0.0);
        sim.set_link_contended(l, false);
        sim.start_transfer(&[l], 1000.0, &TransferModel::ideal());
        sim.start_transfer(&[l], 1000.0, &TransferModel::ideal());
        let (t, _) = sim.advance_to_next().unwrap();
        approx(t.as_secs(), 10.0);
    }

    #[test]
    fn piecewise_model_selects_segment_by_size() {
        let model = TransferModel::new(vec![
            crate::model::Segment {
                upper: 100.0,
                lat_factor: 0.0,
                bw_factor: 2.0,
            },
            crate::model::Segment {
                upper: f64::INFINITY,
                lat_factor: 0.0,
                bw_factor: 1.0,
            },
        ]);
        let mut sim = Simulation::new();
        let l = sim.add_link(100.0, 0.0);
        // 50 bytes in the fast segment: bound 200 B/s but link caps at 100.
        sim.start_transfer(&[l], 50.0, &model);
        let (t, _) = sim.advance_to_next().unwrap();
        approx(t.as_secs(), 0.5);
    }

    #[test]
    fn bound_caps_rate_below_link_capacity() {
        let model = TransferModel::affine(1.0, 0.5);
        let mut sim = Simulation::new();
        let l = sim.add_link(100.0, 0.0);
        sim.start_transfer(&[l], 100.0, &model);
        let (t, _) = sim.advance_to_next().unwrap();
        approx(t.as_secs(), 2.0); // rate bound = 50 B/s
    }

    #[test]
    fn exec_on_host_takes_flops_over_speed() {
        let mut sim = Simulation::new();
        let h = sim.add_host(1e9);
        let a = sim.start_exec(h, 2e9);
        let (t, done) = sim.advance_to_next().unwrap();
        assert_eq!(done, vec![a]);
        approx(t.as_secs(), 2.0);
    }

    #[test]
    fn concurrent_execs_share_host_speed() {
        let mut sim = Simulation::new();
        let h = sim.add_host(100.0);
        sim.start_exec(h, 100.0);
        sim.start_exec(h, 100.0);
        let (t, done) = sim.advance_to_next().unwrap();
        approx(t.as_secs(), 2.0);
        assert_eq!(done.len(), 2);
    }

    #[test]
    fn sleep_completes_at_deadline() {
        let mut sim = Simulation::new();
        let a = sim.start_sleep(1.5);
        let b = sim.start_sleep(0.5);
        let (t1, d1) = sim.advance_to_next().unwrap();
        approx(t1.as_secs(), 0.5);
        assert_eq!(d1, vec![b]);
        let (t2, d2) = sim.advance_to_next().unwrap();
        approx(t2.as_secs(), 1.5);
        assert_eq!(d2, vec![a]);
    }

    #[test]
    fn multi_hop_route_sums_latencies_and_takes_min_bandwidth() {
        let mut sim = Simulation::new();
        let l1 = sim.add_link(100.0, 0.1);
        let l2 = sim.add_link(50.0, 0.2);
        let l3 = sim.add_link(200.0, 0.3);
        sim.start_transfer(&[l1, l2, l3], 100.0, &TransferModel::ideal());
        let (t, _) = sim.advance_to_next().unwrap();
        approx(t.as_secs(), 0.6 + 2.0);
    }

    #[test]
    fn tcp_window_caps_rate_on_high_latency_routes() {
        let mut sim = Simulation::with_config(EngineConfig {
            contention: true,
            tcp_window: Some(10.0),
            class_folding: true,
        });
        let l = sim.add_link(1000.0, 0.5);
        // cap = 10 / (2*0.5) = 10 B/s, well below the 1000 B/s link.
        sim.start_transfer(&[l], 100.0, &TransferModel::ideal());
        let (t, _) = sim.advance_to_next().unwrap();
        approx(t.as_secs(), 0.5 + 10.0);
    }

    #[test]
    fn transfers_in_latency_phase_do_not_consume_bandwidth() {
        let mut sim = Simulation::new();
        let l = sim.add_link(100.0, 0.0);
        let lat = sim.add_link(100.0, 10.0);
        // One flow on l, another crossing both but stuck in a 10 s latency.
        let fast = sim.start_transfer(&[l], 1000.0, &TransferModel::ideal());
        let slow = sim.start_transfer(&[lat, l], 1.0, &TransferModel::ideal());
        let (t1, d1) = sim.advance_to_next().unwrap();
        // `fast` gets the full 100 B/s while `slow` sits in latency.
        assert_eq!(d1, vec![fast]);
        approx(t1.as_secs(), 10.0);
        let (t2, d2) = sim.advance_to_next().unwrap();
        assert_eq!(d2, vec![slow]);
        approx(t2.as_secs(), 10.0 + 0.01);
    }

    #[test]
    fn running_actions_counter() {
        let mut sim = Simulation::new();
        let h = sim.add_host(1.0);
        sim.start_exec(h, 1.0);
        sim.start_exec(h, 2.0);
        assert_eq!(sim.running_actions(), 2);
        sim.advance_to_next().unwrap();
        assert_eq!(sim.running_actions(), 1);
    }

    #[test]
    fn slots_are_recycled_but_handles_stay_done() {
        let mut sim = Simulation::new();
        let h = sim.add_host(100.0);
        let a = sim.start_exec(h, 100.0);
        sim.advance_to_next().unwrap();
        assert!(sim.is_done(a));
        // The next action reuses the slot with a new generation: the old
        // handle must stay "done" and never alias the new action.
        let b = sim.start_exec(h, 100.0);
        assert_eq!(b.slot(), a.slot(), "slot should be recycled");
        assert_ne!(b.raw(), a.raw());
        assert!(sim.is_done(a));
        assert!(!sim.is_done(b));
        assert_eq!(sim.peak_actions(), 1, "never more than one live action");
        sim.advance_to_next().unwrap();
        assert!(sim.is_done(b));
    }

    #[test]
    fn loopback_route_is_not_double_counted() {
        // A route that traverses the same link twice (loopback / hairpin
        // routing) must count the flow once per distinct link, both in the
        // fair-sharing weights and in the observability accounting: the
        // utilization gauge can never exceed 1 and delivered bytes are
        // integrated once.
        let rec = Rec::enabled();
        let mut sim = Simulation::new();
        sim.set_recorder(rec.clone());
        let l = sim.add_link(100.0, 0.0);
        sim.start_transfer(&[l, l], 1000.0, &TransferModel::ideal());
        let (t, done) = sim.advance_to_next().unwrap();
        assert_eq!(done.len(), 1);
        approx(t.as_secs(), 10.0);
        let report = rec.snapshot().expect("recorder enabled");
        let util = report.gauge("surf.link.0.util").expect("util gauge");
        assert!(
            util.iter().all(|&(_, u)| u <= 1.0 + 1e-12),
            "link util exceeded 1: {util:?}"
        );
        assert!(
            util.iter().any(|&(_, u)| (u - 1.0).abs() <= 1e-12),
            "saturating flow should reach util 1: {util:?}"
        );
        approx(report.fcounter("surf.link.0.bytes"), 1000.0);
    }

    #[test]
    fn attribution_tracks_bottleneck_residency_and_share_integrals() {
        let rec = Rec::enabled();
        let mut sim = Simulation::new();
        sim.set_recorder(rec.clone());
        let wide = sim.add_link(100.0, 0.0);
        let narrow = sim.add_link(40.0, 0.0);
        // `long` saturates the narrow link (its bottleneck); `short` then
        // gets the wide link's residual 60 B/s, bottlenecked by wide.
        let long = sim.start_transfer(&[wide, narrow], 400.0, &TransferModel::ideal());
        let short = sim.start_transfer(&[wide], 500.0, &TransferModel::ideal());
        let (t1, d1) = sim.advance_to_next().unwrap();
        assert_eq!(d1, vec![short]);
        approx(t1.as_secs(), 500.0 / 60.0);
        let a_short = sim.take_attribution(short).expect("short attribution");
        approx(a_short.share_bytes, 500.0);
        assert_eq!(a_short.route, vec![wide.index() as u32]);
        assert_eq!(a_short.dominant_bottleneck(), Some(wide.index() as u32));
        approx(a_short.bottlenecked_secs(), t1.as_secs());
        approx(a_short.unattributed_secs, 0.0);
        let (t2, d2) = sim.advance_to_next().unwrap();
        assert_eq!(d2, vec![long]);
        approx(t2.as_secs(), 10.0);
        let a_long = sim.take_attribution(long).expect("long attribution");
        approx(a_long.share_bytes, 400.0);
        assert_eq!(a_long.dominant_bottleneck(), Some(narrow.index() as u32));
        approx(a_long.bottlenecked_secs(), 10.0);
        // Conservation: per link, the flow share integrals sum to the
        // link's own byte integral.
        let report = rec.snapshot().unwrap();
        approx(report.fcounter("surf.link.0.bytes"), 900.0);
        approx(report.fcounter("surf.link.1.bytes"), 400.0);
        assert!(
            sim.take_attribution(short).is_none(),
            "attribution is taken exactly once"
        );
    }

    #[test]
    fn bound_limited_flow_time_is_unattributed() {
        let rec = Rec::enabled();
        let mut sim = Simulation::new();
        sim.set_recorder(rec);
        let l = sim.add_link(100.0, 0.0);
        // Model bound 50 B/s < link capacity: no link saturates, the
        // flow's own bound is the limit.
        let a = sim.start_transfer(&[l], 100.0, &TransferModel::affine(1.0, 0.5));
        let (t, _) = sim.advance_to_next().unwrap();
        approx(t.as_secs(), 2.0);
        let attr = sim.take_attribution(a).expect("attribution");
        approx(attr.share_bytes, 100.0);
        assert_eq!(attr.dominant_bottleneck(), None);
        approx(attr.unattributed_secs, 2.0);
        approx(attr.bottlenecked_secs(), 0.0);
    }

    #[test]
    fn kernel_profile_is_collected_even_without_a_recorder() {
        let mut sim = Simulation::new();
        let l = sim.add_link(100.0, 0.0);
        let a = sim.start_transfer(&[l], 1000.0, &TransferModel::ideal());
        sim.start_transfer(&[l], 500.0, &TransferModel::ideal());
        while sim.advance_to_next().is_some() {}
        let k = sim.kernel_profile();
        assert!(k.reshares >= 2, "reshares: {}", k.reshares);
        // One timed solve per dirty *component*; a reshare whose dirty
        // constraints have no remaining users solves nothing.
        assert_eq!(
            k.solve_ns.count, k.component_vars.count,
            "one timed solve per component"
        );
        assert!(k.solve_ns.count >= 1, "solves: {}", k.solve_ns.count);
        // The two flows couple into one component, but they share a bound
        // and a route so class folding solves a single representative.
        assert_eq!(k.component_vars.max, 1.0, "folded to one class variable");
        assert!(k.classes_folded >= 1, "folds: {}", k.classes_folded);
        assert!(
            sim.take_attribution(a).is_none(),
            "no recorder, no attribution"
        );
    }

    #[test]
    fn class_folding_off_solves_every_member() {
        let mut sim = Simulation::new();
        sim.set_class_folding(false);
        let l = sim.add_link(100.0, 0.0);
        sim.start_transfer(&[l], 1000.0, &TransferModel::ideal());
        sim.start_transfer(&[l], 500.0, &TransferModel::ideal());
        while sim.advance_to_next().is_some() {}
        let k = sim.kernel_profile();
        assert_eq!(k.classes_folded, 0, "ablated");
        assert_eq!(k.component_vars.max, 2.0, "one variable per flow");
    }

    #[test]
    fn stall_is_reported_as_a_structured_error() {
        // A zero TCP window caps the flow at 0 bytes/s: it can never
        // progress once its latency elapsed.
        let mut sim = Simulation::with_config(EngineConfig {
            contention: true,
            tcp_window: Some(0.0),
            class_folding: true,
        });
        let l = sim.add_link(100.0, 0.5);
        let a = sim.start_transfer(&[l], 1000.0, &TransferModel::ideal());
        let err = sim.try_advance_to_next().unwrap_err();
        assert_eq!(err.stuck.len(), 1);
        let s = &err.stuck[0];
        assert_eq!(s.id, a);
        assert_eq!(s.kind, "transfer");
        approx(s.remaining, 1000.0);
        assert_eq!(s.rate, 0.0);
        assert_eq!(s.route, vec![l]);
        let msg = err.to_string();
        assert!(msg.contains("stalled"), "got: {msg}");
        assert!(msg.contains("transfer"), "got: {msg}");
    }

    #[test]
    #[should_panic(expected = "stalled")]
    fn advance_to_next_panics_on_stall() {
        let mut sim = Simulation::with_config(EngineConfig {
            contention: true,
            tcp_window: Some(0.0),
            class_folding: true,
        });
        let l = sim.add_link(100.0, 0.5);
        sim.start_transfer(&[l], 1000.0, &TransferModel::ideal());
        let _ = sim.advance_to_next();
    }

    #[test]
    fn forced_full_reshare_matches_incremental() {
        let run = |force: bool| -> Vec<f64> {
            let mut sim = Simulation::new();
            sim.set_full_reshare(force);
            let l1 = sim.add_link(100.0, 0.01);
            let l2 = sim.add_link(50.0, 0.02);
            let h = sim.add_host(1000.0);
            sim.start_transfer(&[l1], 1000.0, &TransferModel::ideal());
            sim.start_transfer(&[l1, l2], 500.0, &TransferModel::ideal());
            sim.start_exec(h, 2000.0);
            sim.start_sleep(0.5);
            let mut times = Vec::new();
            while let Some((t, done)) = sim.advance_to_next() {
                for _ in done {
                    times.push(t.as_secs());
                }
            }
            times
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn disjoint_components_keep_rates_across_unrelated_events() {
        let mut sim = Simulation::new();
        let l1 = sim.add_link(100.0, 0.0);
        let l2 = sim.add_link(100.0, 0.0);
        let a = sim.start_transfer(&[l1], 400.0, &TransferModel::ideal());
        let b = sim.start_transfer(&[l1], 400.0, &TransferModel::ideal());
        let c = sim.start_transfer(&[l2], 1000.0, &TransferModel::ideal());
        // a and b share l1 at 50 each; c is alone on l2 at 100.
        let (t1, d1) = sim.advance_to_next().unwrap();
        approx(t1.as_secs(), 8.0);
        assert!(d1.contains(&a) && d1.contains(&b));
        assert_eq!(sim.action_rate(c), Some(100.0));
        let (t2, d2) = sim.advance_to_next().unwrap();
        assert_eq!(d2, vec![c]);
        approx(t2.as_secs(), 10.0);
    }
}
