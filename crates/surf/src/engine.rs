//! The SURF simulation engine: resources, actions, and the sequential clock.
//!
//! This is the "simulation kernel" of Fig. 1 in the paper. It owns
//!
//! * **links** (bandwidth + latency) and **hosts** (compute speed),
//! * **actions**: ongoing network transfers, CPU executions, and sleeps,
//! * the simulated **clock**.
//!
//! The kernel is strictly sequential (§5.1): callers start actions, then
//! repeatedly call [`Simulation::advance_to_next`] to jump the clock to the
//! next completion. Network rates are recomputed with the max-min solver
//! ([`crate::lmm`]) whenever the set of active flows changes; CPU actions on
//! the same host share its compute power the same way.
//!
//! Transfers are two-phase, matching the flow model validated in the SimGrid
//! papers: a pure-latency phase (the flow does not consume bandwidth) then a
//! transfer phase at rate `min(segment bound, max-min share)`.

use crate::ids::{ActionId, HostId, LinkId};
use crate::lmm::MaxMinProblem;
use crate::model::TransferModel;
use crate::time::SimTime;
use smpi_obs::Rec;

/// Relative tolerance when deciding that an action's remaining work is done.
const COMPLETION_EPS: f64 = 1e-9;

/// A network link: one direction of a cable, or a switch backplane.
#[derive(Debug, Clone)]
struct Link {
    /// Nominal bandwidth in bytes/s (the max-min capacity).
    bandwidth: f64,
    /// Nominal one-way latency contribution in seconds.
    latency: f64,
    /// When `false`, flows crossing this link are not subject to its
    /// capacity constraint (the "no contention" scenario of Figs. 7 and 11).
    contended: bool,
}

/// A compute host with a speed in flop/s.
#[derive(Debug, Clone)]
struct Host {
    speed: f64,
}

#[derive(Debug, Clone)]
enum ActionKind {
    /// Network transfer across `route`.
    Transfer {
        route: Vec<LinkId>,
        /// Remaining seconds of the latency phase.
        latency_left: f64,
        /// Remaining bytes once in the transfer phase.
        bytes_left: f64,
        /// Individual rate bound from the transfer model segment.
        bound: f64,
    },
    /// CPU execution on a host.
    Exec { host: HostId, flops_left: f64 },
    /// Pure delay (used by `sample_*` replay and `MPI_Wtime`-style waits).
    Sleep { ends_at: SimTime },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ActionState {
    Running,
    Done,
}

#[derive(Debug, Clone)]
struct Action {
    kind: ActionKind,
    state: ActionState,
    /// Current allocated rate (bytes/s or flop/s); 0 during latency phase.
    rate: f64,
}

/// Engine configuration knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Globally disable link capacity constraints. Equivalent to marking
    /// every link un-contended; used to mimic the contention-blind
    /// simulators the paper compares against.
    pub contention: bool,
    /// Optional TCP-window rate cap: a flow's rate is additionally bounded by
    /// `tcp_window / (2 * route_latency)` (CM02-style). `None` disables it.
    pub tcp_window: Option<f64>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            contention: true,
            tcp_window: None,
        }
    }
}

/// The sequential simulation kernel.
#[derive(Debug)]
pub struct Simulation {
    now: SimTime,
    links: Vec<Link>,
    hosts: Vec<Host>,
    actions: Vec<Action>,
    /// Actions whose rates must be recomputed before the next advance.
    dirty: bool,
    config: EngineConfig,
    /// Observability sink; disabled by default (every emit is one branch).
    rec: Rec,
    /// Last emitted utilization per link, to suppress duplicate gauge
    /// samples across reshares. Only maintained while `rec` is enabled.
    last_util: Vec<f64>,
}

impl Default for Simulation {
    fn default() -> Self {
        Self::new()
    }
}

impl Simulation {
    /// Creates an empty simulation with default configuration.
    pub fn new() -> Self {
        Self::with_config(EngineConfig::default())
    }

    /// Creates an empty simulation with the given configuration.
    pub fn with_config(config: EngineConfig) -> Self {
        Simulation {
            now: SimTime::ZERO,
            links: Vec::new(),
            hosts: Vec::new(),
            actions: Vec::new(),
            dirty: false,
            config,
            rec: Rec::disabled(),
            last_util: Vec::new(),
        }
    }

    /// Attaches an observability recorder. While enabled, the engine emits
    /// `surf.reshares`, per-link `surf.link.<i>.util` gauge timelines, and
    /// per-link `surf.link.<i>.bytes` counters integrating delivered work.
    pub fn set_recorder(&mut self, rec: Rec) {
        self.rec = rec;
        self.last_util = vec![0.0; self.links.len()];
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Adds a link with `bandwidth` bytes/s and `latency` seconds.
    pub fn add_link(&mut self, bandwidth: f64, latency: f64) -> LinkId {
        assert!(bandwidth > 0.0 && bandwidth.is_finite());
        assert!(latency >= 0.0 && latency.is_finite());
        self.links.push(Link {
            bandwidth,
            latency,
            contended: true,
        });
        LinkId::from_index(self.links.len() - 1)
    }

    /// Marks a link as contention-free (infinite multiplexing capacity).
    pub fn set_link_contended(&mut self, link: LinkId, contended: bool) {
        self.links[link.index()].contended = contended;
    }

    /// Nominal bandwidth of a link in bytes/s.
    pub fn link_bandwidth(&self, link: LinkId) -> f64 {
        self.links[link.index()].bandwidth
    }

    /// Nominal latency of a link in seconds.
    pub fn link_latency(&self, link: LinkId) -> f64 {
        self.links[link.index()].latency
    }

    /// Adds a host computing at `speed` flop/s.
    pub fn add_host(&mut self, speed: f64) -> HostId {
        assert!(speed > 0.0 && speed.is_finite());
        self.hosts.push(Host { speed });
        HostId::from_index(self.hosts.len() - 1)
    }

    /// Compute speed of a host in flop/s.
    pub fn host_speed(&self, host: HostId) -> f64 {
        self.hosts[host.index()].speed
    }

    /// Sum of nominal latencies along a route.
    pub fn route_latency(&self, route: &[LinkId]) -> f64 {
        route.iter().map(|l| self.links[l.index()].latency).sum()
    }

    /// Minimum nominal bandwidth along a route.
    pub fn route_bandwidth(&self, route: &[LinkId]) -> f64 {
        route
            .iter()
            .map(|l| self.links[l.index()].bandwidth)
            .fold(f64::INFINITY, f64::min)
    }

    /// Starts a network transfer of `bytes` along `route`, using `model` to
    /// derive the latency and the individual rate bound from the message
    /// size. Returns immediately; completion is reported by
    /// [`advance_to_next`](Self::advance_to_next).
    pub fn start_transfer(
        &mut self,
        route: &[LinkId],
        bytes: f64,
        model: &TransferModel,
    ) -> ActionId {
        assert!(bytes >= 0.0 && bytes.is_finite());
        assert!(!route.is_empty(), "transfer route cannot be empty");
        let seg = model.segment_for(bytes);
        let raw_latency = self.route_latency(route);
        let raw_bandwidth = self.route_bandwidth(route);
        let latency = seg.lat_factor * raw_latency;
        let mut bound = seg.bw_factor * raw_bandwidth;
        if let Some(window) = self.config.tcp_window {
            if latency > 0.0 {
                bound = bound.min(window / (2.0 * latency));
            }
        }
        self.push_action(ActionKind::Transfer {
            route: route.to_vec(),
            latency_left: latency,
            bytes_left: bytes,
            bound,
        })
    }

    /// Starts a CPU execution of `flops` on `host`. Concurrent executions on
    /// the same host share its speed max-min fairly.
    pub fn start_exec(&mut self, host: HostId, flops: f64) -> ActionId {
        assert!(flops >= 0.0 && flops.is_finite());
        self.push_action(ActionKind::Exec {
            host,
            flops_left: flops,
        })
    }

    /// Starts a pure delay of `duration` simulated seconds.
    pub fn start_sleep(&mut self, duration: f64) -> ActionId {
        assert!(duration >= 0.0 && duration.is_finite());
        self.push_action(ActionKind::Sleep {
            ends_at: self.now + duration,
        })
    }

    fn push_action(&mut self, kind: ActionKind) -> ActionId {
        self.actions.push(Action {
            kind,
            state: ActionState::Running,
            rate: 0.0,
        });
        self.dirty = true;
        ActionId::from_index(self.actions.len() - 1)
    }

    /// `true` once the action has completed.
    pub fn is_done(&self, action: ActionId) -> bool {
        self.actions[action.index()].state == ActionState::Done
    }

    /// Number of actions still running.
    pub fn running_actions(&self) -> usize {
        self.actions
            .iter()
            .filter(|a| a.state == ActionState::Running)
            .count()
    }

    /// Recomputes all action rates with the max-min solver.
    fn reshare(&mut self) {
        let mut problem = MaxMinProblem::new();
        // One constraint per contended link that carries at least one flow in
        // transfer phase, one per host with at least one exec.
        let mut link_cnst = vec![None; self.links.len()];
        let mut host_cnst = vec![None; self.hosts.len()];
        // Actions that received a variable, in variable insertion order.
        let mut sharing: Vec<usize> = Vec::new();

        for (ix, action) in self.actions.iter().enumerate() {
            if action.state != ActionState::Running {
                continue;
            }
            match &action.kind {
                ActionKind::Transfer {
                    route,
                    latency_left,
                    bound,
                    ..
                } => {
                    if *latency_left > 0.0 {
                        continue; // not consuming bandwidth yet
                    }
                    let mut cnsts = Vec::with_capacity(route.len());
                    if self.config.contention {
                        for l in route {
                            let li = l.index();
                            if !self.links[li].contended {
                                continue;
                            }
                            let c = *link_cnst[li].get_or_insert_with(|| {
                                problem.add_constraint(self.links[li].bandwidth)
                            });
                            cnsts.push(c);
                        }
                    }
                    problem.add_variable(*bound, &cnsts);
                    sharing.push(ix);
                }
                ActionKind::Exec { host, .. } => {
                    let hi = host.index();
                    let c = *host_cnst[hi]
                        .get_or_insert_with(|| problem.add_constraint(self.hosts[hi].speed));
                    problem.add_variable(f64::INFINITY, &[c]);
                    sharing.push(ix);
                }
                ActionKind::Sleep { .. } => {}
            }
        }

        let rates = problem.solve();
        for (k, &ix) in sharing.iter().enumerate() {
            self.actions[ix].rate = rates[k];
        }
        self.dirty = false;

        if self.rec.is_enabled() {
            self.record_reshare(&sharing);
        }
    }

    /// Emits the reshare counter and per-link utilization gauges. Called
    /// only when recording, right after rates were recomputed.
    fn record_reshare(&mut self, sharing: &[usize]) {
        if self.last_util.len() < self.links.len() {
            self.last_util.resize(self.links.len(), 0.0);
        }
        let mut used = vec![0.0; self.links.len()];
        for &ix in sharing {
            let action = &self.actions[ix];
            if let ActionKind::Transfer {
                route,
                latency_left,
                ..
            } = &action.kind
            {
                if *latency_left <= 0.0 {
                    for l in route {
                        used[l.index()] += action.rate;
                    }
                }
            }
        }
        let now = self.now.as_secs();
        let links = &self.links;
        let last_util = &mut self.last_util;
        self.rec.with(|r| {
            use smpi_obs::Recorder;
            r.counter_add("surf.reshares", 1);
            for (li, &rate) in used.iter().enumerate() {
                let util = rate / links[li].bandwidth;
                if (util - last_util[li]).abs() > 1e-12 {
                    r.gauge_set(&format!("surf.link.{li}.util"), now, util);
                    last_util[li] = util;
                }
            }
        });
    }

    /// The simulated time of the next action completion, or `None` if no
    /// action is running.
    pub fn next_event_time(&mut self) -> Option<SimTime> {
        if self.dirty {
            self.reshare();
        }
        let mut best: Option<SimTime> = None;
        for action in &self.actions {
            if action.state != ActionState::Running {
                continue;
            }
            let t = match &action.kind {
                ActionKind::Transfer {
                    latency_left,
                    bytes_left,
                    ..
                } => {
                    if *latency_left > 0.0 {
                        // After latency the transfer phase begins; if there
                        // are no bytes the action completes right then.
                        self.now + *latency_left
                    } else if action.rate > 0.0 {
                        self.now + *bytes_left / action.rate
                    } else if *bytes_left <= 0.0 {
                        self.now
                    } else {
                        SimTime::INFINITY
                    }
                }
                ActionKind::Exec { flops_left, .. } => {
                    if action.rate > 0.0 {
                        self.now + *flops_left / action.rate
                    } else if *flops_left <= 0.0 {
                        self.now
                    } else {
                        SimTime::INFINITY
                    }
                }
                ActionKind::Sleep { ends_at } => *ends_at,
            };
            best = Some(match best {
                Some(b) => b.min(t),
                None => t,
            });
        }
        best
    }

    /// Advances the clock to the next completion instant and returns the
    /// actions that completed there (possibly several). Returns `None` when
    /// no action is running (the simulation is quiescent).
    ///
    /// Latency-phase expirations are handled internally: if the next event is
    /// a transfer entering its transfer phase, rates are recomputed and the
    /// search continues, so callers only ever observe *completions*.
    pub fn advance_to_next(&mut self) -> Option<(SimTime, Vec<ActionId>)> {
        loop {
            let target = self.next_event_time()?;
            if target.is_infinite() {
                // Running actions exist but none can finish: deadlock in the
                // caller's workload (e.g. zero-rate flow). Surface loudly.
                panic!("simulation stalled: running actions with no progress");
            }
            let dt = target.duration_since(self.now);
            self.advance_work(dt);
            self.now = target;
            let completed = self.collect_completions();
            if !completed.is_empty() {
                return Some((self.now, completed));
            }
            // Otherwise a latency phase ended: loop after resharing.
            self.dirty = true;
        }
    }

    /// Applies `dt` seconds of progress to all running actions.
    fn advance_work(&mut self, dt: f64) {
        if dt > 0.0 && self.rec.is_enabled() {
            // Integrate delivered bytes per link before the state mutates:
            // each transfer-phase flow moves `rate * dt` bytes across every
            // link of its route during this interval.
            let actions = &self.actions;
            self.rec.with(|r| {
                use smpi_obs::Recorder;
                for action in actions {
                    if action.state != ActionState::Running || action.rate <= 0.0 {
                        continue;
                    }
                    if let ActionKind::Transfer {
                        route,
                        latency_left,
                        bytes_left,
                        ..
                    } = &action.kind
                    {
                        if *latency_left <= 0.0 {
                            let delta = (action.rate * dt).min(*bytes_left);
                            for l in route {
                                r.fcounter_add(&format!("surf.link.{}.bytes", l.index()), delta);
                            }
                        }
                    }
                }
            });
        }
        for action in self.actions.iter_mut() {
            if action.state != ActionState::Running {
                continue;
            }
            match &mut action.kind {
                ActionKind::Transfer {
                    latency_left,
                    bytes_left,
                    ..
                } => {
                    if *latency_left > 0.0 {
                        *latency_left -= dt;
                        if *latency_left <= COMPLETION_EPS * dt.max(1.0) {
                            *latency_left = 0.0;
                        }
                    } else {
                        *bytes_left -= action.rate * dt;
                    }
                }
                ActionKind::Exec { flops_left, .. } => {
                    *flops_left -= action.rate * dt;
                }
                ActionKind::Sleep { .. } => {}
            }
        }
    }

    /// Marks and returns every action that has finished at the current time.
    fn collect_completions(&mut self) -> Vec<ActionId> {
        let mut done = Vec::new();
        for (ix, action) in self.actions.iter_mut().enumerate() {
            if action.state != ActionState::Running {
                continue;
            }
            // Tolerance: one nanosecond of work at the action's current rate
            // absorbs the floating-point residue of `left -= rate * dt`.
            let tol = action.rate * COMPLETION_EPS + 1e-12;
            let finished = match &action.kind {
                ActionKind::Transfer {
                    latency_left,
                    bytes_left,
                    ..
                } => *latency_left <= 0.0 && *bytes_left <= tol,
                ActionKind::Exec { flops_left, .. } => *flops_left <= tol,
                ActionKind::Sleep { ends_at } => *ends_at <= self.now,
            };
            if finished {
                action.state = ActionState::Done;
                done.push(ActionId::from_index(ix));
            }
        }
        if !done.is_empty() {
            self.dirty = true;
        }
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TransferModel;

    fn approx(a: f64, b: f64) {
        assert!(
            (a - b).abs() <= 1e-9 * (1.0 + b.abs()),
            "expected ~{b}, got {a}"
        );
    }

    #[test]
    fn single_transfer_latency_plus_size_over_bw() {
        let mut sim = Simulation::new();
        let l = sim.add_link(100.0, 0.5);
        let a = sim.start_transfer(&[l], 1000.0, &TransferModel::ideal());
        let (t, done) = sim.advance_to_next().unwrap();
        assert_eq!(done, vec![a]);
        approx(t.as_secs(), 0.5 + 10.0);
        assert!(sim.is_done(a));
        assert!(sim.advance_to_next().is_none());
    }

    #[test]
    fn zero_byte_transfer_takes_latency_only() {
        let mut sim = Simulation::new();
        let l = sim.add_link(100.0, 0.25);
        sim.start_transfer(&[l], 0.0, &TransferModel::ideal());
        let (t, done) = sim.advance_to_next().unwrap();
        assert_eq!(done.len(), 1);
        approx(t.as_secs(), 0.25);
    }

    #[test]
    fn two_concurrent_transfers_share_the_link() {
        let mut sim = Simulation::new();
        let l = sim.add_link(100.0, 0.0);
        let a = sim.start_transfer(&[l], 1000.0, &TransferModel::ideal());
        let b = sim.start_transfer(&[l], 1000.0, &TransferModel::ideal());
        let (t, done) = sim.advance_to_next().unwrap();
        // Both share 50 B/s, both finish at t=20 simultaneously.
        approx(t.as_secs(), 20.0);
        assert!(done.contains(&a) && done.contains(&b));
    }

    #[test]
    fn short_flow_finishes_then_long_flow_speeds_up() {
        let mut sim = Simulation::new();
        let l = sim.add_link(100.0, 0.0);
        let short = sim.start_transfer(&[l], 500.0, &TransferModel::ideal());
        let long = sim.start_transfer(&[l], 1500.0, &TransferModel::ideal());
        let (t1, d1) = sim.advance_to_next().unwrap();
        assert_eq!(d1, vec![short]);
        approx(t1.as_secs(), 10.0); // 500 B at 50 B/s
        let (t2, d2) = sim.advance_to_next().unwrap();
        assert_eq!(d2, vec![long]);
        // Long had 1000 B left, now alone at 100 B/s: +10 s.
        approx(t2.as_secs(), 20.0);
    }

    #[test]
    fn no_contention_config_ignores_sharing() {
        let mut sim = Simulation::with_config(EngineConfig {
            contention: false,
            tcp_window: None,
        });
        let l = sim.add_link(100.0, 0.0);
        sim.start_transfer(&[l], 1000.0, &TransferModel::ideal());
        sim.start_transfer(&[l], 1000.0, &TransferModel::ideal());
        let (t, done) = sim.advance_to_next().unwrap();
        // Both get the full bandwidth, finishing together at t=10.
        approx(t.as_secs(), 10.0);
        assert_eq!(done.len(), 2);
    }

    #[test]
    fn per_link_contention_flag() {
        let mut sim = Simulation::new();
        let l = sim.add_link(100.0, 0.0);
        sim.set_link_contended(l, false);
        sim.start_transfer(&[l], 1000.0, &TransferModel::ideal());
        sim.start_transfer(&[l], 1000.0, &TransferModel::ideal());
        let (t, _) = sim.advance_to_next().unwrap();
        approx(t.as_secs(), 10.0);
    }

    #[test]
    fn piecewise_model_selects_segment_by_size() {
        let model = TransferModel::new(vec![
            crate::model::Segment {
                upper: 100.0,
                lat_factor: 0.0,
                bw_factor: 2.0,
            },
            crate::model::Segment {
                upper: f64::INFINITY,
                lat_factor: 0.0,
                bw_factor: 1.0,
            },
        ]);
        let mut sim = Simulation::new();
        let l = sim.add_link(100.0, 0.0);
        // 50 bytes in the fast segment: bound 200 B/s but link caps at 100.
        sim.start_transfer(&[l], 50.0, &model);
        let (t, _) = sim.advance_to_next().unwrap();
        approx(t.as_secs(), 0.5);
    }

    #[test]
    fn bound_caps_rate_below_link_capacity() {
        let model = TransferModel::affine(1.0, 0.5);
        let mut sim = Simulation::new();
        let l = sim.add_link(100.0, 0.0);
        sim.start_transfer(&[l], 100.0, &model);
        let (t, _) = sim.advance_to_next().unwrap();
        approx(t.as_secs(), 2.0); // rate bound = 50 B/s
    }

    #[test]
    fn exec_on_host_takes_flops_over_speed() {
        let mut sim = Simulation::new();
        let h = sim.add_host(1e9);
        let a = sim.start_exec(h, 2e9);
        let (t, done) = sim.advance_to_next().unwrap();
        assert_eq!(done, vec![a]);
        approx(t.as_secs(), 2.0);
    }

    #[test]
    fn concurrent_execs_share_host_speed() {
        let mut sim = Simulation::new();
        let h = sim.add_host(100.0);
        sim.start_exec(h, 100.0);
        sim.start_exec(h, 100.0);
        let (t, done) = sim.advance_to_next().unwrap();
        approx(t.as_secs(), 2.0);
        assert_eq!(done.len(), 2);
    }

    #[test]
    fn sleep_completes_at_deadline() {
        let mut sim = Simulation::new();
        let a = sim.start_sleep(1.5);
        let b = sim.start_sleep(0.5);
        let (t1, d1) = sim.advance_to_next().unwrap();
        approx(t1.as_secs(), 0.5);
        assert_eq!(d1, vec![b]);
        let (t2, d2) = sim.advance_to_next().unwrap();
        approx(t2.as_secs(), 1.5);
        assert_eq!(d2, vec![a]);
    }

    #[test]
    fn multi_hop_route_sums_latencies_and_takes_min_bandwidth() {
        let mut sim = Simulation::new();
        let l1 = sim.add_link(100.0, 0.1);
        let l2 = sim.add_link(50.0, 0.2);
        let l3 = sim.add_link(200.0, 0.3);
        sim.start_transfer(&[l1, l2, l3], 100.0, &TransferModel::ideal());
        let (t, _) = sim.advance_to_next().unwrap();
        approx(t.as_secs(), 0.6 + 2.0);
    }

    #[test]
    fn tcp_window_caps_rate_on_high_latency_routes() {
        let mut sim = Simulation::with_config(EngineConfig {
            contention: true,
            tcp_window: Some(10.0),
        });
        let l = sim.add_link(1000.0, 0.5);
        // cap = 10 / (2*0.5) = 10 B/s, well below the 1000 B/s link.
        sim.start_transfer(&[l], 100.0, &TransferModel::ideal());
        let (t, _) = sim.advance_to_next().unwrap();
        approx(t.as_secs(), 0.5 + 10.0);
    }

    #[test]
    fn transfers_in_latency_phase_do_not_consume_bandwidth() {
        let mut sim = Simulation::new();
        let l = sim.add_link(100.0, 0.0);
        let lat = sim.add_link(100.0, 10.0);
        // One flow on l, another crossing both but stuck in a 10 s latency.
        let fast = sim.start_transfer(&[l], 1000.0, &TransferModel::ideal());
        let slow = sim.start_transfer(&[lat, l], 1.0, &TransferModel::ideal());
        let (t1, d1) = sim.advance_to_next().unwrap();
        // `fast` gets the full 100 B/s while `slow` sits in latency.
        assert_eq!(d1, vec![fast]);
        approx(t1.as_secs(), 10.0);
        let (t2, d2) = sim.advance_to_next().unwrap();
        assert_eq!(d2, vec![slow]);
        approx(t2.as_secs(), 10.0 + 0.01);
    }

    #[test]
    fn running_actions_counter() {
        let mut sim = Simulation::new();
        let h = sim.add_host(1.0);
        sim.start_exec(h, 1.0);
        sim.start_exec(h, 2.0);
        assert_eq!(sim.running_actions(), 2);
        sim.advance_to_next().unwrap();
        assert_eq!(sim.running_actions(), 1);
    }
}
