//! Simulated time.
//!
//! The simulation clock is a non-negative `f64` number of seconds wrapped in
//! [`SimTime`]. A newtype is used instead of a bare `f64` so that simulated
//! time cannot be accidentally mixed with wall-clock durations (which matter
//! separately when measuring *simulation speed*, cf. Fig. 17 of the paper),
//! and so that a total order can be defined (`f64` alone is only `PartialOrd`).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in seconds since the start of the simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimTime(f64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0.0);

    /// A time later than every reachable simulation instant.
    pub const INFINITY: SimTime = SimTime(f64::INFINITY);

    /// Creates a time from seconds. Panics on NaN or negative values: a NaN
    /// clock would silently corrupt the event calendar's ordering.
    pub fn from_secs(secs: f64) -> Self {
        assert!(secs >= 0.0 && !secs.is_nan(), "invalid SimTime: {secs}");
        SimTime(secs)
    }

    /// Seconds since the epoch.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// `true` for the unreachable infinite horizon.
    pub fn is_infinite(self) -> bool {
        self.0.is_infinite()
    }

    /// Duration from `earlier` to `self`, saturating at zero so that tiny
    /// floating-point regressions never produce negative durations.
    pub fn duration_since(self, earlier: SimTime) -> f64 {
        (self.0 - earlier.0).max(0.0)
    }
}

impl Eq for SimTime {}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: f64) -> SimTime {
        debug_assert!(rhs >= 0.0, "cannot schedule into the past: {rhs}");
        SimTime(self.0 + rhs)
    }
}

impl AddAssign<f64> for SimTime {
    fn add_assign(&mut self, rhs: f64) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = f64;
    fn sub(self, rhs: SimTime) -> f64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.9}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.max(b), b);
        assert!(a < SimTime::INFINITY);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1.5) + 0.5;
        assert_eq!(t.as_secs(), 2.0);
        assert_eq!(t.duration_since(SimTime::from_secs(1.0)), 1.0);
        // saturation
        assert_eq!(SimTime::ZERO.duration_since(t), 0.0);
    }

    #[test]
    #[should_panic]
    fn rejects_nan() {
        let _ = SimTime::from_secs(f64::NAN);
    }

    #[test]
    #[should_panic]
    fn rejects_negative() {
        let _ = SimTime::from_secs(-1.0);
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(SimTime::from_secs(0.25).to_string(), "0.250000000s");
    }
}
