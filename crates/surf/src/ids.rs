//! Strongly-typed index handles for simulation resources.
//!
//! All simulation objects live in flat `Vec` arenas and are referred to by
//! index. Newtypes prevent a link index from being used where a host index is
//! expected — a class of bug that plain `usize` indices make very easy.

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// Builds an id from a raw arena index.
            pub fn from_index(ix: usize) -> Self {
                $name(u32::try_from(ix).expect("resource arena overflow"))
            }

            /// The raw arena index.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}#{}", stringify!($name), self.0)
            }
        }
    };
}

define_id!(
    /// A network link (cable or switch backplane share).
    LinkId
);
define_id!(
    /// A compute host (cluster node).
    HostId
);

/// A simulation action: an ongoing network transfer or CPU execution.
///
/// Unlike resource ids, actions are *transient*: their slab slots are
/// recycled once they complete. The handle therefore carries both the slot
/// and the slot's generation at creation time; a recycled slot bumps the
/// generation, so a stale handle can never alias a newer action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ActionId {
    pub(crate) slot: u32,
    pub(crate) gen: u32,
}

impl ActionId {
    /// Builds a handle from a slab `(slot, generation)` pair.
    pub(crate) fn new(slot: u32, gen: u32) -> Self {
        ActionId { slot, gen }
    }

    /// The slab slot (reused across action lifetimes).
    pub fn slot(self) -> u32 {
        self.slot
    }

    /// Packs the handle into a single `u64` (`generation << 32 | slot`),
    /// unique over the whole simulation run. Used by transport backends to
    /// derive completion tokens.
    pub fn raw(self) -> u64 {
        (u64::from(self.gen) << 32) | u64::from(self.slot)
    }

    /// Rebuilds a handle from its [`raw`](Self::raw) packing.
    pub fn from_raw(raw: u64) -> Self {
        ActionId {
            slot: raw as u32,
            gen: (raw >> 32) as u32,
        }
    }
}

impl std::fmt::Display for ActionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ActionId#{}.{}", self.slot, self.gen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let l = LinkId::from_index(7);
        assert_eq!(l.index(), 7);
        assert_eq!(l.to_string(), "LinkId#7");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(HostId::from_index(1) < HostId::from_index(2));
    }

    #[test]
    fn action_raw_packs_slot_and_generation() {
        let a = ActionId::new(7, 3);
        assert_eq!(a.slot(), 7);
        assert_eq!(a.raw(), (3u64 << 32) | 7);
        assert_eq!(a.to_string(), "ActionId#7.3");
        assert_ne!(ActionId::new(7, 3).raw(), ActionId::new(7, 4).raw());
    }
}
