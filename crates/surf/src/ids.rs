//! Strongly-typed index handles for simulation resources.
//!
//! All simulation objects live in flat `Vec` arenas and are referred to by
//! index. Newtypes prevent a link index from being used where a host index is
//! expected — a class of bug that plain `usize` indices make very easy.

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// Builds an id from a raw arena index.
            pub fn from_index(ix: usize) -> Self {
                $name(u32::try_from(ix).expect("resource arena overflow"))
            }

            /// The raw arena index.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}#{}", stringify!($name), self.0)
            }
        }
    };
}

define_id!(
    /// A network link (cable or switch backplane share).
    LinkId
);
define_id!(
    /// A compute host (cluster node).
    HostId
);
define_id!(
    /// A simulation action: an ongoing network transfer or CPU execution.
    ActionId
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let l = LinkId::from_index(7);
        assert_eq!(l.index(), 7);
        assert_eq!(l.to_string(), "LinkId#7");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(HostId::from_index(1) < HostId::from_index(2));
    }
}
