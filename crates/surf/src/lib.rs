//! # surf-sim — the SMPI-rs simulation kernel
//!
//! Rust reimplementation of the SURF layer of SimGrid as described in
//! *"Single Node On-Line Simulation of MPI Applications with SMPI"*
//! (Clauss et al., IPDPS 2011), §4 and §5.1.
//!
//! The kernel is a **sequential discrete-event simulator** whose network
//! model is *flow-level* rather than packet-level: contention is resolved
//! analytically by a weighted max-min fairness solver ([`lmm`]), and
//! point-to-point performance follows a **piece-wise linear** model
//! ([`model::TransferModel`]) whose segments capture IP framing and the MPI
//! eager/rendezvous protocol switch.
//!
//! ```
//! use surf_sim::{Simulation, TransferModel};
//!
//! let mut sim = Simulation::new();
//! let link = sim.add_link(125e6, 50e-6); // 1 GbE, 50 µs
//! sim.start_transfer(&[link], 1_000_000.0, &TransferModel::ideal());
//! let (t, done) = sim.advance_to_next().unwrap();
//! assert_eq!(done.len(), 1);
//! assert!((t.as_secs() - (50e-6 + 1e6 / 125e6)).abs() < 1e-9);
//! ```

pub mod engine;
pub mod ids;
pub mod lmm;
pub mod model;
pub mod slab;
pub mod time;

pub use engine::{EngineConfig, Simulation, StallError, StuckAction};
pub use ids::{ActionId, HostId, LinkId};
pub use lmm::{CnstId, MaxMinProblem, VarId};
pub use model::{Segment, TransferModel};
pub use slab::Slab;
pub use time::SimTime;
