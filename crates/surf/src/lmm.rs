//! Weighted max-min fairness solver ("LMM" in SimGrid terminology).
//!
//! This is the analytical contention model at the heart of the paper (§4.2):
//! instead of simulating individual packets, the bandwidth allocated to each
//! active *flow* is computed from the network topology and the set of all
//! currently active flows. The solver answers one question: given
//!
//! * a set of **constraints** (links) with finite capacities, and
//! * a set of **variables** (flows) each crossing some constraints, with an
//!   optional individual rate bound (e.g. the piece-wise model's per-segment
//!   bandwidth β, or a TCP-window cap),
//!
//! what is the weighted max-min fair rate allocation?
//!
//! The implementation is classic *progressive filling*: a global water level
//! λ rises from zero; every unfrozen variable `v` receives rate `w_v · λ`; a
//! variable freezes when either its own bound is reached or one of its
//! constraints saturates. The algorithm terminates after at most `V`
//! freezes and yields the unique max-min fair allocation.
//!
//! Two implementations share that freeze schedule:
//!
//! * [`solve`](MaxMinProblem::solve) — the production path. The per-round
//!   argmin over constraints uses a lazily-invalidated min-heap of
//!   `(λ bits, constraint)` and the argmin over individually-bounded
//!   variables a pre-sorted cursor, so a solve costs
//!   `O((V + C) log + Σ degree log C)` instead of the naive
//!   `O(rounds · (V + C))` — the difference between milliseconds and
//!   minutes when an allreduce round couples 16k flows into one component.
//!   Both argmins reproduce the naive scan's selection (smallest λ, ties to
//!   the lowest index, constraints before bounds) *exactly*, so the freeze
//!   sequence — and therefore every rate — is bitwise-identical to the
//!   reference.
//! * [`solve_reference`](MaxMinProblem::solve_reference) — the original
//!   quadratic scan, kept as the executable specification. The
//!   `tests/lmm_props.rs` differential proptest pins `solve` against it
//!   bitwise on randomized problems.
//!
//! Variables can carry a *multiplicity*
//! ([`add_variable_class`](MaxMinProblem::add_variable_class)): `k`
//! interchangeable unit-weight
//! flows folded into one solver variable. The solver mirrors the expanded
//! problem's arithmetic operation-for-operation (weight sums and frozen
//! usage are accumulated by repeated addition, one step per folded member),
//! which makes the folded solve bitwise-equal to the expanded one whenever
//! every variable of the (sub)problem shares a single weight and a single
//! bound bit-pattern — the *uniform round* precondition the engine's class
//! folding detector enforces (DESIGN §16).

/// Handle to a constraint (a link, or a host's compute capacity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CnstId(usize);

impl CnstId {
    /// The constraint's insertion index within its problem. Lets callers
    /// that build problems from their own arenas (the engine's per-reshare
    /// component builds) map a reported bottleneck back to a resource.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Handle to a variable (a flow, or a CPU burst execution).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(usize);

/// A weighted max-min fairness problem instance.
///
/// Build with [`add_constraint`](Self::add_constraint) /
/// [`add_variable`](Self::add_variable), then call [`solve`](Self::solve).
/// The engine builds one instance per *dirty component* of the
/// constraint↔action graph on each re-share (falling back to the whole
/// active set when topology changes); see the `ablation_lmm` bench and
/// `repro -- kernel` for the cost of full rebuilds versus the incremental
/// path.
#[derive(Debug, Default, Clone)]
pub struct MaxMinProblem {
    capacities: Vec<f64>,
    bounds: Vec<f64>,
    weights: Vec<f64>,
    /// Multiplicity per variable: how many interchangeable unit flows this
    /// solver variable stands for (1 for ordinary variables).
    mults: Vec<u32>,
    /// For each variable, the constraints it crosses (deduplicated).
    memberships: Vec<Vec<usize>>,
    /// For each constraint, the variables crossing it.
    users: Vec<Vec<usize>>,
}

impl MaxMinProblem {
    /// Creates an empty problem.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a constraint with the given capacity (e.g. link bandwidth in
    /// bytes/s). Capacity must be finite and non-negative.
    pub fn add_constraint(&mut self, capacity: f64) -> CnstId {
        assert!(
            capacity.is_finite() && capacity >= 0.0,
            "invalid constraint capacity {capacity}"
        );
        self.capacities.push(capacity);
        self.users.push(Vec::new());
        CnstId(self.capacities.len() - 1)
    }

    /// Adds a variable with weight 1 crossing `constraints`, with an optional
    /// rate bound (`f64::INFINITY` for unbounded).
    pub fn add_variable(&mut self, bound: f64, constraints: &[CnstId]) -> VarId {
        self.add_weighted_variable(bound, 1.0, constraints)
    }

    /// Adds a variable with an explicit weight. Higher weight receives a
    /// proportionally larger share (used to model e.g. flows that aggregate
    /// several streams).
    pub fn add_weighted_variable(
        &mut self,
        bound: f64,
        weight: f64,
        constraints: &[CnstId],
    ) -> VarId {
        self.add_variable_impl(bound, weight, 1, constraints)
    }

    /// Adds a *folded class*: `members` interchangeable unit-weight flows
    /// represented by a single solver variable. The returned variable's rate
    /// is the per-member rate; the class together consumes `members` times
    /// that on each constraint.
    ///
    /// The fold is bitwise-exact versus adding `members` separate variables
    /// only under the uniform-round precondition (every variable of the
    /// problem has weight 1 and the same bound bit-pattern); see the module
    /// docs. Callers that cannot guarantee it must fall back to unfolded
    /// variables.
    pub fn add_variable_class(
        &mut self,
        bound: f64,
        members: u32,
        constraints: &[CnstId],
    ) -> VarId {
        assert!(members >= 1, "class must have at least one member");
        self.add_variable_impl(bound, 1.0, members, constraints)
    }

    fn add_variable_impl(
        &mut self,
        bound: f64,
        weight: f64,
        mult: u32,
        constraints: &[CnstId],
    ) -> VarId {
        assert!(!bound.is_nan() && bound >= 0.0, "invalid bound {bound}");
        assert!(
            weight.is_finite() && weight > 0.0,
            "invalid weight {weight}"
        );
        let vid = self.bounds.len();
        self.bounds.push(bound);
        self.weights.push(weight);
        self.mults.push(mult);
        let mut member: Vec<usize> = constraints.iter().map(|c| c.0).collect();
        member.sort_unstable();
        member.dedup();
        for &c in &member {
            assert!(c < self.capacities.len(), "unknown constraint");
            self.users[c].push(vid);
        }
        self.memberships.push(member);
        VarId(vid)
    }

    /// Number of variables.
    pub fn num_variables(&self) -> usize {
        self.bounds.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.capacities.len()
    }

    /// Variable-count cutoff below which [`solve`](Self::solve) runs the
    /// linear-scan loop instead of the heap/cursor path. The two follow the
    /// identical freeze schedule bitwise (`tests/lmm_props.rs` pins them),
    /// so the cutoff is purely a performance knob: small problems are
    /// dominated by the heap path's setup allocations, while past a few
    /// hundred coupled variables the scan's O(rounds · (V + C)) argmin
    /// re-scans take over.
    const SCAN_SOLVER_MAX_VARS: usize = 512;

    /// Solves the problem, returning the rate of each variable, indexed by
    /// [`VarId`] insertion order.
    ///
    /// A variable with no constraints and an infinite bound would receive an
    /// infinite rate; this is rejected in debug builds because it always
    /// indicates a modelling error upstream.
    pub fn solve(&self) -> Vec<f64> {
        if self.bounds.len() <= Self::SCAN_SOLVER_MAX_VARS {
            self.solve_scan_impl(None)
        } else {
            self.solve_impl(None)
        }
    }

    /// The heap/cursor path unconditionally, bypassing the size dispatch of
    /// [`solve`](Self::solve). Exists so the differential property tests can
    /// pin the heap path against [`solve_reference`](Self::solve_reference)
    /// on problems of any size.
    #[doc(hidden)]
    pub fn solve_heap(&self) -> Vec<f64> {
        self.solve_impl(None)
    }

    /// Solves like [`solve`](Self::solve) and additionally reports, per
    /// variable, the constraint that *froze* it — its bottleneck at this
    /// allocation. `None` means the variable froze at its own rate bound
    /// (or was unconstrained), i.e. no shared resource limited it.
    ///
    /// The rate arithmetic is shared with [`solve`](Self::solve), so the
    /// returned rates are bitwise-identical to a plain solve of the same
    /// problem; only the extra bookkeeping differs.
    pub fn solve_with_bottlenecks(&self) -> (Vec<f64>, Vec<Option<CnstId>>) {
        let mut bottlenecks = vec![None; self.bounds.len()];
        let rates = if self.bounds.len() <= Self::SCAN_SOLVER_MAX_VARS {
            self.solve_scan_impl(Some(&mut bottlenecks))
        } else {
            self.solve_impl(Some(&mut bottlenecks))
        };
        (rates, bottlenecks)
    }

    /// Shared set-up for both solver implementations: weight sums per
    /// constraint, accumulated by repeated addition — one step per folded
    /// member — so folded and expanded problems build bitwise-identical
    /// sums.
    fn init_wsums(&self) -> (Vec<f64>, Vec<f64>) {
        let nc = self.capacities.len();
        let mut wsum_unfrozen = vec![0.0_f64; nc];
        for v in 0..self.bounds.len() {
            debug_assert!(
                !self.memberships[v].is_empty() || self.bounds[v].is_finite(),
                "variable {v} is unconstrained and unbounded"
            );
            for &c in &self.memberships[v] {
                for _ in 0..self.mults[v] {
                    wsum_unfrozen[c] += self.weights[v];
                }
            }
        }
        // Snapshot of the initial weight sums: `freeze_var` snaps tiny
        // residual sums (floating-point dust left by repeated subtraction)
        // to exactly zero, and the cutoff must be *relative* to this scale.
        // An absolute cutoff would zero out constraints whose legitimate
        // weights are themselves tiny (e.g. 1e-15), handing the remaining
        // variables an infinite λ and therefore an unbounded rate.
        let wsum_init = wsum_unfrozen.clone();
        (wsum_unfrozen, wsum_init)
    }

    #[inline]
    fn lam_of(&self, c: usize, frozen_usage: &[f64], wsum_unfrozen: &[f64]) -> f64 {
        (self.capacities[c] - frozen_usage[c]).max(0.0) / wsum_unfrozen[c]
    }

    /// Fast progressive filling. Replicates [`solve_reference`]
    /// (Self::solve_reference)'s freeze schedule exactly — same rounds, same
    /// selections, same arithmetic on the same values — while replacing its
    /// two per-round linear argmin scans:
    ///
    /// * constraints live in a lazily-invalidated min-heap keyed by
    ///   `(λ.to_bits(), index)` (non-negative IEEE doubles order like their
    ///   bit patterns, and λ is never NaN here); an entry is trusted only if
    ///   it matches the constraint's current λ, so stale entries from
    ///   earlier freezes are dropped on peek;
    /// * bounded variables are pre-sorted by `(bound/weight).to_bits()` and
    ///   consumed through a cursor that skips already-frozen entries.
    ///
    /// Ties resolve as the reference scan does: lowest index wins within a
    /// kind, and a constraint beats a bound at equal λ (the reference scans
    /// constraints first and requires strictly smaller λ to switch).
    fn solve_impl(&self, mut bottlenecks: Option<&mut Vec<Option<CnstId>>>) -> Vec<f64> {
        let nv = self.bounds.len();
        let nc = self.capacities.len();
        let mut rate = vec![0.0_f64; nv];
        let mut frozen = vec![false; nv];
        let mut frozen_usage = vec![0.0_f64; nc];
        let (mut wsum_unfrozen, wsum_init) = self.init_wsums();

        const INF_BITS: u64 = 0x7FF0_0000_0000_0000; // f64::INFINITY.to_bits()
        /// Sentinel for "constraint left the λ search" (weight sum hit 0);
        /// larger than any real λ bit pattern, so stale heap entries can
        /// never match it.
        const DEAD: u64 = u64::MAX;

        let mut cur_lam: Vec<u64> = vec![DEAD; nc];
        let mut cheap: std::collections::BinaryHeap<std::cmp::Reverse<(u64, usize)>> =
            std::collections::BinaryHeap::with_capacity(nc);
        for (c, lam) in cur_lam.iter_mut().enumerate() {
            if wsum_unfrozen[c] > 0.0 {
                let bits = self.lam_of(c, &frozen_usage, &wsum_unfrozen).to_bits();
                *lam = bits;
                cheap.push(std::cmp::Reverse((bits, c)));
            }
        }
        let mut border: Vec<(u64, u32)> = (0..nv)
            .filter(|&v| self.bounds[v].is_finite())
            .map(|v| ((self.bounds[v] / self.weights[v]).to_bits(), v as u32))
            .collect();
        border.sort_unstable();
        let mut bcur = 0usize;

        let mut level = 0.0_f64;
        let mut remaining = nv;
        // Constraints whose λ inputs changed in the current round.
        let mut touched: Vec<usize> = Vec::new();
        while remaining > 0 {
            let cbest = loop {
                match cheap.peek() {
                    None => break None,
                    Some(&std::cmp::Reverse((bits, c))) => {
                        if cur_lam[c] == bits {
                            break Some((bits, c));
                        }
                        cheap.pop();
                    }
                }
            };
            while bcur < border.len() && frozen[border[bcur].1 as usize] {
                bcur += 1;
            }
            let vbest = border.get(bcur).copied();

            // Reference selection order: constraints first, a bound wins
            // only with strictly smaller λ.
            let (best_bits, pick) = match (cbest, vbest) {
                (None, None) => (INF_BITS, None),
                (Some((cb, c)), None) => (cb, Some((false, c))),
                (None, Some((vb, v))) => (vb, Some((true, v as usize))),
                (Some((cb, c)), Some((vb, v))) => {
                    if vb < cb {
                        (vb, Some((true, v as usize)))
                    } else {
                        (cb, Some((false, c)))
                    }
                }
            };
            if best_bits >= INF_BITS {
                // Only unbounded variables on capacity-free constraints remain
                // (cannot happen with finite capacities, but guard anyway).
                for v in 0..nv {
                    if !frozen[v] {
                        rate[v] = self.bounds[v];
                        frozen[v] = true;
                    }
                }
                break;
            }

            level = level.max(f64::from_bits(best_bits));
            touched.clear();
            match pick {
                Some((true, v)) => {
                    self.freeze_var(
                        v,
                        self.bounds[v],
                        &mut rate,
                        &mut frozen,
                        &mut frozen_usage,
                        &mut wsum_unfrozen,
                        &wsum_init,
                        &mut remaining,
                        Some(&mut touched),
                    );
                }
                Some((false, c)) => {
                    // Freeze every unfrozen variable crossing the saturated
                    // constraint at the current level.
                    let users: Vec<usize> = self.users[c]
                        .iter()
                        .copied()
                        .filter(|&v| !frozen[v])
                        .collect();
                    for v in users {
                        let r = (self.weights[v] * level).min(self.bounds[v]);
                        if let Some(b) = bottlenecks.as_deref_mut() {
                            // A tie between the constraint's saturation level
                            // and the variable's own bound attributes to the
                            // bound only when the bound is the strictly
                            // smaller cap.
                            b[v] = if self.bounds[v] < self.weights[v] * level {
                                None
                            } else {
                                Some(CnstId(c))
                            };
                        }
                        self.freeze_var(
                            v,
                            r,
                            &mut rate,
                            &mut frozen,
                            &mut frozen_usage,
                            &mut wsum_unfrozen,
                            &wsum_init,
                            &mut remaining,
                            Some(&mut touched),
                        );
                    }
                }
                None => unreachable!("finite best always has a pick"),
            }
            // Re-key the touched constraints. λ depends only on the
            // constraint's own usage and weight sum, so values computed here
            // are the same the reference would recompute next round.
            touched.sort_unstable();
            touched.dedup();
            for &c in &touched {
                if wsum_unfrozen[c] > 0.0 {
                    let bits = self.lam_of(c, &frozen_usage, &wsum_unfrozen).to_bits();
                    if cur_lam[c] != bits {
                        cur_lam[c] = bits;
                        cheap.push(std::cmp::Reverse((bits, c)));
                    }
                } else {
                    cur_lam[c] = DEAD;
                }
            }
        }
        rate
    }

    /// The original O(rounds · (V + C)) progressive-filling loop, kept as
    /// the executable specification of the freeze schedule. `solve` must
    /// match it bitwise on any input (`tests/lmm_props.rs`); it is also the
    /// naive side of the engine-level folding ablation.
    #[doc(hidden)]
    pub fn solve_reference(&self) -> Vec<f64> {
        self.solve_scan_impl(None)
    }

    /// The linear-scan progressive-filling loop, optionally recording each
    /// variable's freezing constraint with the same attribution rule as
    /// [`solve_impl`]: a bound freeze (or the unconstrained guard) leaves
    /// `None`, a constraint freeze records the constraint unless the
    /// variable's own bound is the strictly smaller cap.
    fn solve_scan_impl(&self, mut bottlenecks: Option<&mut Vec<Option<CnstId>>>) -> Vec<f64> {
        let nv = self.bounds.len();
        let nc = self.capacities.len();
        let mut rate = vec![0.0_f64; nv];
        let mut frozen = vec![false; nv];

        // Per-constraint bookkeeping under the rising water level λ:
        // usage(l) = frozen_usage[l] + λ * wsum_unfrozen[l].
        let mut frozen_usage = vec![0.0_f64; nc];
        let (mut wsum_unfrozen, wsum_init) = self.init_wsums();

        let mut level = 0.0_f64;
        let mut remaining = nv;
        while remaining > 0 {
            // Find the smallest level at which something freezes.
            let mut best = f64::INFINITY;
            let mut best_cnst: Option<usize> = None;
            let mut best_var: Option<usize> = None;
            for c in 0..nc {
                if wsum_unfrozen[c] > 0.0 {
                    let lam = self.lam_of(c, &frozen_usage, &wsum_unfrozen);
                    if lam < best {
                        best = lam;
                        best_cnst = Some(c);
                        best_var = None;
                    }
                }
            }
            for (v, &b) in self.bounds.iter().enumerate() {
                if !frozen[v] && b.is_finite() {
                    let lam = b / self.weights[v];
                    if lam < best {
                        best = lam;
                        best_cnst = None;
                        best_var = Some(v);
                    }
                }
            }

            if best.is_infinite() {
                for v in 0..nv {
                    if !frozen[v] {
                        rate[v] = self.bounds[v];
                        frozen[v] = true;
                    }
                }
                break;
            }

            level = level.max(best);
            if let Some(v) = best_var {
                self.freeze_var(
                    v,
                    self.bounds[v],
                    &mut rate,
                    &mut frozen,
                    &mut frozen_usage,
                    &mut wsum_unfrozen,
                    &wsum_init,
                    &mut remaining,
                    None,
                );
            } else if let Some(c) = best_cnst {
                let users: Vec<usize> = self.users[c]
                    .iter()
                    .copied()
                    .filter(|&v| !frozen[v])
                    .collect();
                for v in users {
                    let r = (self.weights[v] * level).min(self.bounds[v]);
                    if let Some(b) = bottlenecks.as_deref_mut() {
                        b[v] = if self.bounds[v] < self.weights[v] * level {
                            None
                        } else {
                            Some(CnstId(c))
                        };
                    }
                    self.freeze_var(
                        v,
                        r,
                        &mut rate,
                        &mut frozen,
                        &mut frozen_usage,
                        &mut wsum_unfrozen,
                        &wsum_init,
                        &mut remaining,
                        None,
                    );
                }
            }
        }
        rate
    }

    #[allow(clippy::too_many_arguments)]
    fn freeze_var(
        &self,
        v: usize,
        r: f64,
        rate: &mut [f64],
        frozen: &mut [bool],
        frozen_usage: &mut [f64],
        wsum_unfrozen: &mut [f64],
        wsum_init: &[f64],
        remaining: &mut usize,
        mut touched: Option<&mut Vec<usize>>,
    ) {
        debug_assert!(!frozen[v]);
        rate[v] = r;
        frozen[v] = true;
        *remaining -= 1;
        for &c in &self.memberships[v] {
            // One accumulation step per folded member, mirroring the
            // expanded problem's repeated addition exactly (including the
            // snap-to-zero check after every subtraction).
            for _ in 0..self.mults[v] {
                frozen_usage[c] += r;
                wsum_unfrozen[c] -= self.weights[v];
                // Snap accumulated subtraction dust to zero, with a tolerance
                // relative to the constraint's initial weight sum so that
                // constraints built from legitimately tiny weights survive.
                if wsum_unfrozen[c] < wsum_init[c] * 1e-12 {
                    wsum_unfrozen[c] = 0.0;
                }
            }
            if let Some(t) = touched.as_deref_mut() {
                t.push(c);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    #[test]
    fn single_flow_gets_full_capacity() {
        let mut p = MaxMinProblem::new();
        let l = p.add_constraint(100.0);
        let v = p.add_variable(f64::INFINITY, &[l]);
        let rates = p.solve();
        assert!((rates[v.0] - 100.0).abs() < EPS);
    }

    #[test]
    fn two_flows_share_equally() {
        let mut p = MaxMinProblem::new();
        let l = p.add_constraint(100.0);
        p.add_variable(f64::INFINITY, &[l]);
        p.add_variable(f64::INFINITY, &[l]);
        let rates = p.solve();
        assert!((rates[0] - 50.0).abs() < EPS);
        assert!((rates[1] - 50.0).abs() < EPS);
    }

    #[test]
    fn bounded_flow_releases_capacity() {
        // One flow capped at 10; the other should get the remaining 90.
        let mut p = MaxMinProblem::new();
        let l = p.add_constraint(100.0);
        p.add_variable(10.0, &[l]);
        p.add_variable(f64::INFINITY, &[l]);
        let rates = p.solve();
        assert!((rates[0] - 10.0).abs() < EPS);
        assert!((rates[1] - 90.0).abs() < EPS);
    }

    #[test]
    fn weighted_shares_are_proportional() {
        let mut p = MaxMinProblem::new();
        let l = p.add_constraint(90.0);
        p.add_weighted_variable(f64::INFINITY, 1.0, &[l]);
        p.add_weighted_variable(f64::INFINITY, 2.0, &[l]);
        let rates = p.solve();
        assert!((rates[0] - 30.0).abs() < EPS);
        assert!((rates[1] - 60.0).abs() < EPS);
    }

    #[test]
    fn multi_hop_bottleneck() {
        // Flow A crosses l1(100) and l2(50); flow B crosses only l1.
        // A is capped at 50 by l2, then B picks up the remaining 50 on l1.
        let mut p = MaxMinProblem::new();
        let l1 = p.add_constraint(100.0);
        let l2 = p.add_constraint(50.0);
        p.add_variable(f64::INFINITY, &[l1, l2]);
        p.add_variable(f64::INFINITY, &[l1]);
        let rates = p.solve();
        assert!((rates[0] - 50.0).abs() < EPS);
        assert!((rates[1] - 50.0).abs() < EPS);
    }

    #[test]
    fn classic_linear_network() {
        // The textbook 3-link chain: one long flow crosses all links, one
        // short flow per link. Max-min: everyone gets capacity/2.
        let mut p = MaxMinProblem::new();
        let links: Vec<_> = (0..3).map(|_| p.add_constraint(1.0)).collect();
        let long = p.add_variable(f64::INFINITY, &links);
        let shorts: Vec<_> = links
            .iter()
            .map(|&l| p.add_variable(f64::INFINITY, &[l]))
            .collect();
        let rates = p.solve();
        assert!((rates[long.0] - 0.5).abs() < EPS);
        for s in shorts {
            assert!((rates[s.0] - 0.5).abs() < EPS);
        }
    }

    #[test]
    fn zero_capacity_freezes_flows_at_zero() {
        let mut p = MaxMinProblem::new();
        let l = p.add_constraint(0.0);
        p.add_variable(f64::INFINITY, &[l]);
        let rates = p.solve();
        assert_eq!(rates[0], 0.0);
    }

    #[test]
    fn duplicate_route_links_are_deduplicated() {
        // A route that lists the same link twice (e.g. loopback through a
        // switch) must not double-count the flow on that link.
        let mut p = MaxMinProblem::new();
        let l = p.add_constraint(100.0);
        p.add_variable(f64::INFINITY, &[l, l]);
        let rates = p.solve();
        assert!((rates[0] - 100.0).abs() < EPS);
    }

    #[test]
    fn tiny_weights_do_not_zero_the_weight_sum() {
        // Regression: with the old absolute 1e-12 snap-to-zero in
        // `freeze_var`, freezing the first 1e-15-weight variable wiped the
        // constraint's remaining weight sum, so the constraint dropped out
        // of the λ search and the unbounded second variable was frozen at
        // rate = +∞ by the `best.is_infinite()` guard. With the relative
        // tolerance it correctly receives the leftover capacity.
        let mut p = MaxMinProblem::new();
        let l = p.add_constraint(100.0);
        p.add_weighted_variable(10.0, 1e-15, &[l]);
        let free = p.add_weighted_variable(f64::INFINITY, 1e-15, &[l]);
        let rates = p.solve();
        assert!((rates[0] - 10.0).abs() < EPS);
        assert!(
            rates[free.0].is_finite(),
            "unbounded var escaped the constraint: rate {}",
            rates[free.0]
        );
        assert!((rates[free.0] - 90.0).abs() < EPS);
    }

    #[test]
    fn unconstrained_bounded_variable_gets_its_bound() {
        let mut p = MaxMinProblem::new();
        let v = p.add_variable(42.0, &[]);
        let rates = p.solve();
        assert!((rates[v.0] - 42.0).abs() < EPS);
    }

    #[test]
    fn bottlenecks_name_the_freezing_constraint() {
        // Multi-hop: the long flow is bound by the narrow l2, the short
        // flow then saturates l1; the bounded flow freezes at its own cap.
        let mut p = MaxMinProblem::new();
        let l1 = p.add_constraint(100.0);
        let l2 = p.add_constraint(40.0);
        let long = p.add_variable(f64::INFINITY, &[l1, l2]);
        let short = p.add_variable(f64::INFINITY, &[l1]);
        let capped = p.add_variable(10.0, &[l1]);
        let (rates, bn) = p.solve_with_bottlenecks();
        assert_eq!(bn[long.0], Some(l2));
        assert_eq!(bn[short.0], Some(l1));
        assert_eq!(bn[capped.0], None);
        assert_eq!(rates, p.solve(), "tracking must not perturb rates");
    }

    #[test]
    fn bound_tie_with_saturation_attributes_to_constraint() {
        // Both flows hit the constraint's saturation level exactly as one
        // reaches its bound: the shared resource is reported for the
        // saturated case, the bound (None) only when strictly smaller.
        let mut p = MaxMinProblem::new();
        let l = p.add_constraint(100.0);
        let a = p.add_variable(50.0, &[l]);
        let b = p.add_variable(f64::INFINITY, &[l]);
        let (rates, bn) = p.solve_with_bottlenecks();
        assert!((rates[a.0] - 50.0).abs() < EPS);
        assert!((rates[b.0] - 50.0).abs() < EPS);
        assert_eq!(bn[b.0], Some(l));
    }

    #[test]
    fn unconstrained_variable_has_no_bottleneck() {
        let mut p = MaxMinProblem::new();
        let v = p.add_variable(42.0, &[]);
        let (rates, bn) = p.solve_with_bottlenecks();
        assert!((rates[v.0] - 42.0).abs() < EPS);
        assert_eq!(bn[v.0], None);
    }
}
