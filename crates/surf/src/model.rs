//! Point-to-point transfer models (paper §4.1).
//!
//! All on-line MPI simulators before SMPI used the affine model
//! `T(s) = α + s/β`. Real TCP clusters behave piece-wise linearly instead:
//! sub-MTU messages fit a single IP frame (higher effective rate), and MPI
//! implementations switch from eager to rendezvous mode around 64 KiB. SMPI
//! therefore models `T(s)` with a small number of linear segments, each with
//! its own latency and bandwidth, selected by message size.
//!
//! A [`TransferModel`] stores segments as *factors* relative to the
//! platform's nominal route latency (sum over hops) and nominal route
//! bandwidth (min over hops). This is what makes a calibration performed on
//! one cluster (griffon) transferable to another (gdx, Figs. 4–5): the
//! factors capture protocol behaviour, the platform captures the hardware.

/// One linear segment of a piece-wise linear transfer model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Exclusive upper bound on message size (bytes) for this segment;
    /// `f64::INFINITY` for the last segment.
    pub upper: f64,
    /// Multiplier applied to the route's nominal latency.
    pub lat_factor: f64,
    /// Multiplier applied to the route's nominal bandwidth to obtain the
    /// flow's individual rate bound.
    pub bw_factor: f64,
}

/// A piece-wise linear point-to-point transfer model.
///
/// The affine models of previous simulators are the 1-segment special case;
/// the paper instantiates 3 segments (8 parameters: 2 boundaries + 3 × (α,β)).
#[derive(Debug, Clone, PartialEq)]
pub struct TransferModel {
    segments: Vec<Segment>,
}

impl TransferModel {
    /// Builds a model from segments. Segments must be sorted by `upper`,
    /// strictly increasing, and the last must be unbounded.
    pub fn new(segments: Vec<Segment>) -> Self {
        assert!(!segments.is_empty(), "a transfer model needs >= 1 segment");
        for w in segments.windows(2) {
            assert!(
                w[0].upper < w[1].upper,
                "segment boundaries must be strictly increasing"
            );
        }
        let last = segments.last().unwrap();
        assert!(
            last.upper.is_infinite(),
            "last segment must cover all sizes"
        );
        for s in &segments {
            assert!(s.lat_factor >= 0.0 && s.lat_factor.is_finite());
            assert!(s.bw_factor > 0.0 && s.bw_factor.is_finite());
        }
        TransferModel { segments }
    }

    /// The affine model `T(s) = lat_factor·L + s/(bw_factor·B)`: the baseline
    /// used by prior simulators and by Figs. 3–5 for comparison.
    pub fn affine(lat_factor: f64, bw_factor: f64) -> Self {
        TransferModel::new(vec![Segment {
            upper: f64::INFINITY,
            lat_factor,
            bw_factor,
        }])
    }

    /// The "Default Affine" instantiation of the paper: latency taken from a
    /// 1-byte message (factor 1.0) and bandwidth at 92% of nominal (typical
    /// achievable TCP payload rate on Gigabit Ethernet).
    pub fn default_affine() -> Self {
        TransferModel::affine(1.0, 0.92)
    }

    /// An ideal model used by the "no contention / no protocol" comparisons:
    /// nominal latency, nominal bandwidth.
    pub fn ideal() -> Self {
        TransferModel::affine(1.0, 1.0)
    }

    /// The segment that applies to a message of `size` bytes.
    pub fn segment_for(&self, size: f64) -> Segment {
        debug_assert!(size >= 0.0);
        for s in &self.segments {
            if size < s.upper {
                return *s;
            }
        }
        *self.segments.last().unwrap()
    }

    /// All segments, sorted by upper bound.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Predicted transfer time for `size` bytes on a route with the given
    /// nominal latency (seconds) and bandwidth (bytes/s), *without*
    /// contention. This is the closed form used when validating against
    /// ping-pong measurements (Figs. 3–5).
    pub fn predict(&self, size: f64, route_latency: f64, route_bandwidth: f64) -> f64 {
        let seg = self.segment_for(size);
        seg.lat_factor * route_latency + size / (seg.bw_factor * route_bandwidth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_segments() -> TransferModel {
        TransferModel::new(vec![
            Segment {
                upper: 1024.0,
                lat_factor: 0.5,
                bw_factor: 2.0,
            },
            Segment {
                upper: 65536.0,
                lat_factor: 1.0,
                bw_factor: 1.0,
            },
            Segment {
                upper: f64::INFINITY,
                lat_factor: 2.0,
                bw_factor: 0.9,
            },
        ])
    }

    #[test]
    fn segment_selection_uses_exclusive_upper_bounds() {
        let m = three_segments();
        assert_eq!(m.segment_for(0.0).lat_factor, 0.5);
        assert_eq!(m.segment_for(1023.0).lat_factor, 0.5);
        assert_eq!(m.segment_for(1024.0).lat_factor, 1.0);
        assert_eq!(m.segment_for(65535.9).lat_factor, 1.0);
        assert_eq!(m.segment_for(65536.0).lat_factor, 2.0);
        assert_eq!(m.segment_for(1e12).lat_factor, 2.0);
    }

    #[test]
    fn predict_is_affine_within_a_segment() {
        let m = three_segments();
        let (lat, bw) = (1e-4, 125e6);
        let t1 = m.predict(2048.0, lat, bw);
        let t2 = m.predict(4096.0, lat, bw);
        // Slope within segment 2 must be 1/bw exactly.
        assert!((t2 - t1 - 2048.0 / bw).abs() < 1e-15);
    }

    #[test]
    fn default_affine_has_single_segment() {
        let m = TransferModel::default_affine();
        assert_eq!(m.segments().len(), 1);
        assert_eq!(m.segment_for(1e9).bw_factor, 0.92);
    }

    #[test]
    #[should_panic]
    fn rejects_bounded_last_segment() {
        TransferModel::new(vec![Segment {
            upper: 100.0,
            lat_factor: 1.0,
            bw_factor: 1.0,
        }]);
    }

    #[test]
    #[should_panic]
    fn rejects_unsorted_segments() {
        TransferModel::new(vec![
            Segment {
                upper: 100.0,
                lat_factor: 1.0,
                bw_factor: 1.0,
            },
            Segment {
                upper: 50.0,
                lat_factor: 1.0,
                bw_factor: 1.0,
            },
            Segment {
                upper: f64::INFINITY,
                lat_factor: 1.0,
                bw_factor: 1.0,
            },
        ]);
    }
}
