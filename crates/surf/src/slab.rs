//! Generation-tagged slab arena for simulation actions.
//!
//! The kernel used to keep every action ever started in a growing `Vec`,
//! which made per-event cost proportional to the *lifetime* action count.
//! This slab recycles slots through a free list so the arena stays as small
//! as the peak number of concurrently-live entries, and tags each slot with
//! a generation counter so a recycled slot can never be confused with the
//! action that previously occupied it: a handle whose generation does not
//! match the slot's current generation refers to a removed (completed)
//! entry.

/// A slab arena with free-list slot recycling and per-slot generations.
#[derive(Debug, Clone)]
pub struct Slab<T> {
    slots: Vec<Entry<T>>,
    free: Vec<u32>,
    live: usize,
    peak: usize,
}

#[derive(Debug, Clone)]
struct Entry<T> {
    gen: u32,
    val: Option<T>,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Slab<T> {
    /// Creates an empty slab.
    pub fn new() -> Self {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            peak: 0,
        }
    }

    /// Inserts a value, recycling a free slot when one exists. Returns the
    /// `(slot, generation)` pair identifying the entry.
    pub fn insert(&mut self, val: T) -> (u32, u32) {
        self.live += 1;
        self.peak = self.peak.max(self.live);
        if let Some(slot) = self.free.pop() {
            let e = &mut self.slots[slot as usize];
            debug_assert!(e.val.is_none());
            e.val = Some(val);
            (slot, e.gen)
        } else {
            let slot = u32::try_from(self.slots.len()).expect("slab overflow");
            self.slots.push(Entry {
                gen: 0,
                val: Some(val),
            });
            (slot, 0)
        }
    }

    /// Removes the entry in `slot`, bumping its generation so outstanding
    /// handles become stale. Panics if the slot is vacant.
    pub fn remove(&mut self, slot: u32) -> T {
        let e = &mut self.slots[slot as usize];
        let val = e.val.take().expect("slab slot already vacant");
        e.gen = e.gen.wrapping_add(1);
        self.free.push(slot);
        self.live -= 1;
        val
    }

    /// `true` when `(slot, gen)` still refers to a live entry.
    pub fn contains(&self, slot: u32, gen: u32) -> bool {
        self.slots
            .get(slot as usize)
            .is_some_and(|e| e.gen == gen && e.val.is_some())
    }

    /// The live entry in `slot`, if any (ignores generation).
    pub fn get(&self, slot: u32) -> Option<&T> {
        self.slots.get(slot as usize).and_then(|e| e.val.as_ref())
    }

    /// Mutable access to the live entry in `slot`, if any.
    pub fn get_mut(&mut self, slot: u32) -> Option<&mut T> {
        self.slots
            .get_mut(slot as usize)
            .and_then(|e| e.val.as_mut())
    }

    /// The live entry in `slot` iff its generation matches.
    pub fn get_tagged(&self, slot: u32, gen: u32) -> Option<&T> {
        self.slots
            .get(slot as usize)
            .filter(|e| e.gen == gen)
            .and_then(|e| e.val.as_ref())
    }

    /// Current generation of `slot` (slots never shrink away).
    pub fn generation(&self, slot: u32) -> u32 {
        self.slots[slot as usize].gen
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` when no entry is live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// High-water mark of concurrently-live entries.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Number of allocated slots (live + free); the arena footprint.
    pub fn capacity_slots(&self) -> usize {
        self.slots.len()
    }

    /// Iterates over live entries as `(slot, generation, &value)`.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.val.as_ref().map(|v| (i as u32, e.gen, v)))
    }

    /// Iterates over live entries as `(slot, generation, &mut value)`.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (u32, u32, &mut T)> {
        self.slots
            .iter_mut()
            .enumerate()
            .filter_map(|(i, e)| e.val.as_mut().map(|v| (i as u32, e.gen, v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut s = Slab::new();
        let (slot, gen) = s.insert("a");
        assert_eq!(s.get_tagged(slot, gen), Some(&"a"));
        assert_eq!(s.len(), 1);
        assert_eq!(s.remove(slot), "a");
        assert!(s.is_empty());
        assert!(!s.contains(slot, gen));
    }

    #[test]
    fn slots_are_recycled_with_fresh_generations() {
        let mut s = Slab::new();
        let (s0, g0) = s.insert(1);
        s.remove(s0);
        let (s1, g1) = s.insert(2);
        assert_eq!(s0, s1, "free slot must be recycled");
        assert_ne!(g0, g1, "recycled slot must get a new generation");
        assert!(!s.contains(s0, g0), "old handle must be stale");
        assert!(s.contains(s1, g1));
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut s = Slab::new();
        let (a, _) = s.insert(1);
        let (b, _) = s.insert(2);
        s.remove(a);
        s.remove(b);
        s.insert(3);
        assert_eq!(s.peak(), 2);
        assert_eq!(s.len(), 1);
        assert_eq!(s.capacity_slots(), 2, "arena must not grow past the peak");
    }

    #[test]
    fn iter_yields_live_entries_only() {
        let mut s = Slab::new();
        let (a, _) = s.insert(10);
        let (_b, _) = s.insert(20);
        s.remove(a);
        let got: Vec<i32> = s.iter().map(|(_, _, &v)| v).collect();
        assert_eq!(got, vec![20]);
    }
}
