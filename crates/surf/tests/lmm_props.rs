//! Property-based tests of the max-min fairness solver.
//!
//! Invariants checked on random problem instances:
//! 1. Feasibility: no constraint capacity is exceeded.
//! 2. Bounds: no variable exceeds its individual bound.
//! 3. Maximality: every variable is limited by *something* — its bound or a
//!    saturated constraint (otherwise the allocation would not be max-min).
//! 4. Non-negativity of all rates.
//!
//! Plus two *bitwise* differential pins (see the `lmm` module docs): the
//! heap/cursor production solver against the quadratic progressive-filling
//! reference, and folded class variables against their expanded members
//! under the uniform-round precondition. Bitwise is deliberate — the
//! engine's incremental reshare, the class-folding fast path and the e2e
//! goldens all rely on the solver being a pure function of the problem, not
//! merely accurate to a tolerance.

use proptest::prelude::*;
use surf_sim::{CnstId, MaxMinProblem};

const EPS: f64 = 1e-6;

#[derive(Debug, Clone)]
struct RandomProblem {
    capacities: Vec<f64>,
    vars: Vec<(Option<f64>, Vec<usize>)>, // (bound, constraint indices)
}

fn random_problem() -> impl Strategy<Value = RandomProblem> {
    (1usize..8)
        .prop_flat_map(|nc| {
            let caps = proptest::collection::vec(0.1f64..1000.0, nc);
            let vars = proptest::collection::vec(
                (
                    proptest::option::of(0.01f64..500.0),
                    proptest::collection::vec(0..nc, 1..=nc.min(4)),
                ),
                1..12,
            );
            (caps, vars)
        })
        .prop_map(|(capacities, vars)| RandomProblem { capacities, vars })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn maxmin_invariants(rp in random_problem()) {
        let mut p = MaxMinProblem::new();
        let cnsts: Vec<_> = rp.capacities.iter().map(|&c| p.add_constraint(c)).collect();
        for (bound, members) in &rp.vars {
            let cs: Vec<_> = members.iter().map(|&i| cnsts[i]).collect();
            p.add_variable(bound.unwrap_or(f64::INFINITY), &cs);
        }
        let rates = p.solve();

        // (4) non-negative and finite
        for &r in &rates {
            prop_assert!(r.is_finite() && r >= 0.0, "rate {r}");
        }

        // (1) feasibility
        let mut usage = vec![0.0; rp.capacities.len()];
        for (v, (_, members)) in rp.vars.iter().enumerate() {
            let mut seen: Vec<usize> = members.clone();
            seen.sort_unstable();
            seen.dedup();
            for c in seen {
                usage[c] += rates[v];
            }
        }
        for (c, (&u, &cap)) in usage.iter().zip(&rp.capacities).enumerate() {
            prop_assert!(
                u <= cap * (1.0 + EPS) + EPS,
                "constraint {c} overloaded: usage {u} > cap {cap}"
            );
        }

        // (2) bounds respected
        for (v, (bound, _)) in rp.vars.iter().enumerate() {
            if let Some(b) = bound {
                prop_assert!(rates[v] <= b * (1.0 + EPS) + EPS);
            }
        }

        // (3) maximality: each variable limited by its bound or by a
        // saturated constraint it crosses.
        for (v, (bound, members)) in rp.vars.iter().enumerate() {
            let bound_tight = bound.is_some_and(|b| rates[v] >= b * (1.0 - EPS) - EPS);
            let cnst_tight = members.iter().any(|&c| {
                usage[c] >= rp.capacities[c] * (1.0 - EPS) - EPS
            });
            prop_assert!(
                bound_tight || cnst_tight,
                "variable {v} (rate {}) is limited by nothing",
                rates[v]
            );
        }
    }

    #[test]
    fn equal_flows_on_one_link_get_equal_shares(
        cap in 1.0f64..1e9,
        n in 1usize..32,
    ) {
        let mut p = MaxMinProblem::new();
        let l = p.add_constraint(cap);
        for _ in 0..n {
            p.add_variable(f64::INFINITY, &[l]);
        }
        let rates = p.solve();
        for &r in &rates {
            prop_assert!((r - cap / n as f64).abs() <= EPS * cap);
        }
    }

    #[test]
    fn solve_is_deterministic(rp in random_problem()) {
        let build = || {
            let mut p = MaxMinProblem::new();
            let cnsts: Vec<_> = rp.capacities.iter().map(|&c| p.add_constraint(c)).collect();
            for (bound, members) in &rp.vars {
                let cs: Vec<_> = members.iter().map(|&i| cnsts[i]).collect();
                p.add_variable(bound.unwrap_or(f64::INFINITY), &cs);
            }
            p.solve()
        };
        prop_assert_eq!(build(), build());
    }

    /// The production solver (lazy min-heap + bound cursor) must follow the
    /// exact freeze schedule of the naive reference scan: every returned
    /// rate is bit-for-bit identical, including ties, unbounded variables
    /// and weighted flows.
    #[test]
    fn fast_solver_matches_reference_bitwise(
        caps in proptest::collection::vec(1e2f64..1e9, 1..6),
        vars in proptest::collection::vec(
            (0u8..3, 1.0f64..1e6, 1u8..9, 0u8..255), 1..40),
    ) {
        let mut p = MaxMinProblem::new();
        let cs: Vec<CnstId> = caps.iter().map(|&c| p.add_constraint(c)).collect();
        for (i, &(kind, b, w8, mask)) in vars.iter().enumerate() {
            // Mix small bounds (the bound freezes first), large bounds (a
            // constraint freezes first) and unbounded flows.
            let bound = match kind {
                0 => b,
                1 => b * 1e6,
                _ => f64::INFINITY,
            };
            p.add_weighted_variable(bound, w8 as f64 * 0.5, &subset(&cs, mask, i));
        }
        // `solve_heap` bypasses the size dispatch: these instances are small
        // enough that `solve` would route them to the scan loop, and the
        // point here is pinning the heap path itself.
        let fast = p.solve_heap();
        let reference = p.solve_reference();
        prop_assert_eq!(fast.len(), reference.len());
        for (v, (f, r)) in fast.iter().zip(reference.iter()).enumerate() {
            prop_assert!(
                f.to_bits() == r.to_bits(),
                "var {} diverged: fast {:e} vs reference {:e}", v, f, r
            );
        }
        // The public entry point must agree with both, whichever side of the
        // size dispatch it lands on.
        let dispatched = p.solve();
        for (v, (d, r)) in dispatched.iter().zip(reference.iter()).enumerate() {
            prop_assert!(
                d.to_bits() == r.to_bits(),
                "var {} diverged through dispatch: {:e} vs {:e}", v, d, r
            );
        }
    }

    /// Folding interchangeable members into one class variable is exact
    /// under the uniform-round precondition (one weight, one bound
    /// bit-pattern): every expanded member's rate equals its class
    /// representative's rate bitwise, and the folded problem still agrees
    /// with the reference solver.
    #[test]
    fn folded_classes_match_expanded_members_bitwise(
        caps in proptest::collection::vec(1e3f64..1e9, 1..5),
        classes in proptest::collection::vec((1u32..6, 0u8..255), 1..10),
        bound_sel in 0u8..3,
    ) {
        // One bound bit-pattern for the whole problem (precondition P1).
        let bound = match bound_sel {
            0 => 1e4,
            1 => 2.5e8,
            _ => f64::INFINITY,
        };
        let mut expanded = MaxMinProblem::new();
        let ce: Vec<CnstId> = caps.iter().map(|&c| expanded.add_constraint(c)).collect();
        let mut folded = MaxMinProblem::new();
        let cf: Vec<CnstId> = caps.iter().map(|&c| folded.add_constraint(c)).collect();
        // Expanded member index → folded variable (= class) index.
        let mut class_of = Vec::new();
        for (ci, &(mult, mask)) in classes.iter().enumerate() {
            folded.add_variable_class(bound, mult, &subset(&cf, mask, ci));
            for _ in 0..mult {
                expanded.add_variable(bound, &subset(&ce, mask, ci));
                class_of.push(ci);
            }
        }
        let re = expanded.solve();
        let rf = folded.solve();
        prop_assert_eq!(rf.len(), classes.len());
        for (member, &class) in class_of.iter().enumerate() {
            prop_assert!(
                re[member].to_bits() == rf[class].to_bits(),
                "member {} of class {} diverged: expanded {:e} vs folded {:e}",
                member, class, re[member], rf[class]
            );
        }
        // The folded problem is also an ordinary problem: both solver paths
        // must still track the reference on it.
        let rr = folded.solve_reference();
        let rh = folded.solve_heap();
        for (c, ((f, r), h)) in rf.iter().zip(rr.iter()).zip(rh.iter()).enumerate() {
            prop_assert!(
                f.to_bits() == r.to_bits() && h.to_bits() == r.to_bits(),
                "class {} diverged from reference: {:e} / {:e} vs {:e}", c, f, h, r
            );
        }
    }
}

/// Picks a non-empty constraint subset from `mask` (falling back to one
/// deterministic constraint when the mask selects none).
fn subset(cs: &[CnstId], mask: u8, fallback: usize) -> Vec<CnstId> {
    let picked: Vec<CnstId> = cs
        .iter()
        .enumerate()
        .filter(|(k, _)| mask >> k & 1 == 1)
        .map(|(_, &c)| c)
        .collect();
    if picked.is_empty() {
        vec![cs[fallback % cs.len()]]
    } else {
        picked
    }
}
