//! Property-based tests of the max-min fairness solver.
//!
//! Invariants checked on random problem instances:
//! 1. Feasibility: no constraint capacity is exceeded.
//! 2. Bounds: no variable exceeds its individual bound.
//! 3. Maximality: every variable is limited by *something* — its bound or a
//!    saturated constraint (otherwise the allocation would not be max-min).
//! 4. Non-negativity of all rates.

use proptest::prelude::*;
use surf_sim::MaxMinProblem;

const EPS: f64 = 1e-6;

#[derive(Debug, Clone)]
struct RandomProblem {
    capacities: Vec<f64>,
    vars: Vec<(Option<f64>, Vec<usize>)>, // (bound, constraint indices)
}

fn random_problem() -> impl Strategy<Value = RandomProblem> {
    (1usize..8)
        .prop_flat_map(|nc| {
            let caps = proptest::collection::vec(0.1f64..1000.0, nc);
            let vars = proptest::collection::vec(
                (
                    proptest::option::of(0.01f64..500.0),
                    proptest::collection::vec(0..nc, 1..=nc.min(4)),
                ),
                1..12,
            );
            (caps, vars)
        })
        .prop_map(|(capacities, vars)| RandomProblem { capacities, vars })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn maxmin_invariants(rp in random_problem()) {
        let mut p = MaxMinProblem::new();
        let cnsts: Vec<_> = rp.capacities.iter().map(|&c| p.add_constraint(c)).collect();
        for (bound, members) in &rp.vars {
            let cs: Vec<_> = members.iter().map(|&i| cnsts[i]).collect();
            p.add_variable(bound.unwrap_or(f64::INFINITY), &cs);
        }
        let rates = p.solve();

        // (4) non-negative and finite
        for &r in &rates {
            prop_assert!(r.is_finite() && r >= 0.0, "rate {r}");
        }

        // (1) feasibility
        let mut usage = vec![0.0; rp.capacities.len()];
        for (v, (_, members)) in rp.vars.iter().enumerate() {
            let mut seen: Vec<usize> = members.clone();
            seen.sort_unstable();
            seen.dedup();
            for c in seen {
                usage[c] += rates[v];
            }
        }
        for (c, (&u, &cap)) in usage.iter().zip(&rp.capacities).enumerate() {
            prop_assert!(
                u <= cap * (1.0 + EPS) + EPS,
                "constraint {c} overloaded: usage {u} > cap {cap}"
            );
        }

        // (2) bounds respected
        for (v, (bound, _)) in rp.vars.iter().enumerate() {
            if let Some(b) = bound {
                prop_assert!(rates[v] <= b * (1.0 + EPS) + EPS);
            }
        }

        // (3) maximality: each variable limited by its bound or by a
        // saturated constraint it crosses.
        for (v, (bound, members)) in rp.vars.iter().enumerate() {
            let bound_tight = bound.is_some_and(|b| rates[v] >= b * (1.0 - EPS) - EPS);
            let cnst_tight = members.iter().any(|&c| {
                usage[c] >= rp.capacities[c] * (1.0 - EPS) - EPS
            });
            prop_assert!(
                bound_tight || cnst_tight,
                "variable {v} (rate {}) is limited by nothing",
                rates[v]
            );
        }
    }

    #[test]
    fn equal_flows_on_one_link_get_equal_shares(
        cap in 1.0f64..1e9,
        n in 1usize..32,
    ) {
        let mut p = MaxMinProblem::new();
        let l = p.add_constraint(cap);
        for _ in 0..n {
            p.add_variable(f64::INFINITY, &[l]);
        }
        let rates = p.solve();
        for &r in &rates {
            prop_assert!((r - cap / n as f64).abs() <= EPS * cap);
        }
    }

    #[test]
    fn solve_is_deterministic(rp in random_problem()) {
        let build = || {
            let mut p = MaxMinProblem::new();
            let cnsts: Vec<_> = rp.capacities.iter().map(|&c| p.add_constraint(c)).collect();
            for (bound, members) in &rp.vars {
                let cs: Vec<_> = members.iter().map(|&i| cnsts[i]).collect();
                p.add_variable(bound.unwrap_or(f64::INFINITY), &cs);
            }
            p.solve()
        };
        prop_assert_eq!(build(), build());
    }
}
