//! Property-based tests of the simulation engine.

use proptest::prelude::*;
use surf_sim::{Simulation, TransferModel};

/// One observation of the differential churn test: event time, completed
/// action ids, and the (id, rate) of every still-live action.
type ChurnEvent = (f64, Vec<u64>, Vec<(u64, f64)>);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The clock never moves backwards, every started action eventually
    /// completes, and completions are reported exactly once.
    #[test]
    fn all_transfers_complete_in_monotone_time(
        sizes in proptest::collection::vec(0.0f64..1e7, 1..20),
        bw in 1e3f64..1e9,
        lat in 0.0f64..1e-2,
    ) {
        let mut sim = Simulation::new();
        let l = sim.add_link(bw, lat);
        let ids: Vec<_> = sizes
            .iter()
            .map(|&s| sim.start_transfer(&[l], s, &TransferModel::ideal()))
            .collect();
        let mut last = sim.now();
        let mut completed = Vec::new();
        while let Some((t, done)) = sim.advance_to_next() {
            prop_assert!(t >= last, "clock went backwards");
            last = t;
            completed.extend(done);
        }
        completed.sort();
        let mut expect = ids.clone();
        expect.sort();
        prop_assert_eq!(completed, expect);
    }

    /// A lone transfer takes exactly latency + size/bandwidth.
    #[test]
    fn lone_transfer_matches_closed_form(
        size in 1.0f64..1e8,
        bw in 1e3f64..2e9,
        lat in 0.0f64..1.0,
    ) {
        let mut sim = Simulation::new();
        let l = sim.add_link(bw, lat);
        sim.start_transfer(&[l], size, &TransferModel::ideal());
        let (t, _) = sim.advance_to_next().unwrap();
        let expect = lat + size / bw;
        prop_assert!(
            (t.as_secs() - expect).abs() <= 1e-9 * (1.0 + expect),
            "got {}, expected {}", t.as_secs(), expect
        );
    }

    /// n equal flows on one link take exactly n times as long as one flow
    /// (ignoring latency): aggregate bandwidth is conserved.
    #[test]
    fn bandwidth_conservation(n in 1usize..16, size in 1e3f64..1e6, bw in 1e4f64..1e9) {
        let mut sim = Simulation::new();
        let l = sim.add_link(bw, 0.0);
        for _ in 0..n {
            sim.start_transfer(&[l], size, &TransferModel::ideal());
        }
        let mut end = 0.0;
        while let Some((t, _)) = sim.advance_to_next() {
            end = t.as_secs();
        }
        let expect = n as f64 * size / bw;
        prop_assert!((end - expect).abs() <= 1e-6 * expect.max(1.0));
    }

    /// Differential test of the incremental reshare against the full-rebuild
    /// reference: an arbitrary churn of transfers, execs, sleeps and
    /// advances must produce the same completion schedule and the same
    /// intermediate rates in both modes.
    #[test]
    fn incremental_reshare_matches_full_rebuild(
        raw_ops in proptest::collection::vec(
            (0u8..4, 0usize..8, 1e2f64..1e6), 1..50),
        bws in proptest::collection::vec(1e5f64..1e9, 1..4),
        lat in 0.0f64..1e-3,
    ) {
        // One run of the scenario; `force` switches the kernel between the
        // incremental path and the full-rebuild reference.
        let run = |force: bool| {
            let mut sim = Simulation::new();
            sim.set_full_reshare(force);
            let links: Vec<_> = bws.iter().map(|&bw| sim.add_link(bw, lat)).collect();
            let h = sim.add_host(1e9);
            let mut started = Vec::new();
            // Each trace entry: (time, completed ids, live (id, rate) pairs).
            let mut trace: Vec<ChurnEvent> = Vec::new();
            let observe = |sim: &Simulation,
                               started: &[surf_sim::ActionId],
                               trace: &mut Vec<ChurnEvent>,
                               t: f64,
                               done: Vec<surf_sim::ActionId>| {
                let mut done: Vec<u64> = done.iter().map(|a| a.raw()).collect();
                done.sort_unstable();
                let mut rates: Vec<(u64, f64)> = started
                    .iter()
                    .filter(|&&a| !sim.is_done(a))
                    .map(|&a| (a.raw(), sim.action_rate(a).unwrap()))
                    .collect();
                rates.sort_unstable_by_key(|r| r.0);
                trace.push((t, done, rates));
            };
            for &(kind, sel, x) in &raw_ops {
                match kind {
                    0 => {
                        let hops = sel % links.len() + 1;
                        let route: Vec<_> =
                            (0..hops).map(|k| links[(sel + k) % links.len()]).collect();
                        started.push(sim.start_transfer(&route, x, &TransferModel::ideal()));
                    }
                    1 => started.push(sim.start_exec(h, x * 1e3)),
                    2 => started.push(sim.start_sleep(x * 1e-6)),
                    _ => {
                        if let Some((t, done)) = sim.advance_to_next() {
                            observe(&sim, &started, &mut trace, t.as_secs(), done);
                        }
                    }
                }
            }
            while let Some((t, done)) = sim.advance_to_next() {
                observe(&sim, &started, &mut trace, t.as_secs(), done);
            }
            trace
        };
        let inc = run(false);
        let full = run(true);
        prop_assert_eq!(inc.len(), full.len());
        for ((ti, di, ri), (tf, df, rf)) in inc.iter().zip(full.iter()) {
            prop_assert!(
                (ti - tf).abs() <= 1e-9 * tf.abs().max(1e-12),
                "event time diverged: {} vs {}", ti, tf
            );
            prop_assert_eq!(di, df);
            prop_assert_eq!(ri.len(), rf.len());
            for ((idi, ratei), (idf, ratef)) in ri.iter().zip(rf.iter()) {
                prop_assert_eq!(idi, idf);
                prop_assert!(
                    (ratei - ratef).abs() <= 1e-9 * ratef.abs().max(1e-12),
                    "rate diverged for {}: {} vs {}", idi, ratei, ratef
                );
            }
        }
    }

    /// Differential pin of the collective-aware fast path: the batched,
    /// class-folded incremental engine must be *bitwise* identical — event
    /// times, completion batches and every live rate — to both the folding
    /// ablation and the naive engine (full reshare per completion, folding
    /// off) across randomized collective-style rounds on a shared route.
    /// Uniform rounds (one model, one rate bound) hit the folding and
    /// same-instant batching paths; mixed rounds give each flow a distinct
    /// bound bit-pattern, forcing the heterogeneous fallback; undrained
    /// rounds overlap into the next so folded-eligible and ineligible flows
    /// coexist in one component.
    ///
    /// One shared route keeps every flow in a single component, so the
    /// incremental and full paths fold remaining work at the same instants
    /// and bit-identity is well-defined (with disjoint components the two
    /// schemes re-quantize at different events — that regime is covered by
    /// the tolerance-based churn test above).
    #[test]
    fn fast_path_matches_naive_engine_bitwise(
        rounds in proptest::collection::vec(
            // (flows, size, uniform?, drain before next round?)
            (1usize..12, 1e3f64..1e6, 0u8..2, 0u8..2), 1..8),
        bws in proptest::collection::vec(1e5f64..1e9, 1..3),
        lat in 0.0f64..1e-3,
    ) {
        // Every observation is captured as raw bits: this test asserts
        // bit-identity, not closeness.
        type BitEvent = (u64, Vec<u64>, Vec<(u64, u64)>);
        let run = |naive_full: bool, folding: bool| {
            let mut sim = Simulation::new();
            sim.set_full_reshare(naive_full);
            sim.set_class_folding(folding);
            let route: Vec<_> = bws.iter().map(|&bw| sim.add_link(bw, lat)).collect();
            let mut started = Vec::new();
            let mut events: Vec<BitEvent> = Vec::new();
            let mut observe = |sim: &Simulation,
                               started: &[surf_sim::ActionId],
                               t: f64,
                               done: Vec<surf_sim::ActionId>| {
                let mut done: Vec<u64> = done.iter().map(|a| a.raw()).collect();
                done.sort_unstable();
                let mut rates: Vec<(u64, u64)> = started
                    .iter()
                    .filter(|&&a| !sim.is_done(a))
                    .map(|&a| (a.raw(), sim.action_rate(a).unwrap().to_bits()))
                    .collect();
                rates.sort_unstable_by_key(|r| r.0);
                events.push((t.to_bits(), done, rates));
            };
            for &(n, size, uni, drain) in &rounds {
                for k in 0..n {
                    // A flow's rate bound comes from its model's bandwidth
                    // factor: a shared model is an eager collective round
                    // (one bound bit-pattern, foldable); per-flow factors
                    // make the component heterogeneous.
                    let model = if uni == 1 {
                        TransferModel::ideal()
                    } else {
                        TransferModel::affine(1.0, 0.5 + k as f64 * 0.07)
                    };
                    started.push(sim.start_transfer(&route, size, &model));
                }
                if drain == 1 {
                    while let Some((t, done)) = sim.advance_to_next() {
                        observe(&sim, &started, t.as_secs(), done);
                    }
                }
            }
            while let Some((t, done)) = sim.advance_to_next() {
                observe(&sim, &started, t.as_secs(), done);
            }
            events
        };
        let fast = run(false, true);
        let ablated = run(false, false);
        let naive = run(true, false);
        prop_assert_eq!(&fast, &ablated);
        prop_assert_eq!(&fast, &naive);
    }
}
