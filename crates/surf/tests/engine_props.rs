//! Property-based tests of the simulation engine.

use proptest::prelude::*;
use surf_sim::{Simulation, TransferModel};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The clock never moves backwards, every started action eventually
    /// completes, and completions are reported exactly once.
    #[test]
    fn all_transfers_complete_in_monotone_time(
        sizes in proptest::collection::vec(0.0f64..1e7, 1..20),
        bw in 1e3f64..1e9,
        lat in 0.0f64..1e-2,
    ) {
        let mut sim = Simulation::new();
        let l = sim.add_link(bw, lat);
        let ids: Vec<_> = sizes
            .iter()
            .map(|&s| sim.start_transfer(&[l], s, &TransferModel::ideal()))
            .collect();
        let mut last = sim.now();
        let mut completed = Vec::new();
        while let Some((t, done)) = sim.advance_to_next() {
            prop_assert!(t >= last, "clock went backwards");
            last = t;
            completed.extend(done);
        }
        completed.sort();
        let mut expect = ids.clone();
        expect.sort();
        prop_assert_eq!(completed, expect);
    }

    /// A lone transfer takes exactly latency + size/bandwidth.
    #[test]
    fn lone_transfer_matches_closed_form(
        size in 1.0f64..1e8,
        bw in 1e3f64..2e9,
        lat in 0.0f64..1.0,
    ) {
        let mut sim = Simulation::new();
        let l = sim.add_link(bw, lat);
        sim.start_transfer(&[l], size, &TransferModel::ideal());
        let (t, _) = sim.advance_to_next().unwrap();
        let expect = lat + size / bw;
        prop_assert!(
            (t.as_secs() - expect).abs() <= 1e-9 * (1.0 + expect),
            "got {}, expected {}", t.as_secs(), expect
        );
    }

    /// n equal flows on one link take exactly n times as long as one flow
    /// (ignoring latency): aggregate bandwidth is conserved.
    #[test]
    fn bandwidth_conservation(n in 1usize..16, size in 1e3f64..1e6, bw in 1e4f64..1e9) {
        let mut sim = Simulation::new();
        let l = sim.add_link(bw, 0.0);
        for _ in 0..n {
            sim.start_transfer(&[l], size, &TransferModel::ideal());
        }
        let mut end = 0.0;
        while let Some((t, _)) = sim.advance_to_next() {
            end = t.as_secs();
        }
        let expect = n as f64 * size / bw;
        prop_assert!((end - expect).abs() <= 1e-6 * expect.max(1.0));
    }
}
