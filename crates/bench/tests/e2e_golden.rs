//! Byte-for-byte regression tests against golden `repro -- dt` / `-- ep`
//! reports captured before the O(active) kernel refactor. Any change to the
//! engine's completion-time or rate arithmetic shows up here first.

#[test]
fn dt_report_matches_golden() {
    let got = smpi_bench::e2e::dt_report();
    let want = include_str!("golden/dt_report.txt");
    assert_eq!(got, want, "dt e2e report diverged from pre-refactor golden");
}

#[test]
fn ep_report_matches_golden() {
    let got = smpi_bench::e2e::ep_report();
    let want = include_str!("golden/ep_report.txt");
    assert_eq!(got, want, "ep e2e report diverged from pre-refactor golden");
}
