//! Byte-for-byte regression tests against golden `repro -- dt` / `-- ep`
//! reports captured before the O(active) kernel refactor. Any change to the
//! engine's completion-time or rate arithmetic shows up here first.

#[test]
fn dt_report_matches_golden() {
    let got = smpi_bench::e2e::dt_report();
    let want = include_str!("golden/dt_report.txt");
    assert_eq!(got, want, "dt e2e report diverged from pre-refactor golden");
}

#[test]
fn ep_report_matches_golden() {
    let got = smpi_bench::e2e::ep_report();
    let want = include_str!("golden/ep_report.txt");
    assert_eq!(got, want, "ep e2e report diverged from pre-refactor golden");
}

// Class folding is exact, not approximate: disabling it must reproduce the
// same goldens byte for byte, which (with the two tests above) pins the
// folded fast path to the unfolded reference on a full application run.

#[test]
fn dt_report_is_byte_identical_without_class_folding() {
    let got = smpi_bench::e2e::dt_report_unfolded();
    let want = include_str!("golden/dt_report.txt");
    assert_eq!(got, want, "folding ablation changed the dt e2e report");
}

#[test]
fn ep_report_is_byte_identical_without_class_folding() {
    let got = smpi_bench::e2e::ep_report_unfolded();
    let want = include_str!("golden/ep_report.txt");
    assert_eq!(got, want, "folding ablation changed the ep e2e report");
}
