//! Byte-for-byte regression tests against golden `repro -- dt` / `-- ep`
//! reports captured before the O(active) kernel refactor. Any change to the
//! engine's completion-time or rate arithmetic shows up here first.
//!
//! Mismatches go through [`smpi_diff::assert_golden`], which panics with a
//! first-divergence report (the offending lines plus context) instead of a
//! raw string inequality, and drops the machine-readable divergence under
//! `target/diff/<name>.divergence.json` for CI to upload.

use smpi_diff::assert_golden;

#[test]
fn dt_report_matches_golden() {
    let got = smpi_bench::e2e::dt_report();
    let want = include_str!("golden/dt_report.txt");
    assert_golden("dt_report", want, &got);
}

#[test]
fn ep_report_matches_golden() {
    let got = smpi_bench::e2e::ep_report();
    let want = include_str!("golden/ep_report.txt");
    assert_golden("ep_report", want, &got);
}

// Class folding is exact, not approximate: disabling it must reproduce the
// same goldens byte for byte, which (with the two tests above) pins the
// folded fast path to the unfolded reference on a full application run.

#[test]
fn dt_report_is_byte_identical_without_class_folding() {
    let got = smpi_bench::e2e::dt_report_unfolded();
    let want = include_str!("golden/dt_report.txt");
    assert_golden("dt_report_unfolded", want, &got);
}

#[test]
fn ep_report_is_byte_identical_without_class_folding() {
    let got = smpi_bench::e2e::ep_report_unfolded();
    let want = include_str!("golden/ep_report.txt");
    assert_golden("ep_report_unfolded", want, &got);
}
