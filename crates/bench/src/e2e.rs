//! Deterministic end-to-end regression reports (`repro -- dt` / `repro -- ep`).
//!
//! These targets exist to pin the simulator's *numerics*: they run a fixed
//! NAS DT and a fixed NAS EP configuration on-line on griffon with the SMPI
//! backend and print every simulated quantity at full 9-decimal precision,
//! with no wall-clock noise. The output is compared byte-for-byte against
//! golden files (`tests/golden/{dt,ep}_report.txt`) captured before the
//! O(active) kernel refactor, so any change to the engine's arithmetic is
//! caught immediately.

use std::fmt::Write as _;
use std::sync::Arc;

use smpi::{Backend, MpiProfile, World};
use smpi_platform::{griffon, RoutedPlatform};
use smpi_workloads::{build_graph, dt_rank, DtClass, DtGraph};
use surf_sim::{EngineConfig, TransferModel};

fn world() -> World {
    world_with(EngineConfig::default())
}

fn world_with(engine: EngineConfig) -> World {
    let rp = Arc::new(RoutedPlatform::new(griffon()));
    World::new(
        rp,
        Backend::Surf {
            model: TransferModel::default_affine(),
            engine,
        },
        MpiProfile::smpi(),
    )
}

/// [`dt_report`] with uniform-round class folding disabled — the ablation
/// arm of the byte-identity check against the committed golden.
pub fn dt_report_unfolded() -> String {
    dt_report_impl(world_with(EngineConfig {
        class_folding: false,
        ..EngineConfig::default()
    }))
}

/// Fixed DT run (class A, black-hole graph, griffon, affine model).
pub fn dt_report() -> String {
    dt_report_impl(world())
}

fn dt_report_impl(world: World) -> String {
    let class = DtClass::A;
    let graph = Arc::new(build_graph(class, DtGraph::Bh));
    let g = Arc::clone(&graph);
    let report = world.run(graph.num_nodes(), move |ctx| dt_rank(ctx, &g, class));
    let mut out = String::new();
    let _ = writeln!(out, "# e2e dt: class A, graph BH, griffon, smpi affine");
    let _ = writeln!(out, "ranks {}", graph.num_nodes());
    let _ = writeln!(out, "sim_time {:.9}", report.sim_time);
    for (r, t) in report.finish_times.iter().enumerate() {
        let _ = writeln!(out, "finish {r} {t:.9}");
    }
    for (r, checksum) in report.results.iter().enumerate() {
        let _ = writeln!(out, "checksum {r} {checksum:.9e}");
    }
    out
}

/// Fixed EP-style run (2^16 pairs over 8 ranks, griffon, affine model).
///
/// Unlike [`smpi_workloads::ep_rank`], compute bursts are charged as
/// *explicit* flop counts instead of measured wall-clock (`sample_local`
/// measures the host machine, which would make the report irreproducible);
/// the communication structure (block loop + final allreduce) is the same.
pub fn ep_report() -> String {
    ep_report_impl(world())
}

/// [`ep_report`] with uniform-round class folding disabled.
pub fn ep_report_unfolded() -> String {
    ep_report_impl(world_with(EngineConfig {
        class_folding: false,
        ..EngineConfig::default()
    }))
}

fn ep_report_impl(world: World) -> String {
    const RANKS: u64 = 8;
    const TOTAL_PAIRS: u64 = 1 << 16;
    const BLOCKS: u64 = 8;
    /// Deterministic stand-in for the measured per-pair cost.
    const FLOPS_PER_PAIR: f64 = 120.0;

    let report = world.run(RANKS as usize, move |ctx| {
        let r = ctx.rank() as u64;
        let my_pairs = TOTAL_PAIRS / RANKS;
        let per_block = my_pairs / BLOCKS;
        let mut sx = 0.0;
        let mut sy = 0.0;
        let mut accepted = 0.0;
        for b in 0..BLOCKS {
            let part = smpi_workloads::ep_block(r * my_pairs + b * per_block, per_block);
            ctx.compute(per_block as f64 * FLOPS_PER_PAIR);
            sx += part.sx;
            sy += part.sy;
            accepted += part.q.iter().sum::<f64>();
        }
        let global = ctx.allreduce(&[sx, sy, accepted], &smpi::op::sum(), &ctx.world());
        (global[0], global[1], global[2])
    });
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# e2e ep: 65536 pairs, 8 blocks/rank, explicit flops, griffon, smpi affine"
    );
    let _ = writeln!(out, "ranks {RANKS}");
    let _ = writeln!(out, "sim_time {:.9}", report.sim_time);
    for (r, t) in report.finish_times.iter().enumerate() {
        let _ = writeln!(out, "finish {r} {t:.9}");
    }
    // Globally reduced, identical on every rank; print rank 0's copy.
    let (sx, sy, accepted) = report.results[0];
    let _ = writeln!(out, "sx {sx:.9e}");
    let _ = writeln!(out, "sy {sy:.9e}");
    let _ = writeln!(out, "accepted {accepted:.9e}");
    out
}
