//! # smpi-bench — the figure-regeneration harness
//!
//! One module per paper figure (see DESIGN.md's experiment index) plus
//! ablations. The `repro` binary drives them:
//!
//! ```text
//! cargo run --release -p smpi-bench --bin repro -- all
//! cargo run --release -p smpi-bench --bin repro -- fig3 fig7
//! ```
//!
//! Setting `REPRO_FAST=1` shrinks sweeps for smoke tests.

pub mod ablations;
pub mod common;
pub mod contention_demo;
pub mod diff_demo;
pub mod e2e;
pub mod fig_alltoall;
pub mod fig_dt;
pub mod fig_pingpong;
pub mod fig_scatter;
pub mod fig_schemes;
pub mod fig_speed;
pub mod gate;
pub mod kernel_bench;
pub mod obs_demo;
pub mod replay_demo;
pub mod scale;
pub mod sweep_bench;
pub mod trace_bench;
