//! Divergence attribution showcase for `repro -- diff`.
//!
//! Runs the contention fleet (twelve DT class-S black-hole instances,
//! sinks concentrated in griffon's cabinet 0) twice: once nominal, once
//! with the cabinet-0 spine uplink's bandwidth halved through a
//! [`PlatformPerturbation`]. The two runs execute the *same* op streams —
//! time-independent traces are timing-blind by construction, which the
//! demo verifies by diffing the captures — but every simulated quantity
//! downstream of the network moves, and `smpi_diff` attributes the
//! movement:
//!
//! * the **report diff** names `griffon-cab0-uplink` as the top
//!   contention mover and shows makespan, finish-time, metric and
//!   critical-path deltas;
//! * the **trace diff** (against a synthetically edited copy of the
//!   capture, the kind of divergence a nondeterministic app produces)
//!   pinpoints the first divergent op per touched rank, in TITRACE op
//!   syntax with context.
//!
//! Self-checks: a report or trace diffed against itself is identical, and
//! every JSON document is byte-identical across repeated invocations.
//!
//! Artifacts: `target/diff/report_diff.json`, `target/diff/trace_diff.json`.

use std::fmt::Write as _;
use std::sync::Arc;

use smpi::{RunReport, TiOp, World};
use smpi_diff::{diff_reports, diff_traces, AlignConfig};
use smpi_platform::PlatformPerturbation;
use smpi_workloads::{build_graph, DtClass, DtGraph};
use surf_sim::TransferModel;

use crate::common::griffon_rp;

/// Concurrent DT instances (mirrors `repro -- contention`).
const INSTANCES: usize = 12;

/// The perturbed link: every fan-in flow's max-min bottleneck.
const LINK: &str = "griffon-cab0-uplink";

/// Runs the fleet, optionally scaling `LINK`'s bandwidth by `bw_factor`.
fn run_fleet(bw_factor: Option<f64>) -> RunReport<usize> {
    let class = DtClass::S;
    let graph = build_graph(class, DtGraph::Bh);
    let per = graph.num_nodes();
    let nranks = INSTANCES * per;
    let rp = griffon_rp();

    // Sinks on cabinet-0 hosts, leaves on cabinets 1 and 2 (as in
    // `contention_demo`, the placement that oversubscribes the uplink).
    let mut placement = vec![0usize; nranks];
    let mut leaf_host = 33;
    for i in 0..INSTANCES {
        for local in 0..per {
            placement[i * per + local] = if graph.succ[local].is_empty() {
                i
            } else {
                leaf_host += 1;
                leaf_host - 1
            };
        }
    }

    let mut world = World::smpi(Arc::clone(&rp), TransferModel::default_affine())
        .metrics(true)
        .tracing(true)
        .capture(true)
        .timeseries(true)
        .place(placement);
    if let Some(f) = bw_factor {
        let mut p = PlatformPerturbation::identity(rp.platform());
        let link = rp
            .platform()
            .link_by_name(LINK)
            .unwrap_or_else(|| panic!("griffon has {LINK}"));
        p.link_bandwidth[link.0 as usize] = f;
        world = world.perturbation(Arc::new(p));
    }

    let g = graph.clone();
    world.run(nranks, move |ctx| {
        let comm = ctx.world();
        let r = ctx.rank();
        let local = r % per;
        let base = r - local;
        let n = class.num_samples();
        if g.pred[local].is_empty() {
            let data = vec![local as f64; n];
            for &s in &g.succ[local] {
                ctx.send(&data, base + s, 0, &comm);
            }
            n
        } else {
            let reqs: Vec<_> = g.pred[local]
                .iter()
                .map(|&p| ctx.irecv::<f64>((base + p) as i32, 0, n, &comm))
                .collect();
            reqs.into_iter()
                .map(|req| ctx.wait_recv(req, &comm).0.len())
                .sum()
        }
    })
}

/// Runs the demo and returns the human-readable summary.
pub fn diff() -> String {
    let cfg = AlignConfig::default();
    let nominal = run_fleet(None);
    let perturbed = run_fleet(Some(0.5));

    // --- self-diffs are identical, and their JSON is byte-stable.
    let self_rd = diff_reports(&nominal, &nominal, 8);
    assert!(self_rd.is_identical(), "self report diff must be empty");
    assert_eq!(
        self_rd.to_json(),
        diff_reports(&nominal, &nominal, 8).to_json(),
        "report-diff JSON must be deterministic"
    );

    // --- report diff: the perturbation is attributed to the link.
    let rd = diff_reports(&nominal, &perturbed, 8);
    assert!(!rd.is_identical(), "halved uplink must move the reports");
    let top = rd
        .contention
        .as_ref()
        .and_then(|c| c.top_mover())
        .expect("both runs carried contention attribution");
    assert_eq!(top, LINK, "perturbed link must be the top contention mover");
    assert_eq!(
        rd.to_json(),
        diff_reports(&nominal, &perturbed, 8).to_json(),
        "report-diff JSON must be deterministic"
    );

    // --- trace layer: the perturbation does NOT move the captured op
    // streams (time-independence), so the cross-run trace diff is empty…
    let base = nominal.ti_trace.as_ref().expect("capture was enabled");
    let td_runs = diff_traces(base, perturbed.ti_trace.as_ref().unwrap(), &cfg);
    assert!(
        td_runs.is_identical(),
        "time-independent traces are timing-blind:\n{}",
        td_runs.render()
    );

    // …and the first-divergence machinery is demonstrated on a
    // synthetically edited copy: one inserted op, one mutated op, on
    // different ranks.
    let mut edited = base.clone();
    let r_ins = 0;
    edited.ranks[r_ins].insert(1, TiOp::Sleep { secs: 1e-3 });
    let r_mut = edited.ranks.len() - 1;
    edited.ranks[r_mut][0] = TiOp::Compute { flops: 1e9 };
    let td = diff_traces(base, &edited, &cfg);
    assert!(!td.is_identical());
    assert_eq!(
        td.to_json(),
        diff_traces(base, &edited, &cfg).to_json(),
        "trace-diff JSON must be deterministic"
    );

    // --- artifacts.
    let dir = std::path::Path::new("target/diff");
    std::fs::create_dir_all(dir).expect("create target/diff");
    std::fs::write(dir.join("report_diff.json"), rd.to_json()).expect("write report_diff.json");
    std::fs::write(dir.join("trace_diff.json"), td.to_json()).expect("write trace_diff.json");

    let mut out = String::new();
    let _ = writeln!(
        out,
        "# diff: {LINK} bandwidth halved under {INSTANCES} DT class-S BH instances"
    );
    let _ = writeln!(out, "self-diff: identical (report and trace layers)");
    let _ = writeln!(
        out,
        "cross-run trace diff: identical — captured op streams are time-independent"
    );
    let _ = writeln!(
        out,
        "wrote target/diff/report_diff.json and trace_diff.json"
    );
    out.push('\n');
    out.push_str(&rd.render());
    out.push('\n');
    out.push_str(&td.render());
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn demo_attributes_the_perturbed_link_and_localizes_trace_edits() {
        let out = super::diff();
        assert!(
            out.contains("contention: top mover griffon-cab0-uplink"),
            "perturbed link should top the contention delta:\n{out}"
        );
        assert!(out.contains("cross-run trace diff: identical"));
        assert!(out.contains("first divergence at op 1 (A) / op 1 (B)"));
        assert!(out.contains("first divergence at op 0 (A) / op 0 (B)"));
        assert!(std::path::Path::new("target/diff/report_diff.json").exists());
        assert!(std::path::Path::new("target/diff/trace_diff.json").exists());
    }
}
