//! Ablation experiments beyond the paper's figures (DESIGN.md §7).
//!
//! * segment count sweep — why the paper settles on 3 segments;
//! * collective algorithm variants — binomial vs linear vs chain scatter
//!   (the §5.3 observation that "each variant \[is\] best in particular
//!   settings");
//! * contention model on/off across scales (how wrong the contention-blind
//!   model gets as communicators grow).

use smpi_calibrate::{fit_piecewise, predict};
use smpi_metrics::ErrorSummary;
use smpi_workloads::timed_scatter;

use crate::common::{
    calibration_route, calibration_samples, griffon_rp, openmpi_world, secs, smpi_world,
    smpi_world_no_contention, Table,
};

/// Accuracy of the piece-wise model as a function of segment count.
pub fn segment_sweep() -> String {
    let samples = calibration_samples();
    let route = calibration_route();
    let truth: Vec<f64> = samples.iter().map(|s| s.time).collect();
    let mut t = Table::new(&["segments", "avg-err(%)", "worst-err(%)"]);
    for k in 1..=4 {
        let model = fit_piecewise(samples, k, route);
        let e = ErrorSummary::compare(&predict(&model, samples, route), &truth);
        t.row(vec![
            k.to_string(),
            format!("{:.2}", e.mean * 100.0),
            format!("{:.2}", e.max * 100.0),
        ]);
    }
    format!(
        "# Ablation — segment count vs ping-pong accuracy\n{}",
        t.render()
    )
}

/// Completion time of the three scatter algorithms on the same workload,
/// under both the SMPI model and the OpenMPI personality.
pub fn scatter_variants() -> String {
    let rp = griffon_rp();
    let n = 16;
    let chunk = 128 * 1024; // 1 MiB chunks
    let mut t = Table::new(&["algorithm", "smpi(s)", "openmpi(s)"]);
    type Algo = (&'static str, fn(&smpi::Ctx, usize) -> f64);
    let algos: [Algo; 3] = [
        ("binomial", |ctx, chunk| timed_scatter(ctx, chunk)),
        ("linear", |ctx, chunk| {
            let comm = ctx.world();
            let p = ctx.size();
            let data: Option<Vec<f64>> = (ctx.rank() == 0).then(|| vec![0.0; p * chunk]);
            ctx.barrier(&comm);
            let t0 = ctx.wtime();
            let out = ctx.scatter_linear(data.as_deref(), chunk, 0, &comm);
            std::hint::black_box(&out);
            ctx.wtime() - t0
        }),
        ("chain", |ctx, chunk| {
            let comm = ctx.world();
            let p = ctx.size();
            let data: Option<Vec<f64>> = (ctx.rank() == 0).then(|| vec![0.0; p * chunk]);
            ctx.barrier(&comm);
            let t0 = ctx.wtime();
            let out = ctx.scatter_chain(data.as_deref(), chunk, 0, &comm);
            std::hint::black_box(&out);
            ctx.wtime() - t0
        }),
    ];
    for (name, algo) in algos {
        let s = smpi_world(rp.clone())
            .run(n, move |ctx| algo(ctx, chunk))
            .results
            .into_iter()
            .fold(0.0, f64::max);
        let o = openmpi_world(rp.clone())
            .run(n, move |ctx| algo(ctx, chunk))
            .results
            .into_iter()
            .fold(0.0, f64::max);
        t.row(vec![name.to_string(), secs(s), secs(o)]);
    }
    format!(
        "# Ablation — scatter algorithm variants (16 procs, 1 MiB chunks)\n{}",
        t.render()
    )
}

/// How badly the contention-blind model underestimates the pairwise
/// all-to-all as the communicator grows.
pub fn contention_scaling() -> String {
    let rp = griffon_rp();
    let chunk = 64 * 1024; // 512 KiB blocks
    let mut t = Table::new(&["procs", "with-contention(s)", "without(s)", "underestimate"]);
    for n in [2usize, 4, 8, 16] {
        let with = smpi_world(rp.clone())
            .run(n, move |ctx| smpi_workloads::timed_alltoall(ctx, chunk))
            .results
            .into_iter()
            .fold(0.0, f64::max);
        let without = smpi_world_no_contention(rp.clone())
            .run(n, move |ctx| smpi_workloads::timed_alltoall(ctx, chunk))
            .results
            .into_iter()
            .fold(0.0, f64::max);
        t.row(vec![
            n.to_string(),
            secs(with),
            secs(without),
            format!("{:.2}x", with / without),
        ]);
    }
    format!(
        "# Ablation — contention model vs communicator size (pairwise all-to-all)\n{}",
        t.render()
    )
}
