//! Figures 17–18: simulation speed.
//!
//! * Fig. 17 — wall-clock time of the SMPI simulation vs the simulated
//!   execution time vs the (emulated) real execution time, for a 16-process
//!   scatter of growing messages. The paper's claim: the simulation runs
//!   several times *faster than real time*, with the factor growing with
//!   message size.
//! * Fig. 18 — impact of the `SMPI_SAMPLE_LOCAL` ratio on EP: simulation
//!   time should fall roughly linearly with the fraction of executed
//!   iterations while the simulated execution time stays put.

use smpi_workloads::{ep_rank, timed_scatter, timed_scatter_folded, EpConfig};

use crate::common::{fast, griffon_rp, openmpi_world, secs, smpi_world, Table};

/// One Fig. 17 row.
pub struct SpeedRow {
    /// Per-rank message size, bytes.
    pub bytes: u64,
    /// Wall-clock seconds the SMPI simulation took ("simulation time").
    pub smpi_wall: f64,
    /// Same, with the §3.2 RAM-folding configuration (no application bytes
    /// moved) — the setup the paper's large-scale runs used.
    pub smpi_folded_wall: f64,
    /// SMPI's predicted execution time ("simulated execution time").
    pub smpi_sim: f64,
    /// The emulated real execution time (OpenMPI personality).
    pub openmpi_sim: f64,
}

/// Fig. 17 data.
pub struct Fig17 {
    /// One row per message size.
    pub rows: Vec<SpeedRow>,
}

impl Fig17 {
    /// Speedup of the folded simulation over (emulated) reality per row.
    pub fn speedups(&self) -> Vec<f64> {
        self.rows
            .iter()
            .map(|r| r.openmpi_sim / r.smpi_folded_wall)
            .collect()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut t = Table::new(&[
            "MiB",
            "smpi-sim(s)",
            "smpi-folded-sim(s)",
            "smpi-simulated(s)",
            "openmpi(s)",
            "speedup",
            "speedup-folded",
        ]);
        for r in &self.rows {
            t.row(vec![
                format!("{}", r.bytes / (1024 * 1024)),
                secs(r.smpi_wall),
                secs(r.smpi_folded_wall),
                secs(r.smpi_sim),
                secs(r.openmpi_sim),
                format!("{:.2}x", r.openmpi_sim / r.smpi_wall),
                format!("{:.2}x", r.openmpi_sim / r.smpi_folded_wall),
            ]);
        }
        format!(
            "# Fig. 17 — simulation vs simulated vs real time, 16-proc scatter\n{}",
            t.render()
        )
    }
}

/// Runs Fig. 17: scatter with 4–64 MiB messages.
pub fn fig17() -> Fig17 {
    let rp = griffon_rp();
    let n = 16;
    let mibs: &[u64] = if fast() { &[1, 4] } else { &[4, 8, 16, 32, 64] };
    let rows = mibs
        .iter()
        .map(|&m| {
            let chunk = (m as usize * 1024 * 1024) / 8;
            let chunk_bytes = m * 1024 * 1024;
            let smpi = smpi_world(rp.clone()).run(n, move |ctx| timed_scatter(ctx, chunk));
            let folded =
                smpi_world(rp.clone()).run(n, move |ctx| timed_scatter_folded(ctx, chunk_bytes));
            let open = openmpi_world(rp.clone()).run(n, move |ctx| timed_scatter(ctx, chunk));
            SpeedRow {
                bytes: m * 1024 * 1024,
                smpi_wall: smpi.wall.as_secs_f64(),
                smpi_folded_wall: folded.wall.as_secs_f64(),
                smpi_sim: smpi.sim_time,
                openmpi_sim: open.sim_time,
            }
        })
        .collect();
    Fig17 { rows }
}

/// One Fig. 18 row.
pub struct SamplingRow {
    /// Fraction of iterations actually executed.
    pub ratio: f64,
    /// Wall-clock simulation time, seconds.
    pub wall: f64,
    /// Simulated execution time, seconds.
    pub simulated: f64,
}

/// Fig. 18 data.
pub struct Fig18 {
    /// One row per sampling ratio (descending, as in the paper's x-axis).
    pub rows: Vec<SamplingRow>,
    /// The emulated real (always-execute) execution time for reference.
    pub openmpi_sim: f64,
}

impl Fig18 {
    /// Renders the table.
    pub fn render(&self) -> String {
        let mut t = Table::new(&["ratio(%)", "simulation(s)", "simulated(s)"]);
        for r in &self.rows {
            t.row(vec![
                format!("{:.0}", r.ratio * 100.0),
                secs(r.wall),
                secs(r.simulated),
            ]);
        }
        format!(
            "# Fig. 18 — CPU sampling: EP class B (scaled), 4 procs\n{}openmpi reference: {}s\n",
            t.render(),
            secs(self.openmpi_sim)
        )
    }
}

/// Runs Fig. 18: EP on 4 ranks with sampling ratios 100/75/50/25%.
pub fn fig18() -> Fig18 {
    let rp = griffon_rp();
    let n = 4;
    let base = EpConfig {
        total_pairs: if fast() { 1 << 20 } else { 1 << 24 },
        blocks_per_rank: 64,
        sampling_ratio: 1.0,
    };
    // The target nodes are the host node (factor 1): measured bursts map
    // 1:1 to simulated time, as in the paper's same-hardware runs.
    let openmpi_sim = openmpi_world(rp.clone())
        .cpu_factor(1.0)
        .run(n, move |ctx| ep_rank(ctx, base))
        .sim_time;
    let rows = [1.0, 0.75, 0.5, 0.25]
        .into_iter()
        .map(|ratio| {
            let cfg = EpConfig {
                sampling_ratio: ratio,
                ..base
            };
            let report = smpi_world(rp.clone())
                .cpu_factor(1.0)
                .run(n, move |ctx| ep_rank(ctx, cfg));
            SamplingRow {
                ratio,
                wall: report.wall.as_secs_f64(),
                simulated: report.sim_time,
            }
        })
        .collect();
    Fig18 { rows, openmpi_sim }
}
