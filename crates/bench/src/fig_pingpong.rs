//! Figures 3–5: ping-pong accuracy of the three point-to-point models.
//!
//! * Fig. 3 — calibration cluster (griffon), same-cabinet pair;
//! * Fig. 4 — gdx same-switch pair, **using the griffon calibration**;
//! * Fig. 5 — gdx pair across three switches, griffon calibration.
//!
//! Every figure compares the SKaMPI ground truth (packet-level simulation)
//! with the closed-form predictions of the default affine, best-fit affine
//! and piece-wise linear models, and summarizes accuracy with the
//! logarithmic error of §7.1.

use smpi_calibrate::{pingpong, predict, RouteRef, Sample};
use smpi_metrics::ErrorSummary;
use surf_sim::TransferModel;

use crate::common::{
    best_affine_model, calibration_samples, calibration_sizes, default_affine_model, gdx_rp,
    griffon_rp, openmpi_world, piecewise_model, route_ref, us, Table,
};

/// Data series for one ping-pong accuracy figure.
pub struct PingPongFigure {
    /// Human-readable scenario.
    pub title: String,
    /// The ground-truth samples.
    pub truth: Vec<Sample>,
    /// (model name, predictions, error summary) per model.
    pub models: Vec<(String, Vec<f64>, ErrorSummary)>,
}

impl PingPongFigure {
    /// The accuracy summary of the piece-wise model.
    pub fn piecewise_summary(&self) -> ErrorSummary {
        self.models
            .iter()
            .find(|(n, _, _)| n == "piecewise")
            .map(|(_, _, e)| *e)
            .expect("piecewise model present")
    }

    /// Renders the figure's data table plus the error summary block.
    pub fn render(&self) -> String {
        let mut t = Table::new(&[
            "bytes",
            "truth(us)",
            "default(us)",
            "bestfit(us)",
            "piecewise(us)",
        ]);
        for (i, s) in self.truth.iter().enumerate() {
            t.row(vec![
                s.bytes.to_string(),
                us(s.time),
                us(self.models[0].1[i]),
                us(self.models[1].1[i]),
                us(self.models[2].1[i]),
            ]);
        }
        let mut out = format!("# {}\n{}", self.title, t.render());
        for (name, _, e) in &self.models {
            out.push_str(&format!("{name:>10}: {e}\n"));
        }
        out
    }
}

fn compare(title: &str, truth: Vec<Sample>, route: RouteRef) -> PingPongFigure {
    let truth_times: Vec<f64> = truth.iter().map(|s| s.time).collect();
    let named: [(&str, &TransferModel); 3] = [
        ("default", default_affine_model()),
        ("bestfit", best_affine_model()),
        ("piecewise", piecewise_model()),
    ];
    let models = named
        .iter()
        .map(|(name, m)| {
            let preds = predict(m, &truth, route);
            let e = ErrorSummary::compare(&preds, &truth_times);
            (name.to_string(), preds, e)
        })
        .collect();
    PingPongFigure {
        title: title.to_string(),
        truth,
        models,
    }
}

/// Fig. 3: ping-pong on the calibration cluster itself.
pub fn fig3() -> PingPongFigure {
    let truth = calibration_samples().to_vec();
    compare(
        "Fig. 3 — ping-pong on griffon (calibration cluster)",
        truth,
        route_ref(&griffon_rp(), 0, 1),
    )
}

/// Fig. 4: ping-pong on gdx, same switch, with the griffon calibration.
pub fn fig4() -> PingPongFigure {
    let rp = gdx_rp();
    let truth = pingpong(&openmpi_world(rp.clone()), 0, 1, &calibration_sizes(), 1);
    compare(
        "Fig. 4 — ping-pong on gdx (1 switch), griffon calibration",
        truth,
        route_ref(&rp, 0, 1),
    )
}

/// Fig. 5: ping-pong on gdx across three switches, griffon calibration.
pub fn fig5() -> PingPongFigure {
    let rp = gdx_rp();
    let distant = rp.platform().num_hosts() - 1;
    let truth = pingpong(
        &openmpi_world(rp.clone()),
        0,
        distant,
        &calibration_sizes(),
        1,
    );
    compare(
        "Fig. 5 — ping-pong on gdx (3 switches), griffon calibration",
        truth,
        route_ref(&rp, 0, distant),
    )
}
