//! Capture → replay showcase for `repro -- replay`.
//!
//! Demonstrates the off-line complement of the on-line simulator:
//!
//! 1. run NAS DT and EP on-line on griffon with capture enabled,
//! 2. replay each captured trace on the same world and cross-validate the
//!    makespan (tight tolerance — same platform replay is exact),
//! 3. replay the DT trace against gdx (model swap, no application code),
//! 4. measure the replay-vs-online wall-clock speedup.
//!
//! Artifacts land under `target/replay/`:
//!
//! * `dt.tit`, `ep.tit` — the captured `TITRACE v1` files;
//! * `replay_report.json` — full `RunReport` JSON of a replayed run
//!   (same observability artifacts as an on-line run);
//! * `BENCH_replay.json` — machine-readable speedup + validation record.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use smpi::{TiTrace, World};
use smpi_platform::{gdx, griffon, RoutedPlatform};
use smpi_replay as replay;
use smpi_workloads::{build_graph, dt_rank, ep_rank, DtClass, DtGraph, EpConfig};
use surf_sim::TransferModel;

use crate::common;

struct Captured {
    name: &'static str,
    online_sim: f64,
    online_wall: f64,
    trace: TiTrace,
}

fn griffon_world() -> World {
    let rp = Arc::new(RoutedPlatform::new(griffon()));
    World::smpi(rp, TransferModel::default_affine())
}

fn capture_dt(class: DtClass) -> Captured {
    let world = griffon_world().capture(true);
    let graph = Arc::new(build_graph(class, DtGraph::Bh));
    let g = Arc::clone(&graph);
    let report = world.run(graph.num_nodes(), move |ctx| dt_rank(ctx, &g, class));
    Captured {
        name: "dt",
        online_sim: report.sim_time,
        online_wall: report.wall.as_secs_f64(),
        trace: report.ti_trace.unwrap(),
    }
}

fn capture_ep(cfg: EpConfig) -> Captured {
    let world = griffon_world().capture(true);
    let report = world.run(8, move |ctx| ep_rank(ctx, cfg));
    Captured {
        name: "ep",
        online_sim: report.sim_time,
        online_wall: report.wall.as_secs_f64(),
        trace: report.ti_trace.unwrap(),
    }
}

/// Runs the demo and returns the human-readable summary. Artifacts land
/// under `target/replay/`.
pub fn replay_demo() -> String {
    let (dt_class, ep_cfg) = if common::fast() {
        (
            DtClass::S,
            EpConfig {
                total_pairs: 1 << 16,
                blocks_per_rank: 8,
                sampling_ratio: 1.0,
            },
        )
    } else {
        (
            DtClass::A,
            EpConfig {
                total_pairs: 1 << 20,
                blocks_per_rank: 32,
                sampling_ratio: 1.0,
            },
        )
    };

    let dir = std::path::Path::new("target/replay");
    std::fs::create_dir_all(dir).expect("create target/replay");

    let mut out = String::new();
    let mut json_entries = Vec::new();
    let _ = writeln!(out, "# replay: capture -> replay -> cross-validate");

    for cap in [capture_dt(dt_class), capture_ep(ep_cfg)] {
        let path = dir.join(format!("{}.tit", cap.name));
        replay::save_trace(&path, &cap.trace).expect("write trace");
        let s = cap.trace.summary();

        // Replay on the capture world: validates, and times the replay.
        let world = griffon_world();
        let t0 = Instant::now();
        let replayed = replay::replay(&world, &cap.trace);
        let replay_wall = t0.elapsed().as_secs_f64();
        let rel_err = (replayed.sim_time - cap.online_sim).abs() / cap.online_sim;
        let speedup = cap.online_wall / replay_wall.max(1e-9);

        let _ = writeln!(
            out,
            "{}: {} ranks, {} ops ({} sends, {:.1} MiB posted) -> {}",
            cap.name,
            cap.trace.num_ranks(),
            s.ops,
            s.sends,
            s.send_bytes as f64 / (1024.0 * 1024.0),
            path.display(),
        );
        let _ = writeln!(
            out,
            "  online  {:.6} s simulated in {:.4} s wall",
            cap.online_sim, cap.online_wall
        );
        let _ = writeln!(
            out,
            "  replay  {:.6} s simulated in {:.4} s wall  (rel err {:.2e}, speedup {:.1}x)",
            replayed.sim_time, replay_wall, rel_err, speedup
        );
        assert!(
            rel_err <= 1e-3,
            "{}: replay drifted by {rel_err:.2e} on the capture platform",
            cap.name
        );

        json_entries.push(format!(
            "{{\"workload\":\"{}\",\"ranks\":{},\"ops\":{},\"online_sim_s\":{},\
             \"replayed_sim_s\":{},\"rel_err\":{},\"online_wall_s\":{},\
             \"replay_wall_s\":{},\"speedup\":{}}}",
            cap.name,
            cap.trace.num_ranks(),
            s.ops,
            cap.online_sim,
            replayed.sim_time,
            rel_err,
            cap.online_wall,
            replay_wall,
            speedup,
        ));

        // Model swap: the same trace predicts a different cluster.
        if cap.name == "dt" {
            let gdx_world = World::smpi(
                Arc::new(RoutedPlatform::new(gdx())),
                TransferModel::default_affine(),
            );
            let on_gdx = replay::replay(&gdx_world, &cap.trace);
            let _ = writeln!(
                out,
                "  swap    {:.6} s simulated on gdx (no application code executed)",
                on_gdx.sim_time
            );

            // A replayed run produces the full observability artifact set;
            // the report streams straight to disk.
            let obs_replay = replay::replay(&gdx_world.metrics(true), &cap.trace);
            let mut f = std::io::BufWriter::new(
                std::fs::File::create(dir.join("replay_report.json"))
                    .expect("create replay_report.json"),
            );
            obs_replay
                .write_json(&mut f)
                .expect("write replay_report.json");
            drop(f);
            std::fs::write(dir.join("replay_trace.paje"), obs_replay.paje())
                .expect("write replay_trace.paje");
        }
    }

    let bench_json = format!("[{}]\n", json_entries.join(","));
    std::fs::write(dir.join("BENCH_replay.json"), &bench_json).expect("write BENCH_replay.json");
    let _ = writeln!(
        out,
        "wrote target/replay/BENCH_replay.json, replay_report.json, replay_trace.paje"
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn demo_produces_all_artifacts() {
        // The test environment always takes the fast path.
        std::env::set_var("REPRO_FAST", "1");
        let out = super::replay_demo();
        assert!(out.contains("speedup"));
        assert!(out.contains("on gdx"));
        for artifact in [
            "target/replay/dt.tit",
            "target/replay/ep.tit",
            "target/replay/BENCH_replay.json",
            "target/replay/replay_report.json",
            "target/replay/replay_trace.paje",
        ] {
            assert!(
                std::path::Path::new(artifact).exists(),
                "missing {artifact}"
            );
        }
        // The BENCH artifact parses as one record per workload.
        let bench = std::fs::read_to_string("target/replay/BENCH_replay.json").unwrap();
        assert!(bench.starts_with('[') && bench.trim_end().ends_with(']'));
        assert!(bench.contains("\"workload\":\"dt\""));
        assert!(bench.contains("\"workload\":\"ep\""));
    }
}
