//! Parallel replication sweep benchmark (`repro -- sweep`).
//!
//! The capture-once/replay-many workflow at population scale: one NAS DT
//! class-S run is captured on-line and saved as a `TITRACE2` file, then a
//! scenario matrix — 2 platforms (griffon, gdx) × (surf kernel × 2
//! calibrated models + packet substrate) × 3 noise axes (none, 5% jitter,
//! 20% jitter, with replications) — is expanded into 66 scenarios and
//! executed by the `smpi-sweep` work-stealing pool at 1, 2 and 4 workers,
//! with every replay rank pulling ops from the shared block-streaming
//! decoder (`TiV2Reader`). The same matrix and seed every time, so the
//! streamed results tables are byte-identical across worker counts *and*
//! byte-identical to a sweep fed from the materialized v1 trace (both are
//! asserted here, not just tested in the crate).
//!
//! Artifacts:
//!
//! * `target/sweep/dt.tit2` — the `TITRACE2` capture the workers stream;
//! * `target/sweep/results.jsonl` — the streamed per-scenario table (one
//!   JSON line per scenario, stable scenario-id order);
//! * `target/sweep/report.json` — the aggregated per-cell distributions of
//!   the widest run;
//! * `BENCH_sweep.json` — scenarios/s per worker count plus the 4-vs-1
//!   speedup (see EXPERIMENTS.md for the schema and the CI gate).
//!
//! `host_cores` is recorded because the speedup is only meaningful on a
//! multi-core host: the committed reference comes from CI's 4-core runners,
//! while single-core boxes (like some dev containers) legitimately see
//! speedup ≈ 1 — the CI gate checks the ratio only when cores allow.

use std::fmt::Write as _;
use std::sync::Arc;

use smpi_sweep::{run_sweep, FabricKind, NoiseAxis, Program, SweepConfig};
use smpi_workloads::{build_graph, dt_rank, DtClass, DtGraph};

use crate::common;

/// Scenario throughput at 1 worker measured on the 1-core container this
/// subsystem was developed in (66 DT-S scenarios streamed from the shared
/// `TiV2Reader`, commit introducing `TITRACE2`). The regression gate in CI compares against this within a
/// generous cross-hardware factor.
pub const BASELINE_1W_SCENARIOS_PER_S: f64 = 753.2;

fn capture_dt_s() -> Arc<smpi::TiTrace> {
    let world = common::smpi_world(common::griffon_rp()).capture(true);
    let class = DtClass::S;
    let graph = Arc::new(build_graph(class, DtGraph::Bh));
    let g = Arc::clone(&graph);
    let report = world.run(graph.num_nodes(), move |ctx| dt_rank(ctx, &g, class));
    Arc::new(report.ti_trace.expect("capture enabled"))
}

fn matrix(workers: usize, program: Program) -> SweepConfig {
    SweepConfig {
        programs: vec![program],
        platforms: vec![
            ("griffon".into(), common::griffon_rp()),
            ("gdx".into(), common::gdx_rp()),
        ],
        fabrics: vec![
            ("surf".into(), FabricKind::surf()),
            ("packet".into(), FabricKind::packet()),
        ],
        calibrations: vec![
            ("piecewise-3".into(), common::piecewise_model().clone()),
            ("affine-best".into(), common::best_affine_model().clone()),
        ],
        noises: vec![
            NoiseAxis::none(),
            NoiseAxis::jitter("j5", 0.05, 5),
            NoiseAxis::jitter("j20", 0.20, 5),
        ],
        workers,
        seed: 1977,
        strip_hostdep: true,
    }
}

/// Runs the sweep benchmark, writes `BENCH_sweep.json` and the results
/// artifacts, and returns the human-readable summary.
pub fn sweep() -> String {
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let trace = capture_dt_s();

    let dir = std::path::Path::new("target/sweep");
    std::fs::create_dir_all(dir).expect("create target/sweep");

    // Workers stream ops from the shared TITRACE2 block decoder instead of
    // an in-memory trace: write the capture out once, open it once, and
    // every scenario's replay ranks pull blocks through the weak cache.
    let tit2 = dir.join("dt.tit2");
    smpi_replay::save_trace_v2(&tit2, &trace).expect("write dt.tit2");
    let reader = Arc::new(smpi::TiV2Reader::open(&tit2).expect("open dt.tit2"));
    let stream_program = || Program::stream("dt-S", Arc::clone(&reader));

    let mut out = String::new();
    let _ = writeln!(
        out,
        "# sweep: 1 DT-S capture -> {} scenarios (2 platforms x (surf x 2 cals + packet) x 3 noise axes)",
        matrix(1, stream_program()).scenario_count()
    );
    let _ = writeln!(
        out,
        "{:>8} {:>10} {:>14} {:>8} {:>10}",
        "workers", "wall_s", "scenarios/s", "stolen", "reorder"
    );

    // Cross-format reference: the same matrix fed from the materialized v1
    // trace must produce the very bytes the streamed runs produce.
    let ref_cfg = matrix(1, Program::trace("dt-S", Arc::clone(&trace)));
    let (_, ref_lines) = run_sweep(&ref_cfg, Vec::new()).expect("reference sweep");
    let reference = String::from_utf8(ref_lines).expect("utf8 table");

    let mut runs = Vec::new();
    let mut last_report = None;
    for workers in [1usize, 2, 4] {
        let cfg = matrix(workers, stream_program());
        let (report, lines) = run_sweep(&cfg, Vec::new()).expect("sweep to memory");
        let table = String::from_utf8(lines).expect("utf8 table");
        assert_eq!(
            reference, table,
            "streamed results table must be byte-identical to the \
             trace-fed table at any worker count"
        );
        let _ = writeln!(
            out,
            "{:>8} {:>10.3} {:>14.2} {:>8} {:>10}",
            workers,
            report.wall_s,
            report.scenarios_per_s,
            report.stats.total_stolen(),
            report.reorder_high_water,
        );
        runs.push((
            workers,
            report.wall_s,
            report.scenarios_per_s,
            report.stats.total_stolen(),
        ));
        last_report = Some((report, table));
    }
    let (mut report, table) = last_report.expect("three runs");
    let scenarios = report.scenarios;
    assert!(scenarios >= 64, "matrix must expand to >= 64 scenarios");

    std::fs::write(dir.join("results.jsonl"), &table).expect("write results.jsonl");
    report.strip_wallclock();
    std::fs::write(dir.join("report.json"), report.to_json()).expect("write report.json");

    let speedup_4w = runs[2].2 / runs[0].2;
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"scenarios\": {scenarios},");
    let _ = writeln!(json, "  \"host_cores\": {host_cores},");
    let _ = writeln!(json, "  \"runs\": [");
    for (i, (workers, wall_s, sps, stolen)) in runs.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{ \"workers\": {workers}, \"wall_s\": {wall_s:.6}, \
             \"scenarios_per_s\": {sps:.2}, \"stolen\": {stolen} }}{}",
            if i + 1 < runs.len() { "," } else { "" },
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"speedup_4w\": {speedup_4w:.2},");
    let _ = writeln!(
        json,
        "  \"baseline_1w_scenarios_per_s\": {BASELINE_1W_SCENARIOS_PER_S:.1}"
    );
    let _ = writeln!(json, "}}");
    std::fs::write("BENCH_sweep.json", &json).expect("write BENCH_sweep.json");

    let _ = writeln!(
        out,
        "speedup at 4 workers vs 1: {speedup_4w:.2}x on {host_cores} host core(s)"
    );
    let _ = writeln!(
        out,
        "per-cell makespan distributions ({} cells):",
        report.cells.len()
    );
    out.push_str(&report.render());
    let _ = writeln!(
        out,
        "wrote BENCH_sweep.json, target/sweep/results.jsonl, target/sweep/report.json"
    );
    out
}
