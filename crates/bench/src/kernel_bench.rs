//! Kernel churn microbenchmark (`repro -- kernel`).
//!
//! Stress-tests the O(active) kernel on a workload the paper's evaluation
//! never reaches with 21 ranks: ~10 000 *concurrent* actions (paired
//! contended transfers plus shared compute bursts) with continuous churn —
//! every completion immediately starts a replacement somewhere else. The
//! same workload runs twice:
//!
//! * **incremental** — the production configuration: slab storage, lazy
//!   completion heap, dirty-constraint incremental reshare;
//! * **full** — [`surf_sim::Simulation::set_full_reshare`] forces the
//!   pre-refactor behaviour of rebuilding the whole max-min problem on
//!   every event, as a baseline.
//!
//! Emits `BENCH_kernel.json` (see EXPERIMENTS.md for the schema) with the
//! sustained completion throughput of both modes, their ratio, and the slab
//! high-water mark. CI gates on the *speedup ratio* rather than absolute
//! events/sec so the result is robust to runner hardware.

use std::fmt::Write as _;
use std::time::Instant;

use surf_sim::{Simulation, TransferModel};

/// Deterministic 64-bit LCG (Knuth MMIX constants); value in the high bits.
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

struct ChurnResult {
    completions: usize,
    wall_s: f64,
    events_per_sec: f64,
    peak_actions: usize,
}

/// Runs the churn workload until `target` actions have completed (after a
/// small untimed warmup) and reports sustained throughput.
///
/// Topology: `pairs` private links carrying two contended flows each, plus
/// `hosts` nodes carrying two contended compute bursts each — concurrency
/// stays at `2 * (pairs + hosts)` for the whole run because every
/// completion starts a replacement action on an LCG-chosen resource.
fn churn(
    force_full: bool,
    pairs: usize,
    hosts: usize,
    warmup: usize,
    target: usize,
) -> ChurnResult {
    let model = TransferModel::ideal();
    let mut sim = Simulation::new();
    sim.set_full_reshare(force_full);
    let links: Vec<_> = (0..pairs).map(|_| sim.add_link(1e9, 1e-5)).collect();
    let cpus: Vec<_> = (0..hosts).map(|_| sim.add_host(1e9)).collect();

    let mut rng: u64 = 0x9E37_79B9_7F4A_7C15;
    let start_one = |sim: &mut Simulation, rng: &mut u64| {
        let work = 1e3 + (lcg(rng) % 1_000_000) as f64;
        if lcg(rng) % 10 < 9 || cpus.is_empty() {
            let l = links[lcg(rng) as usize % links.len()];
            sim.start_transfer(&[l], work, &model);
        } else {
            let h = cpus[lcg(rng) as usize % cpus.len()];
            sim.start_exec(h, work);
        }
    };
    for &l in &links {
        for _ in 0..2 {
            let bytes = 1e3 + (lcg(&mut rng) % 1_000_000) as f64;
            sim.start_transfer(&[l], bytes, &model);
        }
    }
    for &h in &cpus {
        for _ in 0..2 {
            let flops = 1e3 + (lcg(&mut rng) % 1_000_000) as f64;
            sim.start_exec(h, flops);
        }
    }

    let mut completions = 0usize;
    let mut t0 = Instant::now();
    let timed = loop {
        let (_, done) = sim
            .advance_to_next()
            .expect("churn workload never drains: every completion is replaced");
        for _ in 0..done.len() {
            start_one(&mut sim, &mut rng);
        }
        completions += done.len();
        if completions <= warmup {
            // Restart the clock until the warmup is over.
            t0 = Instant::now();
            continue;
        }
        if completions - warmup >= target {
            break completions - warmup;
        }
    };
    let wall_s = t0.elapsed().as_secs_f64();
    ChurnResult {
        completions: timed,
        wall_s,
        events_per_sec: timed as f64 / wall_s,
        peak_actions: sim.peak_actions(),
    }
}

/// Runs the kernel microbenchmark, writes `BENCH_kernel.json`, and returns
/// the human-readable summary.
pub fn kernel_bench() -> String {
    let fast = std::env::var("REPRO_FAST").is_ok();
    // 4500 link pairs + 500 hosts => 10 000 concurrent actions.
    let (pairs, hosts) = if fast { (450, 50) } else { (4500, 500) };
    // The full-rebuild baseline pays O(active) per *event*; keep its event
    // budget small so the benchmark finishes in seconds.
    let (inc_events, full_events) = if fast { (2_000, 40) } else { (10_000, 60) };

    let inc = churn(false, pairs, hosts, inc_events / 10, inc_events);
    let full = churn(true, pairs, hosts, full_events / 10, full_events);
    let speedup = inc.events_per_sec / full.events_per_sec;

    let json = format!(
        "{{\n  \"concurrent_actions\": {},\n  \"incremental\": {{ \"completions\": {}, \
         \"wall_s\": {:.6}, \"events_per_sec\": {:.1} }},\n  \"full_reshare\": {{ \
         \"completions\": {}, \"wall_s\": {:.6}, \"events_per_sec\": {:.1} }},\n  \
         \"speedup\": {:.2},\n  \"peak_actions\": {},\n  \"fast_mode\": {}\n}}\n",
        2 * (pairs + hosts),
        inc.completions,
        inc.wall_s,
        inc.events_per_sec,
        full.completions,
        full.wall_s,
        full.events_per_sec,
        speedup,
        inc.peak_actions,
        fast,
    );
    std::fs::write("BENCH_kernel.json", &json).expect("write BENCH_kernel.json");

    let mut out = String::new();
    let _ = writeln!(
        out,
        "# kernel churn: {} concurrent actions, continuous replacement",
        2 * (pairs + hosts)
    );
    let _ = writeln!(
        out,
        "incremental  {:>8} completions in {:>8.3} s  ({:>12.1} events/s, peak slab {})",
        inc.completions, inc.wall_s, inc.events_per_sec, inc.peak_actions
    );
    let _ = writeln!(
        out,
        "full-reshare {:>8} completions in {:>8.3} s  ({:>12.1} events/s)",
        full.completions, full.wall_s, full.events_per_sec
    );
    let _ = writeln!(out, "speedup {speedup:.1}x");
    let _ = writeln!(out, "wrote BENCH_kernel.json");
    out
}
