//! `repro -- gate [kernel scale sweep trace]` — the consolidated benchmark
//! regression gate.
//!
//! One declarative table replaces the four per-job python snippets the CI
//! workflow used to carry: each entry names a metric inside a committed
//! `BENCH_*.json` document, its hardware-independent absolute floor, and
//! its ratio against the `git show HEAD:` reference (see
//! [`smpi_diff::gate`] for the engine and DESIGN.md §18 for the
//! rationale). Every evaluation is appended to
//! `target/bench_history.jsonl` and the folded per-metric trends are
//! printed, so slow drifts that never trip a single gate stay visible.
//!
//! The rendering ends with a `GATE: PASS` / `GATE: FAIL` line; the
//! `repro` binary exits non-zero on `GATE: FAIL`.

use smpi_diff::{append_history, git_reference, render_trends, run_gates, trends, GateSpec};

/// The benchmark gates, one table for all four benchmark jobs. Ratios
/// compare two measurements of the same quantity (robust to runner
/// variance); absolute floors encode format/algorithm promises.
pub const GATES: &[GateSpec] = &[
    // Incremental vs full-reshare kernel speedup: 5x acceptance floor,
    // and within 20% of the committed reference ratio.
    GateSpec {
        name: "kernel.speedup",
        file: "BENCH_kernel.json",
        selector: "speedup",
        floor_abs: 5.0,
        ref_ratio: 0.2,
        enable_if: None,
    },
    // 4k-rank scheduler throughput within a generous 10x cross-hardware
    // factor of the reference (catches a return to the O(waiters) sweep).
    GateSpec {
        name: "scale.simcalls_4k",
        file: "BENCH_scale.json",
        selector: "tiers[ranks=4096].simcalls_per_s",
        floor_abs: 0.0,
        ref_ratio: 0.1,
        enable_if: None,
    },
    // 1-worker sweep throughput within 10x of the reference (catches
    // per-scenario platform re-parsing or trace deep copies).
    GateSpec {
        name: "sweep.scenarios_1w",
        file: "BENCH_sweep.json",
        selector: "runs[workers=1].scenarios_per_s",
        floor_abs: 0.0,
        ref_ratio: 0.1,
        enable_if: None,
    },
    // 4-worker speedup acceptance floor, only meaningful on >= 4 cores.
    GateSpec {
        name: "sweep.speedup_4w",
        file: "BENCH_sweep.json",
        selector: "speedup_4w",
        floor_abs: 3.0,
        ref_ratio: 0.0,
        enable_if: Some(("host_cores", 4.0)),
    },
    // TITRACE2 compression ratio: the 5x format promise is
    // hardware-independent (both sides are byte counts).
    GateSpec {
        name: "trace.ratio",
        file: "BENCH_trace.json",
        selector: "ratio",
        floor_abs: 5.0,
        ref_ratio: 0.0,
        enable_if: None,
    },
    // Decode throughput within 5x of the reference (catches a return to
    // per-op string parsing).
    GateSpec {
        name: "trace.decode_mops",
        file: "BENCH_trace.json",
        selector: "decode_mops_per_s",
        floor_abs: 0.0,
        ref_ratio: 0.2,
        enable_if: None,
    },
];

/// `HEAD` commit id for the history stamp, or `"worktree"` outside git.
fn head_stamp() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "worktree".to_string())
}

/// Evaluates the gates whose name starts with one of `sets`
/// (`kernel`/`scale`/`sweep`/`trace`; empty = all), appends the outcome to
/// `target/bench_history.jsonl`, writes the JSON report to
/// `target/diff/gate_report.json`, and returns the rendering (ending in
/// the `GATE:` verdict line).
pub fn gate(sets: &[&str]) -> String {
    let specs: Vec<GateSpec> = GATES
        .iter()
        .filter(|g| sets.is_empty() || sets.iter().any(|s| g.name.split('.').next() == Some(*s)))
        .cloned()
        .collect();
    let report = run_gates(&specs, git_reference);

    let dir = std::path::Path::new("target/diff");
    let mut out = String::new();
    if std::fs::create_dir_all(dir)
        .and_then(|()| std::fs::write(dir.join("gate_report.json"), report.to_json()))
        .is_ok()
    {
        out.push_str("wrote target/diff/gate_report.json\n");
    }
    let history = std::path::Path::new("target/bench_history.jsonl");
    if append_history(history, &head_stamp(), &report).is_ok() {
        out.push_str(&render_trends(&trends(history)));
    }
    out.push_str(&report.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_table_mirrors_the_ci_jobs() {
        // One gate set per benchmark job, with the documented floors.
        let sets: std::collections::BTreeSet<_> = GATES
            .iter()
            .map(|g| g.name.split('.').next().unwrap())
            .collect();
        assert_eq!(
            sets.into_iter().collect::<Vec<_>>(),
            ["kernel", "scale", "sweep", "trace"]
        );
        let by_name = |n: &str| GATES.iter().find(|g| g.name == n).unwrap();
        assert_eq!(by_name("kernel.speedup").floor_abs, 5.0);
        assert_eq!(by_name("trace.ratio").floor_abs, 5.0);
        assert_eq!(
            by_name("sweep.speedup_4w").enable_if,
            Some(("host_cores", 4.0))
        );
    }

    #[test]
    fn missing_documents_fail_loudly_not_silently() {
        // Run from a scratch cwd-relative namespace: the selected gate's
        // document will not exist, which must FAIL (a gate that cannot
        // measure must not pass). Filtering to an unknown set yields an
        // empty (vacuously passing) report instead.
        let report = run_gates(
            &[GateSpec {
                name: "kernel.speedup",
                file: "definitely_missing_BENCH_kernel.json",
                selector: "speedup",
                floor_abs: 5.0,
                ref_ratio: 0.2,
                enable_if: None,
            }],
            |_| None,
        );
        assert!(!report.pass());
        assert!(report.render().contains("GATE: FAIL"));
        assert!(gate(&["no-such-set"]).contains("GATE: PASS (0 gates"));
    }
}
