//! TITRACE2 codec benchmark (`repro -- trace`).
//!
//! Measures the binary delta-encoded trace codec against the `TITRACE v1`
//! text format on a NAS DT capture (class S under `REPRO_FAST`, class A
//! otherwise, both with regions on so collective annotations are in the
//! stream):
//!
//! 1. **size** — v1 bytes vs v2 bytes; the compression ratio is gated in
//!    CI (the format promises ≥ 5x on the DT golden workload);
//! 2. **speed** — encode and decode throughput (best of three);
//! 3. **streaming** — the same workload captured straight to disk with a
//!    deliberately small block size/budget, then replayed from the
//!    [`smpi::TiV2Reader`] block iterator; the streamed replay and the
//!    materialized replay must both land on the on-line makespan exactly
//!    (rel err 0 on the capture platform);
//! 4. **memory** — the writer's staging high-water mark (bounded capture)
//!    and the reader's resident-block high-water mark (bounded replay),
//!    both reported next to what materializing the whole trace costs.
//!
//! Artifacts: `target/trace/dt.tit2` (the streamed capture) and
//! `BENCH_trace.json` (see EXPERIMENTS.md for the schema and CI gates).

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use smpi::{decode_v2, encode_v2, TiV2Reader};
use smpi_replay as replay;
use smpi_workloads::{build_graph, dt_rank, DtClass, DtGraph};

use crate::common;

/// Decode throughput (million ops/s, materializing decode, best of three)
/// measured on the 1-core container this codec was developed in (DT-A with
/// regions, commit introducing `TITRACE2`). CI compares within a generous
/// cross-hardware factor.
pub const BASELINE_DECODE_MOPS: f64 = 11.5;

/// Streaming-capture tuning used here: blocks small enough that every
/// rank spans several of them, so the bounded-memory claim is exercised,
/// not just stated. DT has ~20–35 ops per rank in *both* classes (the
/// class scales payload sizes, not op counts), hence the tiny blocks.
const TUNING: (usize, usize) = (8, 16 * 1024);

fn best_of_3<T>(mut f: impl FnMut() -> T) -> (T, f64) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..3 {
        let t0 = Instant::now();
        let v = f();
        best = best.min(t0.elapsed().as_secs_f64());
        out = Some(v);
    }
    (out.unwrap(), best)
}

/// Runs the codec benchmark, writes `BENCH_trace.json` and the trace
/// artifact, and returns the human-readable summary.
pub fn trace() -> String {
    let class = if common::fast() {
        DtClass::S
    } else {
        DtClass::A
    };
    let graph = Arc::new(build_graph(class, DtGraph::Bh));
    let nranks = graph.num_nodes();

    let dir = std::path::Path::new("target/trace");
    std::fs::create_dir_all(dir).expect("create target/trace");
    let tit2_path = dir.join("dt.tit2");

    // On-line capture, in memory (the v1 path: whole trace materialized).
    let world = common::smpi_world(common::griffon_rp())
        .capture(true)
        .metrics(true);
    let g = Arc::clone(&graph);
    let online = world.run(nranks, move |ctx| dt_rank(ctx, &g, class));
    let trace = online.ti_trace.expect("capture enabled");
    let ops = trace.summary().ops;

    // Codec size and speed.
    let v1_bytes = trace.encode().len();
    let (v2, encode_s) = best_of_3(|| encode_v2(&trace));
    let v2_bytes = v2.len();
    let ratio = v1_bytes as f64 / v2_bytes as f64;
    let (decoded, decode_s) = best_of_3(|| decode_v2(&v2).expect("decode own encoding"));
    assert_eq!(decoded, trace, "v2 decode must reproduce the capture");
    assert!(
        ratio >= 5.0,
        "TITRACE2 must stay >= 5x smaller than v1 on DT (got {ratio:.2}x)"
    );
    let encode_mb_s = v1_bytes as f64 / 1e6 / encode_s;
    let decode_mops = ops as f64 / 1e6 / decode_s;

    // Streaming capture: same run, trace goes straight to disk in sealed
    // blocks; the report carries codec counters instead of the ops.
    let (block_ops, budget_bytes) = TUNING;
    let world = common::smpi_world(common::griffon_rp())
        .capture_to(&tit2_path)
        .capture_tuning(block_ops, budget_bytes)
        .metrics(true);
    let g = Arc::clone(&graph);
    let streamed = world.run(nranks, move |ctx| dt_rank(ctx, &g, class));
    assert!(streamed.ti_trace.is_none(), "streamed ops live on disk");
    assert_eq!(streamed.sim_time, online.sim_time, "capture mode is inert");
    let codec = streamed.profile.codec.expect("codec stats");
    assert_eq!(codec.ops, ops as u64);

    // The streamed file materializes back to the very trace the in-memory
    // path captured: v1 <-> v2 cross-validation with rel err 0.
    let reader = Arc::new(TiV2Reader::open(&tit2_path).expect("open streamed capture"));
    assert_eq!(reader.materialize().expect("materialize"), trace);

    // Replay, both ways, against the on-line makespan.
    let replay_world = common::smpi_world(common::griffon_rp());
    let t0 = Instant::now();
    let from_mem = replay::replay(&replay_world, &trace);
    let replay_mem_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let from_disk = replay::replay_stream(&replay_world, Arc::clone(&reader));
    let replay_stream_s = t0.elapsed().as_secs_f64();
    assert_eq!(
        from_mem.sim_time, online.sim_time,
        "materialized replay drifted"
    );
    assert_eq!(
        from_disk.sim_time, online.sim_time,
        "streamed replay drifted"
    );
    assert_eq!(from_disk.finish_times, online.finish_times);

    // Bounded memory, both sides. The materialized footprint estimate is
    // deliberately conservative (op headers only, no heap payloads).
    let rstats = reader.stats();
    let materialized_est = ops * std::mem::size_of::<smpi::TiOp>();
    assert!(
        codec.blocks as usize > nranks,
        "tuning must force multiple blocks per rank"
    );
    assert!(
        (rstats.resident_peak_bytes as usize) < materialized_est,
        "streamed replay must hold less than the materialized trace \
         ({} resident vs {} materialized)",
        rstats.resident_peak_bytes,
        materialized_est
    );

    let mut out = String::new();
    let _ = writeln!(
        out,
        "# trace: TITRACE2 codec on DT-{class:?} (BH, {nranks} ranks, {ops} ops, regions on)"
    );
    let _ = writeln!(
        out,
        "size    v1 {} B -> v2 {} B  ({ratio:.2}x smaller, {} of {} blocks LZ, {} dict entries)",
        v1_bytes, v2_bytes, codec.blocks_compressed, codec.blocks, codec.dict_entries
    );
    let _ = writeln!(
        out,
        "speed   encode {encode_mb_s:.1} MB/s (v1-equivalent)  decode {decode_mops:.2} Mops/s"
    );
    let _ = writeln!(
        out,
        "replay  materialized {replay_mem_s:.4} s  streamed {replay_stream_s:.4} s  (both rel err 0 vs online)"
    );
    let _ = writeln!(
        out,
        "memory  writer peak {} B (budget {} B)  reader peak {} B resident \
         ({} blocks decoded, {} cache hits) vs ~{} B materialized",
        codec.writer_peak_staged_bytes,
        codec.writer_budget_bytes,
        rstats.resident_peak_bytes,
        rstats.blocks_decoded,
        rstats.cache_hits,
        materialized_est
    );

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"workload\": \"dt-{class:?}\",");
    let _ = writeln!(json, "  \"ranks\": {nranks},");
    let _ = writeln!(json, "  \"ops\": {ops},");
    let _ = writeln!(json, "  \"v1_bytes\": {v1_bytes},");
    let _ = writeln!(json, "  \"v2_bytes\": {v2_bytes},");
    let _ = writeln!(json, "  \"ratio\": {ratio:.3},");
    let _ = writeln!(json, "  \"encode_mb_s\": {encode_mb_s:.2},");
    let _ = writeln!(json, "  \"decode_mops_per_s\": {decode_mops:.3},");
    let _ = writeln!(json, "  \"replay_rel_err\": 0.0,");
    let _ = writeln!(json, "  \"replay_stream_rel_err\": 0.0,");
    let _ = writeln!(json, "  \"blocks\": {},", codec.blocks);
    let _ = writeln!(
        json,
        "  \"blocks_compressed\": {},",
        codec.blocks_compressed
    );
    let _ = writeln!(json, "  \"dict_entries\": {},", codec.dict_entries);
    let _ = writeln!(
        json,
        "  \"writer_peak_staged_bytes\": {},",
        codec.writer_peak_staged_bytes
    );
    let _ = writeln!(
        json,
        "  \"writer_budget_bytes\": {},",
        codec.writer_budget_bytes
    );
    let _ = writeln!(
        json,
        "  \"reader_resident_peak_bytes\": {},",
        rstats.resident_peak_bytes
    );
    let _ = writeln!(json, "  \"materialized_est_bytes\": {materialized_est},");
    let _ = writeln!(
        json,
        "  \"baseline_decode_mops_per_s\": {BASELINE_DECODE_MOPS:.1}"
    );
    let _ = writeln!(json, "}}");
    std::fs::write("BENCH_trace.json", &json).expect("write BENCH_trace.json");

    let _ = writeln!(out, "wrote BENCH_trace.json, {}", tit2_path.display());
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn trace_bench_produces_artifacts_and_holds_its_gates() {
        std::env::set_var("REPRO_FAST", "1");
        let out = super::trace();
        assert!(out.contains("x smaller"));
        assert!(out.contains("rel err 0"));
        assert!(std::path::Path::new("target/trace/dt.tit2").exists());
        let bench = std::fs::read_to_string("BENCH_trace.json").unwrap();
        for key in [
            "\"ratio\"",
            "\"decode_mops_per_s\"",
            "\"writer_peak_staged_bytes\"",
            "\"reader_resident_peak_bytes\"",
        ] {
            assert!(bench.contains(key), "missing {key} in BENCH_trace.json");
        }
        // Under `cargo test` the cwd is the crate dir, not the workspace
        // root where the committed BENCH file lives — don't leave a copy.
        std::fs::remove_file("BENCH_trace.json").ok();
    }
}
