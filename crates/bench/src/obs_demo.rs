//! Observability showcase for `repro -- obs`.
//!
//! Runs an instrumented workload (ring halo exchange + allreduce, the
//! shape of an iterative stencil solver) with metrics, tracing and
//! self-profiling enabled, then materializes every artifact of the
//! observability layer:
//!
//! * `target/obs/trace.paje` — Paje trace (open with Vite / pj_dump);
//! * `target/obs/report.json` — full JSON dump (timings, trace stats,
//!   metrics, self-profile);
//! * stdout — per-link byte totals, per-rank blocking summary, the
//!   critical path, and the simulator self-profile.

use std::fmt::Write as _;
use std::sync::Arc;

use smpi::{op, World};
use smpi_platform::{flat_cluster, ClusterConfig, RoutedPlatform};
use surf_sim::TransferModel;

/// Ranks in the demo ring.
const RANKS: usize = 8;
/// Halo elements exchanged with each neighbour per iteration (16 KiB).
const HALO: usize = 2048;

/// Runs the demo and returns the human-readable summary. Artifacts land
/// under `target/obs/`.
pub fn obs() -> String {
    let iters: usize = if std::env::var_os("REPRO_FAST").is_some() {
        3
    } else {
        10
    };
    let rp = Arc::new(RoutedPlatform::new(flat_cluster(
        "obs",
        RANKS,
        &ClusterConfig::default(),
    )));
    let report = World::smpi(rp, TransferModel::default_affine())
        .metrics(true)
        .tracing(true)
        .run(RANKS, move |ctx| {
            let comm = ctx.world();
            let (r, p) = (ctx.rank(), ctx.size());
            let right = (r + 1) % p;
            let left = ((r + p - 1) % p) as i32;
            let halo = vec![r as f64; HALO];
            let mut inbox = vec![0.0f64; HALO];
            let mut local = r as f64;
            for it in 0..iters {
                ctx.compute(2e6);
                let tag = it as i32;
                ctx.sendrecv(&halo, right, tag, &mut inbox, left, tag, &comm);
                let s = ctx.allreduce(&[local], &op::sum::<f64>(), &comm);
                local = s[0] / p as f64;
            }
            local
        });

    let dir = std::path::Path::new("target/obs");
    std::fs::create_dir_all(dir).expect("create target/obs");
    let paje = report.paje();
    std::fs::write(dir.join("trace.paje"), &paje).expect("write trace.paje");
    // Stream the report straight to the file (no full in-memory copy).
    let mut f = std::io::BufWriter::new(
        std::fs::File::create(dir.join("report.json")).expect("create report.json"),
    );
    report.write_json(&mut f).expect("write report.json");
    drop(f);
    let json_len = std::fs::metadata(dir.join("report.json"))
        .expect("stat report.json")
        .len();

    let m = report.metrics.as_ref().expect("metrics were enabled");
    let end = report.sim_time;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# obs: {RANKS}-rank halo exchange + allreduce, {iters} iterations"
    );
    let _ = writeln!(
        out,
        "wrote target/obs/trace.paje ({} bytes) and target/obs/report.json ({} bytes)",
        paje.len(),
        json_len
    );
    let _ = writeln!(
        out,
        "protocol: {} eager / {} rendezvous sends, {:.0} bytes posted, {} unexpected",
        m.counter("core.sends.eager"),
        m.counter("core.sends.rendezvous"),
        m.fcounter("core.bytes.posted"),
        m.counter("core.msgs.unexpected"),
    );

    out.push_str("link bytes (wire volume integrated per link):\n");
    for (k, v) in m
        .fcounters
        .iter()
        .filter(|(k, _)| k.starts_with("surf.link.") && k.ends_with(".bytes"))
    {
        let _ = writeln!(out, "  {k:<22} {v:>12.0}");
    }

    out.push_str("per-rank time breakdown (s):\n");
    let _ = writeln!(
        out,
        "  {:<6} {:>10} {:>14} {:>14}",
        "rank", "computing", "blocked_recv", "blocked_send"
    );
    for tl in m.timelines_of("rank") {
        let _ = writeln!(
            out,
            "  rank{:<2} {:>10.6} {:>14.6} {:>14.6}",
            tl.id,
            tl.time_in_state("computing", end),
            tl.time_in_state("blocked_in_recv", end),
            tl.time_in_state("blocked_in_send", end),
        );
    }

    if let Some(cp) = report.critical_path() {
        out.push_str(&cp.render());
    }
    out.push_str(&report.profile.render());
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn demo_produces_all_artifacts() {
        let out = super::obs();
        assert!(out.contains("trace.paje"));
        assert!(out.contains("critical path:"));
        assert!(out.contains("self-profile:"));
        assert!(out.contains("surf.link."));
        assert!(std::path::Path::new("target/obs/trace.paje").exists());
        assert!(std::path::Path::new("target/obs/report.json").exists());
    }
}
