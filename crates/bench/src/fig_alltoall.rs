//! Figures 11–12: accuracy on the pairwise all-to-all.
//!
//! * Fig. 11 — per-process completion times, 16 processes, 4 MiB blocks,
//!   SMPI ±contention vs OpenMPI. The paper reports the contention-blind
//!   model underestimating by ~78% while the contention-aware SMPI is
//!   within a few percent.
//! * Fig. 12 — completion time vs block size, 16 processes.

use smpi::World;
use smpi_metrics::ErrorSummary;
use smpi_workloads::timed_alltoall;

use crate::common::{
    fast, griffon_rp, openmpi_world, secs, smpi_world, smpi_world_no_contention, Table,
};
use crate::fig_scatter::SizeSweep;

fn run_alltoall(world: &World, nranks: usize, chunk_elems: usize) -> Vec<f64> {
    world
        .run(nranks, move |ctx| timed_alltoall(ctx, chunk_elems))
        .results
}

/// Per-process all-to-all data (Fig. 11).
pub struct Fig11 {
    /// SMPI with contention.
    pub smpi: Vec<f64>,
    /// SMPI without contention.
    pub smpi_nc: Vec<f64>,
    /// OpenMPI personality (ground truth).
    pub openmpi: Vec<f64>,
}

impl Fig11 {
    /// Contention-aware accuracy.
    pub fn smpi_vs_openmpi(&self) -> ErrorSummary {
        ErrorSummary::compare(&self.smpi, &self.openmpi)
    }

    /// Contention-blind accuracy (the ~78% underestimation of the paper).
    pub fn nocontention_vs_openmpi(&self) -> ErrorSummary {
        ErrorSummary::compare(&self.smpi_nc, &self.openmpi)
    }

    /// Renders per-rank rows plus summaries.
    pub fn render(&self) -> String {
        let mut t = Table::new(&["rank", "smpi(s)", "smpi-nocont(s)", "openmpi(s)"]);
        for r in 0..self.smpi.len() {
            t.row(vec![
                r.to_string(),
                secs(self.smpi[r]),
                secs(self.smpi_nc[r]),
                secs(self.openmpi[r]),
            ]);
        }
        format!(
            "# Fig. 11 — pairwise all-to-all, 16 procs, 4 MiB blocks (per process)\n{}\
             smpi vs openmpi       : {}\n\
             no-contention vs openmpi: {}\n",
            t.render(),
            self.smpi_vs_openmpi(),
            self.nocontention_vs_openmpi()
        )
    }
}

/// Runs Fig. 11 on 16 griffon nodes.
pub fn fig11() -> Fig11 {
    let rp = griffon_rp();
    let chunk = if fast() { 32 * 1024 } else { 512 * 1024 };
    let n = 16;
    Fig11 {
        smpi: run_alltoall(&smpi_world(rp.clone()), n, chunk),
        smpi_nc: run_alltoall(&smpi_world_no_contention(rp.clone()), n, chunk),
        openmpi: run_alltoall(&openmpi_world(rp), n, chunk),
    }
}

/// Runs Fig. 12 (size sweep, completion = slowest rank).
pub fn fig12() -> SizeSweep {
    let rp = griffon_rp();
    let n = 16;
    let max_pow = if fast() { 12 } else { 19 };
    let rows = (0..=max_pow)
        .map(|k| {
            let chunk = 1usize << k;
            let s = run_alltoall(&smpi_world(rp.clone()), n, chunk)
                .into_iter()
                .fold(0.0, f64::max);
            let o = run_alltoall(&openmpi_world(rp.clone()), n, chunk)
                .into_iter()
                .fold(0.0, f64::max);
            (chunk as u64 * 8, s, o)
        })
        .collect();
    SizeSweep {
        rows,
        title: "Fig. 12 — pairwise all-to-all time vs block size, 16 procs".into(),
    }
}
