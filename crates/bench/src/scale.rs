//! Large-instance scaling benchmark (`repro -- scale`).
//!
//! Reproduces the paper's headline capability — *large* MPI instances on a
//! single node (§3, §5.1) — and measures the simulator's scheduling
//! overhead as the rank count grows: an EP-style workload (compute blocks
//! and a final allreduce) where `SMPI_SAMPLE_GLOBAL` makes compute time
//! and `SMPI_SHARED_MALLOC` folding makes application RAM independent of
//! the rank count, so what remains is pure simulator cost per simcall.
//!
//! Tiers: 1k/4k ranks under `REPRO_FAST=1` (the CI configuration), plus
//! 16k- and 64k-rank tiers in full mode. `SCALE_RANKS=<n>` runs a single
//! ad-hoc tier. Every simulated rank is one OS thread, and a thread costs a
//! handful of address-space map entries (stack + guard + TLS), so large
//! tiers are gated on `/proc/sys/vm/max_map_count`: a tier that would
//! exhaust the host's map budget is *skipped with an explanation* (and
//! recorded in `skipped_tiers`) instead of aborting the whole run the way a
//! failed `pthread_create` does.
//! Emits `BENCH_scale.json` (see EXPERIMENTS.md for the schema): per tier
//! `ranks`, `wall_s`, `simcalls`, `simcalls_per_s`, `sim_time`,
//! `peak_actual_bytes`, `peak_logical_bytes` and the kernel fast-path
//! counters `classes_folded` / `batched_completions` /
//! `parallel_components`, plus the pre-change 4k-rank baseline and the
//! improvement ratio against it. CI gates on `simcalls_per_s` at the 4k
//! tier staying within a generous factor of the committed reference (same
//! robustness argument as the kernel-bench gate).
//!
//! Every tier runs with the time-series sampler on and live progress lines
//! on stderr (JSON, every 2 s of wall time; from the second tier onward
//! the previous tier's simulated makespan seeds the ETA extrapolation).
//! The last tier's telemetry lands in `target/obs/timeseries.json` and
//! `target/obs/chrome_trace.json` (load the latter in `chrome://tracing`).

use std::fmt::Write as _;
use std::sync::Arc;

use smpi::World;
use smpi_platform::{griffon, RoutedPlatform};
use smpi_workloads::ep_block;
use surf_sim::TransferModel;

/// Maestro-simcall throughput of the 4k-rank tier measured at commit
/// 2905af0 ("Rewrite SURF kernel for O(active) per-event cost"), i.e.
/// immediately before the scheduler fast-path and the O(completions)
/// progress engine landed. The improvement ratio in `BENCH_scale.json`
/// is relative to this figure.
pub const PRE_CHANGE_BASELINE_4K_SIMCALLS_PER_S: f64 = 3891.6;

/// Per-rank compute blocks (each one `SMPI_SAMPLE_GLOBAL` site visit).
const BLOCKS_PER_RANK: usize = 4;
/// Measurements pooled across *all* ranks before the mean replays.
const GLOBAL_MEASURE: u32 = 8;
/// Candidate pairs per measured block (kept small: the point is that only
/// `GLOBAL_MEASURE` blocks execute no matter how many ranks run).
const PAIRS_PER_BLOCK: u64 = 4096;
/// Folded per-rank field size in f64 elements (256 KiB logical per rank).
const FIELD_LEN: usize = 1 << 15;

struct Tier {
    ranks: usize,
    wall_s: f64,
    sim_time: f64,
    simcalls: u64,
    local_simcalls: u64,
    simcalls_per_s: f64,
    peak_actual_bytes: u64,
    peak_logical_bytes: u64,
    /// Rendered kernel introspection (reshare component sizes, dirty
    /// cascades, solve wall-clock). Always present: the kernel counts
    /// these even with metrics off.
    kernel: String,
    /// Kernel fast-path counters (see `KernelProfile`): flows saved by
    /// uniform-round class folding, completions coalesced into shared
    /// reshares, and components offered to the parallel solver.
    classes_folded: u64,
    batched_completions: u64,
    parallel_components: u64,
    /// `"timeseries"` JSON section of the tier's run.
    timeseries_json: String,
}

/// A tier the host could not run, recorded in the JSON instead of silently
/// narrowing the sweep.
struct SkippedTier {
    ranks: usize,
    reason: String,
}

/// Approximate address-space map entries one actor thread costs (stack,
/// guard page, TLS), observed on Linux 6.x; plus a flat allowance for the
/// binary, allocator arenas and the maestro itself.
const MAPS_PER_RANK: u64 = 4;
const BASE_MAPS: u64 = 8192;

/// Whether `ranks` actor threads fit the host's `vm.max_map_count` budget.
/// Unreadable (non-Linux) hosts are assumed to fit — the OS will say no
/// itself if not.
fn tier_fits(ranks: usize) -> Result<(), String> {
    let Some(limit) = std::fs::read_to_string("/proc/sys/vm/max_map_count")
        .ok()
        .and_then(|s| s.trim().parse::<u64>().ok())
    else {
        return Ok(());
    };
    let need = ranks as u64 * MAPS_PER_RANK + BASE_MAPS;
    if need > limit {
        Err(format!(
            "{ranks} actor threads need ~{need} vm maps but vm.max_map_count is {limit}; \
             raise it (sysctl -w vm.max_map_count={need}) to run this tier"
        ))
    } else {
        Ok(())
    }
}

fn run_tier(ranks: usize, sim_time_hint: Option<f64>) -> Tier {
    let rp = Arc::new(RoutedPlatform::new(griffon()));
    let mut world = World::smpi(rp, TransferModel::default_affine())
        .timeseries(true)
        .progress_every(2.0);
    if let Some(hint) = sim_time_hint {
        world = world.progress_hint(hint);
    }
    let report = world.run(ranks, move |ctx| {
        // Folded field: every rank "allocates" FIELD_LEN doubles, one copy
        // actually exists (§3.2 technique #1).
        let field = ctx.shared_malloc::<f64>("scale:field", FIELD_LEN);
        let r = ctx.rank() as u64;
        let mut sx = 0.0;
        let mut sy = 0.0;
        let mut accepted = 0.0;
        for b in 0..BLOCKS_PER_RANK as u64 {
            let part = std::cell::Cell::new(smpi_workloads::EpPartial::default());
            ctx.sample_global("scale:block", GLOBAL_MEASURE, || {
                part.set(ep_block(
                    (r * BLOCKS_PER_RANK as u64 + b) * PAIRS_PER_BLOCK,
                    PAIRS_PER_BLOCK,
                ));
            });
            let p = part.get();
            sx += p.sx;
            sy += p.sy;
            accepted += p.q.iter().sum::<f64>();
            // Touch the folded field (ranks clobber each other — the
            // accepted corruption trade-off of §3.2).
            field.lock()[(r as usize * 7 + b as usize) % FIELD_LEN] = sx;
        }
        let global = ctx.allreduce(&[sx, sy, accepted], &smpi::op::sum(), &ctx.world());
        (global[0], global[1], global[2])
    });
    let simcalls = report.profile.simcalls;
    let local_simcalls = report.profile.local_simcalls;
    let wall_s = report.wall.as_secs_f64();
    let k = report.profile.kernel.as_ref();
    let tier = Tier {
        ranks,
        wall_s,
        sim_time: report.sim_time,
        simcalls,
        local_simcalls,
        simcalls_per_s: simcalls as f64 / wall_s,
        peak_actual_bytes: report.memory.peak_bytes,
        peak_logical_bytes: report.memory.logical_peak_bytes,
        kernel: k.map(|k| k.render()).unwrap_or_default(),
        classes_folded: k.map_or(0, |k| k.classes_folded),
        batched_completions: k.map_or(0, |k| k.batched_completions),
        parallel_components: k.map_or(0, |k| k.parallel_components),
        timeseries_json: report
            .timeseries
            .as_ref()
            .map(|ts| ts.to_json())
            .unwrap_or_default(),
    };

    // Stream the Chrome Trace Event export straight to disk: at the 16k+
    // tiers the materialized string costs tens of MB of transient heap for
    // no reason. Each tier overwrites the file, so it ends up holding the
    // largest tier that ran — same final state as the old buffered write.
    let dir = std::path::Path::new("target/obs");
    std::fs::create_dir_all(dir).expect("create target/obs");
    let f = std::fs::File::create(dir.join("chrome_trace.json")).expect("create chrome_trace");
    let mut w = std::io::BufWriter::new(f);
    report
        .write_chrome_trace(&mut w)
        .expect("stream chrome trace");
    std::io::Write::flush(&mut w).expect("flush chrome trace");
    tier
}

/// Runs the scaling tiers, writes `BENCH_scale.json`, and returns the
/// human-readable summary.
pub fn scale() -> String {
    let fast = std::env::var("REPRO_FAST").is_ok();
    let tiers: Vec<usize> = match std::env::var("SCALE_RANKS") {
        Ok(v) => vec![v.parse().expect("SCALE_RANKS must be an integer")],
        Err(_) if fast => vec![1024, 4096],
        Err(_) => vec![1024, 4096, 16384, 65536],
    };

    // Each tier seeds the next one's progress ETA with its simulated
    // makespan (the workload's sim_time is nearly rank-independent).
    let mut results: Vec<Tier> = Vec::with_capacity(tiers.len());
    let mut skipped: Vec<SkippedTier> = Vec::new();
    for &n in &tiers {
        if let Err(reason) = tier_fits(n) {
            eprintln!("scale: skipping {n}-rank tier: {reason}");
            skipped.push(SkippedTier { ranks: n, reason });
            continue;
        }
        let hint = results.last().map(|t: &Tier| t.sim_time);
        results.push(run_tier(n, hint));
    }

    // Telemetry artifacts of the largest tier (the Chrome Trace export is
    // already streamed to target/obs/chrome_trace.json inside run_tier).
    if let Some(t) = results.last() {
        let dir = std::path::Path::new("target/obs");
        std::fs::create_dir_all(dir).expect("create target/obs");
        std::fs::write(dir.join("timeseries.json"), &t.timeseries_json)
            .expect("write timeseries.json");
    }

    let mut json = String::from("{\n  \"tiers\": [\n");
    for (i, t) in results.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{ \"ranks\": {}, \"wall_s\": {:.6}, \"sim_time\": {:.9}, \
             \"simcalls\": {}, \"local_simcalls\": {}, \"simcalls_per_s\": {:.1}, \
             \"peak_actual_bytes\": {}, \"peak_logical_bytes\": {}, \
             \"classes_folded\": {}, \"batched_completions\": {}, \
             \"parallel_components\": {} }}{}",
            t.ranks,
            t.wall_s,
            t.sim_time,
            t.simcalls,
            t.local_simcalls,
            t.simcalls_per_s,
            t.peak_actual_bytes,
            t.peak_logical_bytes,
            t.classes_folded,
            t.batched_completions,
            t.parallel_components,
            if i + 1 < results.len() { "," } else { "" },
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"skipped_tiers\": [");
    for (i, s) in skipped.iter().enumerate() {
        // Reasons contain only ASCII we control; escape quotes defensively.
        let _ = writeln!(
            json,
            "    {{ \"ranks\": {}, \"reason\": \"{}\" }}{}",
            s.ranks,
            s.reason.replace('\\', "\\\\").replace('"', "\\\""),
            if i + 1 < skipped.len() { "," } else { "" },
        );
    }
    let _ = writeln!(json, "  ],");
    let four_k = results.iter().find(|t| t.ranks == 4096);
    let _ = writeln!(
        json,
        "  \"baseline_4k_simcalls_per_s\": {PRE_CHANGE_BASELINE_4K_SIMCALLS_PER_S:.1},"
    );
    if let Some(t) = four_k {
        let _ = writeln!(
            json,
            "  \"improvement_4k\": {:.2},",
            t.simcalls_per_s / PRE_CHANGE_BASELINE_4K_SIMCALLS_PER_S
        );
    }
    let _ = writeln!(json, "  \"fast_mode\": {fast}\n}}");
    std::fs::write("BENCH_scale.json", &json).expect("write BENCH_scale.json");

    let mut out = String::new();
    let _ = writeln!(
        out,
        "# scale: EP with SMPI_SAMPLE_GLOBAL({GLOBAL_MEASURE}) + folded allocations, griffon"
    );
    let _ = writeln!(
        out,
        "{:>7} {:>10} {:>12} {:>10} {:>14} {:>14} {:>16} {:>16}",
        "ranks",
        "wall_s",
        "sim_time",
        "simcalls",
        "local_calls",
        "simcalls/s",
        "peak_actual_B",
        "peak_logical_B"
    );
    for t in &results {
        let _ = writeln!(
            out,
            "{:>7} {:>10.3} {:>12.6} {:>10} {:>14} {:>14.1} {:>16} {:>16}",
            t.ranks,
            t.wall_s,
            t.sim_time,
            t.simcalls,
            t.local_simcalls,
            t.simcalls_per_s,
            t.peak_actual_bytes,
            t.peak_logical_bytes
        );
    }
    for s in &skipped {
        let _ = writeln!(out, "{:>7} skipped: {}", s.ranks, s.reason);
    }
    if let Some(t) = four_k {
        let _ = writeln!(
            out,
            "4k-rank improvement vs pre-change baseline ({PRE_CHANGE_BASELINE_4K_SIMCALLS_PER_S:.0} simcalls/s): {:.2}x",
            t.simcalls_per_s / PRE_CHANGE_BASELINE_4K_SIMCALLS_PER_S
        );
    }
    if let Some(t) = results.last() {
        let _ = writeln!(
            out,
            "kernel introspection ({} ranks, metrics off):",
            t.ranks
        );
        out.push_str(&t.kernel);
    }
    let _ = writeln!(
        out,
        "wrote BENCH_scale.json, target/obs/timeseries.json, target/obs/chrome_trace.json"
    );
    out
}
