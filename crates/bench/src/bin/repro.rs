//! Regenerates every table/figure of the paper's evaluation.
//!
//! Usage: `repro [fig3 fig4 ... | all]`. `REPRO_FAST=1` trims sweeps.

use smpi_bench::{
    ablations, contention_demo, diff_demo, e2e, fig_alltoall, fig_dt, fig_pingpong, fig_scatter,
    fig_schemes, fig_speed, gate, kernel_bench, obs_demo, replay_demo, scale, sweep_bench,
    trace_bench,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    // `gate` consumes the rest of the argument list as gate-set filters
    // (e.g. `repro -- gate kernel scale`); exit 1 on a failed gate.
    if args.first().map(String::as_str) == Some("gate") {
        let sets: Vec<&str> = args[1..].iter().map(String::as_str).collect();
        let out = gate::gate(&sets);
        println!("{out}");
        if !out.contains("GATE: PASS") {
            std::process::exit(1);
        }
        return;
    }

    let targets: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        vec![
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "fig15",
            "fig16",
            "fig17",
            "fig18",
            "ablations",
            "obs",
            "contention",
            "replay",
        ]
    } else {
        args.iter().map(String::as_str).collect()
    };

    for target in targets {
        let t0 = std::time::Instant::now();
        let out = match target {
            "fig3" => fig_pingpong::fig3().render(),
            "fig4" => fig_pingpong::fig4().render(),
            "fig5" => fig_pingpong::fig5().render(),
            "fig6" => fig_schemes::fig6(),
            "fig7" => fig_scatter::fig7().render(),
            "fig8" => fig_scatter::fig8().render(),
            "fig9" => fig_scatter::fig9().render(),
            "fig10" => fig_schemes::fig10(),
            "fig11" => fig_alltoall::fig11().render(),
            "fig12" => fig_alltoall::fig12().render(),
            "fig13" | "fig14" => fig_schemes::fig13_14(),
            "fig15" => fig_dt::fig15().render(),
            "fig16" => fig_dt::fig16().render(),
            "fig17" => fig_speed::fig17().render(),
            "fig18" => fig_speed::fig18().render(),
            "obs" => obs_demo::obs(),
            "contention" => contention_demo::contention(),
            "diff" => diff_demo::diff(),
            "replay" => replay_demo::replay_demo(),
            "dt" => e2e::dt_report(),
            "ep" => e2e::ep_report(),
            "kernel" => kernel_bench::kernel_bench(),
            "scale" => scale::scale(),
            "sweep" => sweep_bench::sweep(),
            "trace" => trace_bench::trace(),
            "ablations" => format!(
                "{}\n{}\n{}",
                ablations::segment_sweep(),
                ablations::scatter_variants(),
                ablations::contention_scaling()
            ),
            other => {
                eprintln!("unknown target {other:?}");
                std::process::exit(2);
            }
        };
        println!("{out}");
        eprintln!("[{} done in {:.1}s]\n", target, t0.elapsed().as_secs_f64());
    }
}
