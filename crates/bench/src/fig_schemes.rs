//! Structural figures: communication schemes.
//!
//! * Fig. 6 — the binomial tree of a 16-process scatter;
//! * Fig. 10 — the pairwise all-to-all steps for 4 processes;
//! * Figs. 13–14 — the DT BH and WH task graphs for class A.
//!
//! These figures carry no timing; regenerating them validates that the
//! implemented algorithms move data along exactly the edges the paper draws.

use smpi::pairwise_peers;
use smpi::tree;
use smpi_workloads::{build_graph, DtClass, DtGraph};

/// Fig. 6: edges of the binomial scatter tree for 16 processes, in send
/// order (root first, largest subtree first).
pub fn fig6() -> String {
    let mut out = String::from("# Fig. 6 — binomial tree scatter, 16 processes\n");
    for (from, to) in tree::edges(16) {
        let span = tree::subtree_span(to, 16);
        out.push_str(&format!("{from} -> {to}   ({span} chunk(s))\n"));
    }
    out
}

/// Fig. 10: the four steps of the pairwise all-to-all with 4 processes.
pub fn fig10() -> String {
    let p = 4;
    let mut out = String::from("# Fig. 10 — pairwise all-to-all, 4 processes\n");
    for step in 0..p {
        out.push_str(&format!("step {}:", step + 1));
        for r in 0..p {
            let (to, _) = pairwise_peers(r, p, step);
            out.push_str(&format!("  {r}->{to}"));
        }
        out.push('\n');
    }
    out
}

/// Figs. 13–14: the DT class-A BH and WH communication graphs.
pub fn fig13_14() -> String {
    let mut out = String::new();
    for (name, shape) in [
        ("Fig. 13 — DT BH", DtGraph::Bh),
        ("Fig. 14 — DT WH", DtGraph::Wh),
    ] {
        let g = build_graph(DtClass::A, shape);
        out.push_str(&format!(
            "# {name}, class A ({} processes, {} sources, {} sink(s))\n",
            g.num_nodes(),
            g.sources().len(),
            g.sinks().len()
        ));
        for (r, succ) in g.succ.iter().enumerate() {
            if !succ.is_empty() {
                out.push_str(&format!(
                    "{r} -> {}\n",
                    succ.iter()
                        .map(|s| s.to_string())
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig6_root_sends_largest_first() {
        let s = super::fig6();
        let first = s.lines().nth(1).unwrap();
        assert!(first.starts_with("0 -> 8"), "got {first:?}");
        assert!(first.contains("(8 chunk(s))"));
        // 15 edges for 16 processes.
        assert_eq!(s.lines().count(), 16);
    }

    #[test]
    fn fig10_has_four_permutation_steps() {
        let s = super::fig10();
        assert_eq!(s.lines().count(), 5);
        assert!(s.contains("step 1:  0->0  1->1  2->2  3->3"));
        assert!(s.contains("step 2:  0->1  1->2  2->3  3->0"));
    }

    #[test]
    fn fig13_counts() {
        let s = super::fig13_14();
        assert!(s.contains("21 processes, 16 sources, 1 sink(s)"));
        assert!(s.contains("21 processes, 1 sources, 16 sink(s)"));
    }
}
