//! Contention attribution showcase for `repro -- contention`.
//!
//! Runs the DT class-S black-hole workload on the griffon cluster in
//! throughput mode — twelve simultaneous instances, one per sink — with a
//! placement that concentrates every fan-in flow through cabinet 0: all
//! sinks live on cabinet-0 hosts, all leaves on cabinets 1 and 2. The 48
//! concurrent 32 KiB transfers then oversubscribe the cabinet-0 spine
//! uplink (1.25 Gb/s serving 48 flows whose individual access links could
//! carry 125 Mb/s each), so the attribution engine should name
//! `griffon-cab0-uplink` as the top bottleneck — which this demo verifies
//! and prints, along with the link-attributed critical path, the per-rank
//! blocked-on-link rollup and the kernel self-profile.
//!
//! Artifacts:
//!
//! * `target/obs/contention.json` — the full attribution section
//!   (per-flow share integrals and bottleneck residency, per-link and
//!   per-rank rollups);
//! * stdout — top-bottleneck table, conservation check, critical path,
//!   self-profile.

use std::fmt::Write as _;

use smpi::World;
use smpi_workloads::{build_graph, DtClass, DtGraph};
use surf_sim::TransferModel;

use crate::common::griffon_rp;

/// Concurrent DT class-S instances. Each black-hole instance funnels
/// 4 × 125 Mb/s of leaf traffic toward its sink; twelve instances push
/// 48 flows through the 1.25 Gb/s cabinet-0 uplink, oversubscribing it
/// roughly 4.8× and making it the max-min bottleneck of every flow.
const INSTANCES: usize = 12;

/// Runs the demo and returns the human-readable summary. The attribution
/// JSON lands at `target/obs/contention.json`.
pub fn contention() -> String {
    let class = DtClass::S;
    let graph = build_graph(class, DtGraph::Bh);
    let per = graph.num_nodes();
    let nranks = INSTANCES * per;
    let rp = griffon_rp();
    assert!(
        nranks <= rp.platform().num_hosts(),
        "griffon fits the fleet"
    );

    // Sinks on cabinet-0 hosts (0..33); leaves on cabinets 1 and 2
    // (hosts 33..92), one host per rank.
    let mut placement = vec![0usize; nranks];
    let mut leaf_host = 33;
    for i in 0..INSTANCES {
        for local in 0..per {
            placement[i * per + local] = if graph.succ[local].is_empty() {
                i
            } else {
                leaf_host += 1;
                leaf_host - 1
            };
        }
    }

    let g = graph.clone();
    let report = World::smpi(rp, TransferModel::default_affine())
        .metrics(true)
        .tracing(true)
        .place(placement)
        .run(nranks, move |ctx| {
            let comm = ctx.world();
            let r = ctx.rank();
            let local = r % per;
            let base = r - local;
            let n = class.num_samples();
            if g.pred[local].is_empty() {
                // Leaf: generate the feature array and feed the sink.
                let data = vec![local as f64; n];
                for &s in &g.succ[local] {
                    ctx.send(&data, base + s, 0, &comm);
                }
                n
            } else {
                // Sink: concatenate everything the leaves produced.
                let reqs: Vec<_> = g.pred[local]
                    .iter()
                    .map(|&p| ctx.irecv::<f64>((base + p) as i32, 0, n, &comm))
                    .collect();
                reqs.into_iter()
                    .map(|req| ctx.wait_recv(req, &comm).0.len())
                    .sum()
            }
        });

    let c = report.contention.as_ref().expect("metrics were enabled");
    let m = report.metrics.as_ref().expect("metrics were enabled");

    // Conservation: per link, the per-flow share integrals must add up to
    // the byte integral the metrics layer recorded independently.
    let rollup = c.link_rollup();
    let mut worst_rel = 0.0f64;
    for (l, r) in rollup.iter().enumerate() {
        let counter = m.fcounter(&format!("surf.link.{l}.bytes"));
        let rel = (r.share_bytes - counter).abs() / counter.max(1.0);
        worst_rel = worst_rel.max(rel);
        assert!(
            rel <= 1e-9,
            "link {l} ({}) shares {} != counter {counter}",
            c.link_name(l as u32),
            r.share_bytes
        );
    }

    let dir = std::path::Path::new("target/obs");
    std::fs::create_dir_all(dir).expect("create target/obs");
    let json = c.to_json();
    std::fs::write(dir.join("contention.json"), &json).expect("write contention.json");

    let top = c.top_bottlenecks(5);
    let top_link = top.first().expect("some link bottlenecked").0;
    let top_name = c.link_name(top_link);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "# contention: {INSTANCES} concurrent DT class-S BH instances on griffon \
         ({nranks} ranks, sinks in cabinet 0)"
    );
    let _ = writeln!(
        out,
        "wrote target/obs/contention.json ({} bytes)",
        json.len()
    );
    let _ = writeln!(
        out,
        "conservation: per-link share integrals match byte counters \
         (worst relative error {worst_rel:.2e})"
    );
    out.push_str(&c.render_top(5));
    let _ = writeln!(out, "top bottleneck: {top_name}");

    out.push_str("per-rank time blocked on the top link (s, worst 4):\n");
    let mut blocked: Vec<(u32, f64)> = c
        .rank_blocked()
        .into_iter()
        .filter(|&(_, l, s)| l == top_link && s > 0.0)
        .map(|(rank, _, s)| (rank, s))
        .collect();
    blocked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    for (rank, secs) in blocked.iter().take(4) {
        let _ = writeln!(out, "  rank{rank:<3} {secs:>10.6}");
    }

    if let Some(cp) = report.critical_path() {
        out.push_str(&cp.render());
    }
    out.push_str(&report.profile.render());
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn demo_names_the_spine_uplink() {
        let out = super::contention();
        assert!(out.contains("contention.json"));
        assert!(
            out.contains("top bottleneck: griffon-cab0-uplink"),
            "spine uplink should dominate:\n{out}"
        );
        assert!(out.contains("conservation: per-link share integrals match"));
        assert!(out.contains("critical path:"));
        assert!(out.contains("self-profile:"));
        assert!(std::path::Path::new("target/obs/contention.json").exists());
    }
}
