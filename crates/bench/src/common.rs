//! Shared experiment infrastructure: cached platforms, cached calibration,
//! world builders and table rendering.
//!
//! Calibration (a full ping-pong sweep on the packet-level griffon) is the
//! most expensive shared step, so its samples and the three fitted models
//! are computed once per process and reused by every figure.

use std::sync::{Arc, OnceLock};

use smpi::{Backend, MpiProfile, World};
use smpi_calibrate::{
    fit_best_affine, fit_default_affine, fit_piecewise, pingpong, RouteRef, Sample,
};
use smpi_platform::{gdx, griffon, HostIx, RoutedPlatform};
use surf_sim::{EngineConfig, TransferModel};

/// `true` when the `REPRO_FAST` environment variable trims sweep sizes for
/// smoke-testing the harness.
pub fn fast() -> bool {
    std::env::var_os("REPRO_FAST").is_some()
}

/// The griffon platform (calibration cluster), cached.
pub fn griffon_rp() -> Arc<RoutedPlatform> {
    static RP: OnceLock<Arc<RoutedPlatform>> = OnceLock::new();
    Arc::clone(RP.get_or_init(|| Arc::new(RoutedPlatform::new(griffon()))))
}

/// The gdx platform (transfer-target cluster), cached.
pub fn gdx_rp() -> Arc<RoutedPlatform> {
    static RP: OnceLock<Arc<RoutedPlatform>> = OnceLock::new();
    Arc::clone(RP.get_or_init(|| Arc::new(RoutedPlatform::new(gdx()))))
}

/// Nominal route reference between two hosts of a platform.
pub fn route_ref(rp: &RoutedPlatform, a: usize, b: usize) -> RouteRef {
    RouteRef {
        latency: rp.latency(HostIx(a as u32), HostIx(b as u32)),
        bandwidth: rp.bandwidth(HostIx(a as u32), HostIx(b as u32)),
    }
}

/// The ping-pong calibration sweep sizes.
pub fn calibration_sizes() -> Vec<u64> {
    if fast() {
        let mut v = Vec::new();
        let mut s = 1u64;
        while s <= 1 << 22 {
            v.push(s);
            s *= 4;
        }
        v
    } else {
        smpi_calibrate::default_sizes()
    }
}

/// SKaMPI-equivalent measurements on the packet-level griffon (cached).
pub fn calibration_samples() -> &'static [Sample] {
    static SAMPLES: OnceLock<Vec<Sample>> = OnceLock::new();
    SAMPLES.get_or_init(|| {
        let rp = griffon_rp();
        let world = World::testbed(rp, MpiProfile::openmpi_like());
        pingpong(&world, 0, 1, &calibration_sizes(), 1)
    })
}

/// The calibration route (two same-cabinet griffon nodes).
pub fn calibration_route() -> RouteRef {
    route_ref(&griffon_rp(), 0, 1)
}

/// The 3-segment piece-wise linear model fitted from the calibration
/// (cached) — SMPI's production model for every figure.
pub fn piecewise_model() -> &'static TransferModel {
    static M: OnceLock<TransferModel> = OnceLock::new();
    M.get_or_init(|| fit_piecewise(calibration_samples(), 3, calibration_route()))
}

/// The best-fit affine baseline (cached).
pub fn best_affine_model() -> &'static TransferModel {
    static M: OnceLock<TransferModel> = OnceLock::new();
    M.get_or_init(|| fit_best_affine(calibration_samples(), calibration_route()))
}

/// The default affine baseline (cached).
pub fn default_affine_model() -> &'static TransferModel {
    static M: OnceLock<TransferModel> = OnceLock::new();
    M.get_or_init(|| fit_default_affine(calibration_samples(), calibration_route()))
}

/// SMPI world on a platform with the calibrated piece-wise model.
pub fn smpi_world(rp: Arc<RoutedPlatform>) -> World {
    World::smpi(rp, piecewise_model().clone())
}

/// SMPI world with link contention disabled *and* the ideal affine model:
/// "each communication ... will get the maximal bandwidth, i.e., 1 Gigabit
/// per second, whatever the number of concurrent communications" — the
/// baseline mimicking the contention-blind simulators of §2 (Figs. 7, 11).
pub fn smpi_world_no_contention(rp: Arc<RoutedPlatform>) -> World {
    World::new(
        rp,
        Backend::Surf {
            model: TransferModel::ideal(),
            engine: EngineConfig {
                contention: false,
                tcp_window: None,
                class_folding: true,
            },
        },
        MpiProfile::smpi(),
    )
}

/// The emulated real cluster with the OpenMPI personality.
pub fn openmpi_world(rp: Arc<RoutedPlatform>) -> World {
    World::testbed(rp, MpiProfile::openmpi_like())
}

/// The emulated real cluster with the MPICH2 personality.
pub fn mpich2_world(rp: Arc<RoutedPlatform>) -> World {
    World::testbed(rp, MpiProfile::mpich2_like())
}

/// Minimal fixed-width table rendering for the repro binary's output.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header length).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row).take(ncols) {
                *w = (*w).max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(out.len().saturating_sub(1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats seconds as microseconds (the unit of Figs. 3–5, 8, 12).
pub fn us(t: f64) -> String {
    format!("{:.1}", t * 1e6)
}

/// Formats seconds with 4 decimals (the unit of Figs. 7, 9, 11, 15, 17, 18).
pub fn secs(t: f64) -> String {
    format!("{t:.4}")
}

/// Formats bytes as MiB.
pub fn mib(b: u64) -> String {
    format!("{:.1}", b as f64 / (1024.0 * 1024.0))
}
