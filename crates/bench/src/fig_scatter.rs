//! Figures 7–9: accuracy of the contention-aware model on the binomial-tree
//! scatter.
//!
//! * Fig. 7 — per-process completion times, 16 processes, 4 MiB chunks,
//!   SMPI ±contention vs the OpenMPI and MPICH2 personalities;
//! * Fig. 8 — scatter completion time vs message size, 16 processes;
//! * Fig. 9 — scatter completion time vs process count, 4 MiB chunks.

use std::sync::Arc;

use smpi::World;
use smpi_metrics::ErrorSummary;
use smpi_platform::RoutedPlatform;
use smpi_workloads::timed_scatter;

use crate::common::{
    fast, griffon_rp, mpich2_world, openmpi_world, secs, smpi_world, smpi_world_no_contention, us,
    Table,
};

fn run_scatter(world: &World, nranks: usize, chunk_elems: usize) -> Vec<f64> {
    world
        .run(nranks, move |ctx| timed_scatter(ctx, chunk_elems))
        .results
}

fn completion(times: &[f64]) -> f64 {
    times.iter().copied().fold(0.0, f64::max)
}

/// Chunk of 4 MiB in f64 elements.
const CHUNK_4MIB: usize = 512 * 1024;

/// Per-process scatter data (Fig. 7).
pub struct Fig7 {
    /// Per-rank times for (SMPI, SMPI w/o contention, OpenMPI, MPICH2).
    pub smpi: Vec<f64>,
    /// Contention-blind baseline.
    pub smpi_nc: Vec<f64>,
    /// OpenMPI personality.
    pub openmpi: Vec<f64>,
    /// MPICH2 personality.
    pub mpich2: Vec<f64>,
}

impl Fig7 {
    /// SMPI-vs-MPICH2 error (the paper quotes ~5.3% average).
    pub fn smpi_vs_mpich2(&self) -> ErrorSummary {
        ErrorSummary::compare(&self.smpi, &self.mpich2)
    }

    /// OpenMPI-vs-MPICH2 implementation spread, the paper's yardstick.
    pub fn openmpi_vs_mpich2(&self) -> ErrorSummary {
        ErrorSummary::compare(&self.openmpi, &self.mpich2)
    }

    /// No-contention error vs MPICH2.
    pub fn nocontention_vs_mpich2(&self) -> ErrorSummary {
        ErrorSummary::compare(&self.smpi_nc, &self.mpich2)
    }

    /// Renders the per-rank table plus summaries.
    pub fn render(&self) -> String {
        let mut t = Table::new(&[
            "rank",
            "smpi(s)",
            "smpi-nocont(s)",
            "openmpi(s)",
            "mpich2(s)",
        ]);
        for r in 0..self.smpi.len() {
            t.row(vec![
                r.to_string(),
                secs(self.smpi[r]),
                secs(self.smpi_nc[r]),
                secs(self.openmpi[r]),
                secs(self.mpich2[r]),
            ]);
        }
        format!(
            "# Fig. 7 — binomial scatter, 16 procs, 4 MiB chunks (per process)\n{}\
             smpi vs mpich2      : {}\n\
             openmpi vs mpich2   : {}\n\
             no-contention vs mpich2: {}\n",
            t.render(),
            self.smpi_vs_mpich2(),
            self.openmpi_vs_mpich2(),
            self.nocontention_vs_mpich2()
        )
    }
}

/// Runs Fig. 7 on 16 griffon nodes.
pub fn fig7() -> Fig7 {
    let rp = griffon_rp();
    let chunk = if fast() { 64 * 1024 } else { CHUNK_4MIB };
    let n = 16;
    Fig7 {
        smpi: run_scatter(&smpi_world(rp.clone()), n, chunk),
        smpi_nc: run_scatter(&smpi_world_no_contention(rp.clone()), n, chunk),
        openmpi: run_scatter(&openmpi_world(rp.clone()), n, chunk),
        mpich2: run_scatter(&mpich2_world(rp), n, chunk),
    }
}

/// Fig. 8: completion time vs message (chunk) size, 16 processes.
pub struct SizeSweep {
    /// (bytes per chunk, smpi completion, openmpi completion).
    pub rows: Vec<(u64, f64, f64)>,
    /// Figure title.
    pub title: String,
}

impl SizeSweep {
    /// SMPI vs OpenMPI error across the sweep.
    pub fn summary(&self) -> ErrorSummary {
        let s: Vec<f64> = self.rows.iter().map(|r| r.1).collect();
        let o: Vec<f64> = self.rows.iter().map(|r| r.2).collect();
        ErrorSummary::compare(&s, &o)
    }

    /// Error restricted to sizes above `min_bytes` (the paper: "over 10 KiB
    /// is reasonably accurate").
    pub fn summary_above(&self, min_bytes: u64) -> ErrorSummary {
        let s: Vec<f64> = self
            .rows
            .iter()
            .filter(|r| r.0 >= min_bytes)
            .map(|r| r.1)
            .collect();
        let o: Vec<f64> = self
            .rows
            .iter()
            .filter(|r| r.0 >= min_bytes)
            .map(|r| r.2)
            .collect();
        ErrorSummary::compare(&s, &o)
    }

    /// Renders the sweep.
    pub fn render(&self) -> String {
        let mut t = Table::new(&["bytes", "smpi(us)", "openmpi(us)"]);
        for &(b, s, o) in &self.rows {
            t.row(vec![b.to_string(), us(s), us(o)]);
        }
        format!(
            "# {}\n{}overall: {}\n>=10KiB: {}\n",
            self.title,
            t.render(),
            self.summary(),
            self.summary_above(10 * 1024)
        )
    }
}

fn sweep_sizes() -> Vec<usize> {
    // Chunk sizes in f64 elements: 8 B up to 4 MiB.
    let max_pow = if fast() { 14 } else { 19 };
    (0..=max_pow).map(|k| 1usize << k).collect()
}

/// Runs Fig. 8.
pub fn fig8() -> SizeSweep {
    let rp = griffon_rp();
    let n = 16;
    let rows = sweep_sizes()
        .into_iter()
        .map(|chunk| {
            let s = completion(&run_scatter(&smpi_world(rp.clone()), n, chunk));
            let o = completion(&run_scatter(&openmpi_world(rp.clone()), n, chunk));
            (chunk as u64 * 8, s, o)
        })
        .collect();
    SizeSweep {
        rows,
        title: "Fig. 8 — scatter time vs message size, 16 procs".into(),
    }
}

/// Fig. 9: completion time vs process count with fixed 4 MiB receive
/// buffers.
pub struct Fig9 {
    /// (procs, smpi, openmpi, mpich2).
    pub rows: Vec<(usize, f64, f64, f64)>,
}

impl Fig9 {
    /// SMPI vs OpenMPI error.
    pub fn summary(&self) -> ErrorSummary {
        let s: Vec<f64> = self.rows.iter().map(|r| r.1).collect();
        let o: Vec<f64> = self.rows.iter().map(|r| r.2).collect();
        ErrorSummary::compare(&s, &o)
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut t = Table::new(&["procs", "smpi(s)", "openmpi(s)", "mpich2(s)"]);
        for &(p, s, o, m) in &self.rows {
            t.row(vec![p.to_string(), secs(s), secs(o), secs(m)]);
        }
        format!(
            "# Fig. 9 — scatter vs process count, 4 MiB receive buffers\n{}smpi vs openmpi: {}\n",
            t.render(),
            self.summary()
        )
    }
}

/// Runs Fig. 9 over 4, 8, 16, 32 processes.
pub fn fig9() -> Fig9 {
    let rp: Arc<RoutedPlatform> = griffon_rp();
    let chunk = if fast() { 64 * 1024 } else { CHUNK_4MIB };
    let rows = [4usize, 8, 16, 32]
        .into_iter()
        .map(|n| {
            let s = completion(&run_scatter(&smpi_world(rp.clone()), n, chunk));
            let o = completion(&run_scatter(&openmpi_world(rp.clone()), n, chunk));
            let m = completion(&run_scatter(&mpich2_world(rp.clone()), n, chunk));
            (n, s, o, m)
        })
        .collect();
    Fig9 { rows }
}
