//! Figures 15–16: the NAS DT benchmark.
//!
//! * Fig. 15 — execution time of DT classes A and B, WH and BH variants:
//!   SMPI vs the OpenMPI personality. Expected shape: SMPI tracks OpenMPI
//!   and BH takes clearly longer than WH.
//! * Fig. 16 — per-process memory footprint of DT, classes A/B/C and all
//!   three graphs, with and without RAM folding; "OM" marks configurations
//!   that would not fit the host node's memory without folding.

use std::sync::Arc;

use smpi::World;
use smpi_metrics::ErrorSummary;
use smpi_workloads::dt::unfolded_bytes;
use smpi_workloads::{build_graph, dt_rank, DtClass, DtGraph};

use crate::common::{griffon_rp, mib, openmpi_world, secs, smpi_world, Table};
use smpi_platform::{flat_cluster, ClusterConfig, RoutedPlatform};

/// A platform big enough for `nprocs` ranks: griffon when it fits (the
/// paper's real runs), otherwise a synthetic GbE cluster of exactly that
/// size (the paper's beyond-the-testbed scaling runs, §7.2).
pub fn dt_platform(nprocs: usize) -> Arc<RoutedPlatform> {
    if nprocs <= griffon_rp().platform().num_hosts() {
        griffon_rp()
    } else {
        Arc::new(RoutedPlatform::new(flat_cluster(
            "big",
            nprocs,
            &ClusterConfig::default(),
        )))
    }
}

/// Runs one DT instance and returns the makespan (last rank completion).
fn run_dt(world: &World, class: DtClass, shape: DtGraph) -> DtRun {
    let graph = Arc::new(build_graph(class, shape));
    let g = Arc::clone(&graph);
    let report = world.run(graph.num_nodes(), move |ctx| dt_rank(ctx, &g, class));
    DtRun {
        makespan: report.sim_time,
        peak_bytes: report.memory.peak_bytes,
        logical_peak_bytes: report.memory.logical_peak_bytes,
        nprocs: graph.num_nodes(),
    }
}

/// Result of one DT run.
pub struct DtRun {
    /// Simulated completion time, seconds.
    pub makespan: f64,
    /// Actual (folded) peak application bytes.
    pub peak_bytes: u64,
    /// Unfolded peak application bytes.
    pub logical_peak_bytes: u64,
    /// Processes in the run.
    pub nprocs: usize,
}

/// Fig. 15 data: (class, shape, smpi time, openmpi time).
pub struct Fig15 {
    /// One row per (class, variant).
    pub rows: Vec<(DtClass, DtGraph, f64, f64)>,
}

impl Fig15 {
    /// SMPI vs OpenMPI error across all runs.
    pub fn summary(&self) -> ErrorSummary {
        let s: Vec<f64> = self.rows.iter().map(|r| r.2).collect();
        let o: Vec<f64> = self.rows.iter().map(|r| r.3).collect();
        ErrorSummary::compare(&s, &o)
    }

    /// Renders the figure.
    pub fn render(&self) -> String {
        let mut t = Table::new(&["class", "graph", "smpi(s)", "openmpi(s)"]);
        for &(c, g, s, o) in &self.rows {
            t.row(vec![
                format!("{c:?}"),
                format!("{g:?}").to_uppercase(),
                secs(s),
                secs(o),
            ]);
        }
        format!(
            "# Fig. 15 — DT execution time, classes A/B, WH/BH\n{}smpi vs openmpi: {}\n",
            t.render(),
            self.summary()
        )
    }
}

/// Runs Fig. 15 (classes A and B, WH and BH) on griffon.
pub fn fig15() -> Fig15 {
    let rp = griffon_rp();
    let mut rows = Vec::new();
    for class in [DtClass::A, DtClass::B] {
        for shape in [DtGraph::Wh, DtGraph::Bh] {
            let s = run_dt(&smpi_world(rp.clone()), class, shape).makespan;
            let o = run_dt(&openmpi_world(rp.clone()), class, shape).makespan;
            rows.push((class, shape, s, o));
        }
    }
    Fig15 { rows }
}

/// Fig. 16 data: one row per (class, shape).
pub struct Fig16 {
    /// (class, shape, folded peak bytes, unfolded peak bytes, procs).
    pub rows: Vec<(DtClass, DtGraph, u64, u64, usize)>,
    /// Host-node RAM budget for the OM marker, bytes.
    pub ram_budget: u64,
}

impl Fig16 {
    /// Average folding factor across rows.
    pub fn mean_factor(&self) -> f64 {
        let fs: Vec<f64> = self
            .rows
            .iter()
            .map(|r| r.3 as f64 / r.2.max(1) as f64)
            .collect();
        fs.iter().sum::<f64>() / fs.len() as f64
    }

    /// Renders the figure.
    pub fn render(&self) -> String {
        let mut t = Table::new(&[
            "class",
            "graph",
            "procs",
            "folded(MiB)",
            "unfolded(MiB)",
            "factor",
            "unfolded-fits",
        ]);
        for &(c, g, folded, unfolded, procs) in &self.rows {
            t.row(vec![
                format!("{c:?}"),
                format!("{g:?}").to_uppercase(),
                procs.to_string(),
                mib(folded),
                mib(unfolded),
                format!("{:.1}x", unfolded as f64 / folded.max(1) as f64),
                if unfolded > self.ram_budget {
                    "OM".into()
                } else {
                    "yes".into()
                },
            ]);
        }
        format!(
            "# Fig. 16 — DT memory footprint with/without RAM folding (budget {} MiB)\n{}\
             mean folding factor: {:.1}x\n",
            self.ram_budget / (1024 * 1024),
            t.render(),
            self.mean_factor()
        )
    }
}

/// Runs Fig. 16: every class × shape on the SMPI backend with folding
/// enabled; the tracker reports both the folded (actual) and unfolded
/// (logical) peaks from the same run.
pub fn fig16() -> Fig16 {
    let mut rows = Vec::new();
    for class in [DtClass::A, DtClass::B, DtClass::C] {
        for shape in [DtGraph::Wh, DtGraph::Bh, DtGraph::Sh] {
            let rp = dt_platform(build_graph(class, shape).num_nodes());
            let run = run_dt(&smpi_world(rp).ram_folding(true), class, shape);
            // Cross-check the tracker against the closed-form volume.
            let g = build_graph(class, shape);
            debug_assert!(run.logical_peak_bytes >= unfolded_bytes(&g, class) / 2);
            rows.push((
                class,
                shape,
                run.peak_bytes,
                run.logical_peak_bytes,
                run.nprocs,
            ));
        }
    }
    Fig16 {
        rows,
        ram_budget: 2 * 1024 * 1024 * 1024, // a 2 GiB host node, as on gdx
    }
}
