//! Benches for Figs. 15–16: simulation cost of the NAS DT benchmark,
//! including the 448-process shuffle graph that only SMPI can host on one
//! node (§7.2).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use smpi_bench::common::smpi_world;
use smpi_bench::fig_dt::dt_platform;
use smpi_workloads::{build_graph, dt_rank, DtClass, DtGraph};

fn run(class: DtClass, shape: DtGraph) {
    let graph = Arc::new(build_graph(class, shape));
    let world = smpi_world(dt_platform(graph.num_nodes()));
    let g = Arc::clone(&graph);
    world.run(graph.num_nodes(), move |ctx| dt_rank(ctx, &g, class));
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig15_16_dt");
    g.sample_size(10);
    // Class S keeps criterion iteration counts tractable; the full classes
    // are exercised by the repro binary.
    g.bench_function("smpi_dt_S_wh", |b| b.iter(|| run(DtClass::S, DtGraph::Wh)));
    g.bench_function("smpi_dt_S_bh", |b| b.iter(|| run(DtClass::S, DtGraph::Bh)));
    g.bench_function("smpi_dt_S_sh", |b| b.iter(|| run(DtClass::S, DtGraph::Sh)));
    g.bench_function("smpi_dt_A_bh_21procs", |b| {
        b.iter(|| run(DtClass::A, DtGraph::Bh))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
