//! Benches for Figs. 3–5: how fast can the two backends simulate the
//! ping-pong sweep, and how expensive is model fitting.
//!
//! These quantify the speed half of the paper's claims: the flow-level
//! backend should be dramatically faster than the packet-level one for the
//! same scenario.

use criterion::{criterion_group, criterion_main, Criterion};
use smpi_bench::common::{
    calibration_route, calibration_samples, griffon_rp, openmpi_world, smpi_world,
};
use smpi_calibrate::{fit_piecewise, pingpong};

fn sizes() -> Vec<u64> {
    vec![1, 1024, 65536, 1 << 20]
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig03_pingpong");
    g.sample_size(10);

    g.bench_function("smpi_flow_backend", |b| {
        let world = smpi_world(griffon_rp());
        b.iter(|| pingpong(&world, 0, 1, &sizes(), 1))
    });

    g.bench_function("packet_backend", |b| {
        let world = openmpi_world(griffon_rp());
        b.iter(|| pingpong(&world, 0, 1, &sizes(), 1))
    });

    g.bench_function("fit_piecewise_3seg", |b| {
        let samples = calibration_samples();
        let route = calibration_route();
        b.iter(|| fit_piecewise(samples, 3, route))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
