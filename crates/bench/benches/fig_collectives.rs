//! Benches for Figs. 7–12: simulation cost of the scatter and all-to-all
//! scenarios on both backends (the workloads behind the accuracy figures).

use criterion::{criterion_group, criterion_main, Criterion};
use smpi_bench::common::{griffon_rp, openmpi_world, smpi_world, smpi_world_no_contention};
use smpi_workloads::{timed_alltoall, timed_scatter};

fn bench(c: &mut Criterion) {
    let chunk = 64 * 1024; // 512 KiB per rank: a quick but non-trivial run

    let mut g = c.benchmark_group("fig07_09_scatter_16procs");
    g.sample_size(10);
    g.bench_function("smpi", |b| {
        let world = smpi_world(griffon_rp());
        b.iter(|| world.run(16, move |ctx| timed_scatter(ctx, chunk)))
    });
    g.bench_function("smpi_no_contention", |b| {
        let world = smpi_world_no_contention(griffon_rp());
        b.iter(|| world.run(16, move |ctx| timed_scatter(ctx, chunk)))
    });
    g.bench_function("packet_openmpi", |b| {
        let world = openmpi_world(griffon_rp());
        b.iter(|| world.run(16, move |ctx| timed_scatter(ctx, chunk)))
    });
    g.finish();

    let mut g = c.benchmark_group("fig11_12_alltoall_16procs");
    g.sample_size(10);
    let small = 8 * 1024; // 64 KiB blocks keep the packet side affordable
    g.bench_function("smpi", |b| {
        let world = smpi_world(griffon_rp());
        b.iter(|| world.run(16, move |ctx| timed_alltoall(ctx, small)))
    });
    g.bench_function("packet_openmpi", |b| {
        let world = openmpi_world(griffon_rp());
        b.iter(|| world.run(16, move |ctx| timed_alltoall(ctx, small)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
