//! Micro-benches of the substrates: raw event throughput of the two
//! simulation kernels and of the actor layer. These bound every figure's
//! runtime from below.

use criterion::{criterion_group, criterion_main, Criterion};
use smpi_platform::{flat_cluster, ClusterConfig, HostIx, RoutedPlatform};
use surf_sim::{Simulation, TransferModel};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel_throughput");

    g.bench_function("surf_1000_sequential_transfers", |b| {
        b.iter(|| {
            let mut sim = Simulation::new();
            let l = sim.add_link(125e6, 1e-6);
            for _ in 0..1000 {
                sim.start_transfer(&[l], 1000.0, &TransferModel::ideal());
                sim.advance_to_next();
            }
            sim.now()
        })
    });

    g.bench_function("packet_1MiB_message_2hops", |b| {
        let rp = RoutedPlatform::new(flat_cluster("b", 2, &ClusterConfig::default()));
        b.iter(|| {
            let mut net = packetnet::PacketNet::new(&rp, packetnet::PacketConfig::default());
            net.start_message(&rp, HostIx(0), HostIx(1), 1 << 20);
            net.run_to_completion()
        })
    });

    g.bench_function("simix_1000_simcall_roundtrips", |b| {
        b.iter(|| {
            let mut sx = simix::Simix::<u32, u32>::new();
            sx.spawn(|h| {
                for i in 0..1000u32 {
                    h.simcall(i);
                }
            });
            loop {
                let evs = sx.run_ready();
                if evs.is_empty() {
                    break;
                }
                for ev in evs {
                    if let simix::ActorEvent::Request(id, n) = ev {
                        sx.resolve(id, n);
                    }
                }
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
