//! Ablation: cost of the max-min solver (DESIGN.md §7).
//!
//! The kernel re-solves from scratch on every flow-set change; this bench
//! quantifies that choice across problem sizes, and separately the cost of
//! one full network re-share inside the engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use surf_sim::{MaxMinProblem, Simulation, TransferModel};

/// A cluster-like instance: `n` flows, each crossing its source access
/// link, a shared backbone, and its destination access link.
fn cluster_problem(n: usize) -> MaxMinProblem {
    let mut p = MaxMinProblem::new();
    let backbone = p.add_constraint(1.25e9);
    let links: Vec<_> = (0..2 * n).map(|_| p.add_constraint(125e6)).collect();
    for i in 0..n {
        p.add_variable(f64::INFINITY, &[links[2 * i], backbone, links[2 * i + 1]]);
    }
    p
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_lmm_solve");
    for n in [16usize, 64, 256, 1024] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let p = cluster_problem(n);
            b.iter(|| p.solve())
        });
    }
    g.finish();

    let mut g = c.benchmark_group("ablation_engine_reshare");
    g.sample_size(20);
    for n in [16usize, 128] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                // n concurrent flows through one shared link: every start
                // triggers a re-share, every completion another.
                let mut sim = Simulation::new();
                let l = sim.add_link(125e6, 1e-6);
                for _ in 0..n {
                    sim.start_transfer(&[l], 1e6, &TransferModel::ideal());
                }
                while sim.advance_to_next().is_some() {}
                sim.now()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
