//! Benches for Figs. 17–18: the speed claims themselves.
//!
//! Fig. 17's quantity *is* a wall-clock measurement of the simulator, so the
//! bench measures exactly what the figure plots: how long the SMPI
//! simulation of the scatter takes. Fig. 18's bench shows simulation time
//! falling with the sampling ratio.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smpi_bench::common::{griffon_rp, smpi_world};
use smpi_workloads::{ep_rank, timed_scatter, EpConfig};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig17_scatter_simulation_time");
    g.sample_size(10);
    for mib in [4u64, 16] {
        let chunk = (mib as usize * 1024 * 1024) / 8;
        g.bench_with_input(BenchmarkId::from_parameter(mib), &chunk, |b, &chunk| {
            let world = smpi_world(griffon_rp());
            b.iter(|| world.run(16, move |ctx| timed_scatter(ctx, chunk)))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("fig18_ep_sampling_ratio");
    g.sample_size(10);
    for ratio in [1.0f64, 0.5, 0.25] {
        let cfg = EpConfig {
            total_pairs: 1 << 20,
            blocks_per_rank: 32,
            sampling_ratio: ratio,
        };
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{:.0}pct", ratio * 100.0)),
            &cfg,
            |b, &cfg| {
                let world = smpi_world(griffon_rp()).cpu_factor(1.0);
                b.iter(|| world.run(4, move |ctx| ep_rank(ctx, cfg)))
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
