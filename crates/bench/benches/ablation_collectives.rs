//! Ablation: collective algorithm variants (§5.3 — "there is no unique
//! algorithm for any collective operation").

use criterion::{criterion_group, criterion_main, Criterion};
use smpi_bench::common::{griffon_rp, smpi_world};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_scatter_variants");
    g.sample_size(10);
    let chunk = 16 * 1024; // 128 KiB chunks
    for (name, which) in [("binomial", 0u8), ("linear", 1), ("chain", 2)] {
        g.bench_function(name, |b| {
            let world = smpi_world(griffon_rp());
            b.iter(|| {
                world.run(16, move |ctx| {
                    let comm = ctx.world();
                    let data: Option<Vec<f64>> = (ctx.rank() == 0).then(|| vec![0.0; 16 * chunk]);
                    match which {
                        0 => ctx.scatter(data.as_deref(), chunk, 0, &comm),
                        1 => ctx.scatter_linear(data.as_deref(), chunk, 0, &comm),
                        _ => ctx.scatter_chain(data.as_deref(), chunk, 0, &comm),
                    }
                })
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("ablation_allgather_variants");
    g.sample_size(10);
    for (name, rdb) in [("recursive_doubling", true), ("ring", false)] {
        g.bench_function(name, |b| {
            let world = smpi_world(griffon_rp());
            b.iter(|| {
                world.run(16, move |ctx| {
                    let comm = ctx.world();
                    let mine = vec![ctx.rank() as f64; 4096];
                    if rdb {
                        ctx.allgather_rdb(&mine, &comm)
                    } else {
                        ctx.allgather_ring(&mine, &comm)
                    }
                })
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
