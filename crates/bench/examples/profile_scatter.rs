use smpi_bench::common::*;
use smpi_workloads::timed_scatter;
use std::time::Instant;

fn main() {
    let mibs: Vec<usize> = std::env::args()
        .skip(1)
        .map(|s| s.parse().unwrap())
        .collect();
    for mib in if mibs.is_empty() {
        vec![32, 48, 64]
    } else {
        mibs
    } {
        let chunk = mib * 1024 * 1024 / 8;
        let t0 = Instant::now();
        let world = smpi_world(griffon_rp());
        let rep = world.run(16, move |ctx| timed_scatter(ctx, chunk));
        println!(
            "{mib} MiB: wall={:.2}s sim={:.4}s outer={:.2}s",
            rep.wall.as_secs_f64(),
            rep.sim_time,
            t0.elapsed().as_secs_f64()
        );
    }
}
