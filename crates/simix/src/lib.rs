//! # simix — the sequential actor layer of SMPI-rs
//!
//! In SMPI, "an SMPI simulation runs in a single process, with each MPI
//! process running in its own thread. However, these threads run
//! sequentially, under the control of the SimGrid simulation kernel" (§5.1).
//! This crate is that mechanism: actors are OS threads, but a baton
//! (per-actor mutex + condvar) guarantees **exactly one** thread — an actor
//! or the maestro — executes at any instant. This sidesteps every parallel
//! discrete-event-simulation correctness issue by construction, and makes
//! simulations bit-for-bit deterministic (runnable actors always resume in
//! actor-id order).
//!
//! The crate is generic over the *simcall* protocol: an actor blocks by
//! calling [`ActorHandle::simcall`] with a request value; the maestro
//! receives it from [`Simix::run_ready`], decides when it is satisfied, and
//! answers with [`Simix::resolve`], which makes the actor runnable again.
//! The MPI semantics (what requests mean, when they complete) live entirely
//! in the `smpi` crate.
//!
//! The handoff is built to scale to tens of thousands of actors: each baton
//! condvar has exactly one waiter so every wakeup is `notify_one`, the
//! runnable set is a dense id-ordered worklist sorted in place (no
//! per-event allocation), actor stacks default to a small fixed size
//! ([`DEFAULT_STACK_SIZE`]) so 16k threads fit comfortably in one address
//! space, and drive loops can recycle their event buffer through
//! [`Simix::run_ready_into`].
//!
//! ```
//! // A tiny ping protocol: every simcall is answered with its value + 1.
//! let mut sx = simix::Simix::<u32, u32>::new();
//! sx.spawn(|h| {
//!     let a = h.simcall(41);
//!     assert_eq!(a, 42);
//! });
//! loop {
//!     let events = sx.run_ready();
//!     if events.is_empty() { break; }
//!     for ev in events {
//!         if let simix::ActorEvent::Request(actor, n) = ev {
//!             sx.resolve(actor, n + 1);
//!         }
//!     }
//! }
//! ```

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex};

/// Default actor stack size in bytes. MPI rank bodies keep their working
/// sets on the (heap-allocated) simulated buffers, so a small fixed stack
/// is enough — and it is what lets 16k+ actor threads coexist in one
/// process (16k × 256 KiB = 4 GiB of address space, touched lazily).
pub const DEFAULT_STACK_SIZE: usize = 256 * 1024;

/// Identifier of an actor (dense, in spawn order). For SMPI this is the MPI
/// rank within `MPI_COMM_WORLD`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ActorId(pub u32);

/// Whose turn it is to run on an actor's baton.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Turn {
    Maestro,
    Actor,
}

/// What an actor did when it last ran.
#[derive(Debug, PartialEq, Eq)]
pub enum ActorEvent<Req> {
    /// The actor issued a simcall and is now blocked on it.
    Request(ActorId, Req),
    /// The actor's body returned; the thread has exited.
    Finished(ActorId),
}

/// Marker used to unwind actor threads when the runtime is dropped while
/// they are still blocked. Caught by the actor wrapper, never observable by
/// user code.
struct ActorKilled;

struct Slot<Req, Resp> {
    turn: Turn,
    request: Option<Req>,
    response: Option<Resp>,
    finished: bool,
    killed: bool,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

struct Shared<Req, Resp> {
    slot: Mutex<Slot<Req, Resp>>,
    cond: Condvar,
}

/// The actor-side handle: the only way user code interacts with the
/// simulation while running inside an actor.
pub struct ActorHandle<Req, Resp> {
    id: ActorId,
    shared: Arc<Shared<Req, Resp>>,
}

impl<Req, Resp> ActorHandle<Req, Resp> {
    /// This actor's id (MPI rank).
    pub fn id(&self) -> ActorId {
        self.id
    }

    /// Issues a simcall: publishes `req` to the maestro, yields the baton,
    /// and blocks until the maestro resolves it with a response.
    pub fn simcall(&self, req: Req) -> Resp {
        let mut slot = self.shared.slot.lock();
        debug_assert!(slot.turn == Turn::Actor, "simcall outside actor turn");
        slot.request = Some(req);
        slot.turn = Turn::Maestro;
        // Exactly one waiter by construction: the baton serializes the
        // maestro and this actor, so only the other side can be blocked on
        // this condvar. notify_one avoids the broadcast bookkeeping.
        self.shared.cond.notify_one();
        while slot.turn == Turn::Maestro {
            self.shared.cond.wait(&mut slot);
        }
        if slot.killed {
            // Unwind the actor thread; caught by the spawn wrapper.
            drop(slot);
            std::panic::panic_any(ActorKilled);
        }
        slot.response
            .take()
            .expect("maestro resolved with a response")
    }
}

struct ActorState<Req, Resp> {
    shared: Arc<Shared<Req, Resp>>,
    join: Option<JoinHandle<()>>,
    alive: bool,
}

/// The maestro: spawns actors, runs runnable ones (strictly one at a time),
/// and collects their simcall requests.
///
/// The scheduling hot loop is allocation-free: the runnable set is a dense
/// worklist (a `Vec` of ids plus a per-actor membership flag) sorted in
/// place per batch, the batch buffer is swapped rather than collected, and
/// [`run_ready_into`](Self::run_ready_into) reuses a caller-owned event
/// buffer across iterations.
pub struct Simix<Req, Resp> {
    actors: Vec<ActorState<Req, Resp>>,
    /// Ids resolved since the last batch, unordered (sorted at batch time).
    runnable: Vec<ActorId>,
    /// Dense membership flags mirroring `runnable` (guards double-resolve).
    runnable_flag: Vec<bool>,
    /// Scratch buffer the worklist is swapped into while stepping a batch;
    /// its capacity is recycled, so steady-state batches never allocate.
    batch: Vec<ActorId>,
    /// Stack size for subsequently spawned actor threads.
    stack_size: usize,
}

impl<Req: Send + 'static, Resp: Send + 'static> Simix<Req, Resp> {
    /// Creates an empty runtime with [`DEFAULT_STACK_SIZE`] actor stacks.
    pub fn new() -> Self {
        Self::with_stack_size(DEFAULT_STACK_SIZE)
    }

    /// Creates an empty runtime whose actors get `stack_size`-byte stacks.
    /// Raise this for rank bodies with deep recursion or large stack
    /// buffers; lower it to pack more actors into the address space.
    pub fn with_stack_size(stack_size: usize) -> Self {
        assert!(stack_size > 0, "actor stack size must be non-zero");
        Simix {
            actors: Vec::new(),
            runnable: Vec::new(),
            runnable_flag: Vec::new(),
            batch: Vec::new(),
            stack_size,
        }
    }

    /// The stack size given to spawned actor threads.
    pub fn stack_size(&self) -> usize {
        self.stack_size
    }

    /// Number of actors ever spawned.
    pub fn num_actors(&self) -> usize {
        self.actors.len()
    }

    /// Spawns an actor. It becomes runnable and will execute during the next
    /// [`run_ready`](Self::run_ready) call. Spawn order defines actor ids.
    pub fn spawn<F>(&mut self, body: F) -> ActorId
    where
        F: FnOnce(&ActorHandle<Req, Resp>) + Send + 'static,
    {
        let id = ActorId(self.actors.len() as u32);
        let shared = Arc::new(Shared {
            slot: Mutex::new(Slot {
                turn: Turn::Maestro,
                request: None,
                response: None,
                finished: false,
                killed: false,
                panic: None,
            }),
            cond: Condvar::new(),
        });
        let thread_shared = Arc::clone(&shared);
        let join = std::thread::Builder::new()
            .name(format!("actor-{}", id.0))
            .stack_size(self.stack_size)
            .spawn(move || {
                let handle = ActorHandle {
                    id,
                    shared: Arc::clone(&thread_shared),
                };
                // Wait for the first baton pass.
                {
                    let mut slot = thread_shared.slot.lock();
                    while slot.turn == Turn::Maestro {
                        thread_shared.cond.wait(&mut slot);
                    }
                    if slot.killed {
                        slot.finished = true;
                        slot.turn = Turn::Maestro;
                        thread_shared.cond.notify_one();
                        return;
                    }
                }
                let result = catch_unwind(AssertUnwindSafe(|| body(&handle)));
                let mut slot = thread_shared.slot.lock();
                if let Err(payload) = result {
                    if !payload.is::<ActorKilled>() {
                        slot.panic = Some(payload);
                    }
                }
                slot.finished = true;
                slot.turn = Turn::Maestro;
                thread_shared.cond.notify_one();
            })
            .expect("failed to spawn actor thread");
        self.actors.push(ActorState {
            shared,
            join: Some(join),
            alive: true,
        });
        self.runnable.push(id);
        self.runnable_flag.push(true);
        id
    }

    /// Runs every runnable actor (in actor-id order) until each one blocks
    /// on a simcall or finishes, and returns what happened. An empty result
    /// with no outstanding requests means the simulation is over (or
    /// deadlocked, which the caller can distinguish by its own bookkeeping).
    ///
    /// Allocates a fresh event vector per call; drive loops should prefer
    /// [`run_ready_into`](Self::run_ready_into), which reuses one.
    pub fn run_ready(&mut self) -> Vec<ActorEvent<Req>> {
        let mut events = Vec::new();
        self.run_ready_into(&mut events);
        events
    }

    /// Like [`run_ready`](Self::run_ready), but clears and fills a
    /// caller-owned buffer, so a steady-state drive loop performs no
    /// allocation for scheduling.
    pub fn run_ready_into(&mut self, events: &mut Vec<ActorEvent<Req>>) {
        events.clear();
        debug_assert!(self.batch.is_empty());
        std::mem::swap(&mut self.batch, &mut self.runnable);
        // Resolution order is arbitrary; actor-id order is the scheduling
        // contract (bit-for-bit determinism), restored by an in-place sort.
        self.batch.sort_unstable();
        events.reserve(self.batch.len());
        for i in 0..self.batch.len() {
            let id = self.batch[i];
            self.runnable_flag[id.0 as usize] = false;
            let ev = self.step(id);
            events.push(ev);
        }
        self.batch.clear();
    }

    /// Gives the baton to one actor and waits until it yields it back.
    fn step(&mut self, id: ActorId) -> ActorEvent<Req> {
        let state = &mut self.actors[id.0 as usize];
        assert!(state.alive, "stepping a finished actor {id:?}");
        let shared = Arc::clone(&state.shared);
        let mut slot = shared.slot.lock();
        debug_assert!(slot.turn == Turn::Maestro);
        slot.turn = Turn::Actor;
        shared.cond.notify_one();
        while slot.turn == Turn::Actor {
            shared.cond.wait(&mut slot);
        }
        if let Some(payload) = slot.panic.take() {
            drop(slot);
            // Propagate the actor's panic into the maestro (test failures
            // and bugs must not be swallowed).
            self.reap(id);
            resume_unwind(payload);
        }
        if slot.finished {
            drop(slot);
            self.reap(id);
            ActorEvent::Finished(id)
        } else {
            let req = slot.request.take().expect("actor yielded without request");
            ActorEvent::Request(id, req)
        }
    }

    fn reap(&mut self, id: ActorId) {
        let state = &mut self.actors[id.0 as usize];
        state.alive = false;
        if let Some(join) = state.join.take() {
            let _ = join.join();
        }
    }

    /// Answers an actor's pending simcall, making it runnable again. The
    /// actor resumes during the next [`run_ready`](Self::run_ready).
    pub fn resolve(&mut self, id: ActorId, resp: Resp) {
        let state = &self.actors[id.0 as usize];
        assert!(state.alive, "resolving a finished actor {id:?}");
        let mut slot = state.shared.slot.lock();
        debug_assert!(
            slot.turn == Turn::Maestro && !slot.finished,
            "actor must be blocked on a simcall"
        );
        slot.response = Some(resp);
        drop(slot);
        let flag = &mut self.runnable_flag[id.0 as usize];
        assert!(!*flag, "actor {id:?} resolved twice");
        *flag = true;
        self.runnable.push(id);
    }

    /// `true` while the actor has not finished.
    pub fn is_alive(&self, id: ActorId) -> bool {
        self.actors[id.0 as usize].alive
    }

    /// `true` when at least one actor is runnable (will execute on the next
    /// [`run_ready`](Self::run_ready)).
    pub fn has_runnable(&self) -> bool {
        !self.runnable.is_empty()
    }
}

impl<Req: Send + 'static, Resp: Send + 'static> Default for Simix<Req, Resp> {
    fn default() -> Self {
        Self::new()
    }
}

impl<Req, Resp> Drop for Simix<Req, Resp> {
    fn drop(&mut self) {
        // Unblock and join every still-alive actor thread.
        for state in &mut self.actors {
            if !state.alive {
                continue;
            }
            {
                let mut slot = state.shared.slot.lock();
                slot.killed = true;
                slot.turn = Turn::Actor;
                state.shared.cond.notify_one();
                while !slot.finished {
                    state.shared.cond.wait(&mut slot);
                }
            }
            if let Some(join) = state.join.take() {
                let _ = join.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn actor_runs_to_completion_without_simcalls() {
        let mut sx = Simix::<(), ()>::new();
        let id = sx.spawn(|_| {});
        let events = sx.run_ready();
        assert_eq!(events, vec![ActorEvent::Finished(id)]);
        assert!(!sx.is_alive(id));
        assert!(sx.run_ready().is_empty());
    }

    #[test]
    fn simcall_roundtrip() {
        let mut sx = Simix::<u32, u32>::new();
        let id = sx.spawn(|h| {
            assert_eq!(h.simcall(1), 2);
            assert_eq!(h.simcall(10), 20);
        });
        let ev = sx.run_ready();
        assert_eq!(ev, vec![ActorEvent::Request(id, 1)]);
        sx.resolve(id, 2);
        let ev = sx.run_ready();
        assert_eq!(ev, vec![ActorEvent::Request(id, 10)]);
        sx.resolve(id, 20);
        assert_eq!(sx.run_ready(), vec![ActorEvent::Finished(id)]);
    }

    #[test]
    fn actors_resume_in_id_order() {
        let mut sx = Simix::<u32, ()>::new();
        for i in 0..8u32 {
            sx.spawn(move |h| {
                h.simcall(i);
            });
        }
        let ev = sx.run_ready();
        let order: Vec<u32> = ev
            .iter()
            .map(|e| match e {
                ActorEvent::Request(_, v) => *v,
                _ => panic!(),
            })
            .collect();
        assert_eq!(order, (0..8).collect::<Vec<_>>());
        // Resolve out of order; they still run back in id order.
        for i in (0..8).rev() {
            sx.resolve(ActorId(i), ());
        }
        let ev = sx.run_ready();
        let finish_order: Vec<u32> = ev
            .iter()
            .map(|e| match e {
                ActorEvent::Finished(ActorId(i)) => *i,
                _ => panic!(),
            })
            .collect();
        assert_eq!(finish_order, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn only_resolved_actors_become_runnable() {
        let mut sx = Simix::<(), ()>::new();
        let a = sx.spawn(|h| {
            h.simcall(());
        });
        let b = sx.spawn(|h| {
            h.simcall(());
        });
        let _ = sx.run_ready();
        sx.resolve(b, ());
        let ev = sx.run_ready();
        assert_eq!(ev, vec![ActorEvent::Finished(b)]);
        assert!(sx.is_alive(a));
        sx.resolve(a, ());
        assert_eq!(sx.run_ready(), vec![ActorEvent::Finished(a)]);
    }

    #[test]
    fn actor_panic_propagates_to_maestro() {
        let mut sx = Simix::<(), ()>::new();
        sx.spawn(|_| panic!("boom"));
        let result = catch_unwind(AssertUnwindSafe(|| sx.run_ready()));
        let payload = result.unwrap_err();
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "boom");
    }

    #[test]
    fn drop_kills_blocked_actors_without_hanging() {
        let mut sx = Simix::<(), ()>::new();
        for _ in 0..4 {
            sx.spawn(|h| {
                h.simcall(());
                unreachable!("never resolved");
            });
        }
        let _ = sx.run_ready();
        drop(sx); // must return promptly, joining all threads
    }

    #[test]
    fn drop_kills_never_started_actors() {
        let mut sx = Simix::<(), ()>::new();
        sx.spawn(|_| {});
        drop(sx);
    }

    #[test]
    fn ten_thousand_actors_stress() {
        // The scaling contract: 10k actors each doing a few simcalls all
        // complete, every batch resumes in strictly increasing id order,
        // and a second 10k-actor runtime dropped while its actors are
        // blocked joins every thread promptly.
        const N: u32 = 10_000;
        let mut sx = Simix::<u32, u32>::new();
        for i in 0..N {
            sx.spawn(move |h| {
                for k in 0..3u32 {
                    assert_eq!(h.simcall(i.wrapping_add(k)), i.wrapping_add(k) + 1);
                }
            });
        }
        let mut events = Vec::new();
        let mut rounds = 0u32;
        let mut finished = 0u32;
        loop {
            sx.run_ready_into(&mut events);
            if events.is_empty() {
                break;
            }
            let ids: Vec<u32> = events
                .iter()
                .map(|e| match e {
                    ActorEvent::Request(ActorId(i), _) => *i,
                    ActorEvent::Finished(ActorId(i)) => *i,
                })
                .collect();
            assert!(ids.windows(2).all(|w| w[0] < w[1]), "batch not in id order");
            for ev in events.drain(..) {
                match ev {
                    ActorEvent::Request(id, v) => sx.resolve(id, v + 1),
                    ActorEvent::Finished(_) => finished += 1,
                }
            }
            rounds += 1;
        }
        assert_eq!(rounds, 4, "3 simcall rounds + 1 finish round");
        assert_eq!(finished, N);
        for i in 0..N {
            assert!(!sx.is_alive(ActorId(i)));
        }

        let mut blocked = Simix::<(), ()>::new();
        for _ in 0..N {
            blocked.spawn(|h| {
                h.simcall(());
                unreachable!("never resolved");
            });
        }
        let _ = blocked.run_ready();
        drop(blocked); // must join all 10k threads without hanging
    }

    #[test]
    fn custom_stack_size_is_honoured() {
        // A recursive body that would overflow a 256 KiB stack runs fine
        // with a larger one (each frame pins a 4 KiB buffer).
        fn burn(depth: usize) -> u64 {
            let buf = [depth as u8; 4096];
            if depth == 0 {
                buf[0] as u64
            } else {
                burn(depth - 1) + buf[4095] as u64
            }
        }
        let mut sx = Simix::<u64, ()>::with_stack_size(4 * 1024 * 1024);
        assert_eq!(sx.stack_size(), 4 * 1024 * 1024);
        let id = sx.spawn(|h| {
            h.simcall(burn(500));
        });
        let ev = sx.run_ready();
        assert!(matches!(ev[0], ActorEvent::Request(i, _) if i == id));
        sx.resolve(id, ());
        assert_eq!(sx.run_ready(), vec![ActorEvent::Finished(id)]);
    }

    #[test]
    fn sequential_execution_means_no_data_races() {
        // 64 actors read-modify-write a shared counter across simcalls; the
        // strict one-at-a-time alternation makes each increment atomic.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = Arc::new(AtomicUsize::new(0));
        let mut sx = Simix::<(), ()>::new();
        for _ in 0..64 {
            let c = Arc::clone(&counter);
            sx.spawn(move |h| {
                for _ in 0..10 {
                    let v = c.load(Ordering::Relaxed);
                    c.store(v + 1, Ordering::Relaxed);
                    h.simcall(());
                }
            });
        }
        loop {
            let evs = sx.run_ready();
            if evs.is_empty() {
                break;
            }
            for ev in evs {
                if let ActorEvent::Request(id, ()) = ev {
                    sx.resolve(id, ());
                }
            }
        }
        assert_eq!(counter.load(Ordering::Relaxed), 640);
    }
}
