//! Transfer-model instantiation from ping-pong measurements (paper §6).
//!
//! Three instantiations, matching the three SMPI curves of Figs. 3–5:
//!
//! * **piece-wise linear** — segmented regression (product of correlation
//!   coefficients maximized, [`smpi_metrics::segmented`]) with `k` segments
//!   (the paper settles on 3);
//! * **default affine** — latency from the 1-byte message time, bandwidth at
//!   92% of nominal ("the standard method for instantiating the affine
//!   model ... the approach taken by many of the MPI simulators");
//! * **best-fit affine** — the (α, β) minimizing the mean logarithmic error
//!   against the measurements (the strongest possible affine baseline).
//!
//! Fitted absolute parameters (α seconds, β bytes/s) are converted into the
//! *factors* of a [`TransferModel`] relative to the calibration route's
//! nominal latency and bandwidth, which is what lets a griffon calibration
//! drive gdx simulations (Figs. 4–5).

use smpi_metrics::segmented::fit_segments_relative;
use surf_sim::{Segment, TransferModel};

use crate::pingpong::Sample;

/// Nominal properties of the route the calibration ran on.
#[derive(Debug, Clone, Copy)]
pub struct RouteRef {
    /// Sum of nominal link latencies, seconds.
    pub latency: f64,
    /// Bottleneck nominal bandwidth, bytes/s.
    pub bandwidth: f64,
}

/// Caps keeping degenerate fits physical: a flat segment can regress to a
/// non-positive slope; its bandwidth factor is clamped here (the per-link
/// capacity still applies inside the engine).
const MAX_BW_FACTOR: f64 = 100.0;
const MIN_LAT_FACTOR: f64 = 0.0;

fn to_factors(intercept: f64, slope: f64, route: RouteRef) -> (f64, f64) {
    let lat_factor = (intercept / route.latency).max(MIN_LAT_FACTOR);
    let bw_factor = if slope > 0.0 {
        (1.0 / slope / route.bandwidth).min(MAX_BW_FACTOR)
    } else {
        MAX_BW_FACTOR
    };
    (lat_factor, bw_factor)
}

/// Fits the piece-wise linear model of §4.1 with `k` segments.
pub fn fit_piecewise(samples: &[Sample], k: usize, route: RouteRef) -> TransferModel {
    let xs: Vec<f64> = samples.iter().map(|s| s.bytes as f64).collect();
    let ys: Vec<f64> = samples.iter().map(|s| s.time).collect();
    let sf = fit_segments_relative(&xs, &ys, k);
    let segments = sf
        .segments
        .iter()
        .map(|seg| {
            let (lat_factor, bw_factor) = to_factors(seg.fit.intercept, seg.fit.slope, route);
            Segment {
                upper: seg.x_hi,
                lat_factor,
                bw_factor,
            }
        })
        .collect();
    TransferModel::new(segments)
}

/// The "Default Affine" instantiation: 1-byte latency, 92% of nominal
/// bandwidth.
pub fn fit_default_affine(samples: &[Sample], route: RouteRef) -> TransferModel {
    let smallest = samples
        .iter()
        .min_by_key(|s| s.bytes)
        .expect("non-empty calibration data");
    let lat_factor = (smallest.time / route.latency).max(MIN_LAT_FACTOR);
    TransferModel::affine(lat_factor, 0.92)
}

/// The "Best-Fit Affine" instantiation: the (α, β) minimizing the mean
/// logarithmic error against the samples (coarse log-space grid search with
/// two refinement passes — the objective is smooth and unimodal enough).
pub fn fit_best_affine(samples: &[Sample], route: RouteRef) -> TransferModel {
    assert!(!samples.is_empty());
    let objective = |alpha: f64, beta: f64| -> f64 {
        samples
            .iter()
            .map(|s| {
                let pred = alpha + s.bytes as f64 / beta;
                (pred.ln() - s.time.ln()).abs()
            })
            .sum::<f64>()
    };

    let t_min = samples.iter().map(|s| s.time).fold(f64::INFINITY, f64::min);
    // Sensible search ranges: α within [t_min/100, t_min*100], β within
    // [1 kB/s, 100 GB/s].
    let mut lo_a = (t_min / 100.0).max(1e-9);
    let mut hi_a = t_min * 100.0;
    let mut lo_b = 1e3;
    let mut hi_b = 1e11;
    let mut best = (f64::INFINITY, lo_a, lo_b);
    for _pass in 0..3 {
        const N: usize = 48;
        let (mut nlo_a, mut nhi_a, mut nlo_b, mut nhi_b) = (lo_a, hi_a, lo_b, hi_b);
        for i in 0..=N {
            let alpha = log_interp(lo_a, hi_a, i as f64 / N as f64);
            for j in 0..=N {
                let beta = log_interp(lo_b, hi_b, j as f64 / N as f64);
                let err = objective(alpha, beta);
                if err < best.0 {
                    best = (err, alpha, beta);
                    // Refinement window: one grid cell each way.
                    let step_a = (hi_a / lo_a).powf(1.0 / N as f64);
                    let step_b = (hi_b / lo_b).powf(1.0 / N as f64);
                    nlo_a = alpha / step_a;
                    nhi_a = alpha * step_a;
                    nlo_b = beta / step_b;
                    nhi_b = beta * step_b;
                }
            }
        }
        lo_a = nlo_a;
        hi_a = nhi_a;
        lo_b = nlo_b;
        hi_b = nhi_b;
    }
    let (_, alpha, beta) = best;
    let (lat_factor, bw_factor) = to_factors(alpha, 1.0 / beta, route);
    TransferModel::affine(lat_factor, bw_factor)
}

fn log_interp(lo: f64, hi: f64, t: f64) -> f64 {
    (lo.ln() + (hi.ln() - lo.ln()) * t).exp()
}

/// All three instantiations from one measurement set, as a named list — the
/// calibration axis of a scenario matrix. Sweep drivers cross these against
/// platforms, backends and noise models instead of picking one point model
/// (a calibration is just another swept dimension).
pub fn model_axis(samples: &[Sample], route: RouteRef) -> Vec<(String, TransferModel)> {
    vec![
        (
            "affine-default".to_string(),
            fit_default_affine(samples, route),
        ),
        ("affine-best".to_string(), fit_best_affine(samples, route)),
        ("piecewise-3".to_string(), fit_piecewise(samples, 3, route)),
    ]
}

/// Closed-form predictions of a model over the calibration sizes, for
/// accuracy summaries (Figs. 3–5 are no-contention single-flow curves, so
/// the closed form equals the engine's behaviour).
pub fn predict(model: &TransferModel, samples: &[Sample], route: RouteRef) -> Vec<f64> {
    samples
        .iter()
        .map(|s| model.predict(s.bytes as f64, route.latency, route.bandwidth))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synth(route: RouteRef) -> Vec<Sample> {
        // Three-regime synthetic ping-pong like a real GbE cluster, with a
        // deterministic ±2% measurement jitter.
        let regime = |x: f64| -> f64 {
            if x < 1e3 {
                route.latency + x / (2.0 * route.bandwidth)
            } else if x < 65536.0 {
                1.6 * route.latency + x / (0.9 * route.bandwidth)
            } else {
                5.0 * route.latency + x / (0.95 * route.bandwidth)
            }
        };
        let mut out = Vec::new();
        let mut s = 1u64;
        let mut i = 0u64;
        while s <= 1 << 24 {
            for bytes in [s, s * 3 / 2] {
                let jitter = 1.0 + 0.02 * ((i % 5) as f64 - 2.0) / 2.0;
                out.push(Sample {
                    bytes: bytes.max(1),
                    time: regime(bytes.max(1) as f64) * jitter,
                });
                i += 1;
            }
            s *= 2;
        }
        out.sort_by_key(|s| s.bytes);
        out.dedup_by_key(|s| s.bytes);
        out
    }

    const ROUTE: RouteRef = RouteRef {
        latency: 100e-6,
        bandwidth: 125e6,
    };

    #[test]
    fn piecewise_fits_three_segments() {
        let samples = synth(ROUTE);
        let m = fit_piecewise(&samples, 3, ROUTE);
        assert_eq!(m.segments().len(), 3);
        // Large-message bandwidth factor close to 0.95.
        let big = m.segment_for(1e7);
        assert!((big.bw_factor - 0.95).abs() < 0.2, "{}", big.bw_factor);
    }

    #[test]
    fn default_affine_uses_one_byte_latency() {
        let samples = synth(ROUTE);
        let m = fit_default_affine(&samples, ROUTE);
        let seg = m.segment_for(1.0);
        assert_eq!(seg.bw_factor, 0.92);
        // 1-byte time ≈ route latency => factor ≈ 1.
        assert!((seg.lat_factor - 1.0).abs() < 0.1);
    }

    #[test]
    fn best_affine_beats_default_on_log_error() {
        let samples = synth(ROUTE);
        let best = fit_best_affine(&samples, ROUTE);
        let default = fit_default_affine(&samples, ROUTE);
        let truth: Vec<f64> = samples.iter().map(|s| s.time).collect();
        let e_best = smpi_metrics::ErrorSummary::compare(&predict(&best, &samples, ROUTE), &truth);
        let e_def =
            smpi_metrics::ErrorSummary::compare(&predict(&default, &samples, ROUTE), &truth);
        assert!(
            e_best.mean <= e_def.mean + 1e-9,
            "best-fit ({}) must not lose to default ({})",
            e_best,
            e_def
        );
    }

    #[test]
    fn piecewise_beats_both_affines() {
        // The paper's headline result for Figs. 3–5, in miniature.
        let samples = synth(ROUTE);
        let truth: Vec<f64> = samples.iter().map(|s| s.time).collect();
        let pw = fit_piecewise(&samples, 3, ROUTE);
        let best = fit_best_affine(&samples, ROUTE);
        let e_pw = smpi_metrics::ErrorSummary::compare(&predict(&pw, &samples, ROUTE), &truth);
        let e_best = smpi_metrics::ErrorSummary::compare(&predict(&best, &samples, ROUTE), &truth);
        assert!(
            e_pw.mean < e_best.mean,
            "piece-wise ({e_pw}) must beat best-fit affine ({e_best})"
        );
    }

    #[test]
    fn degenerate_flat_data_is_clamped() {
        let samples: Vec<Sample> = (0..10)
            .map(|i| Sample {
                bytes: 1 + i,
                time: 1e-4,
            })
            .collect();
        let m = fit_piecewise(&samples, 1, ROUTE);
        let seg = m.segment_for(5.0);
        assert!(seg.bw_factor <= MAX_BW_FACTOR);
        assert!(seg.lat_factor >= 0.0);
    }
}
