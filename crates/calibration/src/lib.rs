//! # smpi-calibrate — platform instantiation from measurements
//!
//! Implements §6 of the SMPI paper: run a SKaMPI-style ping-pong on a
//! (simulated) real cluster, then automatically fit the piece-wise linear
//! point-to-point model — plus the two affine baselines the evaluation
//! compares against.

pub mod model;
pub mod pingpong;

pub use model::{
    fit_best_affine, fit_default_affine, fit_piecewise, model_axis, predict, RouteRef,
};
pub use pingpong::{default_sizes, pingpong, Sample};
