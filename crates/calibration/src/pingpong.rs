//! SKaMPI-style ping-pong measurements (paper §6).
//!
//! "Using the simple ping-pong MPI benchmark provided by SKaMPI, we obtain
//! data transfer times achieved for a wide range of message sizes." The
//! driver runs the classic two-rank ping-pong on any [`World`] — in this
//! reproduction the `testbed` (packet-level) world plays SKaMPI-on-hardware,
//! and the same driver on an SMPI world produces the model curves of
//! Figs. 3–5.

use std::sync::Arc;

use smpi::World;

/// One measurement: message size in bytes and one-way time in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Message size, bytes.
    pub bytes: u64,
    /// One-way communication time (round-trip / 2), seconds.
    pub time: f64,
}

/// The default size sweep: log-spaced from 1 B to 16 MiB, the range of the
/// paper's Figs. 3–5 (1 to 10⁷ bytes).
pub fn default_sizes() -> Vec<u64> {
    let mut sizes = Vec::new();
    let mut s = 1u64;
    while s <= 16 * 1024 * 1024 {
        sizes.push(s);
        // Two points per octave for a smooth curve.
        let next = (s * 3).div_ceil(2).max(s + 1);
        sizes.push(next.min(16 * 1024 * 1024 + 1));
        s *= 2;
    }
    sizes.sort_unstable();
    sizes.dedup();
    sizes.retain(|&s| s <= 16 * 1024 * 1024);
    sizes
}

/// Runs a ping-pong between `host_a` and `host_b` on `world` for every size
/// in `sizes`, with `reps` round trips per size (the first is a warm-up when
/// `reps > 1`). Returns one-way times.
pub fn pingpong(
    world: &World,
    host_a: usize,
    host_b: usize,
    sizes: &[u64],
    reps: usize,
) -> Vec<Sample> {
    assert!(reps >= 1);
    assert_ne!(host_a, host_b);
    let sizes: Arc<Vec<u64>> = Arc::new(sizes.to_vec());
    let sizes_for_run = Arc::clone(&sizes);
    let world = world_placed(world, host_a, host_b);
    let report = world.run(2, move |ctx| {
        let comm = ctx.world();
        let mut times = Vec::with_capacity(sizes_for_run.len());
        for &bytes in sizes_for_run.iter() {
            let buf = vec![0u8; bytes as usize];
            let mut echo = vec![0u8; bytes as usize];
            let t0 = ctx.wtime();
            for _ in 0..reps {
                if ctx.rank() == 0 {
                    ctx.send(&buf, 1, 0, &comm);
                    ctx.recv(&mut echo, 1, 0, &comm);
                } else {
                    ctx.recv(&mut echo, 0, 0, &comm);
                    ctx.send(&buf, 0, 0, &comm);
                }
            }
            let rtt = (ctx.wtime() - t0) / reps as f64;
            times.push(rtt / 2.0);
        }
        times
    });
    sizes
        .iter()
        .zip(&report.results[0])
        .map(|(&bytes, &time)| Sample { bytes, time })
        .collect()
}

/// Rebuilds the world with ranks 0/1 pinned on the requested host pair.
fn world_placed(world: &World, a: usize, b: usize) -> World {
    world.clone_for_placement(vec![a, b])
}

#[cfg(test)]
mod tests {
    use super::*;
    use smpi::MpiProfile;
    use smpi_platform::{flat_cluster, ClusterConfig, RoutedPlatform};

    #[test]
    fn sizes_are_sorted_and_bounded() {
        let sizes = default_sizes();
        assert!(sizes.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(sizes[0], 1);
        assert!(*sizes.last().unwrap() <= 16 * 1024 * 1024);
        assert!(sizes.len() > 30, "need a dense sweep, got {}", sizes.len());
    }

    #[test]
    fn pingpong_times_increase_with_size() {
        let rp = std::sync::Arc::new(RoutedPlatform::new(flat_cluster(
            "t",
            4,
            &ClusterConfig::default(),
        )));
        let world = World::testbed(rp, MpiProfile::openmpi_like());
        let samples = pingpong(&world, 0, 1, &[1, 1024, 1_000_000], 1);
        assert_eq!(samples.len(), 3);
        assert!(samples[0].time < samples[1].time);
        assert!(samples[1].time < samples[2].time);
        // 1 MB over ~125 MB/s is at least 8 ms one way.
        assert!(samples[2].time > 8e-3);
    }
}
