//! The Fig. 3 pipeline in miniature: calibrate on the packet-level griffon,
//! fit the three models, and verify the paper's accuracy ordering.

use std::sync::Arc;

use smpi::{MpiProfile, World};
use smpi_calibrate::{fit_best_affine, fit_default_affine, fit_piecewise, pingpong, RouteRef};
use smpi_metrics::ErrorSummary;
use smpi_platform::{griffon, HostIx, RoutedPlatform};

fn griffon_rp() -> Arc<RoutedPlatform> {
    Arc::new(RoutedPlatform::new(griffon()))
}

fn sparse_sizes() -> Vec<u64> {
    // A smaller sweep than the default for test speed: still log-dense.
    let mut v = Vec::new();
    let mut s: u64 = 1;
    while s <= 1 << 23 {
        v.push(s);
        v.push(s * 3 / 2);
        s *= 2;
    }
    v.sort_unstable();
    v.dedup();
    v.retain(|&x| x >= 1);
    v
}

#[test]
fn piecewise_model_beats_affine_models_on_real_pingpong() {
    let rp = griffon_rp();
    let truth_world = World::testbed(Arc::clone(&rp), MpiProfile::openmpi_like());
    let sizes = sparse_sizes();
    let samples = pingpong(&truth_world, 0, 1, &sizes, 1);
    let route = RouteRef {
        latency: rp.latency(HostIx(0), HostIx(1)),
        bandwidth: rp.bandwidth(HostIx(0), HostIx(1)),
    };

    let truth: Vec<f64> = samples.iter().map(|s| s.time).collect();
    let pw = fit_piecewise(&samples, 3, route);
    let best = fit_best_affine(&samples, route);
    let default = fit_default_affine(&samples, route);

    let predict =
        |m: &surf_sim::TransferModel| -> Vec<f64> { smpi_calibrate::predict(m, &samples, route) };
    let e_pw = ErrorSummary::compare(&predict(&pw), &truth);
    let e_best = ErrorSummary::compare(&predict(&best), &truth);
    let e_def = ErrorSummary::compare(&predict(&default), &truth);

    eprintln!("piecewise: {e_pw}\nbest-fit : {e_best}\ndefault  : {e_def}");

    // The paper's ordering (Fig. 3): piece-wise < best-fit < default.
    assert!(e_pw.mean < e_best.mean, "piecewise {e_pw} vs best {e_best}");
    assert!(e_best.mean < e_def.mean, "best {e_best} vs default {e_def}");
    // And its magnitude: piece-wise lands under ~10% average error.
    assert!(e_pw.mean < 0.12, "piecewise too inaccurate: {e_pw}");
}

#[test]
fn smpi_pingpong_tracks_the_model_closed_form() {
    // Simulating the ping-pong on the SMPI (flow) backend must agree with
    // the fitted model's closed form: single flow, no contention.
    let rp = griffon_rp();
    let truth_world = World::testbed(Arc::clone(&rp), MpiProfile::openmpi_like());
    let sizes: Vec<u64> = vec![1, 100, 10_000, 100_000, 1 << 20, 1 << 23];
    let cal_sizes = sparse_sizes();
    let samples = pingpong(&truth_world, 0, 1, &cal_sizes, 1);
    let route = RouteRef {
        latency: rp.latency(HostIx(0), HostIx(1)),
        bandwidth: rp.bandwidth(HostIx(0), HostIx(1)),
    };
    let model = fit_piecewise(&samples, 3, route);

    let smpi_world = World::smpi(Arc::clone(&rp), model.clone());
    let sim = pingpong(&smpi_world, 0, 1, &sizes, 1);
    for s in &sim {
        let closed = model.predict(s.bytes as f64, route.latency, route.bandwidth);
        let ratio = s.time / closed;
        assert!(
            (0.8..1.25).contains(&ratio),
            "engine vs closed form at {} B: {} vs {closed}",
            s.bytes,
            s.time
        );
    }
}

#[test]
fn griffon_calibration_transfers_to_gdx() {
    // Fig. 4: calibrate on griffon, predict gdx (same-switch pair).
    let gr = griffon_rp();
    let truth_gr = World::testbed(Arc::clone(&gr), MpiProfile::openmpi_like());
    let cal = pingpong(&truth_gr, 0, 1, &sparse_sizes(), 1);
    let route_gr = RouteRef {
        latency: gr.latency(HostIx(0), HostIx(1)),
        bandwidth: gr.bandwidth(HostIx(0), HostIx(1)),
    };
    let model = fit_piecewise(&cal, 3, route_gr);

    let gdx = Arc::new(RoutedPlatform::new(smpi_platform::gdx()));
    let truth_gdx = World::testbed(Arc::clone(&gdx), MpiProfile::openmpi_like());
    let samples = pingpong(&truth_gdx, 0, 1, &sparse_sizes(), 1);
    let route_gdx = RouteRef {
        latency: gdx.latency(HostIx(0), HostIx(1)),
        bandwidth: gdx.bandwidth(HostIx(0), HostIx(1)),
    };
    let truth: Vec<f64> = samples.iter().map(|s| s.time).collect();
    let pred = smpi_calibrate::predict(&model, &samples, route_gdx);
    let e = ErrorSummary::compare(&pred, &truth);
    eprintln!("gdx with griffon calibration: {e}");
    assert!(e.mean < 0.25, "transferred calibration too inaccurate: {e}");
}
