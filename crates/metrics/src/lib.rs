//! # smpi-metrics — error metrics and model fitting
//!
//! The quantitative toolkit of the reproduction: the logarithmic error
//! metric of §7.1 ([`logerr`]), summary statistics ([`stats`]), ordinary
//! least squares ([`regress`]) and the segmented regression that instantiates
//! the piece-wise linear network model of §4.1 ([`segmented`]).

pub mod logerr;
pub mod regress;
pub mod segmented;
pub mod stats;

pub use logerr::{log_error, max_log_error, mean_log_error, to_fraction, ErrorSummary};
pub use regress::{fit, LinearFit};
pub use segmented::{fit_segment_sweep, fit_segments, FittedSegment, SegmentedFit};
