//! Small summary-statistics helpers used across the benchmark harness.

/// Arithmetic mean. Panics on empty input.
pub fn mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample variance (n−1 denominator); 0 for fewer than two samples.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
pub fn stddev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Minimum. Panics on empty input.
pub fn min(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Maximum. Panics on empty input (returns -inf).
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

/// Median (averages the middle pair for even lengths).
pub fn median(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    let mut v = xs.to_vec();
    v.sort_by(f64::total_cmp);
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// Geometric mean of positive samples.
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    assert!(xs.iter().all(|&x| x > 0.0));
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basics() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert_eq!(min(&xs), 1.0);
        assert_eq!(max(&xs), 4.0);
        assert_eq!(median(&xs), 2.5);
        assert_eq!(median(&[5.0, 1.0, 3.0]), 3.0);
    }

    #[test]
    fn variance_of_constant_is_zero() {
        assert_eq!(variance(&[7.0, 7.0, 7.0]), 0.0);
        assert_eq!(variance(&[7.0]), 0.0);
    }

    #[test]
    fn variance_matches_formula() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
        assert!((stddev(&xs) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn geomean_of_powers() {
        assert!((geomean(&[1.0, 4.0, 16.0]) - 4.0).abs() < 1e-12);
    }
}
