//! Ordinary least squares on (x, y) pairs.

/// Result of a univariate linear fit `y ≈ intercept + slope·x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Intercept (the latency α of an affine network model).
    pub intercept: f64,
    /// Slope (the inverse bandwidth 1/β of an affine network model).
    pub slope: f64,
    /// Squared correlation coefficient r² ∈ [0, 1]; defined as 1 when the
    /// data has no y-variance (a constant is fitted exactly).
    pub r2: f64,
}

impl LinearFit {
    /// Predicted value at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

/// Least-squares fit. Panics on fewer than 2 points or zero x-variance.
pub fn fit(xs: &[f64], ys: &[f64]) -> LinearFit {
    fit_weighted(xs, ys, None)
}

/// Weighted least squares: minimizes `Σ wᵢ (α + β·xᵢ − yᵢ)²`. With
/// `wᵢ = 1/yᵢ²` this becomes *relative* least squares — the right loss when
/// accuracy is judged with the logarithmic error of §7.1, because residuals
/// count proportionally to the measured value. `None` weights are all-ones
/// (plain OLS).
pub fn fit_weighted(xs: &[f64], ys: &[f64], ws: Option<&[f64]>) -> LinearFit {
    assert_eq!(xs.len(), ys.len());
    let n = xs.len();
    assert!(n >= 2, "need at least two points to fit a line");
    let ones = vec![1.0; n];
    let ws = ws.unwrap_or(&ones);
    assert_eq!(ws.len(), n);
    assert!(ws.iter().all(|&w| w > 0.0 && w.is_finite()));
    let wsum: f64 = ws.iter().sum();
    let mx = xs.iter().zip(ws).map(|(&x, &w)| w * x).sum::<f64>() / wsum;
    let my = ys.iter().zip(ws).map(|(&y, &w)| w * y).sum::<f64>() / wsum;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for ((&x, &y), &w) in xs.iter().zip(ys).zip(ws) {
        sxx += w * (x - mx) * (x - mx);
        sxy += w * (x - mx) * (y - my);
        syy += w * (y - my) * (y - my);
    }
    assert!(sxx > 0.0, "x values are all identical");
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r2 = if syy <= f64::EPSILON * my.abs().max(1.0) {
        1.0 // constant data, fitted exactly
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    LinearFit {
        intercept,
        slope,
        r2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 + 2.0 * x).collect();
        let f = fit(&xs, &ys);
        assert!((f.intercept - 3.0).abs() < 1e-12);
        assert!((f.slope - 2.0).abs() < 1e-12);
        assert!((f.r2 - 1.0).abs() < 1e-12);
        assert!((f.predict(100.0) - 203.0).abs() < 1e-9);
    }

    #[test]
    fn noisy_line_has_lower_r2() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        // Deterministic "noise".
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| {
                1.0 + x
                    + if (x as u64).is_multiple_of(2) {
                        5.0
                    } else {
                        -5.0
                    }
            })
            .collect();
        let f = fit(&xs, &ys);
        assert!(f.r2 < 0.99);
        assert!(f.r2 > 0.5);
    }

    #[test]
    fn constant_data_r2_is_one() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [4.0, 4.0, 4.0];
        let f = fit(&xs, &ys);
        assert_eq!(f.slope, 0.0);
        assert_eq!(f.r2, 1.0);
    }

    #[test]
    #[should_panic]
    fn rejects_single_point() {
        fit(&[1.0], &[1.0]);
    }

    #[test]
    fn relative_weights_prefer_small_values() {
        // Two clusters: small (x~1, y~1) and large (x~1000, y~2000 with an
        // offset). Plain OLS all but ignores the small cluster; 1/y² weights
        // keep its relative residuals small.
        let xs = [1.0, 2.0, 3.0, 1000.0, 1100.0, 1200.0];
        let ys = [1.0, 2.0, 3.0, 2500.0, 2700.0, 2900.0];
        let w: Vec<f64> = ys.iter().map(|y| 1.0 / (y * y)).collect();
        let rel = fit_weighted(&xs, &ys, Some(&w));
        let plain = fit_weighted(&xs, &ys, None);
        let rel_err_small = ((rel.predict(2.0) - 2.0) / 2.0).abs();
        let plain_err_small = ((plain.predict(2.0) - 2.0) / 2.0).abs();
        assert!(rel_err_small < plain_err_small);
    }

    #[test]
    fn uniform_weights_match_plain_ols() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 5.0 - 0.5 * x).collect();
        let a = fit(&xs, &ys);
        let b = fit_weighted(&xs, &ys, Some(&[2.0; 20]));
        assert!((a.slope - b.slope).abs() < 1e-12);
        assert!((a.intercept - b.intercept).abs() < 1e-12);
    }
}
