//! The logarithmic error metric (paper §7.1, from Velho & Legrand \[26\]).
//!
//! The relative error `(X - R)/R` is asymmetric: overestimating by 2× gives
//! +100%, underestimating by 2× gives −50%. The paper therefore measures
//! `LogErr = |ln X − ln R|`, which is symmetric and can be aggregated
//! additively (mean, max, variance); `e^LogErr − 1` converts an aggregate
//! back to a percentage.

/// `|ln x − ln r|`. Panics on non-positive inputs (times are positive).
pub fn log_error(x: f64, r: f64) -> f64 {
    assert!(
        x > 0.0 && r > 0.0,
        "log error needs positive values ({x}, {r})"
    );
    (x.ln() - r.ln()).abs()
}

/// Converts a (possibly aggregated) log error back to a fractional error:
/// `e^le − 1` (multiply by 100 for the paper's percentages).
pub fn to_fraction(le: f64) -> f64 {
    le.exp() - 1.0
}

/// Mean log error over paired samples.
pub fn mean_log_error(xs: &[f64], rs: &[f64]) -> f64 {
    assert_eq!(xs.len(), rs.len());
    assert!(!xs.is_empty());
    xs.iter()
        .zip(rs)
        .map(|(&x, &r)| log_error(x, r))
        .sum::<f64>()
        / xs.len() as f64
}

/// Maximum log error over paired samples.
pub fn max_log_error(xs: &[f64], rs: &[f64]) -> f64 {
    assert_eq!(xs.len(), rs.len());
    xs.iter()
        .zip(rs)
        .map(|(&x, &r)| log_error(x, r))
        .fold(0.0, f64::max)
}

/// Summary of an accuracy comparison: the numbers the paper quotes for each
/// figure ("8.63% average error overall, with worst case at 27%").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorSummary {
    /// Mean log error (fraction, e.g. 0.0863 for 8.63%).
    pub mean: f64,
    /// Worst-case log error (fraction).
    pub max: f64,
}

impl ErrorSummary {
    /// Compares predictions against references.
    pub fn compare(predicted: &[f64], reference: &[f64]) -> Self {
        ErrorSummary {
            mean: to_fraction(mean_log_error(predicted, reference)),
            max: to_fraction(max_log_error(predicted, reference)),
        }
    }
}

impl std::fmt::Display for ErrorSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "avg {:.2}%, worst {:.2}%",
            self.mean * 100.0,
            self.max * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_unlike_relative_error() {
        let double = log_error(2.0, 1.0);
        let half = log_error(0.5, 1.0);
        assert!((double - half).abs() < 1e-15);
        assert!((to_fraction(double) - 1.0).abs() < 1e-12); // 100%
    }

    #[test]
    fn exact_prediction_is_zero() {
        assert_eq!(log_error(3.5, 3.5), 0.0);
        assert_eq!(to_fraction(0.0), 0.0);
    }

    #[test]
    fn aggregation() {
        let xs = [1.0, 2.0, 4.0];
        let rs = [1.0, 1.0, 1.0];
        let mean = mean_log_error(&xs, &rs);
        assert!((mean - (2.0f64.ln() + 4.0f64.ln()) / 3.0).abs() < 1e-12);
        assert!((max_log_error(&xs, &rs) - 4.0f64.ln()).abs() < 1e-15);
    }

    #[test]
    fn summary_formats() {
        let s = ErrorSummary::compare(&[1.1, 0.9], &[1.0, 1.0]);
        assert!(s.mean > 0.0 && s.max >= s.mean);
        assert!(s.to_string().contains('%'));
    }

    #[test]
    #[should_panic]
    fn rejects_non_positive() {
        log_error(0.0, 1.0);
    }
}
