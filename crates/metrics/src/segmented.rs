//! Segmented (piece-wise) linear regression (paper §4.1).
//!
//! "SMPI models point-to-point communication times with a piece-wise linear
//! model with an arbitrary number of linear segments. Each segment is
//! obtained using linear regression on a set of real measurements. The
//! number of segments and the segment boundaries are chosen such that the
//! product of the correlation coefficients is maximized."
//!
//! Implementation: points are sorted by x; boundaries can fall between any
//! two consecutive points; a dynamic program over (first i points, j
//! segments) maximizes Σ log r² (≡ maximizing Π r²), with a minimum number
//! of points per segment so each regression is well-posed.

use crate::regress::{fit_weighted, LinearFit};

/// Minimum points per segment (a 2-point fit has r² = 1 by construction and
/// would let the optimizer cheat).
pub const MIN_POINTS: usize = 3;

/// One fitted segment over `[lo, hi)` in x-space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FittedSegment {
    /// Inclusive lower x-bound of the segment's points.
    pub x_lo: f64,
    /// Exclusive upper x-bound (`f64::INFINITY` for the last segment).
    pub x_hi: f64,
    /// The per-segment regression.
    pub fit: LinearFit,
}

/// A fitted piece-wise linear model.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentedFit {
    /// Segments in increasing x order.
    pub segments: Vec<FittedSegment>,
    /// Product of per-segment r².
    pub score: f64,
}

impl SegmentedFit {
    /// Prediction at `x` (the segment whose range contains `x`).
    pub fn predict(&self, x: f64) -> f64 {
        for s in &self.segments {
            if x < s.x_hi {
                return s.fit.predict(x);
            }
        }
        self.segments.last().expect("non-empty fit").fit.predict(x)
    }
}

/// Fits `k` segments to `(xs, ys)` maximizing the product of r², with plain
/// (absolute) least squares per segment. Points need not be sorted. Panics
/// if there are fewer than `k * MIN_POINTS` points.
pub fn fit_segments(xs: &[f64], ys: &[f64], k: usize) -> SegmentedFit {
    fit_segments_impl(xs, ys, k, false)
}

/// Like [`fit_segments`] but with *relative* least squares (1/y² weights)
/// per segment. This is the right variant for transfer times judged by the
/// logarithmic error: segments spanning decades of message size would
/// otherwise be fitted only to their largest points.
pub fn fit_segments_relative(xs: &[f64], ys: &[f64], k: usize) -> SegmentedFit {
    fit_segments_impl(xs, ys, k, true)
}

fn fit_segments_impl(xs: &[f64], ys: &[f64], k: usize, relative: bool) -> SegmentedFit {
    assert_eq!(xs.len(), ys.len());
    assert!(k >= 1);
    let n = xs.len();
    assert!(
        n >= k * MIN_POINTS,
        "need at least {} points for {k} segments, have {n}",
        k * MIN_POINTS
    );
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| xs[a].total_cmp(&xs[b]));
    let sx: Vec<f64> = idx.iter().map(|&i| xs[i]).collect();
    let sy: Vec<f64> = idx.iter().map(|&i| ys[i]).collect();
    let weights: Option<Vec<f64>> =
        relative.then(|| sy.iter().map(|&y| 1.0 / (y * y).max(1e-300)).collect());

    let seg_fit = |a: usize, b: usize| -> LinearFit {
        fit_weighted(&sx[a..b], &sy[a..b], weights.as_ref().map(|w| &w[a..b]))
    };
    // seg_score[a][b] = log r² of fitting points a..b (exclusive b).
    // Computed lazily for valid ranges only.
    let log_r2 = |a: usize, b: usize| -> f64 {
        let f = seg_fit(a, b);
        // Guard r² = 0 (log -inf is fine: that split will never win unless
        // forced, which is the desired behaviour).
        f.r2.max(1e-300).ln()
    };

    // dp[j][i]: best Σ log r² covering the first i points with j segments.
    let neg = f64::NEG_INFINITY;
    let mut dp = vec![vec![neg; n + 1]; k + 1];
    let mut cut = vec![vec![0usize; n + 1]; k + 1];
    dp[0][0] = 0.0;
    for j in 1..=k {
        for i in (j * MIN_POINTS)..=n {
            // Last segment covers points m..i.
            for m in ((j - 1) * MIN_POINTS)..=(i - MIN_POINTS) {
                if dp[j - 1][m] == neg {
                    continue;
                }
                let cand = dp[j - 1][m] + log_r2(m, i);
                if cand > dp[j][i] {
                    dp[j][i] = cand;
                    cut[j][i] = m;
                }
            }
        }
    }
    assert!(dp[k][n] > neg, "no valid segmentation found");

    // Reconstruct boundaries.
    let mut bounds = vec![n];
    let mut i = n;
    for j in (1..=k).rev() {
        i = cut[j][i];
        bounds.push(i);
    }
    bounds.reverse(); // 0 = bounds[0] < ... < bounds[k] = n
    debug_assert_eq!(bounds[0], 0);

    let mut segments = Vec::with_capacity(k);
    for w in bounds.windows(2) {
        let (a, b) = (w[0], w[1]);
        let f = seg_fit(a, b);
        let x_hi = if b == n {
            f64::INFINITY
        } else {
            // Boundary halfway (geometrically, sizes span decades) between
            // the last point of this segment and the first of the next.
            (sx[b - 1] * sx[b]).sqrt()
        };
        segments.push(FittedSegment {
            x_lo: sx[a],
            x_hi,
            fit: f,
        });
    }
    SegmentedFit {
        segments,
        score: dp[k][n].exp(),
    }
}

/// Convenience: tries 1..=max_k segments and returns each fit (for the
/// paper's "in practice, the model should be instantiated for 3 segments"
/// ablation).
pub fn fit_segment_sweep(xs: &[f64], ys: &[f64], max_k: usize) -> Vec<SegmentedFit> {
    (1..=max_k)
        .filter(|k| xs.len() >= k * MIN_POINTS)
        .map(|k| fit_segments_relative(xs, ys, k))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic piece-wise data with 3 regimes (like a real ping-pong).
    fn synthetic() -> (Vec<f64>, Vec<f64>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        // Log-spaced sizes from 1 to 1e7.
        for i in 0..60 {
            let x = 10f64.powf(i as f64 * 7.0 / 59.0);
            let y = if x < 1e3 {
                50e-6 + x / 250e6
            } else if x < 65536.0 {
                80e-6 + x / 110e6
            } else {
                250e-6 + x / 120e6
            };
            xs.push(x);
            ys.push(y);
        }
        (xs, ys)
    }

    #[test]
    fn single_segment_is_plain_ols() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
        let sf = fit_segments(&xs, &ys, 1);
        assert_eq!(sf.segments.len(), 1);
        assert!((sf.segments[0].fit.slope - 2.0).abs() < 1e-12);
        assert!((sf.score - 1.0).abs() < 1e-9);
    }

    #[test]
    fn recovers_three_regimes() {
        let (xs, ys) = synthetic();
        let sf = fit_segments(&xs, &ys, 3);
        assert_eq!(sf.segments.len(), 3);
        // Each regime's slope should be recovered within a few percent.
        let slopes: Vec<f64> = sf.segments.iter().map(|s| s.fit.slope).collect();
        assert!((slopes[0] - 1.0 / 250e6).abs() / (1.0 / 250e6) < 0.25);
        assert!((slopes[2] - 1.0 / 120e6).abs() / (1.0 / 120e6) < 0.05);
        // Last boundary should sit near the 64 KiB protocol switch.
        let b = sf.segments[1].x_hi;
        assert!(b > 2e4 && b < 3e5, "boundary at {b}");
    }

    #[test]
    fn more_segments_never_score_worse() {
        let (xs, ys) = synthetic();
        let sweep = fit_segment_sweep(&xs, &ys, 4);
        assert_eq!(sweep.len(), 4);
        for w in sweep.windows(2) {
            assert!(
                w[1].score >= w[0].score - 1e-9,
                "score must be monotone in k: {} then {}",
                w[0].score,
                w[1].score
            );
        }
    }

    #[test]
    fn predictions_are_continuous_enough() {
        let (xs, ys) = synthetic();
        let sf = fit_segments(&xs, &ys, 3);
        for (&x, &y) in xs.iter().zip(&ys) {
            let p = sf.predict(x);
            assert!(
                (p - y).abs() / y < 0.5,
                "prediction at {x}: {p} vs truth {y}"
            );
        }
    }

    #[test]
    fn segments_tile_the_axis() {
        let (xs, ys) = synthetic();
        let sf = fit_segments(&xs, &ys, 3);
        assert!(sf.segments.last().unwrap().x_hi.is_infinite());
        for w in sf.segments.windows(2) {
            assert!(w[0].x_hi <= w[1].x_lo + 1e-9 || w[0].x_hi <= w[1].x_hi);
        }
    }

    #[test]
    #[should_panic]
    fn too_few_points_rejected() {
        fit_segments(&[1.0, 2.0, 3.0, 4.0], &[1.0, 2.0, 3.0, 4.0], 2);
    }
}
