//! Low-level writer for the Paje generic trace format.
//!
//! Paje is the self-describing text format SimGrid's tracing subsystem
//! emits and that Vite / `pj_dump` / PajeNG consume. A file starts with
//! `%EventDef` blocks declaring each event's fields, followed by numbered
//! event lines. This module knows nothing about MPI — callers define
//! container/state/variable/link types and emit events; the glue that maps
//! a simulation run onto containers lives with the runtime.

use std::fmt::Display;

// Event ids, matching the order of the header definitions.
const DEFINE_CONTAINER_TYPE: u8 = 0;
const DEFINE_STATE_TYPE: u8 = 1;
const DEFINE_VARIABLE_TYPE: u8 = 2;
const DEFINE_LINK_TYPE: u8 = 3;
const DEFINE_ENTITY_VALUE: u8 = 4;
const CREATE_CONTAINER: u8 = 5;
const DESTROY_CONTAINER: u8 = 6;
const SET_STATE: u8 = 7;
const PUSH_STATE: u8 = 8;
const POP_STATE: u8 = 9;
const SET_VARIABLE: u8 = 10;
const START_LINK: u8 = 11;
const END_LINK: u8 = 12;

/// Paje trace writer. Emit definitions first, then timed events; times
/// must be non-decreasing for downstream tools to accept the trace.
#[derive(Debug)]
pub struct PajeWriter {
    out: String,
}

impl Default for PajeWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl PajeWriter {
    /// Creates a writer with the standard event-definition header.
    pub fn new() -> Self {
        let mut out = String::with_capacity(4096);
        let defs: &[(&str, u8, &[&str])] = &[
            (
                "PajeDefineContainerType",
                DEFINE_CONTAINER_TYPE,
                &["Alias string", "Type string", "Name string"],
            ),
            (
                "PajeDefineStateType",
                DEFINE_STATE_TYPE,
                &["Alias string", "Type string", "Name string"],
            ),
            (
                "PajeDefineVariableType",
                DEFINE_VARIABLE_TYPE,
                &["Alias string", "Type string", "Name string"],
            ),
            (
                "PajeDefineLinkType",
                DEFINE_LINK_TYPE,
                &[
                    "Alias string",
                    "Type string",
                    "StartContainerType string",
                    "EndContainerType string",
                    "Name string",
                ],
            ),
            (
                "PajeDefineEntityValue",
                DEFINE_ENTITY_VALUE,
                &["Alias string", "Type string", "Name string", "Color color"],
            ),
            (
                "PajeCreateContainer",
                CREATE_CONTAINER,
                &[
                    "Time date",
                    "Alias string",
                    "Type string",
                    "Container string",
                    "Name string",
                ],
            ),
            (
                "PajeDestroyContainer",
                DESTROY_CONTAINER,
                &["Time date", "Type string", "Name string"],
            ),
            (
                "PajeSetState",
                SET_STATE,
                &[
                    "Time date",
                    "Type string",
                    "Container string",
                    "Value string",
                ],
            ),
            (
                "PajePushState",
                PUSH_STATE,
                &[
                    "Time date",
                    "Type string",
                    "Container string",
                    "Value string",
                ],
            ),
            (
                "PajePopState",
                POP_STATE,
                &["Time date", "Type string", "Container string"],
            ),
            (
                "PajeSetVariable",
                SET_VARIABLE,
                &[
                    "Time date",
                    "Type string",
                    "Container string",
                    "Value double",
                ],
            ),
            (
                "PajeStartLink",
                START_LINK,
                &[
                    "Time date",
                    "Type string",
                    "Container string",
                    "Value string",
                    "StartContainer string",
                    "Key string",
                ],
            ),
            (
                "PajeEndLink",
                END_LINK,
                &[
                    "Time date",
                    "Type string",
                    "Container string",
                    "Value string",
                    "EndContainer string",
                    "Key string",
                ],
            ),
        ];
        for (name, id, fields) in defs {
            out.push_str(&format!("%EventDef {name} {id}\n"));
            for f in *fields {
                out.push_str(&format!("% {f}\n"));
            }
            out.push_str("%EndEventDef\n");
        }
        PajeWriter { out }
    }

    fn field(s: &str) -> String {
        // Paje fields are whitespace-separated; quote anything that needs it.
        if s.is_empty() || s.contains(char::is_whitespace) || s.contains('"') {
            format!("\"{}\"", s.replace('"', "\\\""))
        } else {
            s.to_string()
        }
    }

    fn time(t: f64) -> String {
        format!("{t:.9}")
    }

    /// Declares a container type; `parent` is `"0"` for root types.
    pub fn define_container_type(&mut self, alias: &str, parent: &str, name: &str) {
        self.out.push_str(&format!(
            "{DEFINE_CONTAINER_TYPE} {} {} {}\n",
            Self::field(alias),
            Self::field(parent),
            Self::field(name)
        ));
    }

    /// Declares a state type attached to a container type.
    pub fn define_state_type(&mut self, alias: &str, container_type: &str, name: &str) {
        self.out.push_str(&format!(
            "{DEFINE_STATE_TYPE} {} {} {}\n",
            Self::field(alias),
            Self::field(container_type),
            Self::field(name)
        ));
    }

    /// Declares a numeric variable type attached to a container type.
    pub fn define_variable_type(&mut self, alias: &str, container_type: &str, name: &str) {
        self.out.push_str(&format!(
            "{DEFINE_VARIABLE_TYPE} {} {} {}\n",
            Self::field(alias),
            Self::field(container_type),
            Self::field(name)
        ));
    }

    /// Declares a link (arrow) type between two container types.
    pub fn define_link_type(
        &mut self,
        alias: &str,
        container_type: &str,
        start_type: &str,
        end_type: &str,
        name: &str,
    ) {
        self.out.push_str(&format!(
            "{DEFINE_LINK_TYPE} {} {} {} {} {}\n",
            Self::field(alias),
            Self::field(container_type),
            Self::field(start_type),
            Self::field(end_type),
            Self::field(name)
        ));
    }

    /// Declares a named value of a state type with an `r g b` color.
    pub fn define_entity_value(&mut self, alias: &str, state_type: &str, name: &str, color: &str) {
        self.out.push_str(&format!(
            "{DEFINE_ENTITY_VALUE} {} {} {} {}\n",
            Self::field(alias),
            Self::field(state_type),
            Self::field(name),
            Self::field(color)
        ));
    }

    /// Instantiates a container.
    pub fn create_container(&mut self, t: f64, alias: &str, ctype: &str, parent: &str, name: &str) {
        self.out.push_str(&format!(
            "{CREATE_CONTAINER} {} {} {} {} {}\n",
            Self::time(t),
            Self::field(alias),
            Self::field(ctype),
            Self::field(parent),
            Self::field(name)
        ));
    }

    /// Destroys a container.
    pub fn destroy_container(&mut self, t: f64, ctype: &str, name: &str) {
        self.out.push_str(&format!(
            "{DESTROY_CONTAINER} {} {} {}\n",
            Self::time(t),
            Self::field(ctype),
            Self::field(name)
        ));
    }

    /// Replaces a container's current state.
    pub fn set_state(&mut self, t: f64, stype: &str, container: &str, value: &str) {
        self.out.push_str(&format!(
            "{SET_STATE} {} {} {} {}\n",
            Self::time(t),
            Self::field(stype),
            Self::field(container),
            Self::field(value)
        ));
    }

    /// Pushes a nested state.
    pub fn push_state(&mut self, t: f64, stype: &str, container: &str, value: &str) {
        self.out.push_str(&format!(
            "{PUSH_STATE} {} {} {} {}\n",
            Self::time(t),
            Self::field(stype),
            Self::field(container),
            Self::field(value)
        ));
    }

    /// Pops the current nested state.
    pub fn pop_state(&mut self, t: f64, stype: &str, container: &str) {
        self.out.push_str(&format!(
            "{POP_STATE} {} {} {}\n",
            Self::time(t),
            Self::field(stype),
            Self::field(container)
        ));
    }

    /// Samples a numeric variable.
    pub fn set_variable(&mut self, t: f64, vtype: &str, container: &str, value: f64) {
        self.out.push_str(&format!(
            "{SET_VARIABLE} {} {} {} {value}\n",
            Self::time(t),
            Self::field(vtype),
            Self::field(container)
        ));
    }

    /// Starts an arrow; `key` pairs it with the matching
    /// [`PajeWriter::end_link`].
    pub fn start_link(
        &mut self,
        t: f64,
        ltype: &str,
        container: &str,
        value: &str,
        start: &str,
        key: impl Display,
    ) {
        self.out.push_str(&format!(
            "{START_LINK} {} {} {} {} {} {key}\n",
            Self::time(t),
            Self::field(ltype),
            Self::field(container),
            Self::field(value),
            Self::field(start)
        ));
    }

    /// Ends an arrow started with the same `key`.
    pub fn end_link(
        &mut self,
        t: f64,
        ltype: &str,
        container: &str,
        value: &str,
        end: &str,
        key: impl Display,
    ) {
        self.out.push_str(&format!(
            "{END_LINK} {} {} {} {} {} {key}\n",
            Self::time(t),
            Self::field(ltype),
            Self::field(container),
            Self::field(value),
            Self::field(end)
        ));
    }

    /// Finishes and returns the trace text.
    pub fn into_string(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_defines_all_events() {
        let trace = PajeWriter::new().into_string();
        for name in [
            "PajeDefineContainerType",
            "PajeDefineStateType",
            "PajeDefineVariableType",
            "PajeDefineLinkType",
            "PajeDefineEntityValue",
            "PajeCreateContainer",
            "PajeDestroyContainer",
            "PajeSetState",
            "PajePushState",
            "PajePopState",
            "PajeSetVariable",
            "PajeStartLink",
            "PajeEndLink",
        ] {
            assert!(
                trace.contains(&format!("%EventDef {name} ")),
                "{name} missing"
            );
        }
        assert_eq!(trace.matches("%EndEventDef").count(), 13);
    }

    #[test]
    fn events_reference_declared_ids() {
        let mut w = PajeWriter::new();
        w.define_container_type("CT_rank", "0", "RANK");
        w.define_state_type("ST_rank", "CT_rank", "rank state");
        w.create_container(0.0, "rank0", "CT_rank", "0", "rank 0");
        w.push_state(0.5, "ST_rank", "rank0", "computing");
        w.pop_state(1.25, "ST_rank", "rank0");
        w.destroy_container(2.0, "CT_rank", "rank0");
        let trace = w.into_string();
        assert!(trace.contains("0 CT_rank 0 RANK\n"));
        assert!(trace.contains("5 0.000000000 rank0 CT_rank 0 \"rank 0\"\n"));
        assert!(trace.contains("8 0.500000000 ST_rank rank0 computing\n"));
        assert!(trace.contains("9 1.250000000 ST_rank rank0\n"));
    }

    #[test]
    fn fields_with_spaces_are_quoted() {
        let mut w = PajeWriter::new();
        w.set_state(1.0, "ST", "c0", "blocked in recv");
        assert!(w
            .into_string()
            .contains("7 1.000000000 ST c0 \"blocked in recv\"\n"));
    }

    #[test]
    fn links_pair_by_key() {
        let mut w = PajeWriter::new();
        w.start_link(0.1, "LT", "root", "msg", "rank0", 42);
        w.end_link(0.3, "LT", "root", "msg", "rank1", 42);
        let t = w.into_string();
        assert!(t.contains("11 0.100000000 LT root msg rank0 42\n"));
        assert!(t.contains("12 0.300000000 LT root msg rank1 42\n"));
    }
}
