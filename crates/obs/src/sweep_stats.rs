//! Per-worker throughput accounting for replication sweeps.
//!
//! A sweep engine runs thousands of independent re-simulations across a
//! worker pool; this module is the observability rollup for that layer —
//! one [`WorkerStats`] per pool worker (scenarios executed, jobs stolen
//! from other workers' deques, busy wall-clock), aggregated into a
//! [`SweepStats`] that lands in the sweep-level report.
//!
//! `busy_s` is host wall-clock and therefore machine-dependent;
//! [`SweepStats::strip_wallclock`] zeroes it, following the same
//! byte-stability discipline as [`crate::SelfProfile::strip_wallclock`].

use crate::json_mod::JsonBuf;

/// Throughput counters of one sweep worker.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorkerStats {
    /// Scenarios this worker completed.
    pub scenarios: u64,
    /// Of those, how many it stole from another worker's deque.
    pub stolen: u64,
    /// Wall-clock seconds spent executing scenarios (host-dependent;
    /// zeroed by [`SweepStats::strip_wallclock`]).
    pub busy_s: f64,
}

/// Sweep-level rollup: one entry per worker, in worker-id order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SweepStats {
    /// Per-worker counters, indexed by worker id.
    pub workers: Vec<WorkerStats>,
}

impl SweepStats {
    /// Total scenarios executed across the pool.
    pub fn total_scenarios(&self) -> u64 {
        self.workers.iter().map(|w| w.scenarios).sum()
    }

    /// Total stolen jobs across the pool (a measure of how much the
    /// work-stealing deques actually rebalanced).
    pub fn total_stolen(&self) -> u64 {
        self.workers.iter().map(|w| w.stolen).sum()
    }

    /// Zeroes every host-dependent wall-clock field so two sweeps of the
    /// same matrix on different machines serialize byte-identically.
    pub fn strip_wallclock(&mut self) {
        for w in &mut self.workers {
            w.busy_s = 0.0;
        }
    }

    /// Appends this rollup as a JSON array value to `j`.
    pub fn append_json(&self, j: &mut JsonBuf) {
        j.begin_arr();
        for (i, w) in self.workers.iter().enumerate() {
            j.begin_obj();
            j.key("worker").uint_val(i as u64);
            j.key("scenarios").uint_val(w.scenarios);
            j.key("stolen").uint_val(w.stolen);
            j.key("busy_s").num_val(w.busy_s);
            j.end_obj();
        }
        j.end_arr();
    }

    /// Renders a fixed-width per-worker table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:>7} {:>10} {:>8} {:>10}\n",
            "worker", "scenarios", "stolen", "busy_s"
        ));
        for (i, w) in self.workers.iter().enumerate() {
            out.push_str(&format!(
                "{:>7} {:>10} {:>8} {:>10.3}\n",
                i, w.scenarios, w.stolen, w.busy_s
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> SweepStats {
        SweepStats {
            workers: vec![
                WorkerStats {
                    scenarios: 10,
                    stolen: 2,
                    busy_s: 1.5,
                },
                WorkerStats {
                    scenarios: 6,
                    stolen: 6,
                    busy_s: 0.9,
                },
            ],
        }
    }

    #[test]
    fn totals_sum_over_workers() {
        let s = stats();
        assert_eq!(s.total_scenarios(), 16);
        assert_eq!(s.total_stolen(), 8);
    }

    #[test]
    fn strip_wallclock_zeroes_busy_only() {
        let mut s = stats();
        s.strip_wallclock();
        assert!(s.workers.iter().all(|w| w.busy_s == 0.0));
        assert_eq!(s.total_scenarios(), 16);
    }

    #[test]
    fn json_shape_is_stable() {
        let mut s = stats();
        s.strip_wallclock();
        let mut j = JsonBuf::new();
        s.append_json(&mut j);
        assert_eq!(
            j.finish(),
            "[{\"worker\":0,\"scenarios\":10,\"stolen\":2,\"busy_s\":0},\
             {\"worker\":1,\"scenarios\":6,\"stolen\":6,\"busy_s\":0}]"
        );
    }
}
