//! Contention attribution: which link throttled which flow, for how long.
//!
//! The max-min solver already computes, for every flow, the *saturated
//! constraint* that froze its rate — the flow's bottleneck. The network
//! backends record, per flow, the time-integrated bandwidth share and the
//! seconds each link spent as that flow's bottleneck ([`FlowAttribution`]),
//! and the runtime aggregates one [`FlowRecord`] per delivered message into
//! a [`ContentionReport`]: per-(flow,link) integrals, per-link "time as
//! bottleneck" rollups, and per-rank "time blocked on link L" rollups.
//!
//! Link indices are backend-local (the flow kernel's link table or the
//! packet simulator's channel table); `link_names` translates them for
//! humans. Flows appear in delivery order, which is deterministic, so two
//! identical runs — or an online run and its replay — serialize to
//! byte-identical JSON.

use crate::json_mod::JsonBuf;

/// Per-flow contention attribution, accumulated by a network backend while
/// the flow is in its transfer phase.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlowAttribution {
    /// The flow's route as backend link indices, deduplicated, in crossing
    /// order.
    pub route: Vec<u32>,
    /// Time-integrated bandwidth share: bytes this flow actually moved
    /// through every link of its route (∫ rate dt). Per link, the sum of
    /// this integral over all flows equals the link's byte integral.
    pub share_bytes: f64,
    /// Seconds each link spent as this flow's bottleneck (the saturated
    /// max-min constraint that froze its rate), sparse over the route.
    pub bottleneck_secs: Vec<(u32, f64)>,
    /// Transfer-phase seconds not bounded by any link: the flow was limited
    /// by its own model bound, or crossed no contended link.
    pub unattributed_secs: f64,
    /// Packet backend only: seconds this flow's frames spent queued behind
    /// other traffic, per channel.
    pub queue_secs: Vec<(u32, f64)>,
}

impl FlowAttribution {
    /// Starts an empty attribution for a flow crossing `route`.
    pub fn new(route: Vec<u32>) -> Self {
        FlowAttribution {
            route,
            ..Self::default()
        }
    }

    fn add_to(sparse: &mut Vec<(u32, f64)>, key: u32, secs: f64) {
        match sparse.iter_mut().find(|(k, _)| *k == key) {
            Some((_, s)) => *s += secs,
            None => sparse.push((key, secs)),
        }
    }

    /// Charges `secs` of bottleneck residency to `link`.
    pub fn add_bottleneck(&mut self, link: u32, secs: f64) {
        Self::add_to(&mut self.bottleneck_secs, link, secs);
    }

    /// Charges `secs` of queueing to `channel` (packet backend).
    pub fn add_queue(&mut self, channel: u32, secs: f64) {
        Self::add_to(&mut self.queue_secs, channel, secs);
    }

    /// Total seconds spent bottlenecked by some link.
    pub fn bottlenecked_secs(&self) -> f64 {
        self.bottleneck_secs.iter().map(|(_, s)| s).sum()
    }

    /// The link that bottlenecked this flow longest, if any (ties go to the
    /// lowest link index so the answer is deterministic).
    pub fn dominant_bottleneck(&self) -> Option<u32> {
        let mut best: Option<(u32, f64)> = None;
        for &(l, s) in &self.bottleneck_secs {
            let better = match best {
                None => true,
                Some((bl, bs)) => s > bs || (s == bs && l < bl),
            };
            if better {
                best = Some((l, s));
            }
        }
        best.map(|(l, _)| l)
    }

    fn sparse_json(j: &mut JsonBuf, sparse: &[(u32, f64)]) {
        j.begin_arr();
        for &(k, v) in sparse {
            j.begin_arr().uint_val(u64::from(k)).num_val(v).end_arr();
        }
        j.end_arr();
    }
}

/// One delivered message with its attribution.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowRecord {
    /// Sending rank.
    pub src: u32,
    /// Receiving rank.
    pub dst: u32,
    /// Application payload bytes.
    pub bytes: u64,
    /// What the network backend measured for this flow.
    pub attr: FlowAttribution,
}

/// Per-link aggregate over every flow of a run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LinkRollup {
    /// Bytes moved through the link, summed over per-flow share integrals.
    pub share_bytes: f64,
    /// Flow-seconds the link spent as *somebody's* bottleneck (two flows
    /// bottlenecked for 1 s each count 2 s).
    pub bottleneck_secs: f64,
    /// Flows that crossed the link.
    pub flows: u64,
}

/// Aggregated contention attribution for one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ContentionReport {
    /// Backend link-index → human name (kernel links or packet channels).
    pub link_names: Vec<String>,
    /// Every delivered message, in delivery order.
    pub flows: Vec<FlowRecord>,
}

impl ContentionReport {
    /// The name of backend link `l` (a stable placeholder when the backend
    /// exported no name table).
    pub fn link_name(&self, l: u32) -> String {
        self.link_names
            .get(l as usize)
            .cloned()
            .unwrap_or_else(|| format!("link{l}"))
    }

    /// Dense per-link rollup (indexed by backend link; at least
    /// `link_names.len()` entries, grown to cover every referenced link).
    pub fn link_rollup(&self) -> Vec<LinkRollup> {
        let mut out: Vec<LinkRollup> = vec![LinkRollup::default(); self.link_names.len()];
        let at = |l: u32, out: &mut Vec<LinkRollup>| -> usize {
            let ix = l as usize;
            if out.len() <= ix {
                out.resize(ix + 1, LinkRollup::default());
            }
            ix
        };
        for f in &self.flows {
            for &l in &f.attr.route {
                let ix = at(l, &mut out);
                out[ix].share_bytes += f.attr.share_bytes;
                out[ix].flows += 1;
            }
            for &(l, s) in &f.attr.bottleneck_secs {
                let ix = at(l, &mut out);
                out[ix].bottleneck_secs += s;
            }
        }
        out
    }

    /// Per-rank "time blocked on link L": for each receiving rank, the
    /// seconds its incoming flows spent bottlenecked by each link, as
    /// `(rank, link, secs)` sorted by `(rank, link)`. Time is charged to
    /// the *receiver* — that is the rank whose completion the bottleneck
    /// delayed.
    pub fn rank_blocked(&self) -> Vec<(u32, u32, f64)> {
        let mut map: std::collections::BTreeMap<(u32, u32), f64> =
            std::collections::BTreeMap::new();
        for f in &self.flows {
            for &(l, s) in &f.attr.bottleneck_secs {
                *map.entry((f.dst, l)).or_insert(0.0) += s;
            }
        }
        map.into_iter().map(|((r, l), s)| (r, l, s)).collect()
    }

    /// Links ranked by total time as a bottleneck, descending (ties go to
    /// the lower index).
    pub fn top_bottlenecks(&self, n: usize) -> Vec<(u32, LinkRollup)> {
        let mut ranked: Vec<(u32, LinkRollup)> = self
            .link_rollup()
            .into_iter()
            .enumerate()
            .filter(|(_, r)| r.bottleneck_secs > 0.0)
            .map(|(l, r)| (l as u32, r))
            .collect();
        ranked.sort_by(|a, b| {
            b.1.bottleneck_secs
                .partial_cmp(&a.1.bottleneck_secs)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        ranked.truncate(n);
        ranked
    }

    /// Human-readable top-N bottleneck-link summary.
    pub fn render_top(&self, n: usize) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "contention: {} flows over {} links\n",
            self.flows.len(),
            self.link_names.len()
        ));
        let top = self.top_bottlenecks(n);
        if top.is_empty() {
            out.push_str("  no link ever bottlenecked a flow\n");
            return out;
        }
        for (rank, (l, r)) in top.iter().enumerate() {
            out.push_str(&format!(
                "  #{:<2} {:<28} bottleneck {:>10.6} flow-s  {:>14.0} B  {:>6} flows\n",
                rank + 1,
                self.link_name(*l),
                r.bottleneck_secs,
                r.share_bytes,
                r.flows
            ));
        }
        out
    }

    /// Deterministic JSON export: names, per-flow records, per-link and
    /// per-rank rollups. Byte-identical across identical runs (and across
    /// an online run and its replay on the same platform).
    pub fn to_json(&self) -> String {
        let mut j = JsonBuf::new();
        j.begin_obj();

        j.key("link_names").begin_arr();
        for name in &self.link_names {
            j.str_val(name);
        }
        j.end_arr();

        j.key("flows").begin_arr();
        for f in &self.flows {
            j.begin_obj();
            j.key("src").uint_val(u64::from(f.src));
            j.key("dst").uint_val(u64::from(f.dst));
            j.key("bytes").uint_val(f.bytes);
            j.key("route").begin_arr();
            for &l in &f.attr.route {
                j.uint_val(u64::from(l));
            }
            j.end_arr();
            j.key("share_bytes").num_val(f.attr.share_bytes);
            j.key("bottleneck_secs");
            FlowAttribution::sparse_json(&mut j, &f.attr.bottleneck_secs);
            j.key("unattributed_secs").num_val(f.attr.unattributed_secs);
            if !f.attr.queue_secs.is_empty() {
                j.key("queue_secs");
                FlowAttribution::sparse_json(&mut j, &f.attr.queue_secs);
            }
            j.end_obj();
        }
        j.end_arr();

        j.key("links").begin_arr();
        for (l, r) in self.link_rollup().into_iter().enumerate() {
            j.begin_obj();
            j.key("link").uint_val(l as u64);
            j.key("name").str_val(&self.link_name(l as u32));
            j.key("share_bytes").num_val(r.share_bytes);
            j.key("bottleneck_secs").num_val(r.bottleneck_secs);
            j.key("flows").uint_val(r.flows);
            j.end_obj();
        }
        j.end_arr();

        j.key("rank_blocked").begin_arr();
        for (rank, l, s) in self.rank_blocked() {
            j.begin_arr()
                .uint_val(u64::from(rank))
                .uint_val(u64::from(l))
                .num_val(s)
                .end_arr();
        }
        j.end_arr();

        j.end_obj();
        j.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(src: u32, dst: u32, bytes: u64, route: Vec<u32>) -> FlowRecord {
        FlowRecord {
            src,
            dst,
            bytes,
            attr: FlowAttribution::new(route),
        }
    }

    fn sample() -> ContentionReport {
        let mut a = flow(0, 1, 1000, vec![0, 2]);
        a.attr.share_bytes = 1000.0;
        a.attr.add_bottleneck(2, 3.0);
        a.attr.add_bottleneck(0, 1.0);
        let mut b = flow(1, 0, 500, vec![2, 1]);
        b.attr.share_bytes = 500.0;
        b.attr.add_bottleneck(2, 2.0);
        b.attr.unattributed_secs = 0.5;
        ContentionReport {
            link_names: vec!["up0".into(), "up1".into(), "spine".into()],
            flows: vec![a, b],
        }
    }

    #[test]
    fn rollups_aggregate_per_link() {
        let r = sample().link_rollup();
        assert_eq!(r.len(), 3);
        assert_eq!(r[2].flows, 2);
        assert!((r[2].share_bytes - 1500.0).abs() < 1e-12);
        assert!((r[2].bottleneck_secs - 5.0).abs() < 1e-12);
        assert!((r[0].bottleneck_secs - 1.0).abs() < 1e-12);
        assert_eq!(r[1].bottleneck_secs, 0.0);
        assert_eq!(r[1].flows, 1);
    }

    #[test]
    fn top_bottlenecks_rank_by_residency() {
        let rep = sample();
        let top = rep.top_bottlenecks(10);
        assert_eq!(top[0].0, 2, "spine must rank first");
        assert_eq!(top[1].0, 0);
        assert_eq!(top.len(), 2, "never-bottleneck links are omitted");
        let text = rep.render_top(1);
        assert!(text.contains("spine"), "got: {text}");
        assert!(!text.contains("up0"));
    }

    #[test]
    fn rank_blocked_charges_the_receiver() {
        let blocked = sample().rank_blocked();
        assert_eq!(
            blocked,
            vec![(0, 2, 2.0), (1, 0, 1.0), (1, 2, 3.0)],
            "sorted by (rank, link), receiver-side"
        );
    }

    #[test]
    fn dominant_bottleneck_breaks_ties_deterministically() {
        let mut a = FlowAttribution::new(vec![0, 1]);
        assert_eq!(a.dominant_bottleneck(), None);
        a.add_bottleneck(1, 2.0);
        a.add_bottleneck(0, 2.0);
        assert_eq!(a.dominant_bottleneck(), Some(0), "tie → lower index");
        a.add_bottleneck(1, 1.0);
        assert_eq!(a.dominant_bottleneck(), Some(1));
        assert!((a.bottlenecked_secs() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn json_is_deterministic_and_well_formed() {
        let rep = sample();
        let json = rep.to_json();
        assert_eq!(json, sample().to_json());
        assert!(json.contains(r#""link_names":["up0","up1","spine"]"#));
        assert!(json.contains(r#""rank_blocked":[[0,2,2],[1,0,1],[1,2,3]]"#));
        assert!(!json.contains("queue_secs"), "empty queue section omitted");
        let opens = json.matches(['{', '[']).count();
        let closes = json.matches(['}', ']']).count();
        assert_eq!(opens, closes);
    }
}
