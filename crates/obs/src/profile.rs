//! Simulator self-profiling: where the simulator itself spends wall-clock
//! time, and how fast it processes simulation events.

use crate::json_mod::JsonBuf;

/// Always-on log2 histogram accumulator for kernel introspection.
///
/// Same bucketing as the recorder's metric histograms — `buckets[i]` counts
/// values whose magnitude rounds up to `2^(i-1)` units, bucket 0 holds
/// zero/negative values — but it lives inline in the instrumented struct
/// (one array increment per observation, no key lookup, no recorder), so
/// the kernel can afford to fill it even with observability off.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KernelHist {
    /// Log2 bucket counts.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl KernelHist {
    /// Records one observation.
    #[inline]
    pub fn observe(&mut self, value: f64) {
        let ix = if value <= 0.0 {
            0
        } else {
            64 - (value.ceil() as u64).leading_zeros() as usize
        };
        if self.buckets.len() <= ix {
            self.buckets.resize(ix + 1, 0);
        }
        self.buckets[ix] += 1;
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
    }

    /// Mean observation, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    fn to_json(&self, j: &mut JsonBuf) {
        j.begin_obj();
        j.key("count").uint_val(self.count);
        j.key("sum").num_val(self.sum);
        j.key("min").num_val(self.min);
        j.key("max").num_val(self.max);
        j.key("mean").num_val(self.mean());
        j.key("log2_buckets").begin_arr();
        for b in &self.buckets {
            j.uint_val(*b);
        }
        j.end_arr();
        j.end_obj();
    }
}

/// Introspection snapshot of the flow kernel's solver machinery.
///
/// Collected unconditionally (plain counters and inline histograms): the
/// scale tiers run without metrics, yet this is exactly where solver
/// pathologies (one giant coupled component) must show up.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KernelProfile {
    /// Max-min reshares performed.
    pub reshares: u64,
    /// Reshares that rebuilt the whole problem (topology edits, ablation).
    pub full_reshares: u64,
    /// Lazy-heap hygiene rebuilds.
    pub heap_rebuilds: u64,
    /// Orphaned heap entries dropped on pop (stale generation or stale
    /// prediction).
    pub heap_orphans: u64,
    /// Flows folded away into uniform-round route-class representatives
    /// (each saved a solver variable).
    pub classes_folded: u64,
    /// Same-instant completions observed past the first of their batch
    /// (each saved a reshare/solve a one-event-per-step kernel would pay).
    pub batched_completions: u64,
    /// Components dispatched in parallel-ready reshare batches (≥ 2
    /// independent components with enough coupled variables to amortize
    /// worker threads). A property of the workload, not of the host.
    pub parallel_components: u64,
    /// Variables per max-min solve (the coupled component size).
    pub component_vars: KernelHist,
    /// Actions re-rated per incremental reshare (the dirty cascade).
    pub cascade: KernelHist,
    /// Wall-clock nanoseconds per max-min solve.
    pub solve_ns: KernelHist,
}

impl KernelProfile {
    /// Human-readable summary lines (indented for the self-profile).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "  kernel: {} reshares ({} full), heap {} rebuilds / {} orphans\n",
            self.reshares, self.full_reshares, self.heap_rebuilds, self.heap_orphans
        ));
        out.push_str(&format!(
            "  kernel fast path: {} classes folded, {} batched completions, {} parallel components\n",
            self.classes_folded, self.batched_completions, self.parallel_components
        ));
        for (name, h) in [
            ("component size (vars/solve)", &self.component_vars),
            ("dirty cascade (actions)", &self.cascade),
            ("solve wall-clock (ns)", &self.solve_ns),
        ] {
            if h.count > 0 {
                out.push_str(&format!(
                    "  kernel {name:<28} mean {:>10.1}  max {:>10.0}  ({} solves)\n",
                    h.mean(),
                    h.max,
                    h.count
                ));
            }
        }
        out
    }

    /// JSON object for machine consumption.
    pub fn to_json(&self) -> String {
        let mut j = JsonBuf::new();
        j.begin_obj();
        j.key("reshares").uint_val(self.reshares);
        j.key("full_reshares").uint_val(self.full_reshares);
        j.key("heap_rebuilds").uint_val(self.heap_rebuilds);
        j.key("heap_orphans").uint_val(self.heap_orphans);
        j.key("classes_folded").uint_val(self.classes_folded);
        j.key("batched_completions")
            .uint_val(self.batched_completions);
        j.key("parallel_components")
            .uint_val(self.parallel_components);
        j.key("component_vars");
        self.component_vars.to_json(&mut j);
        j.key("cascade");
        self.cascade.to_json(&mut j);
        j.key("solve_ns");
        self.solve_ns.to_json(&mut j);
        j.end_obj();
        j.finish()
    }
}

/// Counters of the TITRACE v2 streaming trace codec, filled by the
/// capture writer when a run streams its time-independent trace to disk
/// (`World::capture_to`). Every field is a pure function of the simcall
/// stream and the writer configuration — nothing here measures the host —
/// so identical runs report identical codec stats.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CodecStats {
    /// Ops encoded across all ranks.
    pub ops: u64,
    /// Sealed blocks written.
    pub blocks: u64,
    /// Blocks that took the LZ path (compressed smaller than raw).
    pub blocks_compressed: u64,
    /// Shared-dictionary entries (region/collective names).
    pub dict_entries: u64,
    /// Uncompressed block-payload bytes (post delta/varint, pre LZ).
    pub bytes_raw: u64,
    /// Total bytes written to the sink (header + blocks + footer).
    pub bytes_written: u64,
    /// High-water mark of the writer's staging buffers, bytes (the bounded
    /// capture memory; stays near `writer_budget_bytes` regardless of how
    /// many ops the run emits).
    pub writer_peak_staged_bytes: u64,
    /// Configured staging budget, bytes.
    pub writer_budget_bytes: u64,
}

impl CodecStats {
    /// Human-readable summary lines (indented for the self-profile).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "  trace codec: {} ops -> {} blocks ({} compressed), {} dict entries\n",
            self.ops, self.blocks, self.blocks_compressed, self.dict_entries
        ));
        let ratio = if self.bytes_written > 0 {
            self.bytes_raw as f64 / self.bytes_written as f64
        } else {
            0.0
        };
        out.push_str(&format!(
            "  trace codec: {} raw payload B -> {} file B ({ratio:.2}x block stage), staged peak {} B (budget {} B)\n",
            self.bytes_raw, self.bytes_written, self.writer_peak_staged_bytes, self.writer_budget_bytes
        ));
        out
    }

    /// JSON object for machine consumption.
    pub fn to_json(&self) -> String {
        let mut j = JsonBuf::new();
        j.begin_obj();
        j.key("ops").uint_val(self.ops);
        j.key("blocks").uint_val(self.blocks);
        j.key("blocks_compressed").uint_val(self.blocks_compressed);
        j.key("dict_entries").uint_val(self.dict_entries);
        j.key("bytes_raw").uint_val(self.bytes_raw);
        j.key("bytes_written").uint_val(self.bytes_written);
        j.key("writer_peak_staged_bytes")
            .uint_val(self.writer_peak_staged_bytes);
        j.key("writer_budget_bytes")
            .uint_val(self.writer_budget_bytes);
        j.end_obj();
        j.finish()
    }
}

/// Wall-clock and throughput profile of one simulation run.
///
/// Counters are always collected (they are plain integer increments);
/// phase timings are taken by the maestro drive loop.
#[derive(Debug, Clone, Default)]
pub struct SelfProfile {
    /// Wall-clock seconds per drive-loop phase, in display order
    /// (e.g. `actor_handoff`, `fabric_advance`, `completion_dispatch`).
    pub phases: Vec<(&'static str, f64)>,
    /// Simcalls the maestro handled (each is one actor→maestro baton pass).
    pub simcalls: u64,
    /// Simcalls answered on the actor thread from shared state (the local
    /// tier: wtime reads, sampling decisions, shared-malloc lookups) — no
    /// baton pass, no context switch.
    pub local_simcalls: u64,
    /// Fabric completion tokens dispatched back to blocked requests.
    pub tokens: u64,
    /// Trace events appended (0 when tracing is off).
    pub trace_events: u64,
    /// Final simulated time, seconds.
    pub sim_time: f64,
    /// Total wall-clock seconds for the run.
    pub wall_seconds: f64,
    /// Flow-kernel introspection, when the fabric exposes one (always
    /// collected by the surf backend; `None` for the packet backend).
    pub kernel: Option<KernelProfile>,
    /// TITRACE v2 streaming-capture codec counters, when the run streamed
    /// its trace to disk (`None` for in-memory capture or no capture).
    pub codec: Option<CodecStats>,
}

impl SelfProfile {
    /// Total events processed: simcalls plus completion tokens.
    pub fn events(&self) -> u64 {
        self.simcalls + self.tokens
    }

    /// Events processed per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.events() as f64 / self.wall_seconds
        } else {
            0.0
        }
    }

    /// Simulated seconds per wall-clock second (the paper's slowdown
    /// metric, inverted: > 1 means faster than real time).
    pub fn acceleration(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.sim_time / self.wall_seconds
        } else {
            0.0
        }
    }

    /// Zeroes every field that measures the *host* machine rather than the
    /// simulation: total wall-clock, the per-phase wall-clock breakdown,
    /// and the kernel's solve-time histogram. After stripping, two
    /// identical runs serialize byte-identically; everything left is a
    /// pure function of the simcall stream and the platform.
    pub fn strip_wallclock(&mut self) {
        self.wall_seconds = 0.0;
        for (_, secs) in &mut self.phases {
            *secs = 0.0;
        }
        if let Some(k) = &mut self.kernel {
            k.solve_ns = KernelHist::default();
        }
    }

    /// Human-readable multi-line summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("self-profile:\n");
        out.push_str(&format!(
            "  simulated {:.6} s in {:.3} ms wall ({:.1}x real time)\n",
            self.sim_time,
            self.wall_seconds * 1e3,
            self.acceleration()
        ));
        out.push_str(&format!(
            "  events: {} simcalls + {} completions = {} ({:.0} events/s)\n",
            self.simcalls,
            self.tokens,
            self.events(),
            self.events_per_sec()
        ));
        if self.local_simcalls > 0 {
            out.push_str(&format!(
                "  local simcalls (no baton pass): {}\n",
                self.local_simcalls
            ));
        }
        if self.trace_events > 0 {
            out.push_str(&format!("  trace events: {}\n", self.trace_events));
        }
        let accounted: f64 = self.phases.iter().map(|(_, s)| s).sum();
        for (name, secs) in &self.phases {
            let pct = if self.wall_seconds > 0.0 {
                100.0 * secs / self.wall_seconds
            } else {
                0.0
            };
            out.push_str(&format!(
                "  phase {name:<20} {:>9.3} ms ({pct:>4.1}%)\n",
                secs * 1e3
            ));
        }
        if self.wall_seconds > accounted && !self.phases.is_empty() {
            let other = self.wall_seconds - accounted;
            out.push_str(&format!(
                "  phase {:<20} {:>9.3} ms ({:>4.1}%)\n",
                "(other)",
                other * 1e3,
                100.0 * other / self.wall_seconds
            ));
        }
        if let Some(k) = &self.kernel {
            out.push_str(&k.render());
        }
        if let Some(c) = &self.codec {
            out.push_str(&c.render());
        }
        out
    }

    /// JSON object for machine consumption.
    pub fn to_json(&self) -> String {
        let mut j = JsonBuf::new();
        j.begin_obj();
        j.key("sim_time").num_val(self.sim_time);
        j.key("wall_seconds").num_val(self.wall_seconds);
        j.key("simcalls").uint_val(self.simcalls);
        j.key("local_simcalls").uint_val(self.local_simcalls);
        j.key("tokens").uint_val(self.tokens);
        j.key("trace_events").uint_val(self.trace_events);
        j.key("events").uint_val(self.events());
        j.key("events_per_sec").num_val(self.events_per_sec());
        j.key("acceleration").num_val(self.acceleration());
        j.key("phases").begin_obj();
        for (name, secs) in &self.phases {
            j.key(name).num_val(*secs);
        }
        j.end_obj();
        if let Some(k) = &self.kernel {
            j.key("kernel").raw_val(&k.to_json());
        }
        if let Some(c) = &self.codec {
            j.key("codec").raw_val(&c.to_json());
        }
        j.end_obj();
        j.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SelfProfile {
        SelfProfile {
            phases: vec![("actor_handoff", 0.002), ("fabric_advance", 0.001)],
            simcalls: 800,
            local_simcalls: 25,
            tokens: 200,
            trace_events: 50,
            sim_time: 1.5,
            wall_seconds: 0.004,
            kernel: None,
            codec: None,
        }
    }

    fn sample_kernel() -> KernelProfile {
        let mut k = KernelProfile {
            reshares: 10,
            full_reshares: 2,
            heap_rebuilds: 1,
            heap_orphans: 7,
            classes_folded: 30,
            batched_completions: 5,
            parallel_components: 4,
            ..KernelProfile::default()
        };
        for v in [1.0, 3.0, 8.0] {
            k.component_vars.observe(v);
        }
        k.cascade.observe(4.0);
        k.solve_ns.observe(1500.0);
        k
    }

    #[test]
    fn derived_rates() {
        let p = sample();
        assert_eq!(p.events(), 1000);
        assert!((p.events_per_sec() - 250_000.0).abs() < 1e-6);
        assert!((p.acceleration() - 375.0).abs() < 1e-9);
    }

    #[test]
    fn zero_wall_clock_is_safe() {
        let p = SelfProfile::default();
        assert_eq!(p.events_per_sec(), 0.0);
        assert_eq!(p.acceleration(), 0.0);
        assert!(p.render().contains("events/s"));
    }

    #[test]
    fn render_mentions_phases_and_rates() {
        let text = sample().render();
        assert!(text.contains("actor_handoff"));
        assert!(text.contains("fabric_advance"));
        assert!(text.contains("(other)"));
        assert!(text.contains("250000 events/s"));
    }

    #[test]
    fn kernel_hist_buckets_match_recorder_semantics() {
        let mut h = KernelHist::default();
        h.observe(0.0);
        h.observe(1.0);
        h.observe(3.0);
        h.observe(1500.0);
        // Bucket i counts values whose ceiling has bit-length i (bucket 0
        // holds ≤0): 1 → bucket 1, 3 → bucket 2, 1500 → bucket 11.
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[2], 1);
        assert_eq!(h.buckets[11], 1);
        assert_eq!(h.count, 4);
        assert_eq!(h.min, 0.0);
        assert_eq!(h.max, 1500.0);
        assert!((h.mean() - 376.0).abs() < 1e-12);
    }

    #[test]
    fn kernel_profile_renders_and_serializes() {
        let k = sample_kernel();
        let text = k.render();
        assert!(text.contains("10 reshares (2 full)"), "got: {text}");
        assert!(text.contains("component size"), "got: {text}");
        assert!(text.contains("solve wall-clock"), "got: {text}");
        assert!(
            text.contains("30 classes folded, 5 batched completions, 4 parallel components"),
            "got: {text}"
        );
        let json = k.to_json();
        for key in [
            "reshares",
            "full_reshares",
            "heap_rebuilds",
            "heap_orphans",
            "classes_folded",
            "batched_completions",
            "parallel_components",
            "component_vars",
            "cascade",
            "solve_ns",
            "log2_buckets",
        ] {
            assert!(json.contains(&format!("\"{key}\":")), "{key} missing");
        }
        // With a kernel section attached, the self-profile carries it too.
        let p = SelfProfile {
            kernel: Some(k),
            ..sample()
        };
        assert!(p.render().contains("kernel:"));
        assert!(p.to_json().contains("\"kernel\":{"));
    }

    #[test]
    fn strip_wallclock_zeroes_host_fields_only() {
        let mut p = SelfProfile {
            kernel: Some(sample_kernel()),
            ..sample()
        };
        p.strip_wallclock();
        assert_eq!(p.wall_seconds, 0.0);
        assert!(p.phases.iter().all(|(_, s)| *s == 0.0));
        assert_eq!(p.kernel.as_ref().unwrap().solve_ns, KernelHist::default());
        // Simulation-derived fields survive.
        assert_eq!(p.simcalls, 800);
        assert_eq!(p.sim_time, 1.5);
        assert_eq!(p.kernel.as_ref().unwrap().reshares, 10);
    }

    #[test]
    fn json_has_all_fields() {
        let json = sample().to_json();
        for k in [
            "sim_time",
            "wall_seconds",
            "simcalls",
            "tokens",
            "events_per_sec",
            "acceleration",
            "phases",
        ] {
            assert!(json.contains(&format!("\"{k}\":")), "{k} missing");
        }
    }
}
