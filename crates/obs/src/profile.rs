//! Simulator self-profiling: where the simulator itself spends wall-clock
//! time, and how fast it processes simulation events.

use crate::json_mod::JsonBuf;

/// Wall-clock and throughput profile of one simulation run.
///
/// Counters are always collected (they are plain integer increments);
/// phase timings are taken by the maestro drive loop.
#[derive(Debug, Clone, Default)]
pub struct SelfProfile {
    /// Wall-clock seconds per drive-loop phase, in display order
    /// (e.g. `actor_handoff`, `fabric_advance`, `completion_dispatch`).
    pub phases: Vec<(&'static str, f64)>,
    /// Simcalls the maestro handled (each is one actor→maestro baton pass).
    pub simcalls: u64,
    /// Simcalls answered on the actor thread from shared state (the local
    /// tier: wtime reads, sampling decisions, shared-malloc lookups) — no
    /// baton pass, no context switch.
    pub local_simcalls: u64,
    /// Fabric completion tokens dispatched back to blocked requests.
    pub tokens: u64,
    /// Trace events appended (0 when tracing is off).
    pub trace_events: u64,
    /// Final simulated time, seconds.
    pub sim_time: f64,
    /// Total wall-clock seconds for the run.
    pub wall_seconds: f64,
}

impl SelfProfile {
    /// Total events processed: simcalls plus completion tokens.
    pub fn events(&self) -> u64 {
        self.simcalls + self.tokens
    }

    /// Events processed per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.events() as f64 / self.wall_seconds
        } else {
            0.0
        }
    }

    /// Simulated seconds per wall-clock second (the paper's slowdown
    /// metric, inverted: > 1 means faster than real time).
    pub fn acceleration(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.sim_time / self.wall_seconds
        } else {
            0.0
        }
    }

    /// Human-readable multi-line summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("self-profile:\n");
        out.push_str(&format!(
            "  simulated {:.6} s in {:.3} ms wall ({:.1}x real time)\n",
            self.sim_time,
            self.wall_seconds * 1e3,
            self.acceleration()
        ));
        out.push_str(&format!(
            "  events: {} simcalls + {} completions = {} ({:.0} events/s)\n",
            self.simcalls,
            self.tokens,
            self.events(),
            self.events_per_sec()
        ));
        if self.local_simcalls > 0 {
            out.push_str(&format!(
                "  local simcalls (no baton pass): {}\n",
                self.local_simcalls
            ));
        }
        if self.trace_events > 0 {
            out.push_str(&format!("  trace events: {}\n", self.trace_events));
        }
        let accounted: f64 = self.phases.iter().map(|(_, s)| s).sum();
        for (name, secs) in &self.phases {
            let pct = if self.wall_seconds > 0.0 {
                100.0 * secs / self.wall_seconds
            } else {
                0.0
            };
            out.push_str(&format!(
                "  phase {name:<20} {:>9.3} ms ({pct:>4.1}%)\n",
                secs * 1e3
            ));
        }
        if self.wall_seconds > accounted && !self.phases.is_empty() {
            let other = self.wall_seconds - accounted;
            out.push_str(&format!(
                "  phase {:<20} {:>9.3} ms ({:>4.1}%)\n",
                "(other)",
                other * 1e3,
                100.0 * other / self.wall_seconds
            ));
        }
        out
    }

    /// JSON object for machine consumption.
    pub fn to_json(&self) -> String {
        let mut j = JsonBuf::new();
        j.begin_obj();
        j.key("sim_time").num_val(self.sim_time);
        j.key("wall_seconds").num_val(self.wall_seconds);
        j.key("simcalls").uint_val(self.simcalls);
        j.key("local_simcalls").uint_val(self.local_simcalls);
        j.key("tokens").uint_val(self.tokens);
        j.key("trace_events").uint_val(self.trace_events);
        j.key("events").uint_val(self.events());
        j.key("events_per_sec").num_val(self.events_per_sec());
        j.key("acceleration").num_val(self.acceleration());
        j.key("phases").begin_obj();
        for (name, secs) in &self.phases {
            j.key(name).num_val(*secs);
        }
        j.end_obj();
        j.end_obj();
        j.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SelfProfile {
        SelfProfile {
            phases: vec![("actor_handoff", 0.002), ("fabric_advance", 0.001)],
            simcalls: 800,
            local_simcalls: 25,
            tokens: 200,
            trace_events: 50,
            sim_time: 1.5,
            wall_seconds: 0.004,
        }
    }

    #[test]
    fn derived_rates() {
        let p = sample();
        assert_eq!(p.events(), 1000);
        assert!((p.events_per_sec() - 250_000.0).abs() < 1e-6);
        assert!((p.acceleration() - 375.0).abs() < 1e-9);
    }

    #[test]
    fn zero_wall_clock_is_safe() {
        let p = SelfProfile::default();
        assert_eq!(p.events_per_sec(), 0.0);
        assert_eq!(p.acceleration(), 0.0);
        assert!(p.render().contains("events/s"));
    }

    #[test]
    fn render_mentions_phases_and_rates() {
        let text = sample().render();
        assert!(text.contains("actor_handoff"));
        assert!(text.contains("fabric_advance"));
        assert!(text.contains("(other)"));
        assert!(text.contains("250000 events/s"));
    }

    #[test]
    fn json_has_all_fields() {
        let json = sample().to_json();
        for k in [
            "sim_time",
            "wall_seconds",
            "simcalls",
            "tokens",
            "events_per_sec",
            "acceleration",
            "phases",
        ] {
            assert!(json.contains(&format!("\"{k}\":")), "{k} missing");
        }
    }
}
