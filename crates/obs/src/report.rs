//! Immutable metrics snapshots and their JSON export.

use crate::json_mod::JsonBuf;
use crate::recorder::{StateEvent, StateOp};

/// Snapshot of one log2-bucketed histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// `buckets[i]` counts values in `(2^(i-2), 2^(i-1)]` (bucket 0 holds
    /// zero/negative observations).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl HistogramSnapshot {
    /// Mean observation, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// State timeline of one container (e.g. one MPI rank).
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineSnapshot {
    /// Container kind, e.g. `"rank"` or `"link"`.
    pub kind: &'static str,
    /// Container instance within the kind.
    pub id: u32,
    /// Ordered state transitions.
    pub events: Vec<StateEvent>,
}

impl TimelineSnapshot {
    /// Total time spent in `state` up to `end_time`, resolving the
    /// push/pop stack (time in a nested state is charged to that state
    /// only).
    pub fn time_in_state(&self, state: &str, end_time: f64) -> f64 {
        let mut stack: Vec<&'static str> = Vec::new();
        let mut last_time = 0.0;
        let mut total = 0.0;
        for ev in &self.events {
            if stack.last().is_some_and(|&s| s == state) {
                total += ev.time - last_time;
            }
            last_time = ev.time;
            match ev.op {
                StateOp::Push(s) => stack.push(s),
                StateOp::Pop => {
                    stack.pop();
                }
                StateOp::Set(s) => {
                    stack.pop();
                    stack.push(s);
                }
            }
        }
        if stack.last().is_some_and(|&s| s == state) {
            total += end_time - last_time;
        }
        total
    }
}

/// Sorted, immutable snapshot of a [`crate::MemoryRecorder`].
#[derive(Debug, Clone, Default)]
pub struct MetricsReport {
    /// Integer counters, sorted by key.
    pub counters: Vec<(String, u64)>,
    /// Floating-point counters, sorted by key.
    pub fcounters: Vec<(String, f64)>,
    /// Gauge timelines (`(time, value)` samples), sorted by key.
    pub gauges: Vec<(String, Vec<(f64, f64)>)>,
    /// High-water marks, sorted by key.
    pub hwms: Vec<(String, f64)>,
    /// Histograms, sorted by key.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Per-container state timelines, sorted by `(kind, id)`.
    pub timelines: Vec<TimelineSnapshot>,
}

impl MetricsReport {
    /// Value of an integer counter (0 when absent).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == key)
            .map_or(0, |(_, v)| *v)
    }

    /// Value of a floating-point counter (0 when absent).
    pub fn fcounter(&self, key: &str) -> f64 {
        self.fcounters
            .iter()
            .find(|(k, _)| k == key)
            .map_or(0.0, |(_, v)| *v)
    }

    /// High-water mark for `key` (0 when absent).
    pub fn hwm(&self, key: &str) -> f64 {
        self.hwms
            .iter()
            .find(|(k, _)| k == key)
            .map_or(0.0, |(_, v)| *v)
    }

    /// Gauge timeline for `key`, if sampled.
    pub fn gauge(&self, key: &str) -> Option<&[(f64, f64)]> {
        self.gauges
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_slice())
    }

    /// Histogram for `key`, if observed.
    pub fn histogram(&self, key: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, h)| h)
    }

    /// State timeline of container `(kind, id)`, if present.
    pub fn timeline(&self, kind: &str, id: u32) -> Option<&TimelineSnapshot> {
        self.timelines.iter().find(|t| t.kind == kind && t.id == id)
    }

    /// All timelines of one kind.
    pub fn timelines_of<'a>(
        &'a self,
        kind: &'a str,
    ) -> impl Iterator<Item = &'a TimelineSnapshot> + 'a {
        self.timelines.iter().filter(move |t| t.kind == kind)
    }

    /// Serializes the full report as a JSON object.
    pub fn to_json(&self) -> String {
        let mut j = JsonBuf::new();
        j.begin_obj();

        j.key("counters").begin_obj();
        for (k, v) in &self.counters {
            j.key(k).uint_val(*v);
        }
        j.end_obj();

        j.key("fcounters").begin_obj();
        for (k, v) in &self.fcounters {
            j.key(k).num_val(*v);
        }
        j.end_obj();

        j.key("hwms").begin_obj();
        for (k, v) in &self.hwms {
            j.key(k).num_val(*v);
        }
        j.end_obj();

        j.key("gauges").begin_obj();
        for (k, series) in &self.gauges {
            j.key(k).begin_arr();
            for (t, v) in series {
                j.begin_arr().num_val(*t).num_val(*v).end_arr();
            }
            j.end_arr();
        }
        j.end_obj();

        j.key("histograms").begin_obj();
        for (k, h) in &self.histograms {
            j.key(k).begin_obj();
            j.key("count").uint_val(h.count);
            j.key("sum").num_val(h.sum);
            j.key("min").num_val(h.min);
            j.key("max").num_val(h.max);
            j.key("mean").num_val(h.mean());
            j.key("log2_buckets").begin_arr();
            for b in &h.buckets {
                j.uint_val(*b);
            }
            j.end_arr();
            j.end_obj();
        }
        j.end_obj();

        j.key("timelines").begin_arr();
        for tl in &self.timelines {
            j.begin_obj();
            j.key("kind").str_val(tl.kind);
            j.key("id").uint_val(tl.id as u64);
            j.key("events").begin_arr();
            for ev in &tl.events {
                j.begin_obj();
                j.key("t").num_val(ev.time);
                match ev.op {
                    StateOp::Push(s) => {
                        j.key("op").str_val("push");
                        j.key("state").str_val(s);
                    }
                    StateOp::Pop => {
                        j.key("op").str_val("pop");
                    }
                    StateOp::Set(s) => {
                        j.key("op").str_val("set");
                        j.key("state").str_val(s);
                    }
                }
                j.end_obj();
            }
            j.end_arr();
            j.end_obj();
        }
        j.end_arr();

        j.end_obj();
        j.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Rec;

    fn sample_report() -> MetricsReport {
        let rec = Rec::enabled();
        rec.counter_add("core.sends.eager", 4);
        rec.fcounter_add("surf.link.0.bytes", 1024.0);
        rec.gauge_set("surf.link.0.util", 0.5, 0.75);
        rec.hwm("packetnet.port.2.queue_depth", 6.0);
        rec.observe("packetnet.hop_latency_ns", 1500.0);
        rec.state_set("rank", 0, 0.0, "computing");
        rec.state_push("rank", 0, 1.0, "blocked_in_recv");
        rec.state_pop("rank", 0, 3.0);
        rec.snapshot().unwrap()
    }

    #[test]
    fn lookups_find_recorded_values() {
        let r = sample_report();
        assert_eq!(r.counter("core.sends.eager"), 4);
        assert_eq!(r.fcounter("surf.link.0.bytes"), 1024.0);
        assert_eq!(r.hwm("packetnet.port.2.queue_depth"), 6.0);
        assert_eq!(r.gauge("surf.link.0.util").unwrap(), &[(0.5, 0.75)]);
        assert_eq!(r.histogram("packetnet.hop_latency_ns").unwrap().count, 1);
        assert_eq!(r.timeline("rank", 0).unwrap().events.len(), 3);
        assert!(r.timeline("rank", 9).is_none());
    }

    #[test]
    fn time_in_state_resolves_nesting() {
        let r = sample_report();
        let tl = r.timeline("rank", 0).unwrap();
        // computing from 0..1 and 3..5; blocked_in_recv from 1..3.
        assert!((tl.time_in_state("computing", 5.0) - 3.0).abs() < 1e-12);
        assert!((tl.time_in_state("blocked_in_recv", 5.0) - 2.0).abs() < 1e-12);
        assert_eq!(tl.time_in_state("in_collective", 5.0), 0.0);
    }

    #[test]
    fn json_export_is_well_formed() {
        let r = sample_report();
        let json = r.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains(r#""core.sends.eager":4"#));
        assert!(json.contains(r#""kind":"rank""#));
        assert!(json.contains(r#""op":"push""#));
        // Balanced braces/brackets (no strings with braces in this sample).
        let opens = json.matches(['{', '[']).count();
        let closes = json.matches(['}', ']']).count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn default_report_serializes_empty() {
        let r = MetricsReport::default();
        assert_eq!(
            r.to_json(),
            r#"{"counters":{},"fcounters":{},"hwms":{},"gauges":{},"histograms":{},"timelines":[]}"#
        );
        assert_eq!(r.counter("x"), 0);
    }
}
