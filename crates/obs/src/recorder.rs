//! The recorder API every layer emits into.

use crate::report::{HistogramSnapshot, MetricsReport, TimelineSnapshot};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Sink for metrics and timeline events.
///
/// Implemented by [`MemoryRecorder`] (accumulating) and [`NullRecorder`]
/// (all no-ops). Instrumented code normally goes through [`Rec`], which
/// skips the virtual dispatch entirely when observability is disabled.
pub trait Recorder {
    /// Adds `delta` to the integer counter `key`.
    fn counter_add(&mut self, key: &str, delta: u64);

    /// Adds `delta` to the floating-point counter `key` (e.g. byte
    /// integrals accumulated as `rate * dt`).
    fn fcounter_add(&mut self, key: &str, delta: f64);

    /// Appends a `(time, value)` sample to the gauge timeline `key`.
    fn gauge_set(&mut self, key: &str, time: f64, value: f64);

    /// Raises the high-water mark `key` to at least `value`.
    fn hwm(&mut self, key: &str, value: f64);

    /// Records `value` into the log2-bucketed histogram `key`.
    fn observe(&mut self, key: &str, value: f64);

    /// Pushes a state onto the container `(kind, id)`'s state stack.
    fn state_push(&mut self, kind: &'static str, id: u32, time: f64, state: &'static str);

    /// Pops the top state of the container `(kind, id)`.
    fn state_pop(&mut self, kind: &'static str, id: u32, time: f64);

    /// Replaces the current state of the container `(kind, id)`.
    fn state_set(&mut self, kind: &'static str, id: u32, time: f64, state: &'static str);
}

/// Recorder that drops everything; useful for generic code paths.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn counter_add(&mut self, _key: &str, _delta: u64) {}
    fn fcounter_add(&mut self, _key: &str, _delta: f64) {}
    fn gauge_set(&mut self, _key: &str, _time: f64, _value: f64) {}
    fn hwm(&mut self, _key: &str, _value: f64) {}
    fn observe(&mut self, _key: &str, _value: f64) {}
    fn state_push(&mut self, _kind: &'static str, _id: u32, _time: f64, _state: &'static str) {}
    fn state_pop(&mut self, _kind: &'static str, _id: u32, _time: f64) {}
    fn state_set(&mut self, _kind: &'static str, _id: u32, _time: f64, _state: &'static str) {}
}

/// One event on a container's state timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StateEvent {
    /// Simulated time of the transition.
    pub time: f64,
    /// What happened.
    pub op: StateOp,
}

/// State-timeline operation (mirrors Paje Push/Pop/SetState).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StateOp {
    /// Enter a nested state.
    Push(&'static str),
    /// Leave the current nested state.
    Pop,
    /// Replace the current state.
    Set(&'static str),
}

/// Log2-bucketed histogram accumulator.
#[derive(Debug, Clone, Default)]
struct Histogram {
    /// `buckets[i]` counts values whose magnitude rounds up to `2^(i-1)`
    /// units; bucket 0 holds zero/negative values. Unit is the caller's
    /// (the instrumentation uses nanoseconds for latencies).
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    fn observe(&mut self, value: f64) {
        let ix = if value <= 0.0 {
            0
        } else {
            64 - (value.ceil() as u64).leading_zeros() as usize
        };
        if self.buckets.len() <= ix {
            self.buckets.resize(ix + 1, 0);
        }
        self.buckets[ix] += 1;
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
    }
}

/// Accumulating recorder; snapshot with [`MemoryRecorder::snapshot`].
#[derive(Debug, Default)]
pub struct MemoryRecorder {
    counters: BTreeMap<String, u64>,
    fcounters: BTreeMap<String, f64>,
    gauges: BTreeMap<String, Vec<(f64, f64)>>,
    hwms: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    timelines: BTreeMap<(&'static str, u32), Vec<StateEvent>>,
}

impl MemoryRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Produces an immutable, sorted snapshot of everything recorded.
    pub fn snapshot(&self) -> MetricsReport {
        MetricsReport {
            counters: self.counters.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            fcounters: self
                .fcounters
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
            hwms: self.hwms.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, h)| {
                    (
                        k.clone(),
                        HistogramSnapshot {
                            buckets: h.buckets.clone(),
                            count: h.count,
                            sum: h.sum,
                            min: h.min,
                            max: h.max,
                        },
                    )
                })
                .collect(),
            timelines: self
                .timelines
                .iter()
                .map(|(&(kind, id), events)| TimelineSnapshot {
                    kind,
                    id,
                    events: events.clone(),
                })
                .collect(),
        }
    }
}

impl Recorder for MemoryRecorder {
    fn counter_add(&mut self, key: &str, delta: u64) {
        if let Some(v) = self.counters.get_mut(key) {
            *v += delta;
        } else {
            self.counters.insert(key.to_string(), delta);
        }
    }

    fn fcounter_add(&mut self, key: &str, delta: f64) {
        if let Some(v) = self.fcounters.get_mut(key) {
            *v += delta;
        } else {
            self.fcounters.insert(key.to_string(), delta);
        }
    }

    fn gauge_set(&mut self, key: &str, time: f64, value: f64) {
        if let Some(series) = self.gauges.get_mut(key) {
            series.push((time, value));
        } else {
            self.gauges.insert(key.to_string(), vec![(time, value)]);
        }
    }

    fn hwm(&mut self, key: &str, value: f64) {
        if let Some(v) = self.hwms.get_mut(key) {
            if value > *v {
                *v = value;
            }
        } else {
            self.hwms.insert(key.to_string(), value);
        }
    }

    fn observe(&mut self, key: &str, value: f64) {
        if let Some(h) = self.histograms.get_mut(key) {
            h.observe(value);
        } else {
            let mut h = Histogram::default();
            h.observe(value);
            self.histograms.insert(key.to_string(), h);
        }
    }

    fn state_push(&mut self, kind: &'static str, id: u32, time: f64, state: &'static str) {
        self.timelines
            .entry((kind, id))
            .or_default()
            .push(StateEvent {
                time,
                op: StateOp::Push(state),
            });
    }

    fn state_pop(&mut self, kind: &'static str, id: u32, time: f64) {
        self.timelines
            .entry((kind, id))
            .or_default()
            .push(StateEvent {
                time,
                op: StateOp::Pop,
            });
    }

    fn state_set(&mut self, kind: &'static str, id: u32, time: f64, state: &'static str) {
        self.timelines
            .entry((kind, id))
            .or_default()
            .push(StateEvent {
                time,
                op: StateOp::Set(state),
            });
    }
}

/// Cheap cloneable recorder handle threaded through every layer.
///
/// Disabled (`Rec::disabled()`, the default): contains `None`, so every
/// emit method is one branch and returns — no locking, no formatting, no
/// allocation. Key formatting happens inside closures passed to
/// [`Rec::with`], so disabled runs never even build the key strings.
#[derive(Debug, Clone, Default)]
pub struct Rec(Option<Arc<Mutex<MemoryRecorder>>>);

impl Rec {
    /// A handle that records nothing.
    pub fn disabled() -> Self {
        Rec(None)
    }

    /// A handle backed by a fresh shared [`MemoryRecorder`].
    pub fn enabled() -> Self {
        Rec(Some(Arc::new(Mutex::new(MemoryRecorder::new()))))
    }

    /// Whether emits are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Runs `f` against the recorder if enabled. This is the one emission
    /// primitive; use it to batch several emits under a single lock and to
    /// keep key formatting off the disabled path.
    #[inline]
    pub fn with<F: FnOnce(&mut MemoryRecorder)>(&self, f: F) {
        if let Some(rec) = &self.0 {
            f(&mut rec.lock().unwrap_or_else(|p| p.into_inner()));
        }
    }

    /// Adds to an integer counter.
    #[inline]
    pub fn counter_add(&self, key: &str, delta: u64) {
        self.with(|r| r.counter_add(key, delta));
    }

    /// Adds to a floating-point counter.
    #[inline]
    pub fn fcounter_add(&self, key: &str, delta: f64) {
        self.with(|r| r.fcounter_add(key, delta));
    }

    /// Appends a gauge sample.
    #[inline]
    pub fn gauge_set(&self, key: &str, time: f64, value: f64) {
        self.with(|r| r.gauge_set(key, time, value));
    }

    /// Raises a high-water mark.
    #[inline]
    pub fn hwm(&self, key: &str, value: f64) {
        self.with(|r| r.hwm(key, value));
    }

    /// Records a histogram observation.
    #[inline]
    pub fn observe(&self, key: &str, value: f64) {
        self.with(|r| r.observe(key, value));
    }

    /// Pushes a container state.
    #[inline]
    pub fn state_push(&self, kind: &'static str, id: u32, time: f64, state: &'static str) {
        self.with(|r| r.state_push(kind, id, time, state));
    }

    /// Pops a container state.
    #[inline]
    pub fn state_pop(&self, kind: &'static str, id: u32, time: f64) {
        self.with(|r| r.state_pop(kind, id, time));
    }

    /// Replaces a container state.
    #[inline]
    pub fn state_set(&self, kind: &'static str, id: u32, time: f64, state: &'static str) {
        self.with(|r| r.state_set(kind, id, time, state));
    }

    /// Snapshots the accumulated metrics, or `None` when disabled.
    pub fn snapshot(&self) -> Option<MetricsReport> {
        self.0
            .as_ref()
            .map(|rec| rec.lock().unwrap_or_else(|p| p.into_inner()).snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_rec_records_nothing() {
        let rec = Rec::disabled();
        rec.counter_add("x", 1);
        rec.state_push("rank", 0, 0.0, "computing");
        assert!(!rec.is_enabled());
        assert!(rec.snapshot().is_none());
    }

    #[test]
    fn counters_and_fcounters_accumulate() {
        let rec = Rec::enabled();
        rec.counter_add("sends", 2);
        rec.counter_add("sends", 3);
        rec.fcounter_add("bytes", 1.5);
        rec.fcounter_add("bytes", 2.5);
        let snap = rec.snapshot().unwrap();
        assert_eq!(snap.counter("sends"), 5);
        assert_eq!(snap.fcounter("bytes"), 4.0);
        assert_eq!(snap.counter("missing"), 0);
    }

    #[test]
    fn hwm_keeps_maximum() {
        let rec = Rec::enabled();
        rec.hwm("depth", 3.0);
        rec.hwm("depth", 7.0);
        rec.hwm("depth", 5.0);
        let snap = rec.snapshot().unwrap();
        assert_eq!(snap.hwms, vec![("depth".to_string(), 7.0)]);
    }

    #[test]
    fn gauge_timeline_preserves_order() {
        let rec = Rec::enabled();
        rec.gauge_set("util", 0.0, 0.5);
        rec.gauge_set("util", 1.0, 0.9);
        let snap = rec.snapshot().unwrap();
        assert_eq!(snap.gauges[0].1, vec![(0.0, 0.5), (1.0, 0.9)]);
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let rec = Rec::enabled();
        rec.observe("lat", 0.0); // bucket 0
        rec.observe("lat", 1.0); // bucket 1
        rec.observe("lat", 3.0); // ceil -> 3, 2 bits -> bucket 2
        rec.observe("lat", 1000.0); // 10 bits -> bucket 10
        let snap = rec.snapshot().unwrap();
        let h = &snap.histograms[0].1;
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 1004.0);
        assert_eq!(h.min, 0.0);
        assert_eq!(h.max, 1000.0);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[2], 1);
        assert_eq!(h.buckets[10], 1);
    }

    #[test]
    fn state_timeline_round_trip() {
        let rec = Rec::enabled();
        rec.state_set("rank", 1, 0.0, "idle");
        rec.state_push("rank", 1, 1.0, "computing");
        rec.state_pop("rank", 1, 2.0);
        let snap = rec.snapshot().unwrap();
        let tl = snap.timeline("rank", 1).unwrap();
        assert_eq!(
            tl.events,
            vec![
                StateEvent {
                    time: 0.0,
                    op: StateOp::Set("idle")
                },
                StateEvent {
                    time: 1.0,
                    op: StateOp::Push("computing")
                },
                StateEvent {
                    time: 2.0,
                    op: StateOp::Pop
                },
            ]
        );
    }
}
