//! Bounded-memory time-series telemetry.
//!
//! The maestro samples the simulation at every fabric event (per-link
//! utilization, in-flight action count, actors woken, simcall/token
//! throughput, solver wall-clock, memory high-water mark) and this module
//! folds those samples into fixed simulated-time buckets. The bucket array
//! never grows past a fixed budget: when a sample lands beyond the last
//! bucket, adjacent buckets are merged pairwise and the bucket width
//! doubles — so a 64k-rank, hours-of-simulated-time run costs exactly the
//! same memory as a toy run, and resolution degrades gracefully (the whole
//! run is always covered at `budget` buckets or fewer).
//!
//! Quantities are stored so that merging is exact:
//!
//! * **extensive** values (simcall/token counts, actors woken, `x·dt`
//!   integrals of the active-action count and per-link utilization, solver
//!   nanoseconds) *add* when two buckets merge — their totals over the run
//!   are conserved under any number of halvings;
//! * **maxima** (peak in-flight actions, peak link utilization, memory
//!   high-water mark) merge as `max`.
//!
//! Everything here is a pure function of the simcall stream and the
//! platform except `solver_ns`, which measures the host machine;
//! [`TimeSeries::strip_wallclock`] zeroes it for byte-identity comparisons
//! (the same discipline as [`crate::SelfProfile::strip_wallclock`]).

use crate::json_mod::JsonBuf;

/// Default bucket budget: plenty for a plot, small enough to forget about.
pub const DEFAULT_TS_BUDGET: usize = 512;

/// Initial bucket width in simulated seconds (1 µs). Doubles on every
/// resolution halving, so the first halving happens once simulated time
/// passes `budget` microseconds.
const INITIAL_INTERVAL: f64 = 1e-6;

/// One telemetry reading, taken by the maestro after a fabric event.
///
/// `simcalls`, `tokens` and `solver_ns` are *cumulative* run totals (the
/// sampler charges the delta since the previous reading to the current
/// bucket); `woken` is already a per-event delta; `active` and `mem_hwm`
/// are instantaneous.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TsInstant {
    /// Simulated time of the reading (seconds).
    pub t: f64,
    /// Fabric actions currently in flight (flows + computes + sleeps).
    pub active: u64,
    /// Actors made runnable by this event's completions.
    pub woken: u64,
    /// Cumulative simcalls processed by the maestro.
    pub simcalls: u64,
    /// Cumulative scheduling tokens (actor resumptions).
    pub tokens: u64,
    /// Cumulative solver wall-clock nanoseconds (host-dependent).
    pub solver_ns: f64,
    /// Current memory high-water mark in bytes (tracked allocations).
    pub mem_hwm: u64,
}

/// One fixed-width bucket of the series.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TsSample {
    /// Simcalls processed during the bucket.
    pub simcalls: u64,
    /// Scheduling tokens granted during the bucket.
    pub tokens: u64,
    /// Actors woken by completions during the bucket.
    pub woken: u64,
    /// `∫ active dt` over the bucket (mean active = `active_time / width`).
    pub active_time: f64,
    /// Peak in-flight action count observed in the bucket.
    pub active_max: u64,
    /// Per-link `∫ utilization dt` over the bucket, indexed like the
    /// fabric's link table (empty for buckets before the first reading).
    pub link_util: Vec<f64>,
    /// Peak single-link utilization observed in the bucket.
    pub util_max: f64,
    /// Solver wall-clock nanoseconds spent during the bucket
    /// (host-dependent; zeroed by [`TimeSeries::strip_wallclock`]).
    pub solver_ns: f64,
    /// Memory high-water mark at the end of the bucket (bytes).
    pub mem_hwm: u64,
}

impl TsSample {
    /// Folds `other` into `self` (pairwise merge during a halving):
    /// extensive quantities add, maxima take the max.
    fn absorb(&mut self, other: &TsSample) {
        self.simcalls += other.simcalls;
        self.tokens += other.tokens;
        self.woken += other.woken;
        self.active_time += other.active_time;
        self.active_max = self.active_max.max(other.active_max);
        if self.link_util.len() < other.link_util.len() {
            self.link_util.resize(other.link_util.len(), 0.0);
        }
        for (i, u) in other.link_util.iter().enumerate() {
            self.link_util[i] += u;
        }
        self.util_max = self.util_max.max(other.util_max);
        self.solver_ns += other.solver_ns;
        self.mem_hwm = self.mem_hwm.max(other.mem_hwm);
    }
}

/// The bounded-memory series: at most `budget` buckets of width
/// `interval`, covering `[0, samples.len() * interval)` simulated seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    /// Maximum number of buckets ever held (fixed at construction).
    pub budget: usize,
    /// Current bucket width in simulated seconds.
    pub interval: f64,
    /// How many times resolution has been halved.
    pub halvings: u32,
    /// The buckets, oldest first; index `i` covers
    /// `[i * interval, (i + 1) * interval)`.
    pub samples: Vec<TsSample>,

    // Sampler cursor: step-function integration state between readings.
    last_t: f64,
    held_active: u64,
    held_util: Vec<f64>,
    cum_simcalls: u64,
    cum_tokens: u64,
    cum_solver_ns: f64,
}

impl Default for TimeSeries {
    fn default() -> Self {
        Self::new(DEFAULT_TS_BUDGET)
    }
}

impl TimeSeries {
    /// A series holding at most `budget` buckets (clamped to ≥ 2 so a
    /// halving always makes room).
    pub fn new(budget: usize) -> Self {
        Self {
            budget: budget.max(2),
            interval: INITIAL_INTERVAL,
            halvings: 0,
            samples: Vec::new(),
            last_t: 0.0,
            held_active: 0,
            held_util: Vec::new(),
            cum_simcalls: 0,
            cum_tokens: 0,
            cum_solver_ns: 0.0,
        }
    }

    /// Merges adjacent bucket pairs and doubles the bucket width.
    fn downsample(&mut self) {
        let mut merged = Vec::with_capacity(self.samples.len().div_ceil(2));
        let mut it = self.samples.drain(..);
        while let Some(mut a) = it.next() {
            if let Some(b) = it.next() {
                a.absorb(&b);
            }
            merged.push(a);
        }
        drop(it);
        self.samples = merged;
        self.interval *= 2.0;
        self.halvings += 1;
    }

    /// Index of the bucket containing simulated time `t`, halving the
    /// resolution as needed so the index fits the budget, and growing the
    /// bucket array up to it. When float division rounds `t` just below a
    /// bucket boundary it actually sits on, the index is nudged forward so
    /// the bucket's right edge is always strictly beyond `t` — otherwise
    /// the integration loop in [`record`](Self::record) could compute a
    /// zero-length segment at a boundary and stall there.
    fn bucket_for(&mut self, t: f64) -> usize {
        let locate = |interval: f64| {
            let mut idx = (t / interval) as usize;
            if (idx + 1) as f64 * interval <= t {
                idx += 1;
            }
            idx
        };
        let mut idx = locate(self.interval);
        while idx >= self.budget {
            self.downsample();
            idx = locate(self.interval);
        }
        if self.samples.len() <= idx {
            self.samples.resize(idx + 1, TsSample::default());
        }
        idx
    }

    /// Folds one reading into the series: integrates the previously held
    /// step values over `[last_t, inst.t]`, charges the cumulative deltas
    /// and instantaneous maxima to the bucket at `inst.t`, then holds
    /// `inst`'s values for the next step. `link_util[i]` is link `i`'s
    /// instantaneous utilization in `[0, 1]`.
    ///
    /// Readings must arrive in non-decreasing `t` order (the maestro's
    /// event loop guarantees this).
    pub fn record(&mut self, inst: TsInstant, link_util: &[f64]) {
        // Step-function integration of the held values across every bucket
        // the interval [last_t, t] spans. `bucket_for` keeps indices below
        // the budget, so each segment end is a genuine float step forward
        // and the loop is bounded by the budget per halving level.
        let t = inst.t.max(self.last_t);
        let mut s = self.last_t;
        while s < t {
            let idx = self.bucket_for(s);
            let end = ((idx + 1) as f64 * self.interval).min(t);
            let seg = end - s;
            if seg > 0.0 {
                let b = &mut self.samples[idx];
                b.active_time += self.held_active as f64 * seg;
                if b.link_util.len() < self.held_util.len() {
                    b.link_util.resize(self.held_util.len(), 0.0);
                }
                for (i, u) in self.held_util.iter().enumerate() {
                    b.link_util[i] += u * seg;
                }
            }
            if end <= s {
                break; // t == last_t up to float resolution; nothing to spread
            }
            s = end;
        }

        let idx = self.bucket_for(t);
        let b = &mut self.samples[idx];
        b.simcalls += inst.simcalls - self.cum_simcalls;
        b.tokens += inst.tokens - self.cum_tokens;
        b.woken += inst.woken;
        b.solver_ns += inst.solver_ns - self.cum_solver_ns;
        b.active_max = b.active_max.max(inst.active);
        b.mem_hwm = b.mem_hwm.max(inst.mem_hwm);
        for &u in link_util {
            b.util_max = b.util_max.max(u);
        }

        self.last_t = t;
        self.held_active = inst.active;
        self.held_util.clear();
        self.held_util.extend_from_slice(link_util);
        self.cum_simcalls = inst.simcalls;
        self.cum_tokens = inst.tokens;
        self.cum_solver_ns = inst.solver_ns;
    }

    /// Total simcalls folded into the series so far.
    pub fn total_simcalls(&self) -> u64 {
        self.samples.iter().map(|s| s.simcalls).sum()
    }

    /// Run-wide `∫ active dt` (conserved under halvings).
    pub fn total_active_time(&self) -> f64 {
        self.samples.iter().map(|s| s.active_time).sum()
    }

    /// Zeroes the host-dependent solver wall-clock so that two identical
    /// runs (or an on-line run and its replay) compare byte-identically.
    pub fn strip_wallclock(&mut self) {
        for s in &mut self.samples {
            s.solver_ns = 0.0;
        }
        self.cum_solver_ns = 0.0;
    }

    /// JSON section (spliced into the run report under `"timeseries"`).
    pub fn to_json(&self) -> String {
        let mut j = JsonBuf::new();
        j.begin_obj();
        j.key("budget").uint_val(self.budget as u64);
        j.key("interval").num_val(self.interval);
        j.key("halvings").uint_val(self.halvings as u64);
        j.key("samples").begin_arr();
        for (i, s) in self.samples.iter().enumerate() {
            j.begin_obj();
            j.key("t").num_val(i as f64 * self.interval);
            j.key("simcalls").uint_val(s.simcalls);
            j.key("tokens").uint_val(s.tokens);
            j.key("woken").uint_val(s.woken);
            j.key("active_time").num_val(s.active_time);
            j.key("active_max").uint_val(s.active_max);
            j.key("util_max").num_val(s.util_max);
            j.key("solver_ns").num_val(s.solver_ns);
            j.key("mem_hwm").uint_val(s.mem_hwm);
            j.key("link_util").begin_arr();
            for u in &s.link_util {
                j.num_val(*u);
            }
            j.end_arr();
            j.end_obj();
        }
        j.end_arr();
        j.end_obj();
        j.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reading(t: f64, simcalls: u64, active: u64) -> TsInstant {
        TsInstant {
            t,
            active,
            woken: 1,
            simcalls,
            tokens: simcalls,
            solver_ns: simcalls as f64,
            mem_hwm: 64,
        }
    }

    /// The budget holds no matter how long the run gets: a million
    /// readings spread over ~18 minutes of simulated time never push the
    /// bucket count past the budget.
    #[test]
    fn memory_stays_under_budget_regardless_of_run_length() {
        let mut ts = TimeSeries::new(64);
        for i in 0..1_000_000u64 {
            ts.record(reading(i as f64 * 1.1e-3, i, i % 7), &[0.5, 0.25]);
        }
        assert!(ts.samples.len() <= 64, "len {} > budget", ts.samples.len());
        assert!(ts.halvings > 0, "a long run must have halved");
        assert_eq!(ts.total_simcalls(), 999_999);
    }

    /// Extensive quantities survive halvings exactly; the t=0 reading
    /// contributes nothing (cumulative deltas start at zero).
    #[test]
    fn merged_integrals_are_conserved() {
        let mut ts = TimeSeries::new(4);
        ts.record(reading(0.0, 0, 2), &[1.0]);
        for i in 1..=100u64 {
            ts.record(reading(i as f64 * 1e-4, 10 * i, 2), &[1.0]);
        }
        assert_eq!(ts.total_simcalls(), 1000);
        // active == 2 held over [0, 1e-2] simulated seconds.
        assert!((ts.total_active_time() - 2.0 * 1e-2).abs() < 1e-12);
        let util: f64 = ts.samples.iter().map(|s| s.link_util[0]).sum();
        assert!((util - 1e-2).abs() < 1e-12);
        assert!(ts.samples.len() <= 4);
    }

    /// Readings at identical timestamps all land in the same bucket.
    #[test]
    fn same_time_readings_accumulate() {
        let mut ts = TimeSeries::new(8);
        ts.record(reading(0.0, 3, 1), &[]);
        ts.record(reading(0.0, 7, 5), &[]);
        assert_eq!(ts.samples.len(), 1);
        assert_eq!(ts.samples[0].simcalls, 7);
        assert_eq!(ts.samples[0].active_max, 5);
        assert_eq!(ts.samples[0].woken, 2);
    }

    #[test]
    fn strip_wallclock_zeroes_solver_only() {
        let mut ts = TimeSeries::new(8);
        ts.record(reading(1e-6, 5, 1), &[0.5]);
        assert!(ts.samples.iter().any(|s| s.solver_ns > 0.0));
        let simcalls = ts.total_simcalls();
        ts.strip_wallclock();
        assert!(ts.samples.iter().all(|s| s.solver_ns == 0.0));
        assert_eq!(ts.total_simcalls(), simcalls);
    }

    #[test]
    fn json_shape_is_stable() {
        let mut ts = TimeSeries::new(4);
        ts.record(reading(1e-6, 2, 1), &[0.5]);
        let json = ts.to_json();
        assert!(json.starts_with("{\"budget\":4,\"interval\":"));
        assert!(json.contains("\"samples\":[{\"t\":0,"));
        assert!(json.contains("\"link_util\":["));
    }
}
