//! The byte-stability discipline, as a trait.
//!
//! Several report types carry a mix of *simulated* quantities (exactly
//! reproducible run-to-run) and *host-dependent* ones (wall-clock phase
//! timings, solver nanoseconds, events/sec). The determinism tests and
//! the divergence-attribution tooling both need the former with the
//! latter zeroed, and each type historically grew its own
//! `strip_wallclock` helper. [`Deterministic`] unifies them: one method,
//! implemented next to each type, composing through `Option` so callers
//! can strip a whole report tree in one call.

use crate::{SelfProfile, SweepStats, TimeSeries};

/// Types that can reduce themselves to their deterministic projection —
/// zeroing every host-dependent (wall-clock, rate, memory-address) field
/// while leaving simulated quantities untouched. After
/// [`strip_nondeterminism`](Deterministic::strip_nondeterminism), two
/// values produced by identical simulated runs must compare (and
/// serialize) byte-identically.
pub trait Deterministic {
    /// Zeroes every host-dependent field in place.
    fn strip_nondeterminism(&mut self);
}

impl<T: Deterministic> Deterministic for Option<T> {
    fn strip_nondeterminism(&mut self) {
        if let Some(v) = self {
            v.strip_nondeterminism();
        }
    }
}

impl Deterministic for SelfProfile {
    fn strip_nondeterminism(&mut self) {
        self.strip_wallclock();
    }
}

impl Deterministic for TimeSeries {
    fn strip_nondeterminism(&mut self) {
        self.strip_wallclock();
    }
}

impl Deterministic for SweepStats {
    fn strip_nondeterminism(&mut self) {
        self.strip_wallclock();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_composes_and_none_is_a_no_op() {
        let mut none: Option<SelfProfile> = None;
        none.strip_nondeterminism();
        assert!(none.is_none());

        let mut some = Some(SelfProfile {
            wall_seconds: 1.25,
            simcalls: 42,
            ..SelfProfile::default()
        });
        some.strip_nondeterminism();
        let p = some.unwrap();
        assert_eq!(p.wall_seconds, 0.0, "wall-clock stripped");
        assert_eq!(p.simcalls, 42, "simulated quantities untouched");
    }
}
