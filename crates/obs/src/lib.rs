//! Workspace-wide observability layer.
//!
//! Every simulation layer (the surf flow kernel, the packet-level network,
//! and the SMPI core runtime) emits into the same lightweight [`Rec`]
//! handle. When observability is off the handle is `None` and every emit
//! is a single branch — the hot paths pay nothing else. When on, events
//! accumulate in a [`MemoryRecorder`] and are snapshotted into a
//! [`MetricsReport`] at the end of the run.
//!
//! The crate also provides:
//!
//! * [`paje::PajeWriter`] — a low-level writer for the Paje trace format
//!   understood by Vite / pj_dump, mirroring SimGrid's tracing output;
//! * [`SelfProfile`] — simulator self-profiling (wall-clock per phase,
//!   events processed, events per second), with an always-on
//!   [`KernelProfile`] section for the flow kernel's solver machinery;
//! * [`FlowAttribution`] / [`ContentionReport`] — per-flow contention
//!   attribution (which link bottlenecked which flow, for how long),
//!   filled by the network backends and aggregated by the runtime;
//! * [`TimeSeries`] — bounded-memory time-resolved telemetry (per-link
//!   utilization, active actions, simcall rate, …) sampled by the maestro,
//!   with resolution halving so any run length fits a fixed budget;
//! * [`json`] — a tiny dependency-free JSON writer used by the exports;
//! * [`Deterministic`] — the byte-stability discipline as a trait: one
//!   call strips every host-dependent field from a report tree, leaving
//!   only exactly-reproducible simulated quantities.

mod attribution;
mod deterministic;
mod json_mod;
mod paje_mod;
mod profile;
mod recorder;
mod report;
mod sweep_stats;
mod timeseries;

pub use attribution::{ContentionReport, FlowAttribution, FlowRecord, LinkRollup};
pub use deterministic::Deterministic;
pub use profile::{CodecStats, KernelHist, KernelProfile, SelfProfile};
pub use recorder::{MemoryRecorder, NullRecorder, Rec, Recorder, StateEvent, StateOp};
pub use report::{HistogramSnapshot, MetricsReport, TimelineSnapshot};
pub use sweep_stats::{SweepStats, WorkerStats};
pub use timeseries::{TimeSeries, TsInstant, TsSample, DEFAULT_TS_BUDGET};

pub mod json {
    //! Minimal JSON construction helpers (no external deps).
    pub use crate::json_mod::*;
}

pub mod paje {
    //! Paje trace-format writer.
    pub use crate::paje_mod::*;
}
