//! Tiny hand-rolled JSON writer (the environment has no serde_json).
//!
//! Only what the exports need: string escaping, number formatting that
//! stays valid JSON for non-finite floats, and a push-based object/array
//! builder over a plain `String`.

/// Escapes `s` for inclusion inside a JSON string literal (no quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats a float as a JSON number; NaN/inf become `null`.
pub fn num(v: f64) -> String {
    if v.is_finite() {
        // Shortest representation that round-trips.
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Push-based JSON builder writing into an owned buffer.
#[derive(Debug, Default)]
pub struct JsonBuf {
    buf: String,
    /// Whether the next element at each nesting level needs a comma.
    need_comma: Vec<bool>,
}

impl JsonBuf {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn elem(&mut self) {
        if let Some(last) = self.need_comma.last_mut() {
            if *last {
                self.buf.push(',');
            }
            *last = true;
        }
    }

    /// Opens an object (as a value).
    pub fn begin_obj(&mut self) -> &mut Self {
        self.elem();
        self.buf.push('{');
        self.need_comma.push(false);
        self
    }

    /// Closes the innermost object.
    pub fn end_obj(&mut self) -> &mut Self {
        self.need_comma.pop();
        self.buf.push('}');
        self
    }

    /// Opens an array (as a value).
    pub fn begin_arr(&mut self) -> &mut Self {
        self.elem();
        self.buf.push('[');
        self.need_comma.push(false);
        self
    }

    /// Closes the innermost array.
    pub fn end_arr(&mut self) -> &mut Self {
        self.need_comma.pop();
        self.buf.push(']');
        self
    }

    /// Emits an object key; the next emitted value belongs to it.
    pub fn key(&mut self, k: &str) -> &mut Self {
        self.elem();
        self.buf.push('"');
        self.buf.push_str(&escape(k));
        self.buf.push_str("\":");
        // The value following the key must not be comma-prefixed.
        if let Some(last) = self.need_comma.last_mut() {
            *last = false;
        }
        self
    }

    /// Emits a string value.
    pub fn str_val(&mut self, v: &str) -> &mut Self {
        self.elem();
        self.buf.push('"');
        self.buf.push_str(&escape(v));
        self.buf.push('"');
        self
    }

    /// Emits a float value.
    pub fn num_val(&mut self, v: f64) -> &mut Self {
        self.elem();
        self.buf.push_str(&num(v));
        self
    }

    /// Emits an unsigned integer value.
    pub fn uint_val(&mut self, v: u64) -> &mut Self {
        self.elem();
        self.buf.push_str(&v.to_string());
        self
    }

    /// Emits a boolean value.
    pub fn bool_val(&mut self, v: bool) -> &mut Self {
        self.elem();
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Emits a pre-serialized JSON value verbatim (for splicing the output
    /// of another builder, e.g. a nested report).
    pub fn raw_val(&mut self, v: &str) -> &mut Self {
        self.elem();
        self.buf.push_str(v);
        self
    }

    /// Finishes and returns the JSON text.
    pub fn finish(self) -> String {
        debug_assert!(self.need_comma.is_empty(), "unbalanced JSON builder");
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_control_and_quotes() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
        assert_eq!(num(1.5), "1.5");
    }

    #[test]
    fn raw_val_splices_verbatim() {
        let mut j = JsonBuf::new();
        j.begin_obj();
        j.key("a").uint_val(1);
        j.key("inner").raw_val(r#"{"x":[1,2]}"#);
        j.end_obj();
        assert_eq!(j.finish(), r#"{"a":1,"inner":{"x":[1,2]}}"#);
    }

    #[test]
    fn builder_produces_valid_structure() {
        let mut j = JsonBuf::new();
        j.begin_obj();
        j.key("name").str_val("x");
        j.key("vals").begin_arr().uint_val(1).num_val(2.5).end_arr();
        j.key("on").bool_val(true);
        j.key("nested").begin_obj().key("k").num_val(0.0).end_obj();
        j.end_obj();
        assert_eq!(
            j.finish(),
            r#"{"name":"x","vals":[1,2.5],"on":true,"nested":{"k":0}}"#
        );
    }
}
