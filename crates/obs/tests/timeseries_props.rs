//! Property-based tests of the bounded-memory time-series sampler.
//!
//! Invariants checked on random reading streams:
//! 1. Budget: the bucket count never exceeds the configured budget, no
//!    matter how far simulated time runs.
//! 2. Conservation: extensive quantities (simcall/token counts, woken
//!    actors, `x·dt` integrals) survive any number of resolution halvings
//!    exactly.
//! 3. Determinism: the same reading stream always produces byte-identical
//!    JSON — the property the on-line-vs-replay byte-identity tests build
//!    on.

use proptest::prelude::*;
use smpi_obs::{TimeSeries, TsInstant};

/// A reading stream: monotone times built from non-negative increments,
/// with per-reading activity.
fn readings(max_len: usize) -> impl Strategy<Value = Vec<(f64, u64, u64, u64)>> {
    // (dt, simcall_delta, active, woken)
    proptest::collection::vec((0.0f64..2e-3, 0u64..50, 0u64..16, 0u64..4), 1..max_len)
}

fn feed(budget: usize, stream: &[(f64, u64, u64, u64)]) -> TimeSeries {
    let mut ts = TimeSeries::new(budget);
    let mut t = 0.0;
    let mut simcalls = 0;
    for &(dt, dc, active, woken) in stream {
        t += dt;
        simcalls += dc;
        ts.record(
            TsInstant {
                t,
                active,
                woken,
                simcalls,
                tokens: simcalls,
                solver_ns: simcalls as f64 * 3.0,
                mem_hwm: active * 1024,
            },
            &[active as f64 / 16.0, 1.0 - active as f64 / 16.0],
        );
    }
    ts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The sample count stays at or below the budget for any stream.
    #[test]
    fn sample_count_never_exceeds_budget(
        budget in 2usize..32,
        stream in readings(400),
    ) {
        let ts = feed(budget, &stream);
        prop_assert!(
            ts.samples.len() <= ts.budget,
            "{} buckets with budget {}",
            ts.samples.len(),
            ts.budget
        );
        // The series always covers the whole run at the current width.
        let t_end: f64 = stream.iter().map(|r| r.0).sum();
        prop_assert!(ts.samples.len() as f64 * ts.interval >= t_end - 1e-12);
    }

    /// Halvings merge buckets without losing any extensive quantity: the
    /// totals equal those of a sampler too big to ever halve.
    #[test]
    fn merged_totals_are_conserved(stream in readings(300)) {
        let small = feed(2, &stream); // halves as often as possible
        let large = feed(1 << 20, &stream); // never halves
        prop_assert!(large.halvings == 0);
        prop_assert_eq!(small.total_simcalls(), large.total_simcalls());
        let woken = |ts: &TimeSeries| ts.samples.iter().map(|s| s.woken).sum::<u64>();
        prop_assert_eq!(woken(&small), woken(&large));
        prop_assert!((small.total_active_time() - large.total_active_time()).abs() < 1e-9);
        let util = |ts: &TimeSeries, i: usize| {
            ts.samples
                .iter()
                .map(|s| s.link_util.get(i).copied().unwrap_or(0.0))
                .sum::<f64>()
        };
        prop_assert!((util(&small, 0) - util(&large, 0)).abs() < 1e-9);
        prop_assert!((util(&small, 1) - util(&large, 1)).abs() < 1e-9);
    }

    /// Identical reading streams produce byte-identical JSON, with and
    /// without the host-dependent solver time stripped.
    #[test]
    fn identical_streams_serialize_identically(
        budget in 2usize..32,
        stream in readings(200),
    ) {
        let a = feed(budget, &stream);
        let b = feed(budget, &stream);
        prop_assert_eq!(a.to_json(), b.to_json());
        let mut a = a;
        let mut b = b;
        a.strip_wallclock();
        b.strip_wallclock();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.to_json(), b.to_json());
    }
}
