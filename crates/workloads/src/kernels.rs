//! Manual collective kernels: the drivers behind Figs. 7–12 and 17.
//!
//! The paper times *manual* implementations of the binomial-tree scatter and
//! the pairwise all-to-all ("we do not call directly MPI_Scatter, but use a
//! manual implementation of this algorithm") so that OpenMPI and MPICH2 are
//! guaranteed to run the same algorithm being simulated. Here the manual
//! implementations are the library's own algorithms, invoked through thin
//! drivers that add the barrier + per-rank timing protocol of the figures.

use smpi::coll::tree;
use smpi::ctx::Ctx;

/// Runs one binomial-tree scatter of `chunk` f64 elements per rank from
/// rank 0 and returns this rank's completion time, measured from the
/// post-barrier start (the per-process quantity of Fig. 7).
pub fn timed_scatter(ctx: &Ctx, chunk: usize) -> f64 {
    let comm = ctx.world();
    let p = ctx.size();
    let root = 0;
    let data: Option<Vec<f64>> = (ctx.rank() == root).then(|| {
        let n = p * chunk;
        (0..n).map(|i| i as f64).collect()
    });
    ctx.barrier(&comm);
    let t0 = ctx.wtime();
    let mine = ctx.scatter(data.as_deref(), chunk, root, &comm);
    std::hint::black_box(&mine);
    ctx.wtime() - t0
}

/// Runs one pairwise all-to-all with `chunk` f64 elements per peer and
/// returns this rank's completion time (Fig. 11).
pub fn timed_alltoall(ctx: &Ctx, chunk: usize) -> f64 {
    let comm = ctx.world();
    let p = ctx.size();
    let r = ctx.rank();
    let send: Vec<f64> = (0..p * chunk).map(|i| (r * p + i) as f64).collect();
    ctx.barrier(&comm);
    let t0 = ctx.wtime();
    let out = ctx.alltoall(&send, &comm);
    std::hint::black_box(&out);
    ctx.wtime() - t0
}

/// The folded (data-less) binomial scatter: identical message pattern and
/// sizes to [`timed_scatter`], but no application bytes move — the
/// `SMPI_SHARED_MALLOC` + bypassed-computation configuration of §3.2 that
/// the paper's large-scale runs rely on. This is the configuration whose
/// wall-clock time Fig. 17 contrasts with real execution.
pub fn timed_scatter_folded(ctx: &Ctx, chunk_bytes: u64) -> f64 {
    const TAG: i32 = 40;
    let comm = ctx.world();
    let p = ctx.size();
    let r = ctx.rank();
    ctx.barrier(&comm);
    let t0 = ctx.wtime();
    // Relative rank space with root 0 (the figure's configuration).
    if r != 0 {
        let span = tree::subtree_span(r, p) as u64;
        ctx.recv_sized(tree::parent(r) as i32, TAG, span * chunk_bytes, &comm);
    }
    for c in tree::children(r, p) {
        let span = tree::subtree_span(c, p) as u64;
        ctx.send_sized(span * chunk_bytes, c, TAG, &comm);
    }
    ctx.wtime() - t0
}

#[cfg(test)]
mod tests {
    use smpi::{MpiProfile, World};
    use smpi_platform::{flat_cluster, ClusterConfig, RoutedPlatform};
    use std::sync::Arc;
    use surf_sim::TransferModel;

    fn worlds(n: usize) -> [World; 2] {
        let rp = Arc::new(RoutedPlatform::new(flat_cluster(
            "t",
            n,
            &ClusterConfig::default(),
        )));
        [
            World::smpi(Arc::clone(&rp), TransferModel::ideal()),
            World::testbed(rp, MpiProfile::openmpi_like()),
        ]
    }

    #[test]
    fn timed_scatter_returns_sane_times() {
        for world in worlds(8) {
            let report = world.run(8, |ctx| super::timed_scatter(ctx, 1024));
            // Root's eager sends may complete instantly (fire-and-forget),
            // so only non-root ranks are required to observe elapsed time.
            for &t in &report.results[1..] {
                assert!(t > 0.0);
            }
            assert!(report.results[0] >= 0.0);
            let max = report.results.iter().copied().fold(0.0, f64::max);
            assert!(max < 1.0, "scatter of 8 KiB chunks should be fast: {max}");
        }
    }

    #[test]
    fn folded_scatter_times_match_the_data_carrying_scatter() {
        // Same message pattern, same sizes => identical simulated times.
        for world in worlds(8) {
            let with_data = world.run(8, |ctx| super::timed_scatter(ctx, 64 * 1024));
            let folded = world.run(8, |ctx| super::timed_scatter_folded(ctx, 512 * 1024));
            for (a, b) in with_data.results.iter().zip(&folded.results) {
                assert!(
                    (a - b).abs() < 1e-9,
                    "folded scatter must time identically: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn rendezvous_scatter_blocks_the_root_too() {
        // With 4 MiB chunks (the paper's Fig. 7 size), sends are synchronous
        // and even the root accumulates real time.
        for world in worlds(4) {
            let report = world.run(4, |ctx| super::timed_scatter(ctx, 512 * 1024));
            for &t in &report.results {
                assert!(t > 1e-3, "rendezvous scatter time too small: {t}");
            }
        }
    }

    #[test]
    fn timed_alltoall_ranks_roughly_agree() {
        for world in worlds(4) {
            let report = world.run(4, |ctx| super::timed_alltoall(ctx, 4096));
            let min = report.results.iter().copied().fold(f64::INFINITY, f64::min);
            let max = report.results.iter().copied().fold(0.0, f64::max);
            assert!(min > 0.0);
            // Pairwise all-to-all is symmetric: spread stays small.
            assert!(max / min < 2.0, "per-rank spread too wide: {min}..{max}");
        }
    }
}
