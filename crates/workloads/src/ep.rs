//! The NAS Embarrassingly Parallel (EP) benchmark (paper §7.3, Fig. 18).
//!
//! EP distributes a large computation — generating Gaussian deviates with
//! the Marsaglia polar method over an NPB-style linear congruential stream —
//! across ranks, with no communication except a final reduction. It is the
//! paper's vehicle for the `SMPI_SAMPLE_LOCAL` macro: the iteration space is
//! cut into blocks, only the first `ratio × blocks` are actually executed
//! and timed, and the rest are replayed as the measured mean.

use smpi::ctx::Ctx;
use smpi::op;

/// NPB LCG: x_{k+1} = a·x_k mod 2^46, a = 5^13.
const A: u64 = 1_220_703_125;
const MASK: u64 = (1 << 46) - 1;
const SEED: u64 = 271_828_183;

/// Partial tallies of one rank/block.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EpPartial {
    /// Sum of accepted X deviates.
    pub sx: f64,
    /// Sum of accepted Y deviates.
    pub sy: f64,
    /// Annulus counts (⌊max(|X|, |Y|)⌋ ∈ 0..10).
    pub q: [f64; 10],
}

impl EpPartial {
    fn merge(&mut self, other: &EpPartial) {
        self.sx += other.sx;
        self.sy += other.sy;
        for (a, b) in self.q.iter_mut().zip(&other.q) {
            *a += b;
        }
    }
}

/// Generates and tallies `pairs` candidate pairs starting at stream offset
/// `offset` (pairs consumed two numbers each).
pub fn ep_block(offset: u64, pairs: u64) -> EpPartial {
    let mut part = EpPartial::default();
    let mut x = lcg_skip(SEED, offset * 2);
    for _ in 0..pairs {
        x = (x.wrapping_mul(A)) & MASK;
        let u = x as f64 / (1u64 << 46) as f64;
        x = (x.wrapping_mul(A)) & MASK;
        let v = x as f64 / (1u64 << 46) as f64;
        let (a, b) = (2.0 * u - 1.0, 2.0 * v - 1.0);
        let t = a * a + b * b;
        if t <= 1.0 && t > 0.0 {
            let f = (-2.0 * t.ln() / t).sqrt();
            let (gx, gy) = (a * f, b * f);
            part.sx += gx;
            part.sy += gy;
            let m = gx.abs().max(gy.abs()) as usize;
            if m < 10 {
                part.q[m] += 1.0;
            }
        }
    }
    part
}

/// Jumps the LCG forward by `n` steps in O(log n) (square-and-multiply on
/// the multiplier).
fn lcg_skip(seed: u64, mut n: u64) -> u64 {
    let mut mult = A;
    let mut x = seed;
    while n > 0 {
        if n & 1 == 1 {
            x = x.wrapping_mul(mult) & MASK;
        }
        mult = mult.wrapping_mul(mult) & MASK;
        n >>= 1;
    }
    x
}

/// EP run parameters.
#[derive(Debug, Clone, Copy)]
pub struct EpConfig {
    /// Total candidate pairs across all ranks (class B would be 2^30; use a
    /// scaled-down count to keep simulations snappy).
    pub total_pairs: u64,
    /// Blocks each rank cuts its share into (the sampling granularity).
    pub blocks_per_rank: usize,
    /// Fraction of blocks actually executed (Fig. 18's x-axis); the rest
    /// replay the measured mean. 1.0 = everything executes.
    pub sampling_ratio: f64,
}

impl EpConfig {
    /// A scaled "class B" instance: 2^24 pairs in 64 blocks.
    pub fn class_b_scaled() -> Self {
        EpConfig {
            total_pairs: 1 << 24,
            blocks_per_rank: 64,
            sampling_ratio: 1.0,
        }
    }
}

/// Result of an EP run on one rank (globally reduced, so identical on all
/// ranks).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpResult {
    /// Global sum of X deviates (exact only at sampling ratio 1.0).
    pub sx: f64,
    /// Global sum of Y deviates.
    pub sy: f64,
    /// Number of accepted pairs.
    pub accepted: f64,
}

/// Runs one rank's share of EP. Uses `sample_local` so that only
/// `ceil(ratio × blocks)` blocks execute; the remainder are simulated as the
/// measured mean delay (the paper's Fig. 18 mechanism).
pub fn ep_rank(ctx: &Ctx, cfg: EpConfig) -> EpResult {
    assert!(cfg.sampling_ratio > 0.0 && cfg.sampling_ratio <= 1.0);
    let p = ctx.size() as u64;
    let r = ctx.rank() as u64;
    let my_pairs = cfg.total_pairs / p;
    let per_block = my_pairs / cfg.blocks_per_rank as u64;
    let measured = ((cfg.blocks_per_rank as f64) * cfg.sampling_ratio).ceil() as u32;

    let mut acc = EpPartial::default();
    for b in 0..cfg.blocks_per_rank as u64 {
        let offset = r * my_pairs + b * per_block;
        let part = std::cell::Cell::new(EpPartial::default());
        ctx.sample_local("ep:block", measured, || {
            part.set(ep_block(offset, per_block));
        });
        // Skipped blocks contribute nothing — the "erroneous results"
        // trade-off of §3.1; at ratio 1.0 every block executes and the
        // reduction is exact.
        acc.merge(&part.get());
    }

    // Final reduction, as in NPB EP.
    let reduced = ctx.allreduce(
        &[acc.sx, acc.sy, acc.q.iter().sum::<f64>()],
        &op::sum::<f64>(),
        &ctx.world(),
    );
    EpResult {
        sx: reduced[0],
        sy: reduced[1],
        accepted: reduced[2],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcg_skip_matches_iteration() {
        let mut x = SEED;
        for _ in 0..1000 {
            x = x.wrapping_mul(A) & MASK;
        }
        assert_eq!(lcg_skip(SEED, 1000), x);
        assert_eq!(lcg_skip(SEED, 0), SEED);
    }

    #[test]
    fn blocks_partition_the_stream() {
        // Tallying one big block equals tallying two halves.
        let whole = ep_block(0, 10_000);
        let mut halves = ep_block(0, 5_000);
        halves.merge(&ep_block(5_000, 5_000));
        assert!((whole.sx - halves.sx).abs() < 1e-9);
        assert!((whole.sy - halves.sy).abs() < 1e-9);
        assert_eq!(whole.q, halves.q);
    }

    #[test]
    fn acceptance_rate_is_pi_over_four() {
        let part = ep_block(0, 100_000);
        let accepted: f64 = part.q.iter().sum();
        let rate = accepted / 100_000.0;
        assert!(
            (rate - std::f64::consts::FRAC_PI_4).abs() < 0.01,
            "acceptance rate {rate}"
        );
    }

    #[test]
    fn gaussian_tail_counts_decay() {
        let part = ep_block(0, 100_000);
        assert!(part.q[0] > part.q[1]);
        assert!(part.q[1] > part.q[2]);
        assert!(part.q[3] < part.q[0] / 50.0);
    }
}
