//! The NAS Data Traffic (DT) benchmark (paper §7.1.4).
//!
//! DT moves feature arrays along a task graph; three graph shapes are
//! evaluated:
//!
//! * **BH (Black Hole)** — data *accumulates* from many sources into one
//!   sink through 4-ary fan-in layers (Fig. 13). Process counts: 21 / 43 /
//!   85 for classes A / B / C.
//! * **WH (White Hole)** — one source *replicates* data outward through
//!   4-ary fan-out layers (Fig. 14). Same process counts as BH.
//! * **SH (Shuffle)** — `log₂(w)+1` layers of `w` nodes; each node splits
//!   its data between two successors in a butterfly pattern. Process
//!   counts: 80 / 192 / 448 for A / B / C.
//!
//! Node semantics (what makes BH slower than WH, the trend Fig. 15 checks):
//! BH nodes *concatenate* everything they receive and forward the whole
//! concatenation — the sink's access link ends up carrying every byte the
//! sources produced. WH nodes forward a *copy* of their input to each
//! successor, so traffic stays spread across the fabric. SH conserves
//! volume by splitting.

use std::collections::HashMap;

use smpi::ctx::Ctx;

/// Problem classes. Leaf width doubles per class; the paper uses A, B, C
/// (S and W are the usual smaller NPB instances, extrapolated downward).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DtClass {
    /// Tiny (4 leaves).
    S,
    /// Small (8 leaves).
    W,
    /// 16 leaves — 21 (BH/WH) / 80 (SH) processes.
    A,
    /// 32 leaves — 43 / 192 processes.
    B,
    /// 64 leaves — 85 / 448 processes.
    C,
}

impl DtClass {
    /// Number of leaf (widest-layer) nodes.
    pub fn leaves(self) -> usize {
        match self {
            DtClass::S => 4,
            DtClass::W => 8,
            DtClass::A => 16,
            DtClass::B => 32,
            DtClass::C => 64,
        }
    }

    /// Feature elements (f64) per source array.
    pub fn num_samples(self) -> usize {
        match self {
            DtClass::S => 1 << 12,
            DtClass::W => 1 << 15,
            _ => 1 << 20, // 8 MiB per source array for A/B/C
        }
    }

    /// Parses "S"/"W"/"A"/"B"/"C".
    pub fn parse(s: &str) -> Option<DtClass> {
        match s {
            "S" => Some(DtClass::S),
            "W" => Some(DtClass::W),
            "A" => Some(DtClass::A),
            "B" => Some(DtClass::B),
            "C" => Some(DtClass::C),
            _ => None,
        }
    }
}

/// Graph shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DtGraph {
    /// Black hole: fan-in, concatenating.
    Bh,
    /// White hole: fan-out, replicating.
    Wh,
    /// Shuffle: constant-width butterfly, splitting.
    Sh,
}

/// The task graph: nodes are MPI ranks.
#[derive(Debug, Clone)]
pub struct TaskGraph {
    /// `succ[r]` = ranks r sends to.
    pub succ: Vec<Vec<usize>>,
    /// `pred[r]` = ranks r receives from.
    pub pred: Vec<Vec<usize>>,
    /// The graph shape.
    pub shape: DtGraph,
}

impl TaskGraph {
    /// Number of processes.
    pub fn num_nodes(&self) -> usize {
        self.succ.len()
    }

    /// Ranks with no predecessors.
    pub fn sources(&self) -> Vec<usize> {
        (0..self.num_nodes())
            .filter(|&r| self.pred[r].is_empty())
            .collect()
    }

    /// Ranks with no successors.
    pub fn sinks(&self) -> Vec<usize> {
        (0..self.num_nodes())
            .filter(|&r| self.succ[r].is_empty())
            .collect()
    }
}

/// Builds the DT task graph for a class and shape. Node counts match the
/// paper: BH/WH 21/43/85, SH 80/192/448 for classes A/B/C.
pub fn build_graph(class: DtClass, shape: DtGraph) -> TaskGraph {
    let w = class.leaves();
    match shape {
        DtGraph::Bh => fan_graph(w, false),
        DtGraph::Wh => fan_graph(w, true),
        DtGraph::Sh => shuffle_graph(w),
    }
}

/// 4-ary fan graph: layers of width w, ⌈w/4⌉, … down to 1.
/// `outward = false` builds BH (edges toward the apex);
/// `outward = true` builds WH (edges away from the apex).
fn fan_graph(w: usize, outward: bool) -> TaskGraph {
    // Layer widths from the wide end to the apex.
    let mut widths = vec![w];
    while *widths.last().unwrap() > 1 {
        widths.push(widths.last().unwrap().div_ceil(4));
    }
    let total: usize = widths.iter().sum();
    let mut succ = vec![Vec::new(); total];
    let mut pred = vec![Vec::new(); total];

    // Rank layout: for BH the wide layer first (sources are ranks 0..w and
    // the sink is the last rank); WH mirrors it (source = rank 0).
    // layer_start[i] = first rank of layer i (wide end = layer 0).
    let mut layer_start = Vec::with_capacity(widths.len());
    let mut acc = 0;
    for &lw in &widths {
        layer_start.push(acc);
        acc += lw;
    }
    for (layer, &lw) in widths.iter().enumerate().take(widths.len() - 1) {
        let next_w = widths[layer + 1];
        for i in 0..lw {
            let group = i % next_w; // spread nodes over next layer groups
            let child = layer_start[layer] + i;
            let parent = layer_start[layer + 1] + group;
            if outward {
                succ[parent].push(child);
                pred[child].push(parent);
            } else {
                succ[child].push(parent);
                pred[parent].push(child);
            }
        }
    }
    // Deterministic edge order.
    for v in succ.iter_mut().chain(pred.iter_mut()) {
        v.sort_unstable();
    }
    if outward {
        // WH convention: rank 0 is the source. Relabel by reversing layers.
        relabel_mirror(&mut succ, &mut pred, total);
    }
    TaskGraph {
        succ,
        pred,
        shape: if outward { DtGraph::Wh } else { DtGraph::Bh },
    }
}

/// Reverses the rank order (rank r -> total-1-r) so the WH apex is rank 0.
fn relabel_mirror(succ: &mut [Vec<usize>], pred: &mut [Vec<usize>], total: usize) {
    let map = |r: usize| total - 1 - r;
    let remap = |vs: &mut [Vec<usize>]| {
        for v in vs.iter_mut() {
            for x in v.iter_mut() {
                *x = map(*x);
            }
            v.sort_unstable();
        }
    };
    remap(succ);
    remap(pred);
    succ.reverse();
    pred.reverse();
}

/// Shuffle graph: `log₂(w)+1` layers of `w` nodes each; node (l, i) sends to
/// (l+1, i) and (l+1, i XOR 2^l) — a butterfly, shuffling data from the top
/// layer down to the bottom (§7.1.4).
fn shuffle_graph(w: usize) -> TaskGraph {
    assert!(w.is_power_of_two());
    let layers = w.trailing_zeros() as usize + 1;
    let total = layers * w;
    let mut succ = vec![Vec::new(); total];
    let mut pred = vec![Vec::new(); total];
    for l in 0..layers - 1 {
        for i in 0..w {
            let from = l * w + i;
            let straight = (l + 1) * w + i;
            let cross = (l + 1) * w + (i ^ (1 << l));
            for to in [straight, cross] {
                succ[from].push(to);
                pred[to].push(from);
            }
        }
    }
    for v in succ.iter_mut().chain(pred.iter_mut()) {
        v.sort_unstable();
        v.dedup();
    }
    TaskGraph {
        succ,
        pred,
        shape: DtGraph::Sh,
    }
}

/// Per-element processing cost, flops (light compute as in DT's feature
/// comparisons).
const FLOPS_PER_ELEMENT: f64 = 10.0;

const DT_TAG: i32 = 17;

/// Runs one rank's share of the DT benchmark. Returns this rank's checksum
/// (sinks return the verification sum; other ranks 0). Buffers are
/// allocated through `shared_malloc` keyed by (layer-role) so RAM folding
/// (§3.2) applies when enabled on the `World`.
pub fn dt_rank(ctx: &Ctx, graph: &TaskGraph, class: DtClass) -> f64 {
    let r = ctx.rank();
    assert_eq!(ctx.size(), graph.num_nodes(), "world size != graph size");
    let comm = ctx.world();
    let preds = &graph.pred[r];
    let succs = &graph.succ[r];

    let data: smpi::SharedSlice<f64> = if preds.is_empty() {
        // Source: generate the feature array.
        let n = class.num_samples();
        let buf = ctx.shared_malloc::<f64>("dt:source", n);
        {
            let mut b = buf.lock();
            // Deterministic pseudo-features (NPB-style LCG).
            let mut seed = 271_828_183u64.wrapping_add(r as u64);
            for x in b.iter_mut() {
                seed = seed.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                *x = (seed >> 11) as f64 / (1u64 << 53) as f64;
            }
        }
        ctx.compute(n as f64 * FLOPS_PER_ELEMENT);
        buf
    } else {
        // Interior/sink: receive from every predecessor.
        let mut parts: HashMap<usize, Vec<f64>> = HashMap::new();
        let mut reqs = Vec::new();
        for &p in preds {
            // Sizes are deterministic: compute what p will send us.
            let len = incoming_len(graph, class, p, r);
            reqs.push((p, ctx.irecv::<f64>(p as i32, DT_TAG, len, &comm)));
        }
        for (p, req) in reqs {
            let (data, _) = ctx.wait_recv(req, &comm);
            parts.insert(p, data);
        }
        let total: usize = preds.iter().map(|p| parts[p].len()).sum();
        let buf = ctx.shared_malloc::<f64>(&node_site(graph, class, r), total);
        {
            let mut b = buf.lock();
            let mut off = 0;
            for &p in preds {
                let part = &parts[&p];
                b[off..off + part.len()].copy_from_slice(part);
                off += part.len();
            }
        }
        ctx.compute(total as f64 * FLOPS_PER_ELEMENT);
        buf
    };

    // Forward according to the shape's semantics.
    let payload = data.lock().clone();
    match graph.shape {
        DtGraph::Bh | DtGraph::Wh => {
            // Concatenation (BH) or replica (WH): whole buffer to each
            // successor.
            for &s in succs {
                ctx.send(&payload, s, DT_TAG, &comm);
            }
        }
        DtGraph::Sh => {
            // Split evenly among successors.
            if !succs.is_empty() {
                let k = succs.len();
                let chunk = payload.len() / k;
                for (j, &s) in succs.iter().enumerate() {
                    let lo = j * chunk;
                    let hi = if j == k - 1 {
                        payload.len()
                    } else {
                        lo + chunk
                    };
                    ctx.send(&payload[lo..hi], s, DT_TAG, &comm);
                }
            }
        }
    }

    let checksum = if succs.is_empty() {
        payload.iter().sum()
    } else {
        0.0
    };
    // Hold the buffer until every rank is done: the paper's Fig. 16 metric
    // is maximum *resident set size*, which never shrinks during a run —
    // buffers of early-finishing processes still count.
    drop(payload);
    ctx.barrier(&comm);
    drop(data);
    checksum
}

/// Number of elements rank `p` sends to its successor `r`, derived from the
/// graph semantics (deterministic, so receivers can size their buffers).
fn incoming_len(graph: &TaskGraph, class: DtClass, p: usize, r: usize) -> usize {
    let produced = produced_len(graph, class, p);
    match graph.shape {
        DtGraph::Bh | DtGraph::Wh => produced,
        DtGraph::Sh => {
            let k = graph.succ[p].len();
            let chunk = produced / k;
            // Last successor gets the remainder.
            let j = graph.succ[p].iter().position(|&s| s == r).expect("edge");
            if j == k - 1 {
                produced - chunk * (k - 1)
            } else {
                chunk
            }
        }
    }
}

/// Number of elements rank `p` holds after its combine step.
fn produced_len(graph: &TaskGraph, class: DtClass, p: usize) -> usize {
    if graph.pred[p].is_empty() {
        class.num_samples()
    } else {
        graph.pred[p]
            .iter()
            .map(|&q| incoming_len(graph, class, q, p))
            .sum()
    }
}

/// A stable site id for folding: nodes with identical (indegree, outdegree,
/// produced length) fold together — i.e. per graph layer, exactly as the
/// same `SMPI_SHARED_MALLOC` source line executed by every process of a
/// layer in the C original.
fn node_site(graph: &TaskGraph, class: DtClass, r: usize) -> String {
    format!(
        "dt:node:{}i{}o:{}",
        graph.pred[r].len(),
        graph.succ[r].len(),
        produced_len(graph, class, r)
    )
}

/// Total bytes a full run of this (class, shape) would keep live without
/// folding: the sum of every node's buffer (for Fig. 16 cross-checks).
pub fn unfolded_bytes(graph: &TaskGraph, class: DtClass) -> u64 {
    (0..graph.num_nodes())
        .map(|r| produced_len(graph, class, r) as u64 * 8)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_counts_match_the_paper() {
        assert_eq!(build_graph(DtClass::A, DtGraph::Bh).num_nodes(), 21);
        assert_eq!(build_graph(DtClass::B, DtGraph::Bh).num_nodes(), 43);
        assert_eq!(build_graph(DtClass::C, DtGraph::Bh).num_nodes(), 85);
        assert_eq!(build_graph(DtClass::A, DtGraph::Wh).num_nodes(), 21);
        assert_eq!(build_graph(DtClass::B, DtGraph::Wh).num_nodes(), 43);
        assert_eq!(build_graph(DtClass::C, DtGraph::Wh).num_nodes(), 85);
        assert_eq!(build_graph(DtClass::A, DtGraph::Sh).num_nodes(), 80);
        assert_eq!(build_graph(DtClass::B, DtGraph::Sh).num_nodes(), 192);
        assert_eq!(build_graph(DtClass::C, DtGraph::Sh).num_nodes(), 448);
    }

    #[test]
    fn bh_has_one_sink_many_sources() {
        let g = build_graph(DtClass::A, DtGraph::Bh);
        assert_eq!(g.sources().len(), 16);
        assert_eq!(g.sinks().len(), 1);
        // Sink is the last rank, fed by the 4 middle nodes.
        assert_eq!(g.pred[20].len(), 4);
    }

    #[test]
    fn wh_mirrors_bh() {
        let g = build_graph(DtClass::A, DtGraph::Wh);
        assert_eq!(g.sources(), vec![0]);
        assert_eq!(g.sinks().len(), 16);
        assert_eq!(g.succ[0].len(), 4);
    }

    #[test]
    fn sh_is_constant_width_butterfly() {
        let g = build_graph(DtClass::A, DtGraph::Sh);
        assert_eq!(g.sources().len(), 16);
        assert_eq!(g.sinks().len(), 16);
        // Interior nodes: 2 in, 2 out.
        for r in 16..64 {
            assert_eq!(g.pred[r].len(), 2, "rank {r}");
            assert_eq!(g.succ[r].len(), 2, "rank {r}");
        }
    }

    #[test]
    fn edges_are_acyclic_and_rank_ordered_for_fan_graphs() {
        for shape in [DtGraph::Bh, DtGraph::Wh, DtGraph::Sh] {
            let g = build_graph(DtClass::B, shape);
            // Topological sanity: walk from sources, every node reachable.
            let mut indeg: Vec<usize> = g.pred.iter().map(Vec::len).collect();
            let mut queue: Vec<usize> = g.sources();
            let mut seen = 0;
            while let Some(v) = queue.pop() {
                seen += 1;
                for &s in &g.succ[v] {
                    indeg[s] -= 1;
                    if indeg[s] == 0 {
                        queue.push(s);
                    }
                }
            }
            assert_eq!(seen, g.num_nodes(), "{shape:?} graph has a cycle");
        }
    }

    #[test]
    fn bh_volume_concentrates_at_sink() {
        let class = DtClass::A;
        let g = build_graph(class, DtGraph::Bh);
        let sink = g.sinks()[0];
        // The sink's combined buffer holds everything the sources produced.
        assert_eq!(produced_len(&g, class, sink), 16 * class.num_samples());
    }

    #[test]
    fn sh_conserves_volume_per_layer() {
        let class = DtClass::S;
        let g = build_graph(class, DtGraph::Sh);
        let w = class.leaves();
        let layers = g.num_nodes() / w;
        for l in 0..layers {
            let total: usize = (l * w..(l + 1) * w)
                .map(|r| produced_len(&g, class, r))
                .sum();
            assert_eq!(total, w * class.num_samples(), "layer {l}");
        }
    }

    #[test]
    fn unfolded_bytes_formula() {
        let class = DtClass::S;
        let g = build_graph(class, DtGraph::Wh);
        // WH: every node holds one source-array copy.
        assert_eq!(
            unfolded_bytes(&g, class),
            (g.num_nodes() * class.num_samples() * 8) as u64
        );
    }
}
