//! # smpi-workloads — the applications of the paper's evaluation
//!
//! * [`dt`] — the NAS Data Traffic benchmark (BH/WH/SH graphs, Figs. 13–16);
//! * [`ep`] — the NAS Embarrassingly Parallel benchmark (Fig. 18);
//! * [`kernels`] — the manual binomial scatter and pairwise all-to-all
//!   drivers (Figs. 7–12, 17).
//!
//! All workloads are written against the public `smpi` API exactly as a
//! user application would be; they run unchanged on the flow-level SMPI
//! backend and on the packet-level testbed backend.

pub mod dt;
pub mod ep;
pub mod kernels;

pub use dt::{build_graph, dt_rank, DtClass, DtGraph, TaskGraph};
pub use ep::{ep_block, ep_rank, EpConfig, EpPartial, EpResult};
pub use kernels::{timed_alltoall, timed_scatter, timed_scatter_folded};
