//! Property tests for the trace-diff alignment layer (ISSUE 10 S3).
//!
//! Two families of inputs:
//!
//! * **distinct-op traces** — every op carries a unique payload, so a
//!   single injected mutation / insertion / deletion has exactly one
//!   minimal alignment and the diff must localize it to the right rank
//!   *and* the right op index, with exact edit counts;
//! * **small-vocabulary traces** (the TITRACE2 codec's own generator
//!   style) — repetitive streams where alignments can be ambiguous; here
//!   the properties assert the invariants that hold regardless of which
//!   minimal alignment the resync picks (identity, length accounting,
//!   codec-roundtrip transparency for both v1 and v2 inputs).

use proptest::prelude::*;
use smpi::{decode_v2, encode_v2, TiOp, TiTrace, WaitMode};
use smpi_diff::{diff_trace_files, diff_traces, AlignConfig};

// ---------------------------------------------------------------- generators

/// Builds an op of the kind selected by `kind`, with every payload field
/// derived from `uid` so no two ops in one trace compare equal.
fn op_for(kind: u8, uid: u64) -> TiOp {
    match kind % 6 {
        0 => TiOp::Compute { flops: uid as f64 },
        1 => TiOp::Send {
            dst: 0,
            cid: 0,
            tag: uid as i32,
            bytes: uid,
        },
        2 => TiOp::Recv {
            src: 0,
            cid: 0,
            tag: uid as i32,
            max_bytes: uid,
        },
        3 => TiOp::Sleep {
            secs: uid as f64 * 1e-6,
        },
        4 => TiOp::Wait {
            reqs: vec![uid as u32],
            mode: WaitMode::All,
        },
        _ => TiOp::Region {
            name: format!("r{uid}"),
            enter: true,
        },
    }
}

/// An op that can never appear in a generated trace: `op_for` only makes
/// integral flop counts (uids start at 1), so a fractional one is safe to
/// inject as a guaranteed-foreign mutation or insertion.
fn mutant() -> TiOp {
    TiOp::Compute { flops: 0.5 }
}

/// Turns a grid of kind selectors into a trace of pairwise-distinct ops.
fn distinct_trace(kinds: &[Vec<u8>]) -> TiTrace {
    let mut uid = 0u64;
    let ranks = kinds
        .iter()
        .map(|ops| {
            ops.iter()
                .map(|&k| {
                    uid += 1;
                    op_for(k, uid)
                })
                .collect()
        })
        .collect();
    TiTrace { ranks }
}

/// Kind-selector grid: 1-5 ranks of 1-30 ops each (never empty, so an
/// edit site always exists).
fn arb_kinds() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(proptest::collection::vec(0u8..6, 1..30), 1..6)
}

/// Small-vocabulary trace: heavy repetition, including empty ranks.
fn arb_repetitive_trace() -> impl Strategy<Value = TiTrace> {
    let op = prop_oneof![
        (0u64..4).prop_map(|n| TiOp::Compute {
            flops: (n * 1000) as f64
        }),
        (0u32..3).prop_map(|dst| TiOp::Send {
            dst,
            cid: 0,
            tag: 7,
            bytes: 4096,
        }),
        (0i32..3).prop_map(|src| TiOp::Recv {
            src,
            cid: 0,
            tag: 7,
            max_bytes: 4096,
        }),
        Just(TiOp::Sleep { secs: 1.5e-6 }),
    ];
    proptest::collection::vec(proptest::collection::vec(op, 0..40), 1..5)
        .prop_map(|ranks| TiTrace { ranks })
}

/// Total op count of a trace.
fn total_ops(t: &TiTrace) -> u64 {
    t.ranks.iter().map(|r| r.len() as u64).sum()
}

/// Asserts that every rank other than `rank` is identical, and returns
/// rank `rank`'s diff.
macro_rules! only_rank_diverges {
    ($d:expr, $rank:expr) => {{
        for rd in &$d.ranks {
            prop_assert!(
                rd.is_identical() == (rd.rank != $rank),
                "rank {} identical={} (edit was in rank {})",
                rd.rank,
                rd.is_identical(),
                $rank
            );
        }
        &$d.ranks[$rank]
    }};
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn identical_traces_diff_empty(kinds in arb_kinds()) {
        let t = distinct_trace(&kinds);
        let d = diff_traces(&t, &t, &AlignConfig::default());
        prop_assert!(d.is_identical());
        let (matched, mutated, added, removed, _) = d.totals();
        prop_assert_eq!(matched, total_ops(&t));
        prop_assert_eq!(mutated + added + removed, 0);
        // Determinism: repeat invocations serialize byte-identically.
        prop_assert_eq!(
            d.to_json(),
            diff_traces(&t, &t, &AlignConfig::default()).to_json()
        );
    }

    #[test]
    fn identical_repetitive_traces_diff_empty_via_both_codecs(
        t in arb_repetitive_trace()
    ) {
        // A trace compared against its own v1 and v2 codec round-trips
        // must diff empty: the codecs are transparent to the aligner.
        let v1 = TiTrace::decode(&t.encode()).expect("v1 round-trip");
        let v2 = decode_v2(&encode_v2(&t)).expect("v2 round-trip");
        let d1 = diff_traces(&t, &v1, &AlignConfig::default());
        prop_assert!(d1.is_identical(), "v1 round-trip diverged:\n{}", d1.render());
        let d2 = diff_traces(&t, &v2, &AlignConfig::default());
        prop_assert!(d2.is_identical(), "v2 round-trip diverged:\n{}", d2.render());
    }

    #[test]
    fn single_mutation_is_localized_to_rank_and_index(
        kinds in arb_kinds(),
        sel in (0u64..1 << 32, 0u64..1 << 32),
    ) {
        let a = distinct_trace(&kinds);
        let rank = (sel.0 % a.ranks.len() as u64) as usize;
        let i = (sel.1 % a.ranks[rank].len() as u64) as usize;
        let mut b = a.clone();
        b.ranks[rank][i] = mutant();

        let d = diff_traces(&a, &b, &AlignConfig::default());
        let rd = only_rank_diverges!(&d, rank);
        let f = rd.first.as_ref().expect("mutated rank diverges");
        prop_assert_eq!((f.index_a, f.index_b), (i as u64, i as u64));
        prop_assert_eq!(f.kind, "mismatch");
        prop_assert_eq!(&f.a[0], &a.ranks[rank][i].line());
        prop_assert_eq!(&f.b[0], &mutant().line());
        let (matched, mutated, added, removed, _) = d.totals();
        prop_assert_eq!(
            (matched, mutated, added, removed),
            (total_ops(&a) - 1, 1, 0, 0)
        );
    }

    #[test]
    fn single_insertion_is_localized_to_rank_and_index(
        kinds in arb_kinds(),
        sel in (0u64..1 << 32, 0u64..1 << 32),
    ) {
        let a = distinct_trace(&kinds);
        let rank = (sel.0 % a.ranks.len() as u64) as usize;
        let i = (sel.1 % (a.ranks[rank].len() as u64 + 1)) as usize; // 0..=len
        let mut b = a.clone();
        b.ranks[rank].insert(i, mutant());

        let d = diff_traces(&a, &b, &AlignConfig::default());
        let rd = only_rank_diverges!(&d, rank);
        let f = rd.first.as_ref().expect("rank with insertion diverges");
        prop_assert_eq!((f.index_a, f.index_b), (i as u64, i as u64));
        let at_end = i == a.ranks[rank].len();
        prop_assert_eq!(f.kind, if at_end { "tail_b" } else { "mismatch" });
        let (matched, mutated, added, removed, _) = d.totals();
        prop_assert_eq!(
            (matched, mutated, added, removed),
            (total_ops(&a), 0, 1, 0)
        );
    }

    #[test]
    fn single_deletion_is_localized_to_rank_and_index(
        kinds in arb_kinds(),
        sel in (0u64..1 << 32, 0u64..1 << 32),
    ) {
        let a = distinct_trace(&kinds);
        let rank = (sel.0 % a.ranks.len() as u64) as usize;
        let i = (sel.1 % a.ranks[rank].len() as u64) as usize;
        let mut b = a.clone();
        b.ranks[rank].remove(i);

        let d = diff_traces(&a, &b, &AlignConfig::default());
        let rd = only_rank_diverges!(&d, rank);
        let f = rd.first.as_ref().expect("rank with deletion diverges");
        prop_assert_eq!((f.index_a, f.index_b), (i as u64, i as u64));
        let at_end = i + 1 == a.ranks[rank].len();
        prop_assert_eq!(f.kind, if at_end { "tail_a" } else { "mismatch" });
        let (matched, mutated, added, removed, _) = d.totals();
        prop_assert_eq!(
            (matched, mutated, added, removed),
            (total_ops(&a) - 1, 0, 0, 1)
        );
    }

    #[test]
    fn length_accounting_holds_for_unrelated_traces(
        ta in arb_repetitive_trace(),
        tb in arb_repetitive_trace(),
    ) {
        // Whatever alignment the resync picks, every op of each stream is
        // classified exactly once.
        let d = diff_traces(&ta, &tb, &AlignConfig::default());
        for rd in &d.ranks {
            prop_assert_eq!(rd.matched + rd.mutated + rd.removed, rd.len_a);
            prop_assert_eq!(rd.matched + rd.mutated + rd.added, rd.len_b);
        }
        let by_kind_edits: u64 = d
            .by_kind
            .iter()
            .map(|(_, c)| c.mutated + c.added + c.removed)
            .sum();
        let (_, mutated, added, removed, _) = d.totals();
        prop_assert_eq!(by_kind_edits, mutated + added + removed);
    }
}

proptest! {
    // File-based round trips do real IO; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn file_diff_streams_v1_against_v2(
        kinds in arb_kinds(),
        sel in (0u64..1 << 32, 0u64..1 << 32),
    ) {
        use std::sync::atomic::{AtomicU64, Ordering};
        static CASE: AtomicU64 = AtomicU64::new(0);
        let a = distinct_trace(&kinds);
        let rank = (sel.0 % a.ranks.len() as u64) as usize;
        let i = (sel.1 % a.ranks[rank].len() as u64) as usize;
        let mut b = a.clone();
        b.ranks[rank][i] = mutant();

        let dir = std::env::temp_dir().join(format!(
            "smpi_diff_props_{}_{}",
            std::process::id(),
            CASE.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let pa = dir.join("a.tit");
        let pb = dir.join("b.tit2");
        std::fs::write(&pa, a.encode()).unwrap();
        std::fs::write(&pb, encode_v2(&b)).unwrap();

        // v1 text against v2 binary of the mutated twin: the streaming
        // file path finds the same single divergence as the in-memory one.
        let d = diff_trace_files(&pa, &pb, &AlignConfig::default()).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        let rd = only_rank_diverges!(&d, rank);
        let f = rd.first.as_ref().expect("mutated rank diverges");
        prop_assert_eq!((f.index_a, f.index_b), (i as u64, i as u64));
        prop_assert_eq!(d.totals().1, 1);

        // And the self-diff through both files stays empty.
        let mem = diff_traces(&a, &b, &AlignConfig::default());
        prop_assert_eq!(d.to_json(), mem.to_json());
    }
}
