//! Divergence-aware golden-text assertions.
//!
//! The workspace pins its e2e reports to committed golden files. A raw
//! `assert_eq!` on two multi-kilobyte strings reports "bytes differ" and
//! leaves diagnosis to the reader; [`assert_golden`] instead aligns the
//! two texts line by line with [`crate::align`], prints the first
//! divergent line with context, and writes the full divergence JSON to
//! `target/diff/<name>.divergence.json` so CI can upload it as an
//! artifact.

use crate::align::{align_streams, AlignConfig, DivergeKind};
use smpi_obs::json::JsonBuf;

/// Line-level divergence report between an actual and a golden text.
#[derive(Debug, Clone)]
pub struct GoldenDiff {
    /// Identifier used for the artifact file name.
    pub name: String,
    /// Matched lines.
    pub matched: u64,
    /// Aligned-but-different line pairs.
    pub mutated: u64,
    /// Lines only in the actual text.
    pub added: u64,
    /// Lines only in the golden text.
    pub removed: u64,
    /// First divergent line: `(golden_line, actual_line)` 0-based indices.
    pub first: Option<(u64, u64)>,
    /// Matched context before the divergence.
    pub context: Vec<String>,
    /// Golden lines from the divergence point.
    pub want: Vec<String>,
    /// Actual lines from the divergence point.
    pub got: Vec<String>,
}

impl GoldenDiff {
    /// `true` when the texts are line-for-line identical.
    pub fn is_identical(&self) -> bool {
        self.first.is_none()
    }

    /// Deterministic JSON artifact.
    pub fn to_json(&self) -> String {
        let mut j = JsonBuf::new();
        j.begin_obj();
        j.key("kind").str_val("golden_diff");
        j.key("name").str_val(&self.name);
        j.key("identical").bool_val(self.is_identical());
        j.key("matched").uint_val(self.matched);
        j.key("mutated").uint_val(self.mutated);
        j.key("added").uint_val(self.added);
        j.key("removed").uint_val(self.removed);
        if let Some((iw, ig)) = self.first {
            j.key("first").begin_obj();
            j.key("golden_line").uint_val(iw);
            j.key("actual_line").uint_val(ig);
            let arr = |j: &mut JsonBuf, key: &str, items: &[String]| {
                j.key(key).begin_arr();
                for it in items {
                    j.str_val(it);
                }
                j.end_arr();
            };
            arr(&mut j, "context", &self.context);
            arr(&mut j, "golden", &self.want);
            arr(&mut j, "actual", &self.got);
            j.end_obj();
        }
        j.end_obj();
        j.finish()
    }

    /// Human-readable divergence report (what the failing assert prints).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "golden {:?} diverged: {} matched, {} mutated, {} added, {} removed lines",
            self.name, self.matched, self.mutated, self.added, self.removed
        );
        if let Some((iw, ig)) = self.first {
            let _ = writeln!(
                out,
                "first divergence at golden line {} / actual line {}:",
                iw + 1,
                ig + 1
            );
            for l in &self.context {
                let _ = writeln!(out, "       = {l}");
            }
            for l in &self.want {
                let _ = writeln!(out, "  want > {l}");
            }
            if self.want.is_empty() {
                let _ = writeln!(out, "  want > (end of golden)");
            }
            for l in &self.got {
                let _ = writeln!(out, "   got > {l}");
            }
            if self.got.is_empty() {
                let _ = writeln!(out, "   got > (end of actual)");
            }
        }
        out
    }
}

/// Aligns `got` against the golden `want` line by line.
pub fn diff_golden(name: &str, want: &str, got: &str) -> GoldenDiff {
    let cfg = AlignConfig {
        context: 2,
        ..AlignConfig::default()
    };
    let d = align_streams(
        want.lines().map(str::to_string),
        got.lines().map(str::to_string),
        &cfg,
        |_, _, _| {},
    );
    GoldenDiff {
        name: name.to_string(),
        matched: d.matched,
        mutated: d.mutated,
        added: d.added,
        removed: d.removed,
        first: d.first.as_ref().map(|f| (f.index_a, f.index_b)),
        context: d
            .first
            .as_ref()
            .map(|f| f.context.clone())
            .unwrap_or_default(),
        want: d
            .first
            .as_ref()
            .filter(|f| f.kind != DivergeKind::TailB)
            .map(|f| f.a.clone())
            .unwrap_or_default(),
        got: d
            .first
            .as_ref()
            .filter(|f| f.kind != DivergeKind::TailA)
            .map(|f| f.b.clone())
            .unwrap_or_default(),
    }
}

/// Compares `got` against the golden `want`. On divergence, writes
/// `target/diff/<name>.divergence.json` and panics with the line-level
/// divergence report instead of a raw byte mismatch. An exact match (the
/// entire strings, not just their lines) passes silently.
pub fn assert_golden(name: &str, want: &str, got: &str) {
    if want == got {
        return;
    }
    let d = diff_golden(name, want, got);
    let dir = std::path::Path::new("target/diff");
    let artifact = dir.join(format!("{name}.divergence.json"));
    let wrote = std::fs::create_dir_all(dir)
        .and_then(|()| std::fs::write(&artifact, d.to_json()))
        .is_ok();
    let mut msg = d.render();
    if d.is_identical() {
        // Same lines, different bytes: only line terminators can differ.
        msg.push_str("texts differ only in line endings / trailing newline\n");
    }
    if wrote {
        msg.push_str(&format!("full report: {}\n", artifact.display()));
    }
    panic!("{msg}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_text_passes() {
        assert_golden("same", "a\nb\n", "a\nb\n");
    }

    #[test]
    fn divergence_names_the_first_line() {
        let d = diff_golden("t", "a\nb\nc\n", "a\nX\nc\n");
        assert!(!d.is_identical());
        assert_eq!(d.first, Some((1, 1)));
        assert_eq!(d.mutated, 1);
        let r = d.render();
        assert!(r.contains("first divergence at golden line 2 / actual line 2"));
        assert!(r.contains("want > b"));
        assert!(r.contains("got > X"));
        crate::json_in::JsonValue::parse(&d.to_json()).expect("valid JSON");
    }

    #[test]
    #[should_panic(expected = "first divergence at golden line 2")]
    fn assert_panics_with_line_report() {
        assert_golden("panic_case", "a\nb\n", "a\nB\n");
    }
}
