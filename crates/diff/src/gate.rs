//! Benchmark regression gates and trend history.
//!
//! Consolidates the per-job CI ratio checks (kernel, scale, sweep, trace)
//! into one declarative engine: each [`GateSpec`] names a metric inside a
//! `BENCH_*.json` document (via the selector language of
//! [`crate::json_in::JsonValue::select`]), an absolute floor, and an
//! optional ratio against the *committed* reference version of the same
//! file (`git show HEAD:BENCH_*.json`). Ratios compare two measurements
//! of the same quantity, so they survive runner-speed variance; absolute
//! floors encode hardware-independent format promises (e.g. the TITRACE2
//! 5x compression ratio).
//!
//! Every evaluation can also be appended to `target/bench_history.jsonl`
//! (one JSON object per line), and [`trends`] folds that log into
//! per-metric trajectories — first/last/min/max — so a slow drift that
//! never trips a single gate is still visible.

use std::io::Write as _;
use std::path::Path;

use smpi_obs::json::{num, JsonBuf};

use crate::json_in::JsonValue;

/// One declarative regression gate.
#[derive(Debug, Clone)]
pub struct GateSpec {
    /// Gate name, conventionally `<bench>.<metric>`.
    pub name: &'static str,
    /// Benchmark document holding the metric (path relative to the
    /// working directory, e.g. `BENCH_kernel.json`).
    pub file: &'static str,
    /// Selector for the gated metric inside the document.
    pub selector: &'static str,
    /// Hardware-independent absolute floor (`0.0` disables it).
    pub floor_abs: f64,
    /// Ratio against the committed reference: the effective floor becomes
    /// `max(floor_abs, ref_ratio × reference_value)` when the reference
    /// resolves (`0.0` disables the ratio check).
    pub ref_ratio: f64,
    /// Skip guard: evaluate the gate only when this selector (in the same
    /// document) is `>=` the given value — e.g. a parallel-speedup gate
    /// that is meaningless on a 2-core runner.
    pub enable_if: Option<(&'static str, f64)>,
}

/// Outcome of one gate.
#[derive(Debug, Clone)]
pub struct GateOutcome {
    /// Gate name.
    pub name: &'static str,
    /// Measured value (`None` when the document or selector was missing).
    pub current: Option<f64>,
    /// Reference value from the committed document, when resolvable.
    pub reference: Option<f64>,
    /// Effective floor the measurement was held to.
    pub floor: f64,
    /// `"pass"`, `"fail"` or `"skip"`.
    pub status: &'static str,
    /// Human-readable detail (skip reason, missing file, …).
    pub note: String,
}

/// All gate outcomes of one evaluation.
#[derive(Debug, Clone)]
pub struct GateReport {
    /// Per-gate outcomes, in spec order.
    pub outcomes: Vec<GateOutcome>,
}

impl GateReport {
    /// `true` when no gate failed (skipped gates do not fail).
    pub fn pass(&self) -> bool {
        self.outcomes.iter().all(|o| o.status != "fail")
    }

    /// Deterministic JSON document (schema in EXPERIMENTS.md).
    pub fn to_json(&self) -> String {
        let mut j = JsonBuf::new();
        j.begin_obj();
        j.key("kind").str_val("gate_report");
        j.key("pass").bool_val(self.pass());
        j.key("gates").begin_arr();
        for o in &self.outcomes {
            j.begin_obj();
            j.key("name").str_val(o.name);
            j.key("status").str_val(o.status);
            match o.current {
                Some(v) => j.key("current").num_val(v),
                None => j.key("current").raw_val("null"),
            };
            match o.reference {
                Some(v) => j.key("reference").num_val(v),
                None => j.key("reference").raw_val("null"),
            };
            j.key("floor").num_val(o.floor);
            j.key("note").str_val(&o.note);
            j.end_obj();
        }
        j.end_arr();
        j.end_obj();
        j.finish()
    }

    /// Human-readable rendering; the final line starts with `GATE: PASS`
    /// or `GATE: FAIL` (the `repro` binary keys its exit status off it).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for o in &self.outcomes {
            let cur = o
                .current
                .map_or_else(|| "-".to_string(), |v| num(v).to_string());
            let refv = o
                .reference
                .map_or_else(|| "-".to_string(), |v| num(v).to_string());
            let _ = writeln!(
                out,
                "gate {:<24} {:>12} (ref {:>12}, floor {:>10}) {}{}",
                o.name,
                cur,
                refv,
                num(o.floor),
                o.status.to_uppercase(),
                if o.note.is_empty() {
                    String::new()
                } else {
                    format!(" — {}", o.note)
                }
            );
        }
        let failed = self.outcomes.iter().filter(|o| o.status == "fail").count();
        let skipped = self.outcomes.iter().filter(|o| o.status == "skip").count();
        let _ = writeln!(
            out,
            "GATE: {} ({} gates, {failed} failed, {skipped} skipped)",
            if self.pass() { "PASS" } else { "FAIL" },
            self.outcomes.len(),
        );
        out
    }
}

/// Loads the committed (`git show HEAD:<file>`) version of a benchmark
/// document, or `None` when git or the committed file is unavailable —
/// ratio checks then degrade to their absolute floors, exactly like the
/// per-job scripts this engine replaces.
pub fn git_reference(file: &str) -> Option<String> {
    let out = std::process::Command::new("git")
        .args(["show", &format!("HEAD:{file}")])
        .output()
        .ok()?;
    if out.status.success() {
        String::from_utf8(out.stdout).ok()
    } else {
        None
    }
}

/// Evaluates `specs` against the current benchmark documents on disk,
/// resolving references through `reference` (normally [`git_reference`];
/// injectable for tests). A missing document or selector fails the gate —
/// a gate that cannot measure must not pass silently.
pub fn run_gates<F>(specs: &[GateSpec], reference: F) -> GateReport
where
    F: Fn(&str) -> Option<String>,
{
    let mut docs: std::collections::BTreeMap<&str, Option<JsonValue>> = Default::default();
    let mut refs: std::collections::BTreeMap<&str, Option<JsonValue>> = Default::default();
    let mut outcomes = Vec::with_capacity(specs.len());
    for spec in specs {
        let doc = docs
            .entry(spec.file)
            .or_insert_with(|| {
                std::fs::read_to_string(spec.file)
                    .ok()
                    .and_then(|t| JsonValue::parse(&t).ok())
            })
            .as_ref();
        let Some(doc) = doc else {
            outcomes.push(GateOutcome {
                name: spec.name,
                current: None,
                reference: None,
                floor: spec.floor_abs,
                status: "fail",
                note: format!("{} missing or unparsable", spec.file),
            });
            continue;
        };
        if let Some((sel, min)) = &spec.enable_if {
            let guard = doc.select_f64(sel);
            if guard.is_none_or(|g| g < *min) {
                outcomes.push(GateOutcome {
                    name: spec.name,
                    current: doc.select_f64(spec.selector),
                    reference: None,
                    floor: spec.floor_abs,
                    status: "skip",
                    note: format!(
                        "guard {sel}={} < {min}",
                        guard.map_or_else(|| "absent".into(), |g| num(g).to_string())
                    ),
                });
                continue;
            }
        }
        let Some(current) = doc.select_f64(spec.selector) else {
            outcomes.push(GateOutcome {
                name: spec.name,
                current: None,
                reference: None,
                floor: spec.floor_abs,
                status: "fail",
                note: format!("selector {} not found in {}", spec.selector, spec.file),
            });
            continue;
        };
        let refv = if spec.ref_ratio > 0.0 {
            refs.entry(spec.file)
                .or_insert_with(|| reference(spec.file).and_then(|t| JsonValue::parse(&t).ok()))
                .as_ref()
                .and_then(|r| r.select_f64(spec.selector))
        } else {
            None
        };
        let mut floor = spec.floor_abs;
        let mut note = String::new();
        match refv {
            Some(r) => floor = floor.max(spec.ref_ratio * r),
            None if spec.ref_ratio > 0.0 => {
                note = "no committed reference; absolute floor only".into();
            }
            None => {}
        }
        outcomes.push(GateOutcome {
            name: spec.name,
            current: Some(current),
            reference: refv,
            floor,
            status: if current >= floor { "pass" } else { "fail" },
            note,
        });
    }
    GateReport { outcomes }
}

/// Appends one evaluation to the JSON-lines history log. `stamp` is an
/// opaque label for the entry (commit id, ISO date, …) recorded verbatim;
/// metric values come from the passed outcomes' measurements.
pub fn append_history(
    path: impl AsRef<Path>,
    stamp: &str,
    report: &GateReport,
) -> std::io::Result<()> {
    if let Some(dir) = path.as_ref().parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut j = JsonBuf::new();
    j.begin_obj();
    j.key("stamp").str_val(stamp);
    j.key("pass").bool_val(report.pass());
    j.key("metrics").begin_obj();
    for o in &report.outcomes {
        if let Some(v) = o.current {
            j.key(o.name).num_val(v);
        }
    }
    j.end_obj();
    j.end_obj();
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(f, "{}", j.finish())
}

/// Per-metric trajectory folded from the history log.
#[derive(Debug, Clone, PartialEq)]
pub struct Trend {
    /// Metric (gate) name.
    pub name: String,
    /// Entries carrying this metric.
    pub n: usize,
    /// Oldest recorded value.
    pub first: f64,
    /// Newest recorded value.
    pub last: f64,
    /// Smallest recorded value.
    pub min: f64,
    /// Largest recorded value.
    pub max: f64,
}

/// Parses `bench_history.jsonl` and folds each metric into a [`Trend`]
/// (sorted by name). Unparsable lines are skipped — the log is append-only
/// and may span format generations.
pub fn trends(path: impl AsRef<Path>) -> Vec<Trend> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut acc: std::collections::BTreeMap<String, Trend> = Default::default();
    for line in text.lines() {
        let Ok(v) = JsonValue::parse(line) else {
            continue;
        };
        let Some(JsonValue::Obj(metrics)) = v.get("metrics") else {
            continue;
        };
        for (name, val) in metrics {
            let Some(x) = val.as_f64() else { continue };
            acc.entry(name.clone())
                .and_modify(|t| {
                    t.n += 1;
                    t.last = x;
                    t.min = t.min.min(x);
                    t.max = t.max.max(x);
                })
                .or_insert(Trend {
                    name: name.clone(),
                    n: 1,
                    first: x,
                    last: x,
                    min: x,
                    max: x,
                });
        }
    }
    acc.into_values().collect()
}

/// Renders trends as a compact table (empty string when no history).
pub fn render_trends(trends: &[Trend]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    if trends.is_empty() {
        return out;
    }
    let _ = writeln!(out, "bench history trends:");
    for t in trends {
        let _ = writeln!(
            out,
            "  {:<24} n={:<3} first {:>12} last {:>12} min {:>12} max {:>12}",
            t.name,
            t.n,
            num(t.first),
            num(t.last),
            num(t.min),
            num(t.max)
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("smpi_gate_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn gates_evaluate_floors_ratios_and_guards() {
        let dir = tmpdir("eval");
        let file = dir.join("BENCH_t.json");
        std::fs::write(
            &file,
            r#"{"speedup":8.0,"cores":2,"par":1.1,"tiers":[{"ranks":4096,"rate":100.0}]}"#,
        )
        .unwrap();
        // run_gates reads from the cwd-relative spec.file; leak the path to
        // get the 'static lifetime the spec wants in this test.
        let fname: &'static str = Box::leak(file.to_str().unwrap().to_string().into_boxed_str());
        let specs = [
            GateSpec {
                name: "t.speedup",
                file: fname,
                selector: "speedup",
                floor_abs: 5.0,
                ref_ratio: 0.2,
                enable_if: None,
            },
            GateSpec {
                name: "t.rate4k",
                file: fname,
                selector: "tiers[ranks=4096].rate",
                floor_abs: 0.0,
                ref_ratio: 0.1,
                enable_if: None,
            },
            GateSpec {
                name: "t.par",
                file: fname,
                selector: "par",
                floor_abs: 3.0,
                ref_ratio: 0.0,
                enable_if: Some(("cores", 4.0)),
            },
        ];
        // Reference claims speedup 100 -> floor max(5, 20) = 20 > 8: fail.
        let r = run_gates(&specs, |_| {
            Some(r#"{"speedup":100.0,"tiers":[{"ranks":4096,"rate":50.0}]}"#.into())
        });
        assert_eq!(r.outcomes[0].status, "fail");
        assert_eq!(r.outcomes[1].status, "pass"); // 100 >= 0.1*50
        assert_eq!(r.outcomes[2].status, "skip"); // 2 cores < 4
        assert!(!r.pass());
        assert!(r.render().contains("GATE: FAIL"));
        // No reference: ratio degrades to the absolute floor; 8 >= 5.
        let r = run_gates(&specs, |_| None);
        assert_eq!(r.outcomes[0].status, "pass");
        assert!(r.pass());
        assert!(r.render().contains("GATE: PASS"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_document_fails_not_passes() {
        let specs = [GateSpec {
            name: "ghost",
            file: "definitely_missing_BENCH.json",
            selector: "x",
            floor_abs: 1.0,
            ref_ratio: 0.0,
            enable_if: None,
        }];
        let r = run_gates(&specs, |_| None);
        assert_eq!(r.outcomes[0].status, "fail");
    }

    #[test]
    fn history_appends_and_trends_fold() {
        let dir = tmpdir("hist");
        let path = dir.join("bench_history.jsonl");
        let mk = |v: f64| GateReport {
            outcomes: vec![GateOutcome {
                name: "k.speedup",
                current: Some(v),
                reference: None,
                floor: 0.0,
                status: "pass",
                note: String::new(),
            }],
        };
        append_history(&path, "one", &mk(10.0)).unwrap();
        append_history(&path, "two", &mk(14.0)).unwrap();
        append_history(&path, "three", &mk(12.0)).unwrap();
        let ts = trends(&path);
        assert_eq!(ts.len(), 1);
        assert_eq!(ts[0].n, 3);
        assert_eq!((ts[0].first, ts[0].last), (10.0, 12.0));
        assert_eq!((ts[0].min, ts[0].max), (10.0, 14.0));
        assert!(render_trends(&ts).contains("k.speedup"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
