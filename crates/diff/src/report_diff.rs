//! Deep structural comparison of two [`RunReport`]s.
//!
//! Where the trace diff explains how two runs' *op streams* differ, this
//! layer explains how their *observations* differ: makespan and per-rank
//! finish times, metrics counters (top-k movers), self-profile phases,
//! kernel counters, time series re-bucketed onto a common grid,
//! per-link/per-rank contention attribution, and the critical path. Only
//! simulated (deterministic) quantities are compared — wall-clock fields
//! are deliberately excluded so the diff JSON is byte-identical across
//! repeated invocations on the same pair of runs.

use smpi::RunReport;
use smpi_obs::json::{num, JsonBuf};
use smpi_obs::{ContentionReport, MetricsReport, TimeSeries};

/// One metric key whose value moved between the runs.
#[derive(Debug, Clone)]
pub struct Mover {
    /// Namespaced metric key (`counter:…`, `fcounter:…`, `hwm:…`).
    pub key: String,
    /// Value in run A (0 when the key is absent).
    pub a: f64,
    /// Value in run B.
    pub b: f64,
}

impl Mover {
    /// Signed change `b - a`.
    pub fn delta(&self) -> f64 {
        self.b - self.a
    }
}

/// Metrics-layer diff: top movers plus key-population accounting.
#[derive(Debug, Clone)]
pub struct MetricsDiff {
    /// The `top_k` keys with the largest absolute change, largest first.
    pub movers: Vec<Mover>,
    /// Keys present in both runs with different values.
    pub changed: u64,
    /// Keys present only in run A.
    pub only_a: u64,
    /// Keys present only in run B.
    pub only_b: u64,
    /// Total distinct keys across both runs.
    pub total: u64,
}

/// Time-series diff on a common grid.
#[derive(Debug, Clone)]
pub struct TsDiff {
    /// Common bucket width (the coarser of the two intervals; intervals
    /// are `1e-6 · 2^h`, so re-bucketing folds exactly).
    pub interval: f64,
    /// Buckets on the common grid.
    pub buckets: usize,
    /// Bucket with the largest absolute simcall-count change.
    pub peak_bucket: usize,
    /// That bucket's simcall counts in A and B.
    pub peak: (u64, u64),
    /// Total simcalls in A and B.
    pub simcalls: (u64, u64),
    /// Total busy (active) link-seconds in A and B.
    pub active_time: (f64, f64),
}

/// Per-link contention change.
#[derive(Debug, Clone)]
pub struct LinkDelta {
    /// Link name.
    pub name: String,
    /// Seconds this link was some flow's max-min bottleneck, A then B.
    pub bottleneck: (f64, f64),
    /// Byte-share integral through the link, A then B.
    pub share_bytes: (f64, f64),
    /// Flows that traversed the link, A then B.
    pub flows: (u64, u64),
}

/// Contention-attribution diff.
#[derive(Debug, Clone)]
pub struct ContentionDiff {
    /// Per-link deltas sorted by absolute bottleneck-seconds change,
    /// largest first (ties by name). Links identical in both runs are
    /// omitted.
    pub links: Vec<LinkDelta>,
    /// Per-rank blocked-on-network seconds `(rank, a, b)`, sorted by
    /// absolute change, largest first; unchanged ranks omitted.
    pub ranks: Vec<(u32, f64, f64)>,
}

impl ContentionDiff {
    /// Name of the link whose bottleneck residency moved the most.
    pub fn top_mover(&self) -> Option<&str> {
        self.links.first().map(|l| l.name.as_str())
    }
}

/// Critical-path diff.
#[derive(Debug, Clone)]
pub struct CpDiff {
    /// Chain length (simulated seconds) in A and B.
    pub total: (f64, f64),
    /// Segments on B's path but not A's (new bottleneck participants).
    pub entered: Vec<String>,
    /// Segments on A's path but not B's.
    pub left: Vec<String>,
    /// Segments on both paths with changed attribution `(name, a, b)`,
    /// sorted by absolute change, largest first.
    pub moved: Vec<(String, f64, f64)>,
}

/// Full structural diff of two run reports.
#[derive(Debug, Clone)]
pub struct ReportDiff {
    /// Makespan in A and B.
    pub sim_time: (f64, f64),
    /// Rank counts in A and B.
    pub nranks: (usize, usize),
    /// Ranks whose finish time changed.
    pub finish_changed: u64,
    /// Largest absolute finish-time change and the rank it happened on.
    pub finish_peak: (usize, f64),
    /// Per-phase self-profile `(phase, a_secs, b_secs)` — only phases
    /// whose wall share changed; empty when either side lacks phases.
    /// (Phases are wall-clock and excluded from JSON; kept here for
    /// interactive inspection.)
    pub phases: Vec<(String, f64, f64)>,
    /// Kernel counter deltas `(counter, a, b)`; only changed counters.
    pub kernel: Vec<(&'static str, u64, u64)>,
    /// Metrics diff (`None` unless both runs carried metrics).
    pub metrics: Option<MetricsDiff>,
    /// Time-series diff (`None` unless both runs carried a time series).
    pub timeseries: Option<TsDiff>,
    /// Contention diff (`None` unless both runs carried attribution).
    pub contention: Option<ContentionDiff>,
    /// Critical-path diff (`None` unless both runs were traced).
    pub critical_path: Option<CpDiff>,
}

impl ReportDiff {
    /// `true` when every compared (simulated) quantity is identical.
    pub fn is_identical(&self) -> bool {
        self.sim_time.0 == self.sim_time.1
            && self.nranks.0 == self.nranks.1
            && self.finish_changed == 0
            && self.kernel.is_empty()
            && self
                .metrics
                .as_ref()
                .is_none_or(|m| m.changed == 0 && m.only_a == 0 && m.only_b == 0)
            && self
                .timeseries
                .as_ref()
                .is_none_or(|t| t.simcalls.0 == t.simcalls.1 && t.peak.0 == t.peak.1)
            && self
                .contention
                .as_ref()
                .is_none_or(|c| c.links.is_empty() && c.ranks.is_empty())
            && self.critical_path.as_ref().is_none_or(|cp| {
                cp.total.0 == cp.total.1 && cp.entered.is_empty() && cp.left.is_empty()
            })
    }

    /// Deterministic JSON document (schema in EXPERIMENTS.md). Wall-clock
    /// fields are excluded, so the bytes are stable across invocations.
    pub fn to_json(&self) -> String {
        let pair = |j: &mut JsonBuf, key: &str, a: f64, b: f64| {
            j.key(key).begin_obj();
            j.key("a").num_val(a);
            j.key("b").num_val(b);
            j.key("delta").num_val(b - a);
            j.end_obj();
        };
        let mut j = JsonBuf::new();
        j.begin_obj();
        j.key("kind").str_val("report_diff");
        j.key("identical").bool_val(self.is_identical());
        pair(&mut j, "sim_time", self.sim_time.0, self.sim_time.1);
        j.key("nranks").begin_arr();
        j.uint_val(self.nranks.0 as u64)
            .uint_val(self.nranks.1 as u64);
        j.end_arr();
        j.key("finish").begin_obj();
        j.key("changed").uint_val(self.finish_changed);
        j.key("peak_rank").uint_val(self.finish_peak.0 as u64);
        j.key("peak_delta").num_val(self.finish_peak.1);
        j.end_obj();
        j.key("kernel").begin_arr();
        for (name, a, b) in &self.kernel {
            j.begin_obj();
            j.key("counter").str_val(name);
            j.key("a").uint_val(*a);
            j.key("b").uint_val(*b);
            j.end_obj();
        }
        j.end_arr();
        if let Some(m) = &self.metrics {
            j.key("metrics").begin_obj();
            j.key("changed").uint_val(m.changed);
            j.key("only_a").uint_val(m.only_a);
            j.key("only_b").uint_val(m.only_b);
            j.key("total").uint_val(m.total);
            j.key("movers").begin_arr();
            for mv in &m.movers {
                j.begin_obj();
                j.key("key").str_val(&mv.key);
                j.key("a").num_val(mv.a);
                j.key("b").num_val(mv.b);
                j.key("delta").num_val(mv.delta());
                j.end_obj();
            }
            j.end_arr();
            j.end_obj();
        }
        if let Some(t) = &self.timeseries {
            j.key("timeseries").begin_obj();
            j.key("interval").num_val(t.interval);
            j.key("buckets").uint_val(t.buckets as u64);
            j.key("peak_bucket").uint_val(t.peak_bucket as u64);
            j.key("peak_simcalls").begin_arr();
            j.uint_val(t.peak.0).uint_val(t.peak.1);
            j.end_arr();
            j.key("simcalls").begin_arr();
            j.uint_val(t.simcalls.0).uint_val(t.simcalls.1);
            j.end_arr();
            pair(&mut j, "active_time", t.active_time.0, t.active_time.1);
            j.end_obj();
        }
        if let Some(c) = &self.contention {
            j.key("contention").begin_obj();
            j.key("links").begin_arr();
            for l in &c.links {
                j.begin_obj();
                j.key("link").str_val(&l.name);
                pair(&mut j, "bottleneck_secs", l.bottleneck.0, l.bottleneck.1);
                pair(&mut j, "share_bytes", l.share_bytes.0, l.share_bytes.1);
                j.key("flows").begin_arr();
                j.uint_val(l.flows.0).uint_val(l.flows.1);
                j.end_arr();
                j.end_obj();
            }
            j.end_arr();
            j.key("ranks").begin_arr();
            for (rank, a, b) in &c.ranks {
                j.begin_obj();
                j.key("rank").uint_val(u64::from(*rank));
                pair(&mut j, "blocked_secs", *a, *b);
                j.end_obj();
            }
            j.end_arr();
            j.end_obj();
        }
        if let Some(cp) = &self.critical_path {
            j.key("critical_path").begin_obj();
            pair(&mut j, "total", cp.total.0, cp.total.1);
            let names = |j: &mut JsonBuf, key: &str, items: &[String]| {
                j.key(key).begin_arr();
                for n in items {
                    j.str_val(n);
                }
                j.end_arr();
            };
            names(&mut j, "entered", &cp.entered);
            names(&mut j, "left", &cp.left);
            j.key("moved").begin_arr();
            for (name, a, b) in &cp.moved {
                j.begin_obj();
                j.key("segment").str_val(name);
                pair(&mut j, "secs", *a, *b);
                j.end_obj();
            }
            j.end_arr();
            j.end_obj();
        }
        j.end_obj();
        j.finish()
    }

    /// Human-readable rendering.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if self.is_identical() {
            let _ = writeln!(
                out,
                "report diff: identical (sim_time {}, {} ranks)",
                num(self.sim_time.0),
                self.nranks.0
            );
            return out;
        }
        let _ = writeln!(
            out,
            "report diff: sim_time {} -> {} ({:+.3}%)",
            num(self.sim_time.0),
            num(self.sim_time.1),
            100.0 * (self.sim_time.1 - self.sim_time.0) / self.sim_time.0.max(f64::MIN_POSITIVE)
        );
        let _ = writeln!(
            out,
            "finish times: {} of {} ranks changed, peak rank{} ({:+.6}s)",
            self.finish_changed, self.nranks.0, self.finish_peak.0, self.finish_peak.1
        );
        for (name, a, b) in &self.kernel {
            let _ = writeln!(out, "kernel {name}: {a} -> {b}");
        }
        if let Some(m) = &self.metrics {
            let _ = writeln!(
                out,
                "metrics: {} of {} keys changed ({} only in A, {} only in B); top movers:",
                m.changed, m.total, m.only_a, m.only_b
            );
            for mv in &m.movers {
                let _ = writeln!(
                    out,
                    "  {:<52} {:>14} -> {:<14} ({:+})",
                    mv.key,
                    num(mv.a),
                    num(mv.b),
                    mv.delta()
                );
            }
        }
        if let Some(t) = &self.timeseries {
            let _ = writeln!(
                out,
                "timeseries: {} buckets @ {}s, peak shift at bucket {} \
                 ({} -> {} simcalls); busy link-secs {} -> {}",
                t.buckets,
                num(t.interval),
                t.peak_bucket,
                t.peak.0,
                t.peak.1,
                num(t.active_time.0),
                num(t.active_time.1)
            );
        }
        if let Some(c) = &self.contention {
            if let Some(top) = c.top_mover() {
                let _ = writeln!(out, "contention: top mover {top}");
            }
            for l in &c.links {
                let _ = writeln!(
                    out,
                    "  link {:<28} bottleneck {:>12}s -> {:<12}s  flows {} -> {}",
                    l.name,
                    format!("{:.6}", l.bottleneck.0),
                    format!("{:.6}", l.bottleneck.1),
                    l.flows.0,
                    l.flows.1
                );
            }
            for (rank, a, b) in c.ranks.iter().take(4) {
                let _ = writeln!(out, "  rank{rank:<4} blocked {:.6}s -> {:.6}s", a, b);
            }
        }
        if let Some(cp) = &self.critical_path {
            let _ = writeln!(
                out,
                "critical path: {} -> {}s",
                num(cp.total.0),
                num(cp.total.1)
            );
            if !cp.entered.is_empty() {
                let _ = writeln!(out, "  entered: {}", cp.entered.join(", "));
            }
            if !cp.left.is_empty() {
                let _ = writeln!(out, "  left:    {}", cp.left.join(", "));
            }
            for (name, a, b) in cp.moved.iter().take(6) {
                let _ = writeln!(out, "  {name:<28} {:.6}s -> {:.6}s", a, b);
            }
        }
        out
    }
}

/// Merge-joins two sorted key/value lists into `(key, a, b)` rows
/// (missing side reported as `None`).
fn merge_sorted<'a, V: Copy>(
    a: &'a [(String, V)],
    b: &'a [(String, V)],
) -> Vec<(&'a str, Option<V>, Option<V>)> {
    let mut out = Vec::with_capacity(a.len().max(b.len()));
    let (mut i, mut k) = (0, 0);
    while i < a.len() || k < b.len() {
        match (a.get(i), b.get(k)) {
            (Some((ka, va)), Some((kb, vb))) => match ka.cmp(kb) {
                std::cmp::Ordering::Equal => {
                    out.push((ka.as_str(), Some(*va), Some(*vb)));
                    i += 1;
                    k += 1;
                }
                std::cmp::Ordering::Less => {
                    out.push((ka.as_str(), Some(*va), None));
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push((kb.as_str(), None, Some(*vb)));
                    k += 1;
                }
            },
            (Some((ka, va)), None) => {
                out.push((ka.as_str(), Some(*va), None));
                i += 1;
            }
            (None, Some((kb, vb))) => {
                out.push((kb.as_str(), None, Some(*vb)));
                k += 1;
            }
            (None, None) => unreachable!(),
        }
    }
    out
}

fn diff_metrics(a: &MetricsReport, b: &MetricsReport, top_k: usize) -> MetricsDiff {
    let mut rows: Vec<Mover> = Vec::new();
    let (mut changed, mut only_a, mut only_b, mut total) = (0u64, 0u64, 0u64, 0u64);
    let mut absorb = |prefix: &str, pairs: Vec<(&str, Option<f64>, Option<f64>)>| {
        for (key, va, vb) in pairs {
            total += 1;
            match (va, vb) {
                (Some(x), Some(y)) if x == y => continue,
                (Some(_), Some(_)) => changed += 1,
                (Some(_), None) => only_a += 1,
                (None, Some(_)) => only_b += 1,
                (None, None) => unreachable!(),
            }
            rows.push(Mover {
                key: format!("{prefix}:{key}"),
                a: va.unwrap_or(0.0),
                b: vb.unwrap_or(0.0),
            });
        }
    };
    let counters_a: Vec<(String, f64)> = a
        .counters
        .iter()
        .map(|(k, v)| (k.clone(), *v as f64))
        .collect();
    let counters_b: Vec<(String, f64)> = b
        .counters
        .iter()
        .map(|(k, v)| (k.clone(), *v as f64))
        .collect();
    absorb("counter", merge_sorted(&counters_a, &counters_b));
    absorb("fcounter", merge_sorted(&a.fcounters, &b.fcounters));
    absorb("hwm", merge_sorted(&a.hwms, &b.hwms));
    rows.sort_by(|x, y| {
        y.delta()
            .abs()
            .total_cmp(&x.delta().abs())
            .then_with(|| x.key.cmp(&y.key))
    });
    rows.truncate(top_k);
    MetricsDiff {
        movers: rows,
        changed,
        only_a,
        only_b,
        total,
    }
}

/// Folds a time series onto a coarser grid (`factor` native buckets per
/// common bucket), keeping the extensive fields this diff compares.
fn fold_ts(ts: &TimeSeries, factor: usize) -> Vec<(u64, f64)> {
    let mut out = Vec::with_capacity(ts.samples.len().div_ceil(factor));
    for chunk in ts.samples.chunks(factor) {
        let simcalls = chunk.iter().map(|s| s.simcalls).sum();
        let active = chunk.iter().map(|s| s.active_time).sum();
        out.push((simcalls, active));
    }
    out
}

fn diff_timeseries(a: &TimeSeries, b: &TimeSeries) -> TsDiff {
    let interval = a.interval.max(b.interval);
    let fa = fold_ts(a, (interval / a.interval).round().max(1.0) as usize);
    let fb = fold_ts(b, (interval / b.interval).round().max(1.0) as usize);
    let buckets = fa.len().max(fb.len());
    let (mut peak_bucket, mut peak, mut best) = (0usize, (0u64, 0u64), -1.0f64);
    for i in 0..buckets {
        let x = fa.get(i).map_or(0, |s| s.0);
        let y = fb.get(i).map_or(0, |s| s.0);
        let d = (y as f64 - x as f64).abs();
        if d > best {
            best = d;
            peak_bucket = i;
            peak = (x, y);
        }
    }
    TsDiff {
        interval,
        buckets,
        peak_bucket,
        peak,
        simcalls: (a.total_simcalls(), b.total_simcalls()),
        active_time: (a.total_active_time(), b.total_active_time()),
    }
}

/// Per-link `(bottleneck, share_bytes, flows)` pairs, A-side and B-side.
type LinkSides = ([f64; 2], [f64; 2], [u64; 2]);

fn diff_contention(a: &ContentionReport, b: &ContentionReport, top_k: usize) -> ContentionDiff {
    use std::collections::BTreeMap;
    let mut by_name: BTreeMap<String, LinkSides> = BTreeMap::new();
    for (side, c) in [(0usize, a), (1usize, b)] {
        for (l, r) in c.link_rollup().iter().enumerate() {
            let e = by_name.entry(c.link_name(l as u32)).or_default();
            e.0[side] = r.bottleneck_secs;
            e.1[side] = r.share_bytes;
            e.2[side] = r.flows;
        }
    }
    let mut links: Vec<LinkDelta> = by_name
        .into_iter()
        .filter(|(_, (bn, sh, fl))| bn[0] != bn[1] || sh[0] != sh[1] || fl[0] != fl[1])
        .map(|(name, (bn, sh, fl))| LinkDelta {
            name,
            bottleneck: (bn[0], bn[1]),
            share_bytes: (sh[0], sh[1]),
            flows: (fl[0], fl[1]),
        })
        .collect();
    links.sort_by(|x, y| {
        let dx = (x.bottleneck.1 - x.bottleneck.0).abs();
        let dy = (y.bottleneck.1 - y.bottleneck.0).abs();
        dy.total_cmp(&dx).then_with(|| x.name.cmp(&y.name))
    });
    links.truncate(top_k);

    let mut by_rank: BTreeMap<u32, [f64; 2]> = BTreeMap::new();
    for (side, c) in [(0usize, a), (1usize, b)] {
        for (rank, _, secs) in c.rank_blocked() {
            by_rank.entry(rank).or_default()[side] += secs;
        }
    }
    let mut ranks: Vec<(u32, f64, f64)> = by_rank
        .into_iter()
        .filter(|(_, [x, y])| x != y)
        .map(|(r, [x, y])| (r, x, y))
        .collect();
    ranks.sort_by(|x, y| {
        (y.2 - y.1)
            .abs()
            .total_cmp(&(x.2 - x.1).abs())
            .then_with(|| x.0.cmp(&y.0))
    });
    ranks.truncate(top_k);
    ContentionDiff { links, ranks }
}

/// Compares two run reports field by field. `top_k` bounds every ranked
/// list (metric movers, contention links/ranks, moved critical-path
/// segments). The result type parameters of the two reports are
/// independent — only simulated observations are compared.
pub fn diff_reports<RA, RB>(a: &RunReport<RA>, b: &RunReport<RB>, top_k: usize) -> ReportDiff {
    let nranks = (a.finish_times.len(), b.finish_times.len());
    let (mut finish_changed, mut peak_rank, mut peak_delta) = (0u64, 0usize, 0.0f64);
    for i in 0..nranks.0.max(nranks.1) {
        let x = a.finish_times.get(i).copied().unwrap_or(0.0);
        let y = b.finish_times.get(i).copied().unwrap_or(0.0);
        if x != y {
            finish_changed += 1;
            if (y - x).abs() > peak_delta.abs() {
                peak_delta = y - x;
                peak_rank = i;
            }
        }
    }

    let phases = {
        use std::collections::BTreeMap;
        let mut m: BTreeMap<&str, [f64; 2]> = BTreeMap::new();
        for (side, p) in [(0usize, &a.profile), (1usize, &b.profile)] {
            for (name, secs) in &p.phases {
                m.entry(name).or_default()[side] = *secs;
            }
        }
        m.into_iter()
            .filter(|(_, [x, y])| x != y)
            .map(|(n, [x, y])| (n.to_string(), x, y))
            .collect()
    };

    let kernel = match (&a.profile.kernel, &b.profile.kernel) {
        (Some(ka), Some(kb)) => [
            ("reshares", ka.reshares, kb.reshares),
            ("full_reshares", ka.full_reshares, kb.full_reshares),
            ("heap_rebuilds", ka.heap_rebuilds, kb.heap_rebuilds),
            ("heap_orphans", ka.heap_orphans, kb.heap_orphans),
            ("classes_folded", ka.classes_folded, kb.classes_folded),
            (
                "batched_completions",
                ka.batched_completions,
                kb.batched_completions,
            ),
            (
                "parallel_components",
                ka.parallel_components,
                kb.parallel_components,
            ),
        ]
        .into_iter()
        .filter(|(_, x, y)| x != y)
        .collect(),
        _ => Vec::new(),
    };

    let critical_path = match (a.critical_path(), b.critical_path()) {
        (Some(ca), Some(cb)) => {
            use std::collections::BTreeMap;
            let mut m: BTreeMap<&str, [Option<f64>; 2]> = BTreeMap::new();
            for (side, cp) in [(0usize, &ca), (1usize, &cb)] {
                for (name, secs) in &cp.segments {
                    m.entry(name).or_default()[side] = Some(*secs);
                }
            }
            let mut entered = Vec::new();
            let mut left = Vec::new();
            let mut moved: Vec<(String, f64, f64)> = Vec::new();
            for (name, [x, y]) in m {
                match (x, y) {
                    (Some(x), Some(y)) if x != y => moved.push((name.to_string(), x, y)),
                    (Some(_), None) => left.push(name.to_string()),
                    (None, Some(_)) => entered.push(name.to_string()),
                    _ => {}
                }
            }
            moved.sort_by(|p, q| {
                (q.2 - q.1)
                    .abs()
                    .total_cmp(&(p.2 - p.1).abs())
                    .then_with(|| p.0.cmp(&q.0))
            });
            moved.truncate(top_k);
            Some(CpDiff {
                total: (ca.total, cb.total),
                entered,
                left,
                moved,
            })
        }
        _ => None,
    };

    ReportDiff {
        sim_time: (a.sim_time, b.sim_time),
        nranks,
        finish_changed,
        finish_peak: (peak_rank, peak_delta),
        phases,
        kernel,
        metrics: match (&a.metrics, &b.metrics) {
            (Some(ma), Some(mb)) => Some(diff_metrics(ma, mb, top_k)),
            _ => None,
        },
        timeseries: match (&a.timeseries, &b.timeseries) {
            (Some(ta), Some(tb)) => Some(diff_timeseries(ta, tb)),
            _ => None,
        },
        contention: match (&a.contention, &b.contention) {
            (Some(ca), Some(cb)) => Some(diff_contention(ca, cb, top_k)),
            _ => None,
        },
        critical_path,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smpi_obs::SelfProfile;
    use std::time::Duration;

    fn report(sim_time: f64, finish: Vec<f64>) -> RunReport<()> {
        RunReport {
            sim_time,
            wall: Duration::ZERO,
            results: vec![(); finish.len()],
            memory: Default::default(),
            trace: Vec::new(),
            metrics: None,
            profile: SelfProfile::default(),
            ti_trace: None,
            contention: None,
            timeseries: None,
            finish_times: finish,
        }
    }

    #[test]
    fn identical_reports_diff_empty() {
        let a = report(1.5, vec![1.0, 1.5]);
        let b = report(1.5, vec![1.0, 1.5]);
        let d = diff_reports(&a, &b, 10);
        assert!(d.is_identical());
        assert!(d.render().contains("identical"));
        assert_eq!(d.to_json(), diff_reports(&a, &b, 10).to_json());
    }

    #[test]
    fn finish_time_changes_are_attributed_to_the_peak_rank() {
        let a = report(1.5, vec![1.0, 1.5, 0.7]);
        let b = report(1.9, vec![1.0, 1.9, 0.8]);
        let d = diff_reports(&a, &b, 10);
        assert!(!d.is_identical());
        assert_eq!(d.finish_changed, 2);
        assert_eq!(d.finish_peak.0, 1);
        assert!((d.finish_peak.1 - 0.4).abs() < 1e-12);
        crate::json_in::JsonValue::parse(&d.to_json()).expect("valid JSON");
    }

    #[test]
    fn metric_movers_are_ranked_by_absolute_delta() {
        let mut a = report(1.0, vec![1.0]);
        let mut b = report(1.0, vec![1.0]);
        let ma = smpi_obs::MetricsReport {
            counters: vec![("x".into(), 10), ("y".into(), 5), ("z".into(), 1)],
            ..Default::default()
        };
        let mb = smpi_obs::MetricsReport {
            counters: vec![("x".into(), 11), ("y".into(), 50), ("w".into(), 2)],
            ..Default::default()
        };
        a.metrics = Some(ma);
        b.metrics = Some(mb);
        let d = diff_reports(&a, &b, 2);
        let m = d.metrics.expect("both sides carried metrics");
        assert_eq!(m.total, 4);
        assert_eq!((m.changed, m.only_a, m.only_b), (2, 1, 1));
        assert_eq!(m.movers.len(), 2);
        assert_eq!(m.movers[0].key, "counter:y");
    }
}
