//! Structural diff of two time-independent traces.
//!
//! Aligns the per-rank op streams of two TITRACE captures (v1 text or v2
//! binary, in any combination) with the bounded-memory aligner from
//! [`crate::align`] and reports *where* they part ways: the first
//! divergent op per rank with surrounding context rendered in TITRACE op
//! syntax (via [`TiOp::line`], the format's single source of truth), plus
//! a whole-run edit summary broken down by op kind. TITRACE2 inputs are
//! streamed through [`TiV2Reader`] block cursors, so diffing two
//! multi-gigabyte captures holds only `O(window)` ops per rank pair in
//! memory.

use std::path::Path;
use std::sync::Arc;

use smpi::capture_v2::TIT2_MAGIC;
use smpi::{TiOp, TiTrace, TiV2Reader, TraceIoError};
use smpi_obs::json::JsonBuf;
use smpi_replay::OpSource;

use crate::align::{align_streams, AlignConfig, DivergeKind, Edit};

/// Short classifier for an op, used by the per-kind edit summary.
pub fn op_kind(op: &TiOp) -> &'static str {
    match op {
        TiOp::Compute { .. } => "compute",
        TiOp::Sleep { .. } => "sleep",
        TiOp::Send { .. } => "send",
        TiOp::Recv { .. } => "recv",
        TiOp::Wait { .. } => "wait",
        TiOp::Region { .. } => "region",
        TiOp::Coll { .. } => "coll",
    }
}

/// Per-kind edit counts (matched ops are counted too, so the summary
/// doubles as a composition profile of the compared streams).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindCounts {
    /// Ops of this kind present and equal in both traces.
    pub matched: u64,
    /// Aligned-but-different op pairs (counted under trace A's kind).
    pub mutated: u64,
    /// Ops of this kind present only in trace B.
    pub added: u64,
    /// Ops of this kind present only in trace A.
    pub removed: u64,
}

impl KindCounts {
    fn edits(&self) -> u64 {
        self.mutated + self.added + self.removed
    }
}

/// The first divergent op of one rank, rendered in TITRACE op syntax.
#[derive(Debug, Clone)]
pub struct FirstDivergence {
    /// Op index (0-based) of the divergence in trace A's rank stream.
    pub index_a: u64,
    /// Op index of the divergence in trace B's rank stream.
    pub index_b: u64,
    /// `"mismatch"` when both sides have an op at the divergence point,
    /// `"tail_a"` / `"tail_b"` when one stream simply ran longer.
    pub kind: &'static str,
    /// The last matched ops before the divergence (oldest first).
    pub context: Vec<String>,
    /// Trace A's ops from the divergence point (bounded lookahead).
    pub a: Vec<String>,
    /// Trace B's ops from the divergence point.
    pub b: Vec<String>,
}

/// Alignment result for one rank pair.
#[derive(Debug, Clone)]
pub struct RankDiff {
    /// World rank.
    pub rank: usize,
    /// Ops equal in both streams.
    pub matched: u64,
    /// Aligned-but-different op pairs.
    pub mutated: u64,
    /// Ops only in B.
    pub added: u64,
    /// Ops only in A.
    pub removed: u64,
    /// Total ops in A's stream.
    pub len_a: u64,
    /// Total ops in B's stream.
    pub len_b: u64,
    /// Successful windowed resyncs.
    pub resyncs: u64,
    /// `true` when the rank's divergence exceeded the resync window.
    pub window_exhausted: bool,
    /// First divergence (`None` when the rank streams are identical).
    pub first: Option<FirstDivergence>,
}

impl RankDiff {
    /// `true` when this rank's op streams are identical.
    pub fn is_identical(&self) -> bool {
        self.first.is_none()
    }
}

/// Whole-trace diff: per-rank alignments plus aggregate edit summary.
#[derive(Debug, Clone)]
pub struct TraceDiff {
    /// Rank count of trace A.
    pub ranks_a: usize,
    /// Rank count of trace B.
    pub ranks_b: usize,
    /// Per-rank results, every rank of `0..max(ranks_a, ranks_b)` (a rank
    /// missing from one trace diffs against an empty stream).
    pub ranks: Vec<RankDiff>,
    /// Aggregate per-kind edit counts over all ranks, sorted by kind name.
    pub by_kind: Vec<(&'static str, KindCounts)>,
}

impl TraceDiff {
    /// `true` when both traces carry identical op streams for every rank.
    pub fn is_identical(&self) -> bool {
        self.ranks_a == self.ranks_b && self.ranks.iter().all(RankDiff::is_identical)
    }

    /// Aggregate counts over all ranks:
    /// `(matched, mutated, added, removed, resyncs)`.
    pub fn totals(&self) -> (u64, u64, u64, u64, u64) {
        let mut t = (0, 0, 0, 0, 0);
        for r in &self.ranks {
            t.0 += r.matched;
            t.1 += r.mutated;
            t.2 += r.added;
            t.3 += r.removed;
            t.4 += r.resyncs;
        }
        t
    }

    /// Deterministic JSON document (schema in EXPERIMENTS.md). Identical
    /// inputs produce byte-identical output.
    pub fn to_json(&self) -> String {
        let (matched, mutated, added, removed, resyncs) = self.totals();
        let mut j = JsonBuf::new();
        j.begin_obj();
        j.key("kind").str_val("trace_diff");
        j.key("identical").bool_val(self.is_identical());
        j.key("ranks_a").uint_val(self.ranks_a as u64);
        j.key("ranks_b").uint_val(self.ranks_b as u64);
        j.key("total").begin_obj();
        j.key("matched").uint_val(matched);
        j.key("mutated").uint_val(mutated);
        j.key("added").uint_val(added);
        j.key("removed").uint_val(removed);
        j.key("resyncs").uint_val(resyncs);
        j.key("window_exhausted")
            .bool_val(self.ranks.iter().any(|r| r.window_exhausted));
        j.end_obj();
        j.key("by_kind").begin_arr();
        for (kind, c) in &self.by_kind {
            if c.edits() == 0 {
                continue;
            }
            j.begin_obj();
            j.key("op").str_val(kind);
            j.key("mutated").uint_val(c.mutated);
            j.key("added").uint_val(c.added);
            j.key("removed").uint_val(c.removed);
            j.end_obj();
        }
        j.end_arr();
        j.key("ranks").begin_arr();
        for r in self.ranks.iter().filter(|r| !r.is_identical()) {
            j.begin_obj();
            j.key("rank").uint_val(r.rank as u64);
            j.key("matched").uint_val(r.matched);
            j.key("mutated").uint_val(r.mutated);
            j.key("added").uint_val(r.added);
            j.key("removed").uint_val(r.removed);
            j.key("len_a").uint_val(r.len_a);
            j.key("len_b").uint_val(r.len_b);
            j.key("resyncs").uint_val(r.resyncs);
            j.key("window_exhausted").bool_val(r.window_exhausted);
            if let Some(f) = &r.first {
                j.key("first").begin_obj();
                j.key("index_a").uint_val(f.index_a);
                j.key("index_b").uint_val(f.index_b);
                j.key("kind").str_val(f.kind);
                let arr = |j: &mut JsonBuf, key: &str, items: &[String]| {
                    j.key(key).begin_arr();
                    for it in items {
                        j.str_val(it);
                    }
                    j.end_arr();
                };
                arr(&mut j, "context", &f.context);
                arr(&mut j, "a", &f.a);
                arr(&mut j, "b", &f.b);
                j.end_obj();
            }
            j.end_obj();
        }
        j.end_arr();
        j.end_obj();
        j.finish()
    }

    /// Human-readable rendering: edit summary, per-kind breakdown, and the
    /// first divergent op per rank with context in TITRACE op syntax.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let (matched, mutated, added, removed, resyncs) = self.totals();
        let mut out = String::new();
        if self.is_identical() {
            let _ = writeln!(
                out,
                "trace diff: identical ({matched} ops over {} ranks)",
                self.ranks_a
            );
            return out;
        }
        let _ = writeln!(
            out,
            "trace diff: A {} ranks / {} ops, B {} ranks / {} ops",
            self.ranks_a,
            self.ranks.iter().map(|r| r.len_a).sum::<u64>(),
            self.ranks_b,
            self.ranks.iter().map(|r| r.len_b).sum::<u64>(),
        );
        let _ = writeln!(
            out,
            "edit summary: {matched} matched, {mutated} mutated, {added} added (B-only), \
             {removed} removed (A-only), {resyncs} resyncs"
        );
        for (kind, c) in self.by_kind.iter().filter(|(_, c)| c.edits() > 0) {
            let _ = writeln!(
                out,
                "  {kind:<8} {:>6} mutated {:>6} added {:>6} removed",
                c.mutated, c.added, c.removed
            );
        }
        for r in self.ranks.iter().filter(|r| !r.is_identical()) {
            let f = r.first.as_ref().expect("non-identical rank diverges");
            let _ = writeln!(
                out,
                "rank {}: first divergence at op {} (A) / op {} (B) [{}]{}",
                r.rank,
                f.index_a,
                f.index_b,
                f.kind,
                if r.window_exhausted {
                    " — resync window exhausted, streams look unrelated"
                } else {
                    ""
                }
            );
            for line in &f.context {
                let _ = writeln!(out, "      = {line}");
            }
            for line in &f.a {
                let _ = writeln!(out, "    A > {line}");
            }
            if f.a.is_empty() {
                let _ = writeln!(out, "    A > (end of stream)");
            }
            for line in &f.b {
                let _ = writeln!(out, "    B > {line}");
            }
            if f.b.is_empty() {
                let _ = writeln!(out, "    B > (end of stream)");
            }
        }
        out
    }
}

/// Diffs one rank pair, accumulating per-kind counts into `by_kind`.
fn diff_rank<IA, IB>(
    rank: usize,
    ia: IA,
    ib: IB,
    cfg: &AlignConfig,
    by_kind: &mut std::collections::BTreeMap<&'static str, KindCounts>,
) -> RankDiff
where
    IA: Iterator<Item = TiOp>,
    IB: Iterator<Item = TiOp>,
{
    let d = align_streams(ia, ib, cfg, |edit, a, b| {
        // Mutations are filed under A's kind (B's kind may differ; the
        // first-divergence rendering shows both sides verbatim).
        let kind = match (edit, a, b) {
            (Edit::InsertB, _, Some(op)) => op_kind(op),
            (_, Some(op), _) => op_kind(op),
            _ => unreachable!("every edit carries at least one op"),
        };
        let c = by_kind.entry(kind).or_default();
        match edit {
            Edit::Match => c.matched += 1,
            Edit::Mutate => c.mutated += 1,
            Edit::InsertB => c.added += 1,
            Edit::DeleteA => c.removed += 1,
        }
    });
    RankDiff {
        rank,
        matched: d.matched,
        mutated: d.mutated,
        added: d.added,
        removed: d.removed,
        len_a: d.len_a,
        len_b: d.len_b,
        resyncs: d.resyncs,
        window_exhausted: d.window_exhausted,
        first: d.first.map(|f| FirstDivergence {
            index_a: f.index_a,
            index_b: f.index_b,
            kind: match f.kind {
                DivergeKind::Mismatch => "mismatch",
                DivergeKind::TailA => "tail_a",
                DivergeKind::TailB => "tail_b",
            },
            context: f.context.iter().map(TiOp::line).collect(),
            a: f.a.iter().map(TiOp::line).collect(),
            b: f.b.iter().map(TiOp::line).collect(),
        }),
    }
}

/// Diffs two op sources rank by rank. A rank present in only one source is
/// aligned against an empty stream (pure additions/removals).
pub fn diff_sources<A: OpSource, B: OpSource>(
    a: &Arc<A>,
    b: &Arc<B>,
    cfg: &AlignConfig,
) -> TraceDiff {
    let ranks_a = a.num_ranks();
    let ranks_b = b.num_ranks();
    let mut by_kind = std::collections::BTreeMap::new();
    let mut ranks = Vec::with_capacity(ranks_a.max(ranks_b));
    for rank in 0..ranks_a.max(ranks_b) {
        let ia: Box<dyn Iterator<Item = TiOp> + Send> = if rank < ranks_a {
            Arc::clone(a).rank_ops(rank)
        } else {
            Box::new(std::iter::empty())
        };
        let ib: Box<dyn Iterator<Item = TiOp> + Send> = if rank < ranks_b {
            Arc::clone(b).rank_ops(rank)
        } else {
            Box::new(std::iter::empty())
        };
        ranks.push(diff_rank(rank, ia, ib, cfg, &mut by_kind));
    }
    TraceDiff {
        ranks_a,
        ranks_b,
        ranks,
        by_kind: by_kind.into_iter().collect(),
    }
}

/// Diffs two materialized v1 traces without cloning them into `Arc`s.
pub fn diff_traces(a: &TiTrace, b: &TiTrace, cfg: &AlignConfig) -> TraceDiff {
    let ranks_a = a.num_ranks();
    let ranks_b = b.num_ranks();
    let mut by_kind = std::collections::BTreeMap::new();
    let empty: Vec<TiOp> = Vec::new();
    let mut ranks = Vec::with_capacity(ranks_a.max(ranks_b));
    for rank in 0..ranks_a.max(ranks_b) {
        let ia = a.ranks.get(rank).unwrap_or(&empty).iter().cloned();
        let ib = b.ranks.get(rank).unwrap_or(&empty).iter().cloned();
        ranks.push(diff_rank(rank, ia, ib, cfg, &mut by_kind));
    }
    TraceDiff {
        ranks_a,
        ranks_b,
        ranks,
        by_kind: by_kind.into_iter().collect(),
    }
}

/// A trace opened for diffing: v1 is materialized (the text format cannot
/// be skipped rank-wise), v2 stays on disk behind a streaming block
/// cursor.
pub enum TraceInput {
    /// Materialized TITRACE v1 trace.
    V1(Arc<TiTrace>),
    /// Streaming TITRACE2 reader.
    V2(Arc<TiV2Reader>),
}

impl TraceInput {
    /// Opens a trace file, sniffing the format from its magic bytes.
    pub fn open(path: impl AsRef<Path>) -> Result<TraceInput, TraceIoError> {
        use std::io::BufRead as _;
        let path = path.as_ref();
        let file = std::fs::File::open(path)?;
        let mut r = std::io::BufReader::new(file);
        let head = r.fill_buf()?;
        if head.starts_with(TIT2_MAGIC) {
            drop(r);
            Ok(TraceInput::V2(Arc::new(TiV2Reader::open(path)?)))
        } else {
            Ok(TraceInput::V1(Arc::new(TiTrace::decode_from(r)?)))
        }
    }

    fn num_ranks(&self) -> usize {
        match self {
            TraceInput::V1(t) => t.num_ranks(),
            TraceInput::V2(r) => r.num_ranks(),
        }
    }

    fn rank_ops(&self, rank: usize) -> Box<dyn Iterator<Item = TiOp> + Send> {
        match self {
            TraceInput::V1(t) => OpSource::rank_ops(Arc::clone(t), rank),
            TraceInput::V2(r) => Box::new(r.rank_iter(rank)),
        }
    }
}

/// Diffs two trace files (TITRACE v1 or v2, in any combination).
pub fn diff_trace_files(
    a: impl AsRef<Path>,
    b: impl AsRef<Path>,
    cfg: &AlignConfig,
) -> Result<TraceDiff, TraceIoError> {
    let a = TraceInput::open(a)?;
    let b = TraceInput::open(b)?;
    let ranks_a = a.num_ranks();
    let ranks_b = b.num_ranks();
    let mut by_kind = std::collections::BTreeMap::new();
    let mut ranks = Vec::with_capacity(ranks_a.max(ranks_b));
    for rank in 0..ranks_a.max(ranks_b) {
        let ia: Box<dyn Iterator<Item = TiOp> + Send> = if rank < ranks_a {
            a.rank_ops(rank)
        } else {
            Box::new(std::iter::empty())
        };
        let ib: Box<dyn Iterator<Item = TiOp> + Send> = if rank < ranks_b {
            b.rank_ops(rank)
        } else {
            Box::new(std::iter::empty())
        };
        ranks.push(diff_rank(rank, ia, ib, cfg, &mut by_kind));
    }
    Ok(TraceDiff {
        ranks_a,
        ranks_b,
        ranks,
        by_kind: by_kind.into_iter().collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use smpi::WaitMode;

    fn trace() -> TiTrace {
        let rank = |r: u32| {
            vec![
                TiOp::Compute {
                    flops: 500.0 + f64::from(r),
                },
                TiOp::Send {
                    dst: (r + 1) % 3,
                    cid: 0,
                    tag: 1,
                    bytes: 1024,
                },
                TiOp::Recv {
                    src: ((r + 2) % 3) as i32,
                    cid: 0,
                    tag: 1,
                    max_bytes: 1024,
                },
                TiOp::Wait {
                    reqs: vec![0, 1],
                    mode: WaitMode::All,
                },
                TiOp::Compute { flops: 99.0 },
            ]
        };
        TiTrace {
            ranks: (0..3).map(rank).collect(),
        }
    }

    #[test]
    fn identical_traces_diff_empty() {
        let t = trace();
        let d = diff_traces(&t, &t, &AlignConfig::default());
        assert!(d.is_identical());
        assert_eq!(d.totals().0, 15);
        assert!(d.render().contains("identical"));
    }

    #[test]
    fn mutation_is_localized_and_rendered_in_op_syntax() {
        let a = trace();
        let mut b = trace();
        b.ranks[1][2] = TiOp::Recv {
            src: 0,
            cid: 0,
            tag: 9,
            max_bytes: 2048,
        };
        let d = diff_traces(&a, &b, &AlignConfig::default());
        assert!(!d.is_identical());
        assert_eq!(d.totals().1, 1, "one mutation");
        let rd = &d.ranks[1];
        let f = rd.first.as_ref().expect("rank 1 diverges");
        assert_eq!((f.index_a, f.index_b), (2, 2));
        assert!(d.ranks[0].is_identical() && d.ranks[2].is_identical());
        // Context and both sides come out in TITRACE op syntax.
        assert_eq!(f.a[0], a.ranks[1][2].line());
        assert_eq!(f.b[0], "recv 0 0 9 2048");
        let kinds: Vec<_> = d.by_kind.iter().filter(|(_, c)| c.edits() > 0).collect();
        assert_eq!(kinds.len(), 1);
        assert_eq!(kinds[0].0, "recv");
        let text = d.render();
        assert!(text.contains("rank 1: first divergence at op 2 (A) / op 2 (B)"));
        assert!(text.contains("B > recv 0 0 9 2048"));
    }

    #[test]
    fn missing_rank_diffs_against_empty_stream() {
        let a = trace();
        let b = TiTrace {
            ranks: a.ranks[..2].to_vec(),
        };
        let d = diff_traces(&a, &b, &AlignConfig::default());
        assert_eq!((d.ranks_a, d.ranks_b), (3, 2));
        assert!(!d.is_identical());
        assert_eq!(d.ranks[2].removed, 5);
        assert_eq!(d.ranks[2].first.as_ref().unwrap().kind, "tail_a");
    }

    #[test]
    fn json_is_deterministic() {
        let a = trace();
        let mut b = trace();
        b.ranks[0].insert(1, TiOp::Sleep { secs: 2.5e-6 });
        let d1 = diff_traces(&a, &b, &AlignConfig::default());
        let d2 = diff_traces(&a, &b, &AlignConfig::default());
        assert_eq!(d1.to_json(), d2.to_json());
        assert!(d1.to_json().contains("\"added\":1"));
        // Valid JSON by the crate's own parser.
        crate::json_in::JsonValue::parse(&d1.to_json()).expect("valid JSON");
    }

    #[test]
    fn file_diff_handles_mixed_v1_and_v2() {
        let t = trace();
        let dir = std::env::temp_dir().join(format!("smpi_diff_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p1 = dir.join("a.tit");
        let p2 = dir.join("b.tit2");
        std::fs::write(&p1, t.encode()).unwrap();
        std::fs::write(&p2, smpi::encode_v2(&t)).unwrap();
        let d = diff_trace_files(&p1, &p2, &AlignConfig::default()).unwrap();
        // v1 downgrades Coll ops; this trace has none, so the round trips
        // agree exactly.
        assert!(d.is_identical(), "{}", d.render());
        std::fs::remove_dir_all(&dir).ok();
    }
}
