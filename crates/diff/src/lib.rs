//! # smpi-diff — streaming divergence attribution
//!
//! The paper's core claim is predictive fidelity: simulated runs must
//! match — each other, their replays, and calibrated reality. The
//! workspace enforces that with byte-identical golden assertions, but a
//! broken golden only says *that* two runs differ. This crate explains
//! *where and why*, in three aligned layers:
//!
//! * [`trace_diff`] — streams two TITRACE v1/v2 captures with bounded
//!   memory, aligns the per-rank op streams (exact-match fast path,
//!   windowed resync across insertions/deletions), and reports the first
//!   divergent op per rank with context in TITRACE op syntax plus a
//!   whole-run edit summary by op kind;
//! * [`report_diff`] — deep structural comparison of two
//!   [`smpi::RunReport`]s: metrics top movers, kernel counters, time
//!   series re-bucketed to a common grid, per-link/per-rank contention
//!   deltas, and which segments entered or left the critical path;
//! * [`gate`] — declarative benchmark regression gates over the committed
//!   `BENCH_*.json` documents plus an append-only
//!   `target/bench_history.jsonl` trend log, consolidating the per-job CI
//!   ratio checks into one `repro -- gate` invocation.
//!
//! Everything emits a deterministic JSON document (byte-identical across
//! repeated invocations on the same inputs) and a human-readable
//! rendering. [`golden::assert_golden`] wires the line aligner into the
//! e2e golden tests, so a mismatch prints a first-divergence report and
//! leaves a JSON artifact under `target/diff/` for CI to upload.

pub mod align;
pub mod gate;
pub mod golden;
pub mod json_in;
pub mod report_diff;
pub mod trace_diff;

pub use align::{AlignConfig, Divergence, Edit, StreamDiff};
pub use gate::{
    append_history, git_reference, render_trends, run_gates, trends, GateOutcome, GateReport,
    GateSpec, Trend,
};
pub use golden::{assert_golden, diff_golden, GoldenDiff};
pub use json_in::JsonValue;
pub use report_diff::{diff_reports, ContentionDiff, MetricsDiff, ReportDiff, TsDiff};
pub use trace_diff::{
    diff_sources, diff_trace_files, diff_traces, FirstDivergence, RankDiff, TraceDiff, TraceInput,
};
