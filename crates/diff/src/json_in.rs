//! Minimal JSON *reader* (the environment has no serde_json).
//!
//! The workspace's observability exports write JSON through
//! `smpi_obs::json::JsonBuf`; this module is the matching input side, just
//! big enough for the benchmark-trend gates: parse a `BENCH_*.json`
//! document into a [`JsonValue`] tree and pull numbers out of it with a
//! small selector language (see [`JsonValue::select`]).

use std::collections::BTreeMap;

/// A parsed JSON value. Objects use a sorted map so traversal order (and
/// any re-rendering) is deterministic regardless of input order.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null` (also produced by the workspace writer for non-finite floats).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object.
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Parses a complete JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Resolves a dotted selector path, e.g. `speedup`,
    /// `runs[workers=1].scenarios_per_s` or `tiers[2].ranks`. Each
    /// segment is an object key, optionally followed by one `[...]`
    /// subscript: a plain integer indexes an array, `field=value` scans an
    /// array of objects for the first element whose `field` equals the
    /// numeric `value`.
    pub fn select(&self, path: &str) -> Option<&JsonValue> {
        let mut cur = self;
        for seg in path.split('.') {
            let (key, sub) = match seg.find('[') {
                Some(i) => {
                    let close = seg.rfind(']')?;
                    (&seg[..i], Some(&seg[i + 1..close]))
                }
                None => (seg, None),
            };
            if !key.is_empty() {
                cur = cur.get(key)?;
            }
            if let Some(sub) = sub {
                let arr = match cur {
                    JsonValue::Arr(a) => a,
                    _ => return None,
                };
                cur = match sub.split_once('=') {
                    Some((field, want)) => {
                        let want: f64 = want.parse().ok()?;
                        arr.iter()
                            .find(|e| e.get(field).and_then(JsonValue::as_f64) == Some(want))?
                    }
                    None => {
                        let idx: usize = sub.parse().ok()?;
                        arr.get(idx)?
                    }
                };
            }
        }
        Some(cur)
    }

    /// Shorthand: [`JsonValue::select`] then [`JsonValue::as_f64`].
    pub fn select_f64(&self, path: &str) -> Option<f64> {
        self.select(path).and_then(JsonValue::as_f64)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&c) = self.bytes.get(self.pos) {
            if c == b' ' || c == b'\t' || c == b'\n' || c == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                c as char,
                self.pos,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut m = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(m));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            m.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(m));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut a = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(a));
        }
        loop {
            self.skip_ws();
            a.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(a));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            // Surrogate pairs are not produced by the
                            // workspace writer; map them to U+FFFD.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {:?}", other.map(|b| b as char))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so slicing
                    // on char boundaries is safe via chars()).
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = text.chars().next().ok_or("unterminated string")?;
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || c == b'.' || c == b'e' || c == b'E' || c == b'+' || c == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let v =
            JsonValue::parse(r#"{"a":1.5,"b":[true,null,"x\n"],"c":{"d":-2e3},"e":""}"#).unwrap();
        assert_eq!(v.select_f64("a"), Some(1.5));
        assert_eq!(v.select("b[0]"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.select("b[1]"), Some(&JsonValue::Null));
        assert_eq!(v.select("b[2]"), Some(&JsonValue::Str("x\n".into())));
        assert_eq!(v.select_f64("c.d"), Some(-2000.0));
        assert_eq!(v.select("e"), Some(&JsonValue::Str(String::new())));
    }

    #[test]
    fn field_filter_selects_matching_array_element() {
        let v = JsonValue::parse(r#"{"tiers":[{"ranks":1024,"rate":10},{"ranks":4096,"rate":7}]}"#)
            .unwrap();
        assert_eq!(v.select_f64("tiers[ranks=4096].rate"), Some(7.0));
        assert_eq!(v.select_f64("tiers[ranks=2048].rate"), None);
        assert_eq!(v.select_f64("tiers[0].rate"), Some(10.0));
    }

    #[test]
    fn roundtrips_workspace_writer_output() {
        use smpi_obs::json::JsonBuf;
        let mut j = JsonBuf::new();
        j.begin_obj();
        j.key("name").str_val("a \"quoted\" name");
        j.key("nan").num_val(f64::NAN);
        j.key("vals")
            .begin_arr()
            .uint_val(3)
            .num_val(0.25)
            .end_arr();
        j.end_obj();
        let v = JsonValue::parse(&j.finish()).unwrap();
        assert_eq!(
            v.select("name"),
            Some(&JsonValue::Str("a \"quoted\" name".into()))
        );
        assert_eq!(v.select("nan"), Some(&JsonValue::Null));
        assert_eq!(v.select_f64("vals[1]"), Some(0.25));
    }

    #[test]
    fn rejects_garbage() {
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("{} x").is_err());
    }
}
