//! Bounded-memory alignment of two item streams.
//!
//! The engine behind every diff layer in this crate: trace diffs align
//! per-rank [`smpi::TiOp`] streams, golden-text diffs align report lines.
//! Both sides are plain iterators, so a stream can come from a
//! materialized `Vec`, a [`smpi::TiV2Reader`] block cursor, or a line
//! splitter — the aligner never holds more than `2 × window + run`
//! items at once.
//!
//! The algorithm is a windowed resync: while the streams agree, items are
//! consumed pairwise (the exact-match fast path — O(1) memory, no
//! buffering beyond one item per side). On the first disagreement the
//! aligner buffers up to [`AlignConfig::window`] items per side and
//! searches for the *cheapest* realignment — the offset pair `(da, db)`
//! minimizing `da + db` such that [`AlignConfig::run`] consecutive items
//! match again. The skipped prefix is classified deterministically:
//! `min(da, db)` pairs become mutations, the excess becomes insertions
//! (present only in `b`) or deletions (present only in `a`). If no
//! realignment exists inside the window the aligner degrades to pairwise
//! draining and reports [`StreamDiff::window_exhausted`], so callers can
//! distinguish "small local edit" from "the streams are unrelated".
//!
//! Everything is deterministic: same inputs, same configuration — same
//! edits, same counts, byte-identical downstream JSON.

use std::collections::VecDeque;

/// Tuning for [`align_streams`].
#[derive(Debug, Clone)]
pub struct AlignConfig {
    /// Maximum items buffered per side while searching for a resync point.
    pub window: usize,
    /// Consecutive matches required to declare the streams realigned.
    pub run: usize,
    /// Matched items of leading context kept for the first divergence, and
    /// lookahead items reported from each side at the divergence point.
    pub context: usize,
}

impl Default for AlignConfig {
    fn default() -> Self {
        AlignConfig {
            window: 64,
            run: 3,
            context: 3,
        }
    }
}

/// Classification of one aligned item (or item pair).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Edit {
    /// Present and equal in both streams.
    Match,
    /// Present in both streams at aligned positions, but different.
    Mutate,
    /// Present only in stream `b` (inserted).
    InsertB,
    /// Present only in stream `a` (deleted).
    DeleteA,
}

/// How the first divergence between the streams presented itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DivergeKind {
    /// Both streams had an item at the divergence point, and they differ.
    Mismatch,
    /// Stream `a` ended while `b` still had items.
    TailB,
    /// Stream `b` ended while `a` still had items.
    TailA,
}

/// The first point where the two streams stopped agreeing, with context.
#[derive(Debug, Clone)]
pub struct Divergence<T> {
    /// 0-based index of the diverging item in stream `a`.
    pub index_a: u64,
    /// 0-based index of the diverging item in stream `b`.
    pub index_b: u64,
    /// What shape the divergence took.
    pub kind: DivergeKind,
    /// The last matched items before the divergence (oldest first).
    pub context: Vec<T>,
    /// Up to [`AlignConfig::context`] items of stream `a` from the
    /// divergence point (empty for [`DivergeKind::TailB`]).
    pub a: Vec<T>,
    /// Up to [`AlignConfig::context`] items of stream `b` from the
    /// divergence point (empty for [`DivergeKind::TailA`]).
    pub b: Vec<T>,
}

/// Aggregate result of aligning two streams.
#[derive(Debug, Clone)]
pub struct StreamDiff<T> {
    /// First divergence, `None` when the streams are identical.
    pub first: Option<Divergence<T>>,
    /// Items present and equal in both streams.
    pub matched: u64,
    /// Aligned-but-different item pairs.
    pub mutated: u64,
    /// Items present only in stream `b`.
    pub added: u64,
    /// Items present only in stream `a`.
    pub removed: u64,
    /// Total items consumed from stream `a`.
    pub len_a: u64,
    /// Total items consumed from stream `b`.
    pub len_b: u64,
    /// Number of successful windowed resyncs after a divergence.
    pub resyncs: u64,
    /// `true` when some divergence exceeded the resync window and the
    /// aligner fell back to pairwise draining (edit counts are then an
    /// upper bound, not a minimal edit script).
    pub window_exhausted: bool,
}

impl<T> Default for StreamDiff<T> {
    fn default() -> Self {
        StreamDiff {
            first: None,
            matched: 0,
            mutated: 0,
            added: 0,
            removed: 0,
            len_a: 0,
            len_b: 0,
            resyncs: 0,
            window_exhausted: false,
        }
    }
}

impl<T> StreamDiff<T> {
    /// `true` when the streams were item-for-item identical.
    pub fn is_identical(&self) -> bool {
        self.first.is_none() && self.mutated == 0 && self.added == 0 && self.removed == 0
    }
}

/// One stream side: a lookahead buffer over an iterator, counting consumed
/// items so divergence indices are exact even deep into the stream.
struct Feed<T, I: Iterator<Item = T>> {
    buf: VecDeque<T>,
    it: I,
    done: bool,
    consumed: u64,
}

impl<T, I: Iterator<Item = T>> Feed<T, I> {
    fn new(it: I) -> Self {
        Feed {
            buf: VecDeque::new(),
            it,
            done: false,
            consumed: 0,
        }
    }

    /// Ensures up to `n` items are buffered (fewer if the stream ends).
    fn fill(&mut self, n: usize) {
        while self.buf.len() < n && !self.done {
            match self.it.next() {
                Some(x) => self.buf.push_back(x),
                None => self.done = true,
            }
        }
    }

    fn next(&mut self) -> Option<T> {
        self.fill(1);
        let x = self.buf.pop_front();
        if x.is_some() {
            self.consumed += 1;
        }
        x
    }

    fn peek(&mut self) -> Option<&T> {
        self.fill(1);
        self.buf.front()
    }
}

/// Aligns two streams, classifying every item through `sink` and returning
/// the aggregate [`StreamDiff`]. `sink` receives, in stream order, each
/// edit with the participating item from each side ([`Edit::Match`] and
/// [`Edit::Mutate`] carry both; insertions/deletions carry one).
pub fn align_streams<T, IA, IB, S>(a: IA, b: IB, cfg: &AlignConfig, mut sink: S) -> StreamDiff<T>
where
    T: PartialEq + Clone,
    IA: Iterator<Item = T>,
    IB: Iterator<Item = T>,
    S: FnMut(Edit, Option<&T>, Option<&T>),
{
    let mut fa = Feed::new(a);
    let mut fb = Feed::new(b);
    let mut out = StreamDiff::default();
    let mut ctx: VecDeque<T> = VecDeque::new();

    loop {
        match (fa.peek().is_some(), fb.peek().is_some()) {
            (false, false) => break,
            (true, false) => {
                // Stream b ended: everything left in a is a deletion.
                if out.first.is_none() {
                    out.first = Some(capture_divergence(
                        &mut fa,
                        &mut fb,
                        DivergeKind::TailA,
                        &ctx,
                        cfg,
                    ));
                }
                while let Some(x) = fa.next() {
                    sink(Edit::DeleteA, Some(&x), None);
                    out.removed += 1;
                }
                break;
            }
            (false, true) => {
                if out.first.is_none() {
                    out.first = Some(capture_divergence(
                        &mut fa,
                        &mut fb,
                        DivergeKind::TailB,
                        &ctx,
                        cfg,
                    ));
                }
                while let Some(y) = fb.next() {
                    sink(Edit::InsertB, None, Some(&y));
                    out.added += 1;
                }
                break;
            }
            (true, true) => {
                if fa.peek() == fb.peek() {
                    let x = fa.next().expect("peeked");
                    let y = fb.next().expect("peeked");
                    sink(Edit::Match, Some(&x), Some(&y));
                    out.matched += 1;
                    if cfg.context > 0 {
                        if ctx.len() == cfg.context {
                            ctx.pop_front();
                        }
                        ctx.push_back(x);
                    }
                } else {
                    if out.first.is_none() {
                        out.first = Some(capture_divergence(
                            &mut fa,
                            &mut fb,
                            DivergeKind::Mismatch,
                            &ctx,
                            cfg,
                        ));
                    }
                    resync(&mut fa, &mut fb, cfg, &mut out, &mut sink);
                    if out.window_exhausted {
                        // resync() already drained both streams.
                        break;
                    }
                }
            }
        }
    }

    out.len_a = fa.consumed;
    out.len_b = fb.consumed;
    out
}

/// Snapshots the divergence point: indices, trailing matched context and a
/// bounded lookahead from each side.
fn capture_divergence<T, IA, IB>(
    fa: &mut Feed<T, IA>,
    fb: &mut Feed<T, IB>,
    kind: DivergeKind,
    ctx: &VecDeque<T>,
    cfg: &AlignConfig,
) -> Divergence<T>
where
    T: PartialEq + Clone,
    IA: Iterator<Item = T>,
    IB: Iterator<Item = T>,
{
    fa.fill(cfg.context);
    fb.fill(cfg.context);
    Divergence {
        index_a: fa.consumed,
        index_b: fb.consumed,
        kind,
        context: ctx.iter().cloned().collect(),
        a: fa.buf.iter().take(cfg.context).cloned().collect(),
        b: fb.buf.iter().take(cfg.context).cloned().collect(),
    }
}

/// Windowed resync after a mismatch. On success, classifies the skipped
/// prefixes and returns with the matching run still unconsumed (the main
/// loop's fast path eats it). On window exhaustion, drains both streams
/// pairwise and sets [`StreamDiff::window_exhausted`].
fn resync<T, IA, IB, S>(
    fa: &mut Feed<T, IA>,
    fb: &mut Feed<T, IB>,
    cfg: &AlignConfig,
    out: &mut StreamDiff<T>,
    sink: &mut S,
) where
    T: PartialEq + Clone,
    IA: Iterator<Item = T>,
    IB: Iterator<Item = T>,
    S: FnMut(Edit, Option<&T>, Option<&T>),
{
    fa.fill(cfg.window);
    fb.fill(cfg.window);
    let la = fa.buf.len();
    let lb = fb.buf.len();

    // Does skipping `da` items of a and `db` of b realign the streams?
    // Requires `run` consecutive matches (clamped at stream ends); an
    // empty remainder on both sides also counts, but only when both
    // streams are really exhausted (buffer shorter than the window).
    let check = |fa: &Feed<T, IA>, fb: &Feed<T, IB>, da: usize, db: usize| -> bool {
        let ra = la - da;
        let rb = lb - db;
        let need = cfg.run.min(ra).min(rb);
        if need == 0 {
            return ra == 0 && rb == 0 && fa.done && fb.done;
        }
        (0..need).all(|i| fa.buf[da + i] == fb.buf[db + i])
    };

    let mut found: Option<(usize, usize)> = None;
    'search: for s in 1..=(la + lb) {
        // da descending would also be deterministic; ascending prefers
        // classifying the edit as an insertion in b on exact ties.
        for da in 0..=s.min(la) {
            let db = s - da;
            if db > lb {
                continue;
            }
            if check(fa, fb, da, db) {
                found = Some((da, db));
                break 'search;
            }
        }
    }

    match found {
        Some((da, db)) => {
            let paired = da.min(db);
            for _ in 0..paired {
                let x = fa.next().expect("buffered");
                let y = fb.next().expect("buffered");
                sink(Edit::Mutate, Some(&x), Some(&y));
                out.mutated += 1;
            }
            for _ in 0..da - paired {
                let x = fa.next().expect("buffered");
                sink(Edit::DeleteA, Some(&x), None);
                out.removed += 1;
            }
            for _ in 0..db - paired {
                let y = fb.next().expect("buffered");
                sink(Edit::InsertB, None, Some(&y));
                out.added += 1;
            }
            out.resyncs += 1;
        }
        None => {
            out.window_exhausted = true;
            loop {
                match (fa.next(), fb.next()) {
                    (Some(x), Some(y)) => {
                        if x == y {
                            sink(Edit::Match, Some(&x), Some(&y));
                            out.matched += 1;
                        } else {
                            sink(Edit::Mutate, Some(&x), Some(&y));
                            out.mutated += 1;
                        }
                    }
                    (Some(x), None) => {
                        sink(Edit::DeleteA, Some(&x), None);
                        out.removed += 1;
                    }
                    (None, Some(y)) => {
                        sink(Edit::InsertB, None, Some(&y));
                        out.added += 1;
                    }
                    (None, None) => break,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diff(a: &[&str], b: &[&str]) -> StreamDiff<String> {
        align_streams(
            a.iter().map(|s| s.to_string()),
            b.iter().map(|s| s.to_string()),
            &AlignConfig::default(),
            |_, _, _| {},
        )
    }

    #[test]
    fn identical_streams_are_identical() {
        let d = diff(&["x", "y", "z"], &["x", "y", "z"]);
        assert!(d.is_identical());
        assert_eq!(d.matched, 3);
        assert!(d.first.is_none());
    }

    #[test]
    fn empty_streams_are_identical() {
        let d = diff(&[], &[]);
        assert!(d.is_identical());
        assert_eq!((d.len_a, d.len_b), (0, 0));
    }

    #[test]
    fn single_mutation_is_one_mutate() {
        let d = diff(&["a", "b", "c", "d", "e"], &["a", "b", "X", "d", "e"]);
        assert_eq!((d.matched, d.mutated, d.added, d.removed), (4, 1, 0, 0));
        let f = d.first.expect("diverged");
        assert_eq!((f.index_a, f.index_b), (2, 2));
        assert_eq!(f.kind, DivergeKind::Mismatch);
        assert_eq!(f.context, vec!["a", "b"]);
        assert_eq!(f.a, vec!["c", "d", "e"]);
        assert_eq!(f.b, vec!["X", "d", "e"]);
    }

    #[test]
    fn single_insertion_is_one_insert() {
        let d = diff(&["a", "b", "c", "d"], &["a", "X", "b", "c", "d"]);
        assert_eq!((d.matched, d.mutated, d.added, d.removed), (4, 0, 1, 0));
        assert_eq!(d.first.expect("diverged").index_a, 1);
    }

    #[test]
    fn single_deletion_is_one_delete() {
        let d = diff(&["a", "b", "c", "d"], &["a", "c", "d"]);
        assert_eq!((d.matched, d.mutated, d.added, d.removed), (3, 0, 0, 1));
        assert_eq!(d.first.expect("diverged").index_a, 1);
    }

    #[test]
    fn tail_extension_is_counted_as_added() {
        let d = diff(&["a"], &["a", "b", "c"]);
        assert_eq!((d.matched, d.added), (1, 2));
        let f = d.first.expect("diverged");
        assert_eq!(f.kind, DivergeKind::TailB);
        assert_eq!((f.index_a, f.index_b), (1, 1));
    }

    #[test]
    fn length_accounting_always_balances() {
        let cases: &[(&[&str], &[&str])] = &[
            (&["a", "b", "c"], &["a", "q", "c", "d"]),
            (&["a", "b"], &["c", "d"]),
            (&[], &["x"]),
            (&["x", "y", "z"], &[]),
        ];
        for (a, b) in cases {
            let d = diff(a, b);
            assert_eq!(d.matched + d.mutated + d.removed, d.len_a);
            assert_eq!(d.matched + d.mutated + d.added, d.len_b);
            assert_eq!(d.len_a, a.len() as u64);
            assert_eq!(d.len_b, b.len() as u64);
        }
    }

    #[test]
    fn unrelated_streams_exhaust_the_window() {
        let a: Vec<String> = (0..200).map(|i| format!("a{i}")).collect();
        let b: Vec<String> = (0..180).map(|i| format!("b{i}")).collect();
        let d = align_streams(
            a.into_iter(),
            b.into_iter(),
            &AlignConfig::default(),
            |_, _, _| {},
        );
        assert!(d.window_exhausted);
        assert_eq!(d.mutated, 180);
        assert_eq!(d.removed, 20);
        assert_eq!(d.matched + d.mutated + d.removed, 200);
    }

    #[test]
    fn sink_sees_every_item_in_order() {
        let mut log = Vec::new();
        align_streams(
            ["a", "b", "c"].into_iter(),
            ["a", "x", "c"].into_iter(),
            &AlignConfig::default(),
            |e, x, y| log.push((e, x.copied(), y.copied())),
        );
        assert_eq!(
            log,
            vec![
                (Edit::Match, Some("a"), Some("a")),
                (Edit::Mutate, Some("b"), Some("x")),
                (Edit::Match, Some("c"), Some("c")),
            ]
        );
    }
}
