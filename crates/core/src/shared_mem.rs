//! RAM folding (`SMPI_SHARED_MALLOC`, paper §3.2) and memory accounting.
//!
//! Single-node on-line simulation of `m` ranks would need `m ×` the
//! application's per-rank footprint. Technique #1 of \[3\] (Adve et al.)
//! replaces per-rank arrays by one shared array: with folding enabled,
//! [`Ctx::shared_malloc`] returns every rank the *same* buffer for the same
//! allocation site, cutting the requirement from `m·s` to `s`. The
//! application then computes with corrupted data — acceptable for
//! non-data-dependent codes, exactly the paper's trade-off.
//!
//! The [`MemoryTracker`] accounts both the **actual** footprint (what this
//! simulation really allocated) and the **logical** footprint (what an
//! unfolded simulation would have needed), which is how Fig. 16's
//! with/without-folding bars are produced from a single run.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::{Mutex, MutexGuard};

use crate::ctx::Ctx;
use crate::datatype::Datatype;

/// Tracks simulated-application memory usage (bytes): current and peak, both
/// actual (folded) and logical (unfolded).
#[derive(Debug, Default)]
pub struct MemoryTracker {
    inner: Mutex<MemInner>,
}

#[derive(Debug, Default, Clone, Copy)]
struct MemInner {
    current: u64,
    peak: u64,
    logical_current: u64,
    logical_peak: u64,
}

/// Snapshot of the tracker.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryReport {
    /// Peak bytes actually allocated by the simulation for app buffers.
    pub peak_bytes: u64,
    /// Peak bytes an unfolded simulation would have allocated.
    pub logical_peak_bytes: u64,
}

impl MemoryReport {
    /// Folding factor: logical / actual (1.0 when folding is off).
    pub fn folding_factor(&self) -> f64 {
        if self.peak_bytes == 0 {
            1.0
        } else {
            self.logical_peak_bytes as f64 / self.peak_bytes as f64
        }
    }
}

impl MemoryTracker {
    /// Fresh tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an allocation.
    pub fn allocate(&self, actual: u64, logical: u64) {
        let mut m = self.inner.lock();
        m.current += actual;
        m.peak = m.peak.max(m.current);
        m.logical_current += logical;
        m.logical_peak = m.logical_peak.max(m.logical_current);
    }

    /// Records a deallocation.
    pub fn release(&self, actual: u64, logical: u64) {
        let mut m = self.inner.lock();
        m.current = m.current.saturating_sub(actual);
        m.logical_current = m.logical_current.saturating_sub(logical);
    }

    /// Current + peak usage.
    pub fn report(&self) -> MemoryReport {
        let m = self.inner.lock();
        MemoryReport {
            peak_bytes: m.peak,
            logical_peak_bytes: m.logical_peak,
        }
    }
}

/// Type-erased entry of the folded heap.
type HeapEntry = Arc<dyn std::any::Any + Send + Sync>;

/// The folded allocation table, keyed by allocation site.
#[derive(Default)]
pub struct SharedHeap {
    inner: Mutex<HashMap<String, HeapEntry>>,
}

impl std::fmt::Debug for SharedHeap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SharedHeap({} sites)", self.inner.lock().len())
    }
}

impl SharedHeap {
    /// Empty heap.
    pub fn new() -> Self {
        Self::default()
    }

    fn get_or_insert<T: Datatype>(&self, site: &str, len: usize) -> (Arc<Mutex<Vec<T>>>, bool) {
        let mut map = self.inner.lock();
        if let Some(entry) = map.get(site) {
            let arc = entry
                .clone()
                .downcast::<Mutex<Vec<T>>>()
                .expect("shared_malloc site reused with a different element type");
            assert_eq!(
                arc.lock().len(),
                len,
                "shared_malloc site {site:?} reused with a different length"
            );
            (arc, false)
        } else {
            let arc = Arc::new(Mutex::new(vec![T::default(); len]));
            map.insert(site.to_string(), arc.clone() as HeapEntry);
            (arc, true)
        }
    }
}

/// A buffer returned by [`Ctx::shared_malloc`]. With folding on, all ranks
/// using the same site observe (and clobber) the same storage. Access goes
/// through a lock; it is never contended because ranks run one at a time.
pub struct SharedSlice<T: Datatype> {
    data: Arc<Mutex<Vec<T>>>,
    tracker: Arc<TrackerRef>,
    actual: u64,
    logical: u64,
}

/// Keeps the tracker alive and lets `SharedSlice` release on drop.
struct TrackerRef {
    shared: Arc<crate::state::SharedState>,
}

impl<T: Datatype> SharedSlice<T> {
    /// Locks the buffer for reading/writing.
    pub fn lock(&self) -> MutexGuard<'_, Vec<T>> {
        self.data.lock()
    }

    /// Buffer length in elements.
    pub fn len(&self) -> usize {
        self.data.lock().len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T: Datatype> Drop for SharedSlice<T> {
    fn drop(&mut self) {
        self.tracker
            .shared
            .memory
            .release(self.actual, self.logical);
    }
}

impl Ctx<'_> {
    /// `SMPI_SHARED_MALLOC`: allocates `len` elements for allocation site
    /// `site`. With folding enabled, all ranks share one buffer per site
    /// (`SMPI_FREE` is the handle's `Drop`). Without folding each rank gets
    /// a private buffer, so the tracker exposes the true unfolded footprint.
    pub fn shared_malloc<T: Datatype>(&self, site: &str, len: usize) -> SharedSlice<T> {
        // Local simcall tier: the folded-heap lookup stays on the actor
        // thread; no baton pass is involved in allocation.
        self.shared.count_local_call();
        let bytes = (len * T::SIZE) as u64;
        let (data, actual) = if self.shared.config.ram_folding {
            let (arc, fresh) = self.shared.heap.get_or_insert::<T>(site, len);
            (arc, if fresh { bytes } else { 0 })
        } else {
            (Arc::new(Mutex::new(vec![T::default(); len])), bytes)
        };
        self.shared.memory.allocate(actual, bytes);
        SharedSlice {
            data,
            tracker: Arc::new(TrackerRef {
                shared: Arc::clone(&self.shared),
            }),
            actual,
            logical: bytes,
        }
    }

    /// A tracked private allocation (ordinary rank-local buffer that should
    /// count towards the footprint of Fig. 16).
    pub fn tracked_vec<T: Datatype>(&self, len: usize) -> SharedSlice<T> {
        let bytes = (len * T::SIZE) as u64;
        self.shared.memory.allocate(bytes, bytes);
        SharedSlice {
            data: Arc::new(Mutex::new(vec![T::default(); len])),
            tracker: Arc::new(TrackerRef {
                shared: Arc::clone(&self.shared),
            }),
            actual: bytes,
            logical: bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_accounts_peaks() {
        let t = MemoryTracker::new();
        t.allocate(100, 400);
        t.allocate(50, 50);
        t.release(100, 400);
        t.allocate(20, 20);
        let r = t.report();
        assert_eq!(r.peak_bytes, 150);
        assert_eq!(r.logical_peak_bytes, 450);
        assert!((r.folding_factor() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn release_saturates() {
        let t = MemoryTracker::new();
        t.release(10, 10);
        assert_eq!(t.report().peak_bytes, 0);
    }

    #[test]
    fn heap_folds_same_site() {
        let h = SharedHeap::new();
        let (a, fresh_a) = h.get_or_insert::<f64>("s", 8);
        let (b, fresh_b) = h.get_or_insert::<f64>("s", 8);
        assert!(fresh_a);
        assert!(!fresh_b);
        assert!(Arc::ptr_eq(&a, &b));
        a.lock()[0] = 42.0;
        assert_eq!(b.lock()[0], 42.0);
    }

    #[test]
    fn heap_distinguishes_sites() {
        let h = SharedHeap::new();
        let (a, _) = h.get_or_insert::<u32>("a", 4);
        let (b, _) = h.get_or_insert::<u32>("b", 4);
        assert!(!Arc::ptr_eq(&a, &b));
    }

    #[test]
    #[should_panic]
    fn heap_rejects_len_mismatch() {
        let h = SharedHeap::new();
        let _ = h.get_or_insert::<u32>("a", 4);
        let _ = h.get_or_insert::<u32>("a", 8);
    }
}
