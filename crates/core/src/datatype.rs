//! Predefined MPI datatypes.
//!
//! Application buffers are typed Rust slices; the wire carries raw bytes.
//! The [`Datatype`] trait marks plain-old-data element types that can be
//! safely reinterpreted to/from bytes, playing the role of the predefined
//! MPI datatypes (`MPI_INT`, `MPI_DOUBLE`, …). Conversions are implemented
//! with explicit little-endian-free `copy_from_slice` on byte views, so they
//! are safe, endian-agnostic within a process, and allocation-free on the
//! receive path.

/// A plain-old-data element type usable in MPI messages.
///
/// # Safety-free by construction
/// Implementations only use safe byte-copy conversions; no `unsafe` casts.
pub trait Datatype: Copy + Default + Send + 'static {
    /// Size of one element in bytes (`MPI_Type_size`).
    const SIZE: usize;
    /// Human-readable MPI-style name.
    const NAME: &'static str;

    /// Serializes one element into `out` (exactly `SIZE` bytes).
    fn write_bytes(&self, out: &mut [u8]);
    /// Deserializes one element from `input` (exactly `SIZE` bytes).
    fn from_bytes(input: &[u8]) -> Self;
}

macro_rules! impl_datatype {
    ($t:ty, $name:expr) => {
        impl Datatype for $t {
            const SIZE: usize = std::mem::size_of::<$t>();
            const NAME: &'static str = $name;

            fn write_bytes(&self, out: &mut [u8]) {
                out.copy_from_slice(&self.to_le_bytes());
            }

            fn from_bytes(input: &[u8]) -> Self {
                <$t>::from_le_bytes(input.try_into().expect("element size"))
            }
        }
    };
}

impl_datatype!(u8, "MPI_BYTE");
impl_datatype!(i8, "MPI_CHAR");
impl_datatype!(u16, "MPI_UNSIGNED_SHORT");
impl_datatype!(i16, "MPI_SHORT");
impl_datatype!(u32, "MPI_UNSIGNED");
impl_datatype!(i32, "MPI_INT");
impl_datatype!(u64, "MPI_UNSIGNED_LONG");
impl_datatype!(i64, "MPI_LONG");
impl_datatype!(f32, "MPI_FLOAT");
impl_datatype!(f64, "MPI_DOUBLE");

/// Serializes a typed slice into a fresh byte vector.
pub fn to_bytes<T: Datatype>(data: &[T]) -> Vec<u8> {
    let mut out = vec![0u8; data.len() * T::SIZE];
    for (elem, chunk) in data.iter().zip(out.chunks_exact_mut(T::SIZE)) {
        elem.write_bytes(chunk);
    }
    out
}

/// Deserializes bytes into a typed output slice. `bytes` may be shorter than
/// the buffer (a short message); returns the number of elements written.
/// Panics if `bytes` is not a whole number of elements or overflows `out`.
pub fn from_bytes<T: Datatype>(bytes: &[u8], out: &mut [T]) -> usize {
    assert!(
        bytes.len().is_multiple_of(T::SIZE),
        "message of {} bytes is not a whole number of {} elements",
        bytes.len(),
        T::NAME
    );
    let n = bytes.len() / T::SIZE;
    assert!(
        n <= out.len(),
        "message of {n} elements overflows receive buffer of {}",
        out.len()
    );
    for (chunk, slot) in bytes.chunks_exact(T::SIZE).zip(out.iter_mut()) {
        *slot = T::from_bytes(chunk);
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_c_expectations() {
        assert_eq!(<u8 as Datatype>::SIZE, 1);
        assert_eq!(<i32 as Datatype>::SIZE, 4);
        assert_eq!(<f64 as Datatype>::SIZE, 8);
    }

    #[test]
    fn roundtrip_f64() {
        let data = [1.5f64, -2.25, 0.0, f64::MAX, f64::MIN_POSITIVE];
        let bytes = to_bytes(&data);
        assert_eq!(bytes.len(), 40);
        let mut out = [0.0f64; 5];
        assert_eq!(from_bytes(&bytes, &mut out), 5);
        assert_eq!(out, data);
    }

    #[test]
    fn roundtrip_i32_preserves_sign() {
        let data = [i32::MIN, -1, 0, 1, i32::MAX];
        let bytes = to_bytes(&data);
        let mut out = [0i32; 5];
        from_bytes(&bytes, &mut out);
        assert_eq!(out, data);
    }

    #[test]
    fn short_message_fills_prefix() {
        let bytes = to_bytes(&[7u32, 8]);
        let mut out = [0u32; 4];
        assert_eq!(from_bytes(&bytes, &mut out), 2);
        assert_eq!(out, [7, 8, 0, 0]);
    }

    #[test]
    #[should_panic]
    fn misaligned_message_panics() {
        let mut out = [0u32; 2];
        from_bytes(&[1, 2, 3], &mut out);
    }

    #[test]
    #[should_panic]
    fn overflow_panics() {
        let bytes = to_bytes(&[1u8, 2, 3]);
        let mut out = [0u8; 2];
        from_bytes(&bytes, &mut out);
    }
}
