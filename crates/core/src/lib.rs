//! # smpi — single-node on-line simulation of MPI applications
//!
//! Rust reproduction of *"Single Node On-Line Simulation of MPI Applications
//! with SMPI"* (Clauss, Stillwell, Genaud, Suter, Casanova, Quinson — IPDPS
//! 2011). Applications are real Rust closures making MPI calls against a
//! [`ctx::Ctx`]; every call is intercepted and timed by a simulation
//! backend, while the application's data and control flow execute for real
//! (**on-line** simulation).
//!
//! ```
//! use smpi::{World, MpiProfile};
//! use smpi_platform::{flat_cluster, ClusterConfig, RoutedPlatform};
//! use surf_sim::TransferModel;
//! use std::sync::Arc;
//!
//! let rp = Arc::new(RoutedPlatform::new(flat_cluster("c", 4, &ClusterConfig::default())));
//! let world = World::smpi(rp, TransferModel::default_affine());
//! let report = world.run(4, |ctx| {
//!     let mine = [ctx.rank() as f64];
//!     let sum = ctx.allreduce(&mine, &smpi::op::sum::<f64>(), &ctx.world());
//!     sum[0]
//! });
//! assert!(report.results.iter().all(|&s| s == 6.0)); // 0+1+2+3
//! assert!(report.sim_time > 0.0);
//! ```
//!
//! The same application runs unchanged on the packet-level ground-truth
//! backend (`World::testbed`), which is how the reproduction regenerates the
//! paper's accuracy figures.

pub mod capture;
pub mod capture_v2;
pub mod coll;
pub mod comm;
pub mod ctx;
pub mod datatype;
pub mod error;
pub mod ext;
pub mod fabric;
pub mod flight;
pub mod group;
pub mod matching;
pub mod obs_export;
pub mod op;
pub mod runtime;
pub mod sampling;
pub mod shared_mem;
pub mod state;
pub mod trace;
pub mod world;

pub use capture::{TiDecodeError, TiOp, TiSummary, TiTrace, TraceIoError};
pub use capture_v2::{
    decode_v2, encode_v2, ReaderStats, TiOpIter, TiV2Error, TiV2Reader, TiV2Writer,
    DEFAULT_BLOCK_OPS, DEFAULT_WRITER_BUDGET,
};
pub use coll::alltoall::pairwise_peers;
pub use coll::tree;
pub use comm::Comm;
pub use ctx::{AnyRequest, Ctx, RecvRequest, SendRequest, SizedRecvRequest, Status};
pub use datatype::Datatype;
pub use error::SimError;
pub use ext::UNDEFINED_COLOR;
pub use fabric::{Fabric, MpiProfile, PacketFabric, SurfFabric};
pub use flight::{PendingReq, Postmortem, RankPostmortem, FLIGHT_DEPTH};
pub use group::Group;
pub use obs_export::CriticalPath;
pub use op::Op;
pub use runtime::{Completion, ReqId, WaitMode, ANY_SOURCE, ANY_TAG};
pub use shared_mem::{MemoryReport, SharedSlice};
pub use trace::{TraceEvent, TraceKind};
pub use world::{Backend, RunReport, World};
