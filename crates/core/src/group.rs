//! Process groups (`MPI_Group`).
//!
//! A group is an ordered set of world ranks. SMPI supports "process groups,
//! communicators, and their operations (except Comm_split)"; the classic
//! group algebra is implemented here and communicators wrap a group plus a
//! context id in [`crate::comm`].

use std::sync::Arc;

/// An ordered set of distinct world ranks.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Group {
    members: Arc<Vec<u32>>,
}

impl Group {
    /// Builds a group from world ranks. Ranks must be distinct.
    pub fn new(members: Vec<u32>) -> Self {
        let mut seen = members.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), members.len(), "group members must be distinct");
        Group {
            members: Arc::new(members),
        }
    }

    /// The group `{0, 1, …, n-1}` (the world group).
    pub fn world(n: usize) -> Self {
        Group::new((0..n as u32).collect())
    }

    /// Number of members (`MPI_Group_size`).
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// `true` for the empty group.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// World rank of local rank `r` (`MPI_Group_translate_ranks` to world).
    pub fn world_rank(&self, r: usize) -> u32 {
        self.members[r]
    }

    /// Local rank of world rank `w` (`MPI_Group_rank`), if a member.
    pub fn local_rank(&self, w: u32) -> Option<usize> {
        self.members.iter().position(|&m| m == w)
    }

    /// Members in local-rank order.
    pub fn members(&self) -> &[u32] {
        &self.members
    }

    /// `MPI_Group_incl`: the sub-group of the listed local ranks, in order.
    pub fn incl(&self, ranks: &[usize]) -> Group {
        Group::new(ranks.iter().map(|&r| self.members[r]).collect())
    }

    /// `MPI_Group_excl`: all members except the listed local ranks,
    /// preserving order.
    pub fn excl(&self, ranks: &[usize]) -> Group {
        let excluded: std::collections::HashSet<usize> = ranks.iter().copied().collect();
        Group::new(
            self.members
                .iter()
                .enumerate()
                .filter(|(i, _)| !excluded.contains(i))
                .map(|(_, &w)| w)
                .collect(),
        )
    }

    /// `MPI_Group_union`: members of `self`, then members of `other` not in
    /// `self`, in `other`'s order.
    pub fn union(&self, other: &Group) -> Group {
        let mut out: Vec<u32> = self.members.as_ref().clone();
        for &w in other.members.iter() {
            if !out.contains(&w) {
                out.push(w);
            }
        }
        Group::new(out)
    }

    /// `MPI_Group_intersection`: members of `self` also in `other`, in
    /// `self`'s order.
    pub fn intersection(&self, other: &Group) -> Group {
        Group::new(
            self.members
                .iter()
                .copied()
                .filter(|w| other.local_rank(*w).is_some())
                .collect(),
        )
    }

    /// `MPI_Group_difference`: members of `self` not in `other`.
    pub fn difference(&self, other: &Group) -> Group {
        Group::new(
            self.members
                .iter()
                .copied()
                .filter(|w| other.local_rank(*w).is_none())
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_group_is_identity() {
        let g = Group::world(4);
        assert_eq!(g.size(), 4);
        for r in 0..4 {
            assert_eq!(g.world_rank(r), r as u32);
            assert_eq!(g.local_rank(r as u32), Some(r));
        }
    }

    #[test]
    fn incl_and_excl() {
        let g = Group::world(6);
        let sub = g.incl(&[4, 2, 0]);
        assert_eq!(sub.members(), &[4, 2, 0]);
        assert_eq!(sub.local_rank(2), Some(1));
        let rest = g.excl(&[4, 2, 0]);
        assert_eq!(rest.members(), &[1, 3, 5]);
    }

    #[test]
    fn set_algebra() {
        let a = Group::new(vec![0, 1, 2, 3]);
        let b = Group::new(vec![2, 3, 4, 5]);
        assert_eq!(a.union(&b).members(), &[0, 1, 2, 3, 4, 5]);
        assert_eq!(a.intersection(&b).members(), &[2, 3]);
        assert_eq!(a.difference(&b).members(), &[0, 1]);
        assert_eq!(b.difference(&a).members(), &[4, 5]);
    }

    #[test]
    fn empty_group() {
        let g = Group::new(vec![]);
        assert!(g.is_empty());
        assert_eq!(g.size(), 0);
    }

    #[test]
    #[should_panic]
    fn duplicates_rejected() {
        Group::new(vec![1, 1]);
    }

    #[test]
    fn incl_of_incl_composes() {
        let g = Group::world(8);
        let evens = g.incl(&[0, 2, 4, 6]);
        let quarter = evens.incl(&[1, 3]); // world ranks 2, 6
        assert_eq!(quarter.members(), &[2, 6]);
    }
}
