//! Launching simulations: platform + backend + ranks.
//!
//! [`World::run`] is the `smpirun` equivalent: it spawns one actor per MPI
//! rank, hands each a [`Ctx`], and drives the maestro until every rank
//! finishes. The report carries everything the paper's figures need —
//! simulated time, per-rank completion times (Figs. 7 and 11), wall-clock
//! simulation time (Figs. 17 and 18) and the memory accounting (Fig. 16).

use std::sync::Arc;
use std::time::{Duration, Instant};

use packetnet::PacketConfig;
use smpi_obs::{ContentionReport, MetricsReport, Rec, SelfProfile, TimeSeries, DEFAULT_TS_BUDGET};
use smpi_platform::{HostIx, PlatformPerturbation, RoutedPlatform};
use surf_sim::{EngineConfig, TransferModel};

use crate::capture::TiTrace;
use crate::ctx::Ctx;
use crate::error::SimError;
use crate::fabric::{Fabric, MpiProfile, PacketFabric, SurfFabric};
use crate::runtime::{Runtime, Sx};
use crate::shared_mem::MemoryReport;
use crate::state::{RunConfig, SharedState};
use crate::trace::TraceEvent;

/// Which network substrate to simulate on.
#[derive(Debug, Clone)]
pub enum Backend {
    /// SMPI proper: the flow-level kernel with a transfer model.
    Surf {
        /// Point-to-point model (typically from calibration).
        model: TransferModel,
        /// Kernel configuration (contention on/off, TCP window).
        engine: EngineConfig,
    },
    /// The packet-level ground-truth substrate.
    Packet {
        /// Framing parameters.
        config: PacketConfig,
    },
}

/// A configured simulation world.
#[derive(Clone)]
pub struct World {
    rp: Arc<RoutedPlatform>,
    backend: Backend,
    profile: MpiProfile,
    run_config: RunConfig,
    placement: Option<Vec<HostIx>>,
    tracing: bool,
    capture: bool,
    capture_path: Option<std::path::PathBuf>,
    capture_block_ops: usize,
    capture_budget: usize,
    stack_size: usize,
    timeseries: bool,
    ts_budget: usize,
    progress_every: Option<f64>,
    progress_hint: Option<f64>,
    perturbation: Option<Arc<PlatformPerturbation>>,
}

/// Results of one run.
#[derive(Debug)]
pub struct RunReport<R> {
    /// Simulated time at which the last rank finished, seconds.
    pub sim_time: f64,
    /// Wall-clock time the simulation itself took (the "simulation time"
    /// axis of Figs. 17–18).
    pub wall: Duration,
    /// Simulated completion time of each rank.
    pub finish_times: Vec<f64>,
    /// Value returned by each rank's body.
    pub results: Vec<R>,
    /// Application memory accounting.
    pub memory: MemoryReport,
    /// Recorded event trace (empty unless tracing was enabled).
    pub trace: Vec<TraceEvent>,
    /// Metrics snapshot (`None` unless [`World::metrics`] was enabled):
    /// protocol counters, link utilization, queue depths, rank timelines.
    pub metrics: Option<MetricsReport>,
    /// Simulator self-profile: events processed, events/sec, and (when
    /// metrics are on) wall-clock per drive-loop phase.
    pub profile: SelfProfile,
    /// Captured time-independent trace (`None` unless [`World::capture`]
    /// was enabled); feed it to `smpi-replay` for off-line re-simulation.
    pub ti_trace: Option<TiTrace>,
    /// Contention attribution (`None` unless [`World::metrics`] was
    /// enabled): per delivered message, which links carried it and which
    /// bottlenecked it, with per-link and per-rank rollups.
    pub contention: Option<ContentionReport>,
    /// Bounded-memory time series of the run (`None` unless
    /// [`World::timeseries`] was enabled): per-interval simcall/token
    /// counts, active flows, woken actors, link utilization, solver
    /// wall-clock and memory high-water mark. The sampler halves its
    /// resolution whenever the buffer fills, so memory stays fixed no
    /// matter how long the run simulates.
    pub timeseries: Option<TimeSeries>,
}

impl World {
    /// Creates a world over a platform.
    pub fn new(rp: Arc<RoutedPlatform>, backend: Backend, profile: MpiProfile) -> Self {
        World {
            rp,
            backend,
            profile,
            run_config: RunConfig::default(),
            placement: None,
            tracing: false,
            capture: false,
            capture_path: None,
            capture_block_ops: crate::capture_v2::DEFAULT_BLOCK_OPS,
            capture_budget: crate::capture_v2::DEFAULT_WRITER_BUDGET,
            stack_size: simix::DEFAULT_STACK_SIZE,
            timeseries: false,
            ts_budget: DEFAULT_TS_BUDGET,
            progress_every: None,
            progress_hint: None,
            perturbation: None,
        }
    }

    /// Convenience: SMPI on this platform with a model and default engine.
    pub fn smpi(rp: Arc<RoutedPlatform>, model: TransferModel) -> Self {
        World::new(
            rp,
            Backend::Surf {
                model,
                engine: EngineConfig::default(),
            },
            MpiProfile::smpi(),
        )
    }

    /// Convenience: the emulated "real" cluster with an MPI personality.
    pub fn testbed(rp: Arc<RoutedPlatform>, profile: MpiProfile) -> Self {
        World::new(
            rp,
            Backend::Packet {
                config: PacketConfig::default(),
            },
            profile,
        )
    }

    /// Sets the measured-CPU-burst scaling factor (§3.1).
    pub fn cpu_factor(mut self, factor: f64) -> Self {
        assert!(factor > 0.0 && factor.is_finite());
        self.run_config.cpu_factor = factor;
        self
    }

    /// Enables or disables RAM folding (§3.2). Default: enabled.
    pub fn ram_folding(mut self, enabled: bool) -> Self {
        self.run_config.ram_folding = enabled;
        self
    }

    /// Sets the per-rank actor thread stack size in bytes (default
    /// [`simix::DEFAULT_STACK_SIZE`], 256 KiB). Large-instance runs keep
    /// the default; raise it for rank bodies with deep recursion or big
    /// stack buffers.
    pub fn stack_size(mut self, bytes: usize) -> Self {
        assert!(bytes > 0, "stack size must be non-zero");
        self.stack_size = bytes;
        self
    }

    /// Clones this world with an explicit rank placement (see
    /// [`place`](Self::place)); used by drivers that re-run the same world
    /// between different host pairs.
    pub fn clone_for_placement(&self, hosts: Vec<usize>) -> World {
        self.clone().place(hosts)
    }

    /// Enables communication tracing: the run report's `trace` carries a
    /// timestamped event per protocol transition (see [`crate::trace`]).
    pub fn tracing(mut self, enabled: bool) -> Self {
        self.tracing = enabled;
        self
    }

    /// Enables time-independent trace capture: the run report's `ti_trace`
    /// carries each rank's sequence of compute bursts and MPI events with
    /// no timestamps (see [`crate::capture`]). Such a trace replays against
    /// any platform/model with the `smpi-replay` crate. Region annotations
    /// appear in the capture only when [`metrics`](Self::metrics) is also
    /// on (ranks skip the region simcall entirely otherwise).
    pub fn capture(mut self, enabled: bool) -> Self {
        self.capture = enabled;
        self
    }

    /// Enables *streaming* capture straight to a `TITRACE2` file: sealed
    /// blocks of ops leave the maestro as the run progresses, so capture
    /// memory is bounded by the writer budget rather than by trace length
    /// (see [`crate::capture_v2`]). The run report's `ti_trace` stays
    /// `None` (the ops are on disk — open them with `TiV2Reader`), and
    /// `profile.codec` carries the codec counters. Implies
    /// [`capture`](Self::capture).
    pub fn capture_to(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.capture = true;
        self.capture_path = Some(path.into());
        self
    }

    /// Overrides the streaming-capture block size (ops per sealed block)
    /// and global staging budget in bytes. Only meaningful together with
    /// [`capture_to`](Self::capture_to).
    pub fn capture_tuning(mut self, block_ops: usize, budget_bytes: usize) -> Self {
        assert!(block_ops > 0, "block size must be non-zero");
        self.capture_block_ops = block_ops;
        self.capture_budget = budget_bytes;
        self
    }

    /// Enables the observability layer: the run report's `metrics` carries
    /// protocol counters, per-link utilization, queue metrics and per-rank
    /// state timelines, and `profile` gains per-phase wall-clock timings.
    /// Off by default — the disabled path is a single branch per emit site.
    pub fn metrics(mut self, enabled: bool) -> Self {
        self.run_config.obs = enabled;
        self
    }

    /// Enables the time-series sampler: the run report's `timeseries`
    /// carries fixed-budget ring buffers of per-interval activity (simcall
    /// rate, active flows, link utilization, …). Deterministic: two
    /// identical runs produce byte-identical series once
    /// [`TimeSeries::strip_wallclock`] removes the host-dependent solver
    /// timings.
    pub fn timeseries(mut self, enabled: bool) -> Self {
        self.timeseries = enabled;
        self
    }

    /// Overrides the time-series sample budget (default
    /// [`DEFAULT_TS_BUDGET`]). Memory is `O(budget × links)` regardless of
    /// run length. Implies nothing about `timeseries` itself — enable that
    /// separately.
    pub fn timeseries_budget(mut self, budget: usize) -> Self {
        assert!(budget >= 2, "time-series budget must be at least 2");
        self.ts_budget = budget;
        self
    }

    /// Emits a live JSON progress line to stderr every `period_secs` of
    /// wall-clock time while the maestro drives: simulated time, simcall
    /// rate, sim-time advance rate, and — when
    /// [`progress_hint`](Self::progress_hint) supplied the workload's
    /// expected total simulated time — an ETA.
    pub fn progress_every(mut self, period_secs: f64) -> Self {
        assert!(period_secs > 0.0 && period_secs.is_finite());
        self.progress_every = Some(period_secs);
        self
    }

    /// Supplies the workload's expected total simulated time (e.g. from a
    /// previous run of the same configuration) so progress lines can
    /// extrapolate an ETA.
    pub fn progress_hint(mut self, total_sim_time: f64) -> Self {
        assert!(total_sim_time > 0.0 && total_sim_time.is_finite());
        self.progress_hint = Some(total_sim_time);
        self
    }

    /// Applies a stochastic perturbation overlay to the platform for every
    /// run of this world: multiplicative per-link bandwidth/latency and
    /// per-host speed factors, applied when the backend materializes the
    /// (otherwise shared, immutable) platform. The identity overlay is
    /// bit-exact with no overlay. Panics if the overlay does not validate
    /// against the platform.
    ///
    /// Control-message latency (the rendezvous handshake cost on backends
    /// that model it) stays nominal: jitter models data-plane variability.
    pub fn perturbation(mut self, p: Arc<PlatformPerturbation>) -> Self {
        p.validate(self.rp.platform())
            .unwrap_or_else(|e| panic!("invalid perturbation: {e}"));
        self.perturbation = Some(p);
        self
    }

    /// Pins rank `r` to host `hosts[r]` instead of the default round-robin
    /// placement (used e.g. to calibrate between two specific nodes of a
    /// hierarchical cluster).
    pub fn place(mut self, hosts: Vec<usize>) -> Self {
        let n = self.rp.platform().num_hosts();
        assert!(hosts.iter().all(|&h| h < n), "placement host out of range");
        self.placement = Some(hosts.into_iter().map(|h| HostIx(h as u32)).collect());
        self
    }

    fn build_fabric(&self) -> Box<dyn Fabric> {
        let perturb = self.perturbation.as_deref();
        match &self.backend {
            Backend::Surf { model, engine } => Box::new(SurfFabric::with_perturbation(
                Arc::clone(&self.rp),
                model.clone(),
                engine.clone(),
                perturb,
            )),
            Backend::Packet { config } => Box::new(PacketFabric::with_perturbation(
                Arc::clone(&self.rp),
                *config,
                perturb,
            )),
        }
    }

    /// Runs `body` on `nranks` MPI ranks (placed round-robin over the
    /// platform's hosts) and returns the run report with each rank's result.
    ///
    /// Panics on a kernel stall or an MPI-level deadlock; use
    /// [`try_run`](Self::try_run) to handle those as typed errors.
    pub fn run<R, F>(&self, nranks: usize, body: F) -> RunReport<R>
    where
        R: Send + 'static,
        F: Fn(&Ctx) -> R + Send + Sync + 'static,
    {
        self.try_run(nranks, body).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Like [`run`](Self::run), but surfaces no-progress conditions (kernel
    /// stalls, unmatched send/recv deadlocks) as a [`SimError`] instead of
    /// panicking.
    pub fn try_run<R, F>(&self, nranks: usize, body: F) -> Result<RunReport<R>, SimError>
    where
        R: Send + 'static,
        F: Fn(&Ctx) -> R + Send + Sync + 'static,
    {
        assert!(nranks > 0, "need at least one rank");
        let hosts = self.rp.platform().num_hosts();
        assert!(hosts > 0, "platform has no hosts");
        let placement: Vec<HostIx> = match &self.placement {
            Some(p) => {
                assert_eq!(p.len(), nranks, "placement length != rank count");
                p.clone()
            }
            None => (0..nranks).map(|r| HostIx((r % hosts) as u32)).collect(),
        };

        let shared = Arc::new(SharedState::new(self.run_config.clone()));
        let results: Arc<parking_lot::Mutex<Vec<Option<R>>>> =
            Arc::new(parking_lot::Mutex::new((0..nranks).map(|_| None).collect()));

        let mut sx: Sx = Sx::with_stack_size(self.stack_size);
        let body = Arc::new(body);
        for rank in 0..nranks {
            let body = Arc::clone(&body);
            let shared = Arc::clone(&shared);
            let results = Arc::clone(&results);
            sx.spawn(move |handle| {
                let ctx = Ctx::new(handle, nranks, shared);
                let out = body(&ctx);
                results.lock()[rank] = Some(out);
            });
        }

        let mut runtime = Runtime::new(self.build_fabric(), self.profile.clone(), placement);
        runtime.set_clock(Arc::clone(&shared.clock));
        if self.tracing {
            runtime.enable_tracing();
        }
        if let Some(path) = &self.capture_path {
            let file = std::fs::File::create(path)
                .unwrap_or_else(|e| panic!("cannot create capture file {}: {e}", path.display()));
            runtime.enable_capture_stream(
                Box::new(std::io::BufWriter::new(file)),
                self.capture_block_ops,
                self.capture_budget,
            );
        } else if self.capture {
            runtime.enable_capture();
        }
        if self.run_config.obs {
            runtime.set_recorder(Rec::enabled());
            runtime.enable_profiling();
        }
        if self.timeseries {
            runtime.enable_timeseries(self.ts_budget);
            let mem = Arc::clone(&shared);
            runtime.set_memory_probe(Box::new(move || mem.memory.report().peak_bytes));
        }
        if let Some(period) = self.progress_every {
            runtime.enable_progress(period, self.progress_hint);
        }
        let start = Instant::now();
        runtime.drive(&mut sx)?;
        let wall = start.elapsed();

        let results = Arc::try_unwrap(results)
            .unwrap_or_else(|_| panic!("rank bodies leaked the result store"))
            .into_inner()
            .into_iter()
            .map(|r| r.expect("every rank stores a result"))
            .collect();

        let mut profile = runtime.self_profile();
        profile.wall_seconds = wall.as_secs_f64();
        profile.local_simcalls = shared.local_calls();
        if let Some(stats) = runtime.take_capture_stats() {
            profile.codec =
                Some(stats.unwrap_or_else(|e| panic!("streaming capture write failed: {e}")));
        }

        Ok(RunReport {
            sim_time: runtime.now(),
            wall,
            finish_times: runtime.finish_times().to_vec(),
            results,
            memory: shared.memory.report(),
            metrics: runtime.take_metrics(),
            profile,
            trace: runtime.take_trace(),
            ti_trace: runtime.take_capture(),
            contention: runtime.take_contention(),
            timeseries: runtime.take_timeseries(),
        })
    }
}
