//! Typed simulation failures.
//!
//! A simulation that cannot make progress used to `panic!` from deep inside
//! the kernel or the maestro loop. Both conditions are now surfaced as a
//! [`SimError`] through [`crate::world::World::try_run`], so harnesses (and
//! tests) can distinguish a modelling bug from an infrastructure crash and
//! report *which* actions or ranks are stuck.
//!
//! Both variants carry a [`Postmortem`] snapshot from the always-on flight
//! recorder: each blocked rank's last ops, its pending request specs, and
//! the nearest matching counterpart — so `Display` prints an actionable
//! diagnosis ("rank 1 is waiting on tag 9 but rank 0 sent tag 7") instead
//! of a bare rank count.

use std::fmt;

use crate::flight::Postmortem;

pub use surf_sim::{StallError, StuckAction};

/// A simulation failed to make progress.
#[derive(Debug)]
pub enum SimError {
    /// The transport kernel has running actions but none of them can ever
    /// complete (for example a flow whose model bound is 0 bytes/s). The
    /// payload names every stuck action with its remaining work, rate and
    /// route.
    Stall {
        /// Kernel-level detail: every stuck action with its remaining
        /// work, rate and route.
        error: StallError,
        /// MPI-level context for the stuck work (empty when the stall
        /// surfaced outside the maestro loop).
        postmortem: Box<Postmortem>,
    },
    /// Every remaining rank is blocked on a request while nothing is in
    /// flight on the fabric — the MPI-level analogue of a stall, typically
    /// an unmatched send/recv pair.
    Deadlock {
        /// World ranks still blocked, ascending.
        blocked: Vec<u32>,
        /// Flight-recorder snapshot of every blocked rank.
        postmortem: Box<Postmortem>,
    },
    /// The runtime's protocol state machine was handed an event that
    /// references a request or message it no longer (or never) knew about —
    /// a fabric completion for an unknown token, a receive binding to a
    /// vanished request, a completion for a dropped message. Typically a
    /// malformed or truncated `.tit` replay trace whose operation stream
    /// violates MPI matching semantics; previously these paths panicked and
    /// poisoned the maestro thread.
    Protocol {
        /// What was being completed and which id was missing.
        detail: String,
        /// Flight-recorder snapshot at the point of failure.
        postmortem: Box<Postmortem>,
    },
}

impl SimError {
    /// The flight-recorder snapshot attached to the failure.
    pub fn postmortem(&self) -> &Postmortem {
        match self {
            SimError::Stall { postmortem, .. }
            | SimError::Deadlock { postmortem, .. }
            | SimError::Protocol { postmortem, .. } => postmortem,
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Stall { error, postmortem } => {
                write!(f, "{error}")?;
                if !postmortem.ranks.is_empty() {
                    write!(f, "\n{}", postmortem.render())?;
                }
                Ok(())
            }
            SimError::Deadlock {
                blocked,
                postmortem,
            } => {
                write!(
                    f,
                    "deadlock: {} rank(s) blocked with no event in flight \
                     (unmatched send/recv?)",
                    blocked.len()
                )?;
                if !postmortem.ranks.is_empty() {
                    write!(f, "\n{}", postmortem.render())?;
                }
                Ok(())
            }
            SimError::Protocol { detail, postmortem } => {
                write!(
                    f,
                    "protocol error: {detail} (malformed or truncated trace?)"
                )?;
                if !postmortem.ranks.is_empty() {
                    write!(f, "\n{}", postmortem.render())?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Stall { error, .. } => Some(error),
            SimError::Deadlock { .. } | SimError::Protocol { .. } => None,
        }
    }
}

impl From<StallError> for SimError {
    fn from(error: StallError) -> Self {
        // The kernel knows nothing about ranks; the maestro attaches the
        // real postmortem when the stall crosses the drive loop.
        SimError::Stall {
            error,
            postmortem: Box::default(),
        }
    }
}
