//! Typed simulation failures.
//!
//! A simulation that cannot make progress used to `panic!` from deep inside
//! the kernel or the maestro loop. Both conditions are now surfaced as a
//! [`SimError`] through [`crate::world::World::try_run`], so harnesses (and
//! tests) can distinguish a modelling bug from an infrastructure crash and
//! report *which* actions or ranks are stuck.

use std::fmt;

pub use surf_sim::{StallError, StuckAction};

/// A simulation failed to make progress.
#[derive(Debug)]
pub enum SimError {
    /// The transport kernel has running actions but none of them can ever
    /// complete (for example a flow whose model bound is 0 bytes/s). The
    /// payload names every stuck action with its remaining work, rate and
    /// route.
    Stall(StallError),
    /// Every remaining rank is blocked on a request while nothing is in
    /// flight on the fabric — the MPI-level analogue of a stall, typically
    /// an unmatched send/recv pair.
    Deadlock {
        /// Number of ranks still blocked.
        blocked: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Stall(e) => write!(f, "{e}"),
            SimError::Deadlock { blocked } => write!(
                f,
                "deadlock: {blocked} rank(s) blocked with no event in flight \
                 (unmatched send/recv?)"
            ),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Stall(e) => Some(e),
            SimError::Deadlock { .. } => None,
        }
    }
}

impl From<StallError> for SimError {
    fn from(e: StallError) -> Self {
        SimError::Stall(e)
    }
}
