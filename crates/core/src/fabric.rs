//! Transport backends: the same MPI runtime drives two very different
//! "wires".
//!
//! * [`SurfFabric`] — SMPI proper: the flow-level kernel with the calibrated
//!   piece-wise linear model (fast, analytic contention);
//! * [`PacketFabric`] — the ground-truth stand-in for the paper's physical
//!   clusters: packet-level store-and-forward simulation.
//!
//! Everything above this trait (matching, collectives, sampling, folding) is
//! identical for both, which is what makes accuracy experiments meaningful:
//! the *only* difference between "SMPI" and "real world" numbers is the
//! network model, exactly as in the paper.

use packetnet::{PacketConfig, PacketNet};
use smpi_obs::{FlowAttribution, KernelProfile, Rec};
use smpi_platform::{HostIx, Materialized, PlatformPerturbation, RoutedPlatform};
use surf_sim::{EngineConfig, SimTime, Simulation, TransferModel};

use crate::error::SimError;

/// Opaque completion token handed back by a fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FabricToken(pub u64);

/// A network + compute substrate that the MPI runtime schedules work onto.
pub trait Fabric {
    /// Current simulated time.
    fn now(&self) -> SimTime;

    /// Starts moving `bytes` from `src` to `dst` (distinct hosts).
    fn start_transfer(&mut self, src: HostIx, dst: HostIx, bytes: u64) -> FabricToken;

    /// Starts a computation of `flops` on `host`.
    fn start_exec(&mut self, host: HostIx, flops: f64) -> FabricToken;

    /// Starts a pure delay.
    fn start_sleep(&mut self, seconds: f64) -> FabricToken;

    /// Advances to the next completion; `Ok(None)` when nothing is in
    /// flight, `Err` when in-flight work can never complete (a kernel
    /// stall).
    fn advance(&mut self) -> Result<Option<(SimTime, Vec<FabricToken>)>, SimError>;

    /// One-way control-message latency between two hosts (used for the
    /// rendezvous handshake cost on backends that model it).
    fn control_latency(&self, src: HostIx, dst: HostIx) -> f64;

    /// Installs a metrics recorder on the substrate. Backends without
    /// instrumentation may ignore it.
    fn set_recorder(&mut self, rec: Rec) {
        let _ = rec;
    }

    /// Takes the contention attribution of a *completed* transfer token:
    /// per-link bandwidth-share integrals and bottleneck residency. Each
    /// token yields its attribution at most once. Backends without
    /// attribution — or with recording disabled — return `None`.
    fn take_flow_attribution(&mut self, token: FabricToken) -> Option<FlowAttribution> {
        let _ = token;
        None
    }

    /// Human names for the link/channel indices that appear in flow
    /// attributions, in that backend's own numbering. Empty when the
    /// backend has no named links.
    fn link_names(&self) -> Vec<String> {
        Vec::new()
    }

    /// Snapshot of the backend's always-on solver introspection counters,
    /// when it has a solver to introspect.
    fn kernel_profile(&self) -> Option<KernelProfile> {
        None
    }

    /// Number of actions currently in flight (transfers + execs + sleeps).
    /// Telemetry only; must be cheap enough to poll every event.
    fn active_actions(&self) -> usize {
        0
    }

    /// Cumulative wall-clock nanoseconds the backend has spent in its
    /// solver (host-dependent; 0 for backends without a solver).
    fn solver_wall_ns(&self) -> f64 {
        0.0
    }

    /// Fills `out[i]` with the instantaneous utilization of link/channel
    /// `i` in `[0, 1]`, in the same numbering as [`Fabric::link_names`].
    /// Backends without per-link state leave `out` empty.
    fn link_utilizations(&self, out: &mut Vec<f64>) {
        out.clear();
    }
}

/// The flow-level backend (SMPI's own model).
pub struct SurfFabric {
    rp: std::sync::Arc<RoutedPlatform>,
    sim: Simulation,
    mat: Materialized,
    model: TransferModel,
}

impl SurfFabric {
    /// Builds the backend over a routed platform with the given transfer
    /// model (typically produced by calibration) and engine configuration.
    pub fn new(
        rp: std::sync::Arc<RoutedPlatform>,
        model: TransferModel,
        engine: EngineConfig,
    ) -> Self {
        SurfFabric::with_perturbation(rp, model, engine, None)
    }

    /// Like [`new`](Self::new), but instantiates the platform's shared
    /// kernel image with a [`PlatformPerturbation`] overlay (per-link
    /// bandwidth/latency and per-host speed factors). `None` — or the
    /// identity overlay — is bit-exact with the unperturbed constructor.
    pub fn with_perturbation(
        rp: std::sync::Arc<RoutedPlatform>,
        model: TransferModel,
        engine: EngineConfig,
        perturb: Option<&PlatformPerturbation>,
    ) -> Self {
        let mut sim = Simulation::with_config(engine);
        let mat = Materialized::instantiate(std::sync::Arc::clone(rp.image()), &mut sim, perturb);
        SurfFabric {
            rp,
            sim,
            mat,
            model,
        }
    }

    /// The transfer model in use.
    pub fn model(&self) -> &TransferModel {
        &self.model
    }
}

impl Fabric for SurfFabric {
    fn now(&self) -> SimTime {
        self.sim.now()
    }

    fn start_transfer(&mut self, src: HostIx, dst: HostIx, bytes: u64) -> FabricToken {
        assert_ne!(src, dst, "self-transfers are handled by the runtime");
        let route = self.mat.route(&self.rp, src, dst);
        let action = self.sim.start_transfer(&route, bytes as f64, &self.model);
        FabricToken(action.raw())
    }

    fn start_exec(&mut self, host: HostIx, flops: f64) -> FabricToken {
        let h = self.mat.host(host);
        FabricToken(self.sim.start_exec(h, flops).raw())
    }

    fn start_sleep(&mut self, seconds: f64) -> FabricToken {
        FabricToken(self.sim.start_sleep(seconds).raw())
    }

    fn advance(&mut self) -> Result<Option<(SimTime, Vec<FabricToken>)>, SimError> {
        let next = self.sim.try_advance_to_next().map_err(SimError::from)?;
        Ok(next.map(|(t, done)| (t, done.into_iter().map(|a| FabricToken(a.raw())).collect())))
    }

    fn control_latency(&self, src: HostIx, dst: HostIx) -> f64 {
        self.rp.latency(src, dst)
    }

    fn set_recorder(&mut self, rec: Rec) {
        self.sim.set_recorder(rec);
    }

    fn take_flow_attribution(&mut self, token: FabricToken) -> Option<FlowAttribution> {
        self.sim
            .take_attribution(surf_sim::ActionId::from_raw(token.0))
    }

    fn link_names(&self) -> Vec<String> {
        self.mat.kernel_link_names(&self.rp)
    }

    fn kernel_profile(&self) -> Option<KernelProfile> {
        Some(self.sim.kernel_profile())
    }

    fn active_actions(&self) -> usize {
        self.sim.running_actions()
    }

    fn solver_wall_ns(&self) -> f64 {
        self.sim.solver_wall_ns()
    }

    fn link_utilizations(&self, out: &mut Vec<f64>) {
        self.sim.link_utilizations(out);
    }
}

/// The packet-level backend (ground truth).
pub struct PacketFabric {
    rp: std::sync::Arc<RoutedPlatform>,
    net: PacketNet,
}

impl PacketFabric {
    /// Builds the backend over a routed platform.
    pub fn new(rp: std::sync::Arc<RoutedPlatform>, config: PacketConfig) -> Self {
        PacketFabric::with_perturbation(rp, config, None)
    }

    /// Like [`new`](Self::new), but with a [`PlatformPerturbation`] overlay
    /// scaling channel bandwidth/latency and host speeds.
    pub fn with_perturbation(
        rp: std::sync::Arc<RoutedPlatform>,
        config: PacketConfig,
        perturb: Option<&PlatformPerturbation>,
    ) -> Self {
        let net = PacketNet::new_perturbed(&rp, config, perturb);
        PacketFabric { rp, net }
    }
}

impl Fabric for PacketFabric {
    fn now(&self) -> SimTime {
        self.net.now()
    }

    fn start_transfer(&mut self, src: HostIx, dst: HostIx, bytes: u64) -> FabricToken {
        assert_ne!(src, dst, "self-transfers are handled by the runtime");
        let id = self.net.start_message(&self.rp, src, dst, bytes);
        FabricToken(token_of_packet(id))
    }

    fn start_exec(&mut self, host: HostIx, flops: f64) -> FabricToken {
        FabricToken(token_of_packet(self.net.start_exec(host, flops)))
    }

    fn start_sleep(&mut self, seconds: f64) -> FabricToken {
        FabricToken(token_of_packet(self.net.start_sleep(seconds)))
    }

    fn advance(&mut self) -> Result<Option<(SimTime, Vec<FabricToken>)>, SimError> {
        Ok(self.net.advance_to_next().map(|(t, done)| {
            (
                t,
                done.into_iter()
                    .map(|a| FabricToken(token_of_packet(a)))
                    .collect(),
            )
        }))
    }

    fn control_latency(&self, src: HostIx, dst: HostIx) -> f64 {
        // One minimal frame end-to-end: route latency plus per-hop
        // serialization of a header-only frame.
        let route = self.rp.route(src, dst);
        let p = self.rp.platform();
        let header = self.net.config().wire_bytes(0) as f64;
        route
            .iter()
            .map(|h| {
                let l = p.link(h.link);
                l.latency + header / l.bandwidth
            })
            .sum()
    }

    fn set_recorder(&mut self, rec: Rec) {
        self.net.set_recorder(rec);
    }

    fn take_flow_attribution(&mut self, token: FabricToken) -> Option<FlowAttribution> {
        self.net
            .take_attribution(packetnet::PacketActionId::from_raw(token.0))
    }

    fn link_names(&self) -> Vec<String> {
        // Channel `c` serves platform link `c / 2`; the odd channel is the
        // reverse direction (only distinct for split-duplex links, but the
        // slot always exists — see `PacketNet::new`).
        let p = self.rp.platform();
        let mut names = Vec::with_capacity(p.num_links() * 2);
        for l in p.links() {
            names.push(l.name.clone());
            names.push(format!("{}:rev", l.name));
        }
        names
    }

    fn active_actions(&self) -> usize {
        self.net.running_actions()
    }

    fn link_utilizations(&self, out: &mut Vec<f64>) {
        self.net.channel_utilizations(out);
    }
}

fn token_of_packet(id: packetnet::PacketActionId) -> u64 {
    id.raw()
}

/// MPI implementation personality: the protocol constants layered on top of
/// a fabric. The two "real" personalities correspond to the OpenMPI and
/// MPICH2 curves of Figs. 7 and 9; [`MpiProfile::smpi`] is the pure-model
/// behaviour of SMPI itself (all protocol effects are absorbed into the
/// calibrated piece-wise segments).
#[derive(Debug, Clone)]
pub struct MpiProfile {
    /// Display name.
    pub name: &'static str,
    /// Messages up to this many bytes use the eager protocol; larger ones
    /// use rendezvous (§4.1: implementations "switch from buffered to
    /// synchronous mode above a certain message size").
    pub eager_threshold: u64,
    /// Software overhead charged on the sender per message, seconds.
    pub send_overhead: f64,
    /// Software overhead charged on the receiver per message, seconds.
    pub recv_overhead: f64,
    /// Receive-side buffer copy rate for eager messages (bytes/s); `None`
    /// disables the copy cost (rendezvous transfers are zero-copy).
    pub copy_rate: Option<f64>,
    /// Rate at which an eager sender's buffer is considered injected
    /// (bytes/s); the sender's request completes after `bytes/injection_rate`
    /// even though the wire transfer continues. `f64::INFINITY` completes
    /// the sender immediately.
    pub injection_rate: f64,
    /// Whether rendezvous messages pay an RTS/CTS handshake round-trip.
    pub rendezvous_handshake: bool,
    /// Rate for rank-to-self messages (a memcpy), bytes/s.
    pub self_rate: f64,
    /// Fraction of the wire's payload bandwidth the implementation actually
    /// achieves on large transfers (pipelining/segmentation efficiency); the
    /// few-percent spread between real MPI implementations (Figs. 7 and 9)
    /// comes from this. The effective wire volume is `bytes / efficiency`.
    pub wire_efficiency: f64,
}

impl MpiProfile {
    /// SMPI's own personality: protocol costs live in the calibrated model,
    /// not in explicit constants.
    pub fn smpi() -> Self {
        MpiProfile {
            name: "SMPI",
            eager_threshold: 64 * 1024,
            send_overhead: 0.0,
            recv_overhead: 0.0,
            copy_rate: None,
            injection_rate: f64::INFINITY,
            rendezvous_handshake: false,
            self_rate: 5e9,
            wire_efficiency: 1.0,
        }
    }

    /// An OpenMPI-like personality for the ground-truth backend.
    pub fn openmpi_like() -> Self {
        MpiProfile {
            name: "OpenMPI",
            eager_threshold: 64 * 1024,
            send_overhead: 1.0e-6,
            recv_overhead: 1.0e-6,
            copy_rate: Some(2.2e9),
            injection_rate: 120e6,
            rendezvous_handshake: true,
            self_rate: 5e9,
            wire_efficiency: 0.97,
        }
    }

    /// An MPICH2-like personality: same protocol structure, slightly
    /// different constants (smaller overheads, slower unexpected-buffer
    /// copy, lower pipelining efficiency), producing the few-percent
    /// differences seen in Figs. 7 and 9.
    pub fn mpich2_like() -> Self {
        MpiProfile {
            name: "MPICH2",
            eager_threshold: 64 * 1024,
            send_overhead: 0.8e-6,
            recv_overhead: 1.4e-6,
            copy_rate: Some(1.8e9),
            injection_rate: 118e6,
            rendezvous_handshake: true,
            self_rate: 5e9,
            wire_efficiency: 0.92,
        }
    }

    /// `true` when a message of `bytes` uses the eager protocol.
    pub fn is_eager(&self, bytes: u64) -> bool {
        bytes <= self.eager_threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smpi_platform::{flat_cluster, ClusterConfig};
    use std::sync::Arc;

    fn rp() -> Arc<RoutedPlatform> {
        Arc::new(RoutedPlatform::new(flat_cluster(
            "t",
            4,
            &ClusterConfig::default(),
        )))
    }

    #[test]
    fn surf_fabric_transfer_completes() {
        let mut f = SurfFabric::new(rp(), TransferModel::ideal(), EngineConfig::default());
        let tok = f.start_transfer(HostIx(0), HostIx(1), 125_000_000);
        let (t, done) = f.advance().unwrap().unwrap();
        assert_eq!(done, vec![tok]);
        assert!((t.as_secs() - (100e-6 + 1.0)).abs() < 1e-9);
    }

    #[test]
    fn packet_fabric_transfer_completes() {
        let mut f = PacketFabric::new(rp(), PacketConfig::default());
        let tok = f.start_transfer(HostIx(0), HostIx(1), 1448);
        let (_, done) = f.advance().unwrap().unwrap();
        assert_eq!(done, vec![tok]);
    }

    #[test]
    fn fabrics_agree_on_idle_state() {
        let mut s = SurfFabric::new(rp(), TransferModel::ideal(), EngineConfig::default());
        let mut p = PacketFabric::new(rp(), PacketConfig::default());
        assert!(s.advance().unwrap().is_none());
        assert!(p.advance().unwrap().is_none());
    }

    #[test]
    fn control_latency_positive_and_ordered() {
        let s = SurfFabric::new(rp(), TransferModel::ideal(), EngineConfig::default());
        let p = PacketFabric::new(rp(), PacketConfig::default());
        let cs = s.control_latency(HostIx(0), HostIx(1));
        let cp = p.control_latency(HostIx(0), HostIx(1));
        assert!(cs > 0.0);
        // Packet control latency includes header serialization, so it is
        // strictly larger than the raw route latency.
        assert!(cp > cs);
    }

    #[test]
    fn profiles_select_protocols() {
        let p = MpiProfile::openmpi_like();
        assert!(p.is_eager(64 * 1024));
        assert!(!p.is_eager(64 * 1024 + 1));
    }

    #[test]
    fn sleep_tokens_complete_in_order() {
        let mut f = SurfFabric::new(rp(), TransferModel::ideal(), EngineConfig::default());
        let a = f.start_sleep(2.0);
        let b = f.start_sleep(1.0);
        let (t1, d1) = f.advance().unwrap().unwrap();
        assert_eq!((t1.as_secs(), d1), (1.0, vec![b]));
        let (t2, d2) = f.advance().unwrap().unwrap();
        assert_eq!((t2.as_secs(), d2), (2.0, vec![a]));
    }
}
