//! Time-independent trace capture (the input format of `smpi-replay`).
//!
//! An on-line run executes the application for real; a *time-independent*
//! trace strips everything timing-related from what it did, leaving only
//! the per-rank sequence of simulation-relevant actions: compute bursts
//! (flops), point-to-point posts (ranks, tags, byte counts) and the wait
//! operations that order them. No timestamps are recorded — timestamps are
//! precisely what replaying against a *different* platform or network
//! model must be free to change. This is the trace-replay methodology of
//! the off-line simulators surveyed in §2 of the paper, driven here by the
//! on-line runtime: execute once, re-simulate cheaply forever.
//!
//! The format is captured at the simcall boundary, so it is exact by
//! construction: whatever stream of events the maestro timed on-line is
//! what the replay engine re-issues off-line. Requests are identified by
//! their per-rank post index, which the replayer reproduces by re-posting
//! in the same order.
//!
//! [`TiTrace::encode`]/[`TiTrace::decode`] implement a versioned,
//! line-oriented text codec (`TITRACE v1`). Floating-point values are
//! written with Rust's shortest-round-trip formatting, so
//! encode → decode → encode is byte-identical.

use std::collections::HashSet;
use std::fmt::Write as _;
use std::sync::Mutex;

use crate::runtime::WaitMode;

/// One time-independent action of a rank.
#[derive(Debug, Clone, PartialEq)]
pub enum TiOp {
    /// A compute burst of `flops` on the rank's host.
    Compute {
        /// Amount of work.
        flops: f64,
    },
    /// A pure simulated delay (e.g. a replayed `SMPI_SAMPLE` mean).
    Sleep {
        /// Seconds of simulated delay.
        secs: f64,
    },
    /// A posted send. The payload is dropped — only its size matters for
    /// timing, exactly as in §3.2's data-less messages.
    Send {
        /// Destination world rank.
        dst: u32,
        /// Context id of the communicator.
        cid: u32,
        /// Message tag.
        tag: i32,
        /// Payload size in bytes.
        bytes: u64,
    },
    /// A posted receive.
    Recv {
        /// Source world rank, or [`crate::runtime::ANY_SOURCE`].
        src: i32,
        /// Context id.
        cid: u32,
        /// Tag, or [`crate::runtime::ANY_TAG`].
        tag: i32,
        /// Receive buffer capacity in bytes.
        max_bytes: u64,
    },
    /// A wait/test over previously posted requests, identified by their
    /// 0-based per-rank post index.
    Wait {
        /// Post indices of the waited requests, in application order.
        reqs: Vec<u32>,
        /// Blocking behaviour.
        mode: WaitMode,
    },
    /// Entry/exit of a named observability region (collective algorithm
    /// annotations). Zero simulated cost; kept so replayed runs carry the
    /// same region timelines as on-line runs.
    Region {
        /// Region name (no whitespace).
        name: String,
        /// `true` on entry, `false` on exit.
        enter: bool,
    },
}

impl TiOp {
    /// Renders the op as its `TITRACE v1` body line (no trailing newline).
    /// This is the single source of truth for op syntax: the trace encoder
    /// and the flight recorder's postmortem rendering both go through it.
    pub fn line(&self) -> String {
        match self {
            TiOp::Compute { flops } => format!("compute {flops}"),
            TiOp::Sleep { secs } => format!("sleep {secs}"),
            TiOp::Send {
                dst,
                cid,
                tag,
                bytes,
            } => format!("send {dst} {cid} {tag} {bytes}"),
            TiOp::Recv {
                src,
                cid,
                tag,
                max_bytes,
            } => format!("recv {src} {cid} {tag} {max_bytes}"),
            TiOp::Wait { reqs, mode } => {
                let mut out = format!("wait {}", mode_name(*mode));
                for i in reqs {
                    let _ = write!(out, " {i}");
                }
                out
            }
            TiOp::Region { name, enter } => {
                assert!(
                    !name.is_empty() && !name.contains(char::is_whitespace),
                    "region names must be non-empty and whitespace-free: {name:?}"
                );
                format!("region {} {name}", if *enter { "+" } else { "-" })
            }
        }
    }
}

/// A captured time-independent trace: one op sequence per world rank.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TiTrace {
    /// `ranks[r]` is rank r's action sequence.
    pub ranks: Vec<Vec<TiOp>>,
}

/// Aggregate numbers over a trace (for reports and sanity checks).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TiSummary {
    /// Total ops across all ranks.
    pub ops: usize,
    /// Number of send posts.
    pub sends: usize,
    /// Total bytes posted by sends.
    pub send_bytes: u64,
    /// Number of receive posts.
    pub recvs: usize,
    /// Number of wait/test ops.
    pub waits: usize,
    /// Total flops of compute bursts.
    pub flops: f64,
}

/// Decode failure: the line (1-based) and what went wrong.
#[derive(Debug, Clone, PartialEq)]
pub struct TiDecodeError {
    /// 1-based line number of the offending line (0 for truncation).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for TiDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "trace decode error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for TiDecodeError {}

pub(crate) fn mode_name(mode: WaitMode) -> &'static str {
    match mode {
        WaitMode::All => "all",
        WaitMode::Any => "any",
        WaitMode::Some => "some",
        WaitMode::Poll => "poll",
    }
}

fn mode_parse(s: &str) -> Option<WaitMode> {
    match s {
        "all" => Some(WaitMode::All),
        "any" => Some(WaitMode::Any),
        "some" => Some(WaitMode::Some),
        "poll" => Some(WaitMode::Poll),
        _ => None,
    }
}

impl TiTrace {
    /// Number of ranks in the trace.
    pub fn num_ranks(&self) -> usize {
        self.ranks.len()
    }

    /// Aggregate statistics over every rank's op sequence.
    pub fn summary(&self) -> TiSummary {
        let mut s = TiSummary::default();
        for ops in &self.ranks {
            s.ops += ops.len();
            for op in ops {
                match op {
                    TiOp::Send { bytes, .. } => {
                        s.sends += 1;
                        s.send_bytes += bytes;
                    }
                    TiOp::Recv { .. } => s.recvs += 1,
                    TiOp::Wait { .. } => s.waits += 1,
                    TiOp::Compute { flops } => s.flops += flops,
                    _ => {}
                }
            }
        }
        s
    }

    /// Serializes the trace in the versioned `TITRACE v1` text format.
    ///
    /// Floats use Rust's shortest-round-trip `Display`, so the codec is
    /// lossless and re-encoding a decoded trace reproduces the input
    /// byte for byte.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "TITRACE v1");
        let _ = writeln!(out, "ranks {}", self.ranks.len());
        for (r, ops) in self.ranks.iter().enumerate() {
            let _ = writeln!(out, "rank {r} {}", ops.len());
            for op in ops {
                let _ = writeln!(out, "{}", op.line());
            }
            let _ = writeln!(out, "end");
        }
        out
    }

    /// Parses a `TITRACE v1` document produced by [`encode`](Self::encode).
    pub fn decode(text: &str) -> Result<TiTrace, TiDecodeError> {
        let err = |line: usize, message: String| TiDecodeError { line, message };
        let mut lines = text.lines().enumerate();
        let mut next = || lines.next().map(|(i, l)| (i + 1, l));

        let (ln, header) = next().ok_or_else(|| err(0, "empty document".into()))?;
        if header.trim_end() != "TITRACE v1" {
            return Err(err(
                ln,
                format!("bad header {header:?} (expected \"TITRACE v1\")"),
            ));
        }
        let (ln, ranks_line) = next().ok_or_else(|| err(0, "missing ranks line".into()))?;
        let nranks: usize = ranks_line
            .strip_prefix("ranks ")
            .and_then(|s| s.trim().parse().ok())
            .ok_or_else(|| err(ln, format!("bad ranks line {ranks_line:?}")))?;

        let mut ranks = Vec::with_capacity(nranks);
        for r in 0..nranks {
            let (ln, rank_line) = next().ok_or_else(|| err(0, format!("missing rank {r}")))?;
            let mut head = rank_line.split_whitespace();
            let (kw, idx, nops) = (head.next(), head.next(), head.next());
            if kw != Some("rank") || idx != Some(&r.to_string()) {
                return Err(err(
                    ln,
                    format!("expected \"rank {r} <nops>\", got {rank_line:?}"),
                ));
            }
            let nops: usize = nops
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err(ln, format!("bad op count in {rank_line:?}")))?;
            let mut ops = Vec::with_capacity(nops);
            for _ in 0..nops {
                let (ln, line) = next().ok_or_else(|| err(0, format!("rank {r} truncated")))?;
                ops.push(decode_op(line).map_err(|m| err(ln, m))?);
            }
            let (ln, end) = next().ok_or_else(|| err(0, format!("rank {r} missing end")))?;
            if end.trim_end() != "end" {
                return Err(err(ln, format!("expected \"end\", got {end:?}")));
            }
            ranks.push(ops);
        }
        if let Some((ln, extra)) = next() {
            return Err(err(ln, format!("trailing content {extra:?}")));
        }
        Ok(TiTrace { ranks })
    }
}

fn decode_op(line: &str) -> Result<TiOp, String> {
    let mut parts = line.split_whitespace();
    let kw = parts.next().ok_or_else(|| "blank line".to_string())?;
    let mut field = |what: &str| -> Result<&str, String> {
        parts.next().ok_or_else(|| format!("{kw}: missing {what}"))
    };
    fn num<T: std::str::FromStr>(kw: &str, what: &str, s: &str) -> Result<T, String> {
        s.parse().map_err(|_| format!("{kw}: bad {what} {s:?}"))
    }
    let op = match kw {
        "compute" => TiOp::Compute {
            flops: num(kw, "flops", field("flops")?)?,
        },
        "sleep" => TiOp::Sleep {
            secs: num(kw, "secs", field("secs")?)?,
        },
        "send" => TiOp::Send {
            dst: num(kw, "dst", field("dst")?)?,
            cid: num(kw, "cid", field("cid")?)?,
            tag: num(kw, "tag", field("tag")?)?,
            bytes: num(kw, "bytes", field("bytes")?)?,
        },
        "recv" => TiOp::Recv {
            src: num(kw, "src", field("src")?)?,
            cid: num(kw, "cid", field("cid")?)?,
            tag: num(kw, "tag", field("tag")?)?,
            max_bytes: num(kw, "max_bytes", field("max_bytes")?)?,
        },
        "wait" => {
            let mode = mode_parse(field("mode")?)
                .ok_or_else(|| format!("wait: unknown mode in {line:?}"))?;
            let reqs: Result<Vec<u32>, String> = parts
                .by_ref()
                .map(|s| num("wait", "request index", s))
                .collect();
            return Ok(TiOp::Wait { reqs: reqs?, mode });
        }
        "region" => {
            let dir = field("direction")?;
            let enter = match dir {
                "+" => true,
                "-" => false,
                _ => return Err(format!("region: bad direction {dir:?}")),
            };
            TiOp::Region {
                name: field("name")?.to_string(),
                enter,
            }
        }
        other => return Err(format!("unknown op {other:?}")),
    };
    if let Some(extra) = parts.next() {
        return Err(format!("{kw}: trailing field {extra:?}"));
    }
    Ok(op)
}

/// Interns a region name as a `&'static str` (the runtime's region simcall
/// wants static names). Each distinct name is leaked exactly once,
/// process-wide.
pub fn intern_region(name: &str) -> &'static str {
    static CACHE: Mutex<Option<HashSet<&'static str>>> = Mutex::new(None);
    let mut guard = CACHE.lock().unwrap();
    let cache = guard.get_or_insert_with(HashSet::new);
    if let Some(&s) = cache.get(name) {
        return s;
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    cache.insert(leaked);
    leaked
}

/// Maestro-side capture state (lives in [`crate::runtime::Runtime`]).
#[derive(Debug)]
pub(crate) struct Capture {
    /// Per-rank op sequences under construction.
    pub(crate) ops: Vec<Vec<TiOp>>,
    /// Next post index per rank (requests are named by post order).
    next_post: Vec<u32>,
    /// Global request id -> (owning rank's) post index.
    req_post: std::collections::HashMap<crate::runtime::ReqId, u32>,
}

impl Capture {
    pub(crate) fn new(nranks: usize) -> Self {
        Capture {
            ops: vec![Vec::new(); nranks],
            next_post: vec![0; nranks],
            req_post: std::collections::HashMap::new(),
        }
    }

    /// Records a posted request (send or receive) and names it by its
    /// per-rank post index.
    pub(crate) fn on_post(&mut self, rank: u32, req: crate::runtime::ReqId, op: TiOp) {
        let idx = self.next_post[rank as usize];
        self.next_post[rank as usize] += 1;
        self.req_post.insert(req, idx);
        self.ops[rank as usize].push(op);
    }

    /// Records a non-posting op.
    pub(crate) fn on_op(&mut self, rank: u32, op: TiOp) {
        self.ops[rank as usize].push(op);
    }

    /// Records a wait, translating global request ids to post indices.
    pub(crate) fn on_wait(&mut self, rank: u32, reqs: &[crate::runtime::ReqId], mode: WaitMode) {
        let reqs = reqs
            .iter()
            .map(|r| {
                *self
                    .req_post
                    .get(r)
                    .expect("waited request was captured at post")
            })
            .collect();
        self.ops[rank as usize].push(TiOp::Wait { reqs, mode });
    }

    pub(crate) fn into_trace(self) -> TiTrace {
        TiTrace { ranks: self.ops }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TiTrace {
        TiTrace {
            ranks: vec![
                vec![
                    TiOp::Compute { flops: 2.5e6 },
                    TiOp::Send {
                        dst: 1,
                        cid: 0,
                        tag: 5,
                        bytes: 8192,
                    },
                    TiOp::Recv {
                        src: -1,
                        cid: 0,
                        tag: -1,
                        max_bytes: 8192,
                    },
                    TiOp::Wait {
                        reqs: vec![0, 1],
                        mode: WaitMode::All,
                    },
                    TiOp::Region {
                        name: "allreduce".into(),
                        enter: true,
                    },
                    TiOp::Region {
                        name: "allreduce".into(),
                        enter: false,
                    },
                ],
                vec![
                    TiOp::Sleep { secs: 1.5e-6 },
                    TiOp::Wait {
                        reqs: vec![],
                        mode: WaitMode::Poll,
                    },
                ],
            ],
        }
    }

    #[test]
    fn roundtrip_is_lossless_and_stable() {
        let t = sample();
        let enc = t.encode();
        let dec = TiTrace::decode(&enc).unwrap();
        assert_eq!(dec, t);
        assert_eq!(dec.encode(), enc);
    }

    #[test]
    fn decode_rejects_malformed_documents() {
        assert!(TiTrace::decode("").is_err());
        assert!(TiTrace::decode("TITRACE v2\nranks 0\n").is_err());
        assert!(TiTrace::decode("TITRACE v1\nranks 1\nrank 0 1\nfrobnicate 3\nend\n").is_err());
        assert!(TiTrace::decode("TITRACE v1\nranks 1\nrank 0 2\ncompute 1\nend\n").is_err());
        assert!(TiTrace::decode("TITRACE v1\nranks 1\nrank 0 0\nend\nextra\n").is_err());
        // Truncated wait mode, bad region direction, trailing fields.
        assert!(TiTrace::decode("TITRACE v1\nranks 1\nrank 0 1\nwait never 0\nend\n").is_err());
        assert!(TiTrace::decode("TITRACE v1\nranks 1\nrank 0 1\nregion ? x\nend\n").is_err());
        assert!(TiTrace::decode("TITRACE v1\nranks 1\nrank 0 1\ncompute 1 2\nend\n").is_err());
    }

    #[test]
    fn float_formatting_roundtrips_extremes() {
        let t = TiTrace {
            ranks: vec![vec![
                TiOp::Compute { flops: 0.1 + 0.2 },
                TiOp::Compute {
                    flops: f64::MIN_POSITIVE,
                },
                TiOp::Compute { flops: 1e300 },
                TiOp::Sleep {
                    secs: std::f64::consts::PI,
                },
            ]],
        };
        assert_eq!(TiTrace::decode(&t.encode()).unwrap(), t);
    }

    #[test]
    fn summary_aggregates() {
        let s = sample().summary();
        assert_eq!(s.ops, 8);
        assert_eq!(s.sends, 1);
        assert_eq!(s.send_bytes, 8192);
        assert_eq!(s.recvs, 1);
        assert_eq!(s.waits, 2);
        assert_eq!(s.flops, 2.5e6);
    }

    #[test]
    fn intern_returns_same_pointer() {
        let a = intern_region("reduce_binomial");
        let b = intern_region("reduce_binomial");
        assert!(std::ptr::eq(a, b));
    }
}
