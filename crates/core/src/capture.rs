//! Time-independent trace capture (the input format of `smpi-replay`).
//!
//! An on-line run executes the application for real; a *time-independent*
//! trace strips everything timing-related from what it did, leaving only
//! the per-rank sequence of simulation-relevant actions: compute bursts
//! (flops), point-to-point posts (ranks, tags, byte counts) and the wait
//! operations that order them. No timestamps are recorded — timestamps are
//! precisely what replaying against a *different* platform or network
//! model must be free to change. This is the trace-replay methodology of
//! the off-line simulators surveyed in §2 of the paper, driven here by the
//! on-line runtime: execute once, re-simulate cheaply forever.
//!
//! The format is captured at the simcall boundary, so it is exact by
//! construction: whatever stream of events the maestro timed on-line is
//! what the replay engine re-issues off-line. Requests are identified by
//! their per-rank post index, which the replayer reproduces by re-posting
//! in the same order.
//!
//! [`TiTrace::encode`]/[`TiTrace::decode`] implement a versioned,
//! line-oriented text codec (`TITRACE v1`). Floating-point values are
//! written with Rust's shortest-round-trip formatting, so
//! encode → decode → encode is byte-identical.

use std::collections::HashSet;
use std::fmt::Write as _;
use std::sync::Mutex;

use crate::runtime::WaitMode;

/// One time-independent action of a rank.
#[derive(Debug, Clone, PartialEq)]
pub enum TiOp {
    /// A compute burst of `flops` on the rank's host.
    Compute {
        /// Amount of work.
        flops: f64,
    },
    /// A pure simulated delay (e.g. a replayed `SMPI_SAMPLE` mean).
    Sleep {
        /// Seconds of simulated delay.
        secs: f64,
    },
    /// A posted send. The payload is dropped — only its size matters for
    /// timing, exactly as in §3.2's data-less messages.
    Send {
        /// Destination world rank.
        dst: u32,
        /// Context id of the communicator.
        cid: u32,
        /// Message tag.
        tag: i32,
        /// Payload size in bytes.
        bytes: u64,
    },
    /// A posted receive.
    Recv {
        /// Source world rank, or [`crate::runtime::ANY_SOURCE`].
        src: i32,
        /// Context id.
        cid: u32,
        /// Tag, or [`crate::runtime::ANY_TAG`].
        tag: i32,
        /// Receive buffer capacity in bytes.
        max_bytes: u64,
    },
    /// A wait/test over previously posted requests, identified by their
    /// 0-based per-rank post index.
    Wait {
        /// Post indices of the waited requests, in application order.
        reqs: Vec<u32>,
        /// Blocking behaviour.
        mode: WaitMode,
    },
    /// Entry/exit of a named observability region (collective algorithm
    /// annotations). Zero simulated cost; kept so replayed runs carry the
    /// same region timelines as on-line runs.
    Region {
        /// Region name (no whitespace).
        name: String,
        /// `true` on entry, `false` on exit.
        enter: bool,
    },
    /// A collective operation recorded as a *logical* op. The capture layer
    /// synthesizes one from each outermost collective region: the `span`
    /// ops that follow (through the matching region exit) are the traffic
    /// the on-line run's algorithm choice produced, and `algo` names that
    /// choice. A replayer can either play the span faithfully or skip it
    /// (`span` ops, `posts` post indices) and substitute its own traffic —
    /// replay-time collective re-selection without re-capture.
    Coll {
        /// Collective name (`allreduce`, `bcast`, ...).
        name: String,
        /// Algorithm variant chosen on-line (empty when unannotated).
        algo: String,
        /// Number of following ops, up to and including the closing
        /// region exit, that implement this collective.
        span: u32,
        /// Send/recv posts among those ops (post indices to skip over
        /// when substituting).
        posts: u32,
    },
}

impl TiOp {
    /// Renders the op as its `TITRACE v1` body line (no trailing newline).
    /// This is the single source of truth for op syntax: the trace encoder
    /// and the flight recorder's postmortem rendering both go through it.
    pub fn line(&self) -> String {
        match self {
            TiOp::Compute { flops } => format!("compute {flops}"),
            TiOp::Sleep { secs } => format!("sleep {secs}"),
            TiOp::Send {
                dst,
                cid,
                tag,
                bytes,
            } => format!("send {dst} {cid} {tag} {bytes}"),
            TiOp::Recv {
                src,
                cid,
                tag,
                max_bytes,
            } => format!("recv {src} {cid} {tag} {max_bytes}"),
            TiOp::Wait { reqs, mode } => {
                let mut out = format!("wait {}", mode_name(*mode));
                for i in reqs {
                    let _ = write!(out, " {i}");
                }
                out
            }
            TiOp::Region { name, enter } => {
                assert!(
                    !name.is_empty() && !name.contains(char::is_whitespace),
                    "region names must be non-empty and whitespace-free: {name:?}"
                );
                format!("region {} {name}", if *enter { "+" } else { "-" })
            }
            TiOp::Coll {
                name,
                algo,
                span,
                posts,
            } => {
                let algo = if algo.is_empty() { "-" } else { algo };
                format!("coll {name} {algo} {span} {posts}")
            }
        }
    }

    /// Renders the op for the `TITRACE v1` text format. Identical to
    /// [`line`](Self::line) except that logical collectives degrade to their
    /// v1 spelling (`region + <name>`): v1 predates [`TiOp::Coll`], and a
    /// trace captured today must still encode byte-identically to the v1
    /// goldens. The annotation survives only in the v2 binary format.
    pub fn v1_line(&self) -> String {
        match self {
            TiOp::Coll { name, .. } => TiOp::Region {
                name: name.clone(),
                enter: true,
            }
            .line(),
            other => other.line(),
        }
    }

    /// The op with v2-only information erased: [`TiOp::Coll`] becomes the
    /// region entry it replaced; everything else is unchanged. Mapping a
    /// v2-decoded stream through this yields exactly the v1 view of the
    /// same capture (the cross-format equality tests rely on it).
    pub fn downgrade(&self) -> TiOp {
        match self {
            TiOp::Coll { name, .. } => TiOp::Region {
                name: name.clone(),
                enter: true,
            },
            other => other.clone(),
        }
    }
}

/// A captured time-independent trace: one op sequence per world rank.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TiTrace {
    /// `ranks[r]` is rank r's action sequence.
    pub ranks: Vec<Vec<TiOp>>,
}

/// Aggregate numbers over a trace (for reports and sanity checks).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TiSummary {
    /// Total ops across all ranks.
    pub ops: usize,
    /// Number of send posts.
    pub sends: usize,
    /// Total bytes posted by sends.
    pub send_bytes: u64,
    /// Number of receive posts.
    pub recvs: usize,
    /// Number of wait/test ops.
    pub waits: usize,
    /// Total flops of compute bursts.
    pub flops: f64,
}

/// Decode failure: the line (1-based) and what went wrong.
#[derive(Debug, Clone, PartialEq)]
pub struct TiDecodeError {
    /// 1-based line number of the offending line (0 for truncation).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for TiDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "trace decode error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for TiDecodeError {}

pub(crate) fn mode_name(mode: WaitMode) -> &'static str {
    match mode {
        WaitMode::All => "all",
        WaitMode::Any => "any",
        WaitMode::Some => "some",
        WaitMode::Poll => "poll",
    }
}

fn mode_parse(s: &str) -> Option<WaitMode> {
    match s {
        "all" => Some(WaitMode::All),
        "any" => Some(WaitMode::Any),
        "some" => Some(WaitMode::Some),
        "poll" => Some(WaitMode::Poll),
        _ => None,
    }
}

impl TiTrace {
    /// Number of ranks in the trace.
    pub fn num_ranks(&self) -> usize {
        self.ranks.len()
    }

    /// Aggregate statistics over every rank's op sequence.
    pub fn summary(&self) -> TiSummary {
        let mut s = TiSummary::default();
        for ops in &self.ranks {
            s.ops += ops.len();
            for op in ops {
                match op {
                    TiOp::Send { bytes, .. } => {
                        s.sends += 1;
                        s.send_bytes += bytes;
                    }
                    TiOp::Recv { .. } => s.recvs += 1,
                    TiOp::Wait { .. } => s.waits += 1,
                    TiOp::Compute { flops } => s.flops += flops,
                    _ => {}
                }
            }
        }
        s
    }

    /// The trace with v2-only information erased (see [`TiOp::downgrade`]).
    pub fn downgraded(&self) -> TiTrace {
        TiTrace {
            ranks: self
                .ranks
                .iter()
                .map(|ops| ops.iter().map(TiOp::downgrade).collect())
                .collect(),
        }
    }

    /// Serializes the trace in the versioned `TITRACE v1` text format.
    ///
    /// Floats use Rust's shortest-round-trip `Display`, so the codec is
    /// lossless and re-encoding a decoded trace reproduces the input
    /// byte for byte. Logical collectives are written in their v1 spelling
    /// (see [`TiOp::v1_line`]), so v1 output is stable across the v2
    /// capture changes.
    pub fn encode(&self) -> String {
        let mut buf = Vec::new();
        self.encode_to(&mut buf)
            .expect("writing to a Vec cannot fail");
        String::from_utf8(buf).expect("TITRACE v1 is ASCII")
    }

    /// Streams the `TITRACE v1` text format into `w` without building the
    /// whole document in memory. Wrap files in a
    /// [`std::io::BufWriter`] — the encoder issues one write per line.
    pub fn encode_to(&self, mut w: impl std::io::Write) -> std::io::Result<()> {
        writeln!(w, "TITRACE v1")?;
        writeln!(w, "ranks {}", self.ranks.len())?;
        for (r, ops) in self.ranks.iter().enumerate() {
            writeln!(w, "rank {r} {}", ops.len())?;
            for op in ops {
                writeln!(w, "{}", op.v1_line())?;
            }
            writeln!(w, "end")?;
        }
        Ok(())
    }

    /// Parses a `TITRACE v1` document produced by [`encode`](Self::encode).
    pub fn decode(text: &str) -> Result<TiTrace, TiDecodeError> {
        TiTrace::decode_from(std::io::Cursor::new(text)).map_err(|e| match e {
            TraceIoError::Format(e) => e,
            TraceIoError::Io(e) => TiDecodeError {
                line: 0,
                message: format!("i/o error reading in-memory text: {e}"),
            },
            TraceIoError::V2(e) => TiDecodeError {
                line: 0,
                message: format!("unexpected v2 error: {e}"),
            },
        })
    }

    /// Streams a `TITRACE v1` document out of a [`std::io::BufRead`],
    /// decoding line by line (no whole-file string). Short reads and
    /// malformed lines surface as typed [`TraceIoError`]s, never panics.
    pub fn decode_from(r: impl std::io::BufRead) -> Result<TiTrace, TraceIoError> {
        let err =
            |line: usize, message: String| TraceIoError::Format(TiDecodeError { line, message });
        let mut lines = r.lines().enumerate();
        let mut next = || -> Result<Option<(usize, String)>, TraceIoError> {
            match lines.next() {
                None => Ok(None),
                Some((i, Ok(l))) => Ok(Some((i + 1, l))),
                Some((_, Err(e))) => Err(TraceIoError::Io(e)),
            }
        };

        let (ln, header) = next()?.ok_or_else(|| err(0, "empty document".into()))?;
        if header.trim_end() != "TITRACE v1" {
            return Err(err(
                ln,
                format!("bad header {header:?} (expected \"TITRACE v1\")"),
            ));
        }
        let (ln, ranks_line) = next()?.ok_or_else(|| err(0, "missing ranks line".into()))?;
        let nranks: usize = ranks_line
            .strip_prefix("ranks ")
            .and_then(|s| s.trim().parse().ok())
            .ok_or_else(|| err(ln, format!("bad ranks line {ranks_line:?}")))?;

        // Capacity hints are clamped: a corrupted count must yield a decode
        // error further down, not an absurd up-front allocation.
        let mut ranks = Vec::with_capacity(nranks.min(1 << 16));
        for r in 0..nranks {
            let (ln, rank_line) = next()?.ok_or_else(|| err(0, format!("missing rank {r}")))?;
            let mut head = rank_line.split_whitespace();
            let (kw, idx, nops) = (head.next(), head.next(), head.next());
            if kw != Some("rank") || idx != Some(&r.to_string()) {
                return Err(err(
                    ln,
                    format!("expected \"rank {r} <nops>\", got {rank_line:?}"),
                ));
            }
            let nops: usize = nops
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err(ln, format!("bad op count in {rank_line:?}")))?;
            let mut ops = Vec::with_capacity(nops.min(1 << 20));
            for _ in 0..nops {
                let (ln, line) = next()?.ok_or_else(|| err(0, format!("rank {r} truncated")))?;
                ops.push(decode_op(&line).map_err(|m| err(ln, m))?);
            }
            let (ln, end) = next()?.ok_or_else(|| err(0, format!("rank {r} missing end")))?;
            if end.trim_end() != "end" {
                return Err(err(ln, format!("expected \"end\", got {end:?}")));
            }
            ranks.push(ops);
        }
        if let Some((ln, extra)) = next()? {
            return Err(err(ln, format!("trailing content {extra:?}")));
        }
        Ok(TiTrace { ranks })
    }
}

/// Unified error for streaming trace i/o: an underlying [`std::io::Error`],
/// a `TITRACE v1` format error, or a `TITRACE2` format error. This is what
/// `smpi-replay`'s `save_trace`/`load_trace` return — loaders get a typed
/// error for short reads and corruption instead of a panic.
#[derive(Debug)]
pub enum TraceIoError {
    /// The underlying reader or writer failed.
    Io(std::io::Error),
    /// The bytes parsed as `TITRACE v1` but were malformed.
    Format(TiDecodeError),
    /// The bytes parsed as `TITRACE2` but were malformed.
    V2(crate::capture_v2::TiV2Error),
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceIoError::Format(e) => write!(f, "{e}"),
            TraceIoError::V2(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TraceIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            TraceIoError::Format(e) => Some(e),
            TraceIoError::V2(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

impl From<TiDecodeError> for TraceIoError {
    fn from(e: TiDecodeError) -> Self {
        TraceIoError::Format(e)
    }
}

impl From<crate::capture_v2::TiV2Error> for TraceIoError {
    fn from(e: crate::capture_v2::TiV2Error) -> Self {
        TraceIoError::V2(e)
    }
}

fn decode_op(line: &str) -> Result<TiOp, String> {
    let mut parts = line.split_whitespace();
    let kw = parts.next().ok_or_else(|| "blank line".to_string())?;
    let mut field = |what: &str| -> Result<&str, String> {
        parts.next().ok_or_else(|| format!("{kw}: missing {what}"))
    };
    fn num<T: std::str::FromStr>(kw: &str, what: &str, s: &str) -> Result<T, String> {
        s.parse().map_err(|_| format!("{kw}: bad {what} {s:?}"))
    }
    let op = match kw {
        "compute" => TiOp::Compute {
            flops: num(kw, "flops", field("flops")?)?,
        },
        "sleep" => TiOp::Sleep {
            secs: num(kw, "secs", field("secs")?)?,
        },
        "send" => TiOp::Send {
            dst: num(kw, "dst", field("dst")?)?,
            cid: num(kw, "cid", field("cid")?)?,
            tag: num(kw, "tag", field("tag")?)?,
            bytes: num(kw, "bytes", field("bytes")?)?,
        },
        "recv" => TiOp::Recv {
            src: num(kw, "src", field("src")?)?,
            cid: num(kw, "cid", field("cid")?)?,
            tag: num(kw, "tag", field("tag")?)?,
            max_bytes: num(kw, "max_bytes", field("max_bytes")?)?,
        },
        "wait" => {
            let mode = mode_parse(field("mode")?)
                .ok_or_else(|| format!("wait: unknown mode in {line:?}"))?;
            let reqs: Result<Vec<u32>, String> = parts
                .by_ref()
                .map(|s| num("wait", "request index", s))
                .collect();
            return Ok(TiOp::Wait { reqs: reqs?, mode });
        }
        "region" => {
            let dir = field("direction")?;
            let enter = match dir {
                "+" => true,
                "-" => false,
                _ => return Err(format!("region: bad direction {dir:?}")),
            };
            TiOp::Region {
                name: field("name")?.to_string(),
                enter,
            }
        }
        other => return Err(format!("unknown op {other:?}")),
    };
    if let Some(extra) = parts.next() {
        return Err(format!("{kw}: trailing field {extra:?}"));
    }
    Ok(op)
}

/// Interns a region name as a `&'static str` (the runtime's region simcall
/// wants static names). Each distinct name is leaked exactly once,
/// process-wide.
pub fn intern_region(name: &str) -> &'static str {
    static CACHE: Mutex<Option<HashSet<&'static str>>> = Mutex::new(None);
    let mut guard = CACHE.lock().unwrap();
    let cache = guard.get_or_insert_with(HashSet::new);
    if let Some(&s) = cache.get(name) {
        return s;
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    cache.insert(leaked);
    leaked
}

/// An outermost collective region still open on a rank: where its
/// synthesized [`TiOp::Coll`] sits in the staging buffer, and how many
/// posts it has covered so far. While one of these is open the rank's
/// staging buffer cannot flush past `ix` — the `span`/`posts`/`algo`
/// fields are patched in place when the region closes.
#[derive(Debug, Clone, Copy)]
struct OpenColl {
    /// Index of the `Coll` op in the rank's *staging* buffer.
    ix: usize,
    /// Posts recorded since the collective opened.
    posts: u32,
}

/// Streaming sink configuration + state (present when the run streams its
/// capture to disk instead of materializing a [`TiTrace`]).
pub(crate) struct StreamSink {
    writer: crate::capture_v2::TiV2Writer<Box<dyn std::io::Write + Send>>,
    /// Ops per sealed block (v2 blocks are self-contained, so this bounds
    /// both writer staging and replay residency).
    block_ops: usize,
    /// Global staging budget across all ranks, bytes (approximate, via
    /// [`op_cost`]). Exceeding it force-flushes partial blocks.
    budget_bytes: usize,
    /// Current staged bytes across all ranks.
    staged_bytes: usize,
    /// High-water mark of `staged_bytes`.
    peak_staged_bytes: usize,
    /// Staged bytes per rank.
    rank_bytes: Vec<usize>,
    /// First write error, if any (sticky; surfaced by `finish`).
    err: Option<std::io::Error>,
}

impl std::fmt::Debug for StreamSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamSink")
            .field("block_ops", &self.block_ops)
            .field("budget_bytes", &self.budget_bytes)
            .field("staged_bytes", &self.staged_bytes)
            .field("peak_staged_bytes", &self.peak_staged_bytes)
            .finish_non_exhaustive()
    }
}

/// Approximate in-memory size of a staged op (budget accounting only —
/// deterministic, so identical runs flush at identical points).
pub(crate) fn op_cost(op: &TiOp) -> usize {
    let heap = match op {
        TiOp::Wait { reqs, .. } => reqs.len() * 4,
        TiOp::Region { name, .. } => name.len(),
        TiOp::Coll { name, algo, .. } => name.len() + algo.len(),
        _ => 0,
    };
    std::mem::size_of::<TiOp>() + heap
}

/// Maestro-side capture state (lives in [`crate::runtime::Runtime`]).
///
/// Two jobs happen here, both at the simcall boundary:
///
/// * **Collective synthesis.** The runtime reports collectives as plain
///   observability regions. The capture layer turns each *outermost*
///   region entry into a logical [`TiOp::Coll`], annotates it with the
///   first nested region's name (the algorithm variant the collective
///   dispatched to), and patches its `span`/`posts` when the region
///   closes. Inner region entries/exits are kept verbatim, so a faithful
///   replay carries the same region timeline as the on-line run.
/// * **Streaming (optional).** With a [`StreamSink`] attached, sealed
///   blocks of ops are handed to the `TITRACE2` writer as they fill, and
///   the staging buffers stay within a fixed byte budget no matter how
///   long the run is. The only flush barrier is an open collective: its
///   `Coll` op cannot leave staging until the closing exit patches it.
#[derive(Debug)]
pub(crate) struct Capture {
    /// Per-rank op sequences under construction (the whole trace when not
    /// streaming; a bounded staging window when streaming).
    pub(crate) ops: Vec<Vec<TiOp>>,
    /// Next post index per rank (requests are named by post order).
    next_post: Vec<u32>,
    /// Global request id -> (owning rank's) post index.
    req_post: std::collections::HashMap<crate::runtime::ReqId, u32>,
    /// Per-rank region nesting depth (for outermost-region detection).
    depth: Vec<u32>,
    /// Per-rank open outermost collective, if any.
    open: Vec<Option<OpenColl>>,
    /// Streaming sink, when capture goes straight to disk.
    stream: Option<StreamSink>,
}

impl Capture {
    pub(crate) fn new(nranks: usize) -> Self {
        Capture {
            ops: vec![Vec::new(); nranks],
            next_post: vec![0; nranks],
            req_post: std::collections::HashMap::new(),
            depth: vec![0; nranks],
            open: vec![None; nranks],
            stream: None,
        }
    }

    /// Attaches a streaming sink: ops are encoded to `out` as `TITRACE2`
    /// blocks of `block_ops`, keeping staged memory near `budget_bytes`.
    pub(crate) fn new_streaming(
        nranks: usize,
        out: Box<dyn std::io::Write + Send>,
        block_ops: usize,
        budget_bytes: usize,
    ) -> Self {
        let mut cap = Capture::new(nranks);
        cap.stream = Some(StreamSink {
            writer: crate::capture_v2::TiV2Writer::new(out, nranks),
            block_ops: block_ops.max(1),
            budget_bytes,
            staged_bytes: 0,
            peak_staged_bytes: 0,
            rank_bytes: vec![0; nranks],
            err: None,
        });
        cap
    }

    /// Records a posted request (send or receive) and names it by its
    /// per-rank post index.
    pub(crate) fn on_post(&mut self, rank: u32, req: crate::runtime::ReqId, op: TiOp) {
        let r = rank as usize;
        let idx = self.next_post[r];
        self.next_post[r] += 1;
        self.req_post.insert(req, idx);
        if let Some(open) = &mut self.open[r] {
            open.posts += 1;
        }
        self.push(r, op);
    }

    /// Records a non-posting op, synthesizing logical collectives from
    /// outermost region entries.
    pub(crate) fn on_op(&mut self, rank: u32, op: TiOp) {
        let r = rank as usize;
        match op {
            TiOp::Region { name, enter: true } => {
                let depth = self.depth[r];
                self.depth[r] += 1;
                if depth == 0 {
                    // Outermost entry: becomes a logical collective whose
                    // span/posts are patched at the matching exit. Pin the
                    // flush floor *before* pushing — a budget-pressure
                    // flush inside `push` must not carry the unpatched
                    // `Coll` away.
                    self.open[r] = Some(OpenColl {
                        ix: self.ops[r].len(),
                        posts: 0,
                    });
                    self.push(
                        r,
                        TiOp::Coll {
                            name,
                            algo: String::new(),
                            span: 0,
                            posts: 0,
                        },
                    );
                } else {
                    // First nested entry names the algorithm variant the
                    // collective dispatched to.
                    if depth == 1 {
                        if let Some(open) = self.open[r] {
                            if let TiOp::Coll { algo, .. } = &mut self.ops[r][open.ix] {
                                if algo.is_empty() {
                                    algo.push_str(&name);
                                    if let Some(s) = &mut self.stream {
                                        s.staged_bytes += name.len();
                                        s.rank_bytes[r] += name.len();
                                    }
                                }
                            }
                        }
                    }
                    self.push(r, TiOp::Region { name, enter: true });
                }
            }
            TiOp::Region { name, enter: false } => {
                self.depth[r] = self.depth[r].saturating_sub(1);
                if self.depth[r] == 0 && self.open[r].is_some() {
                    // Push while the collective is still pinned (the exit
                    // op belongs to its span), then patch and unpin.
                    self.push(r, TiOp::Region { name, enter: false });
                    let open = self.open[r].take().expect("checked above");
                    let end = self.ops[r].len() - 1;
                    if let TiOp::Coll { span, posts: p, .. } = &mut self.ops[r][open.ix] {
                        *span = (end - open.ix) as u32;
                        *p = open.posts;
                    }
                    // The barrier is gone — staged ops may flush now.
                    self.maybe_flush(r);
                    return;
                }
                self.push(r, TiOp::Region { name, enter: false });
            }
            other => self.push(r, other),
        }
    }

    /// Records a wait, translating global request ids to post indices.
    pub(crate) fn on_wait(&mut self, rank: u32, reqs: &[crate::runtime::ReqId], mode: WaitMode) {
        let reqs = reqs
            .iter()
            .map(|r| {
                *self
                    .req_post
                    .get(r)
                    .expect("waited request was captured at post")
            })
            .collect();
        self.push(rank as usize, TiOp::Wait { reqs, mode });
    }

    fn push(&mut self, r: usize, op: TiOp) {
        if let Some(s) = &mut self.stream {
            let cost = op_cost(&op);
            s.staged_bytes += cost;
            s.rank_bytes[r] += cost;
            s.peak_staged_bytes = s.peak_staged_bytes.max(s.staged_bytes);
        }
        self.ops[r].push(op);
        self.maybe_flush(r);
    }

    /// How many staged ops of rank `r` are free to leave the buffer: all of
    /// them, unless an open collective pins the tail starting at its `Coll`.
    fn flush_floor(&self, r: usize) -> usize {
        self.open[r].map_or(self.ops[r].len(), |o| o.ix)
    }

    /// Flushes full blocks of rank `r`, then — if the global budget is
    /// still exceeded — force-flushes partial blocks, largest rank first.
    fn maybe_flush(&mut self, r: usize) {
        let Some(s) = &self.stream else { return };
        let (block_ops, budget) = (s.block_ops, s.budget_bytes);
        while self.flush_floor(r) >= block_ops {
            self.seal(r, block_ops);
        }
        if self.stream.as_ref().unwrap().staged_bytes <= budget {
            return;
        }
        // Over budget: drain every rank's flushable tail (partial blocks
        // included). Anything still staged afterwards is pinned by open
        // collectives, which are bounded by the widest single collective.
        for rr in 0..self.ops.len() {
            let n = self.flush_floor(rr);
            if n > 0 {
                self.seal(rr, n);
            }
        }
    }

    /// Seals `n` staged ops of rank `r` into one v2 block.
    fn seal(&mut self, r: usize, n: usize) {
        let s = self.stream.as_mut().expect("seal requires a stream");
        let drained: Vec<TiOp> = self.ops[r].drain(..n).collect();
        let freed: usize = drained.iter().map(op_cost).sum();
        s.staged_bytes -= freed.min(s.staged_bytes);
        s.rank_bytes[r] -= freed.min(s.rank_bytes[r]);
        if let Some(open) = &mut self.open[r] {
            debug_assert!(open.ix >= n, "flush crossed an open collective");
            open.ix -= n;
        }
        if s.err.is_none() {
            if let Err(e) = s.writer.write_block(r as u32, &drained) {
                s.err = Some(e);
            }
        }
    }

    /// Finishes an in-memory capture. Must not be called on a streaming
    /// capture (ops have already left the building).
    pub(crate) fn into_trace(self) -> TiTrace {
        assert!(
            self.stream.is_none(),
            "into_trace on a streaming capture; use finish_stream"
        );
        TiTrace { ranks: self.ops }
    }

    pub(crate) fn is_streaming(&self) -> bool {
        self.stream.is_some()
    }

    /// Flushes everything and finalizes the `TITRACE2` file, returning the
    /// codec counters. Any write error observed during the run or while
    /// writing the footer surfaces here.
    pub(crate) fn finish_stream(mut self) -> std::io::Result<smpi_obs::CodecStats> {
        for r in 0..self.ops.len() {
            // A still-open collective at end of run means the app stopped
            // inside one; flush it unpatched rather than lose the tail.
            self.open[r] = None;
            let n = self.ops[r].len();
            if n > 0 {
                self.seal(r, n);
            }
        }
        let mut s = self.stream.take().expect("finish_stream requires a stream");
        if let Some(e) = s.err.take() {
            return Err(e);
        }
        let (_out, mut stats) = s.writer.finish()?;
        stats.writer_peak_staged_bytes = s.peak_staged_bytes as u64;
        stats.writer_budget_bytes = s.budget_bytes as u64;
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TiTrace {
        TiTrace {
            ranks: vec![
                vec![
                    TiOp::Compute { flops: 2.5e6 },
                    TiOp::Send {
                        dst: 1,
                        cid: 0,
                        tag: 5,
                        bytes: 8192,
                    },
                    TiOp::Recv {
                        src: -1,
                        cid: 0,
                        tag: -1,
                        max_bytes: 8192,
                    },
                    TiOp::Wait {
                        reqs: vec![0, 1],
                        mode: WaitMode::All,
                    },
                    TiOp::Region {
                        name: "allreduce".into(),
                        enter: true,
                    },
                    TiOp::Region {
                        name: "allreduce".into(),
                        enter: false,
                    },
                ],
                vec![
                    TiOp::Sleep { secs: 1.5e-6 },
                    TiOp::Wait {
                        reqs: vec![],
                        mode: WaitMode::Poll,
                    },
                ],
            ],
        }
    }

    #[test]
    fn roundtrip_is_lossless_and_stable() {
        let t = sample();
        let enc = t.encode();
        let dec = TiTrace::decode(&enc).unwrap();
        assert_eq!(dec, t);
        assert_eq!(dec.encode(), enc);
    }

    #[test]
    fn decode_rejects_malformed_documents() {
        assert!(TiTrace::decode("").is_err());
        assert!(TiTrace::decode("TITRACE v2\nranks 0\n").is_err());
        assert!(TiTrace::decode("TITRACE v1\nranks 1\nrank 0 1\nfrobnicate 3\nend\n").is_err());
        assert!(TiTrace::decode("TITRACE v1\nranks 1\nrank 0 2\ncompute 1\nend\n").is_err());
        assert!(TiTrace::decode("TITRACE v1\nranks 1\nrank 0 0\nend\nextra\n").is_err());
        // Truncated wait mode, bad region direction, trailing fields.
        assert!(TiTrace::decode("TITRACE v1\nranks 1\nrank 0 1\nwait never 0\nend\n").is_err());
        assert!(TiTrace::decode("TITRACE v1\nranks 1\nrank 0 1\nregion ? x\nend\n").is_err());
        assert!(TiTrace::decode("TITRACE v1\nranks 1\nrank 0 1\ncompute 1 2\nend\n").is_err());
    }

    #[test]
    fn float_formatting_roundtrips_extremes() {
        let t = TiTrace {
            ranks: vec![vec![
                TiOp::Compute { flops: 0.1 + 0.2 },
                TiOp::Compute {
                    flops: f64::MIN_POSITIVE,
                },
                TiOp::Compute { flops: 1e300 },
                TiOp::Sleep {
                    secs: std::f64::consts::PI,
                },
            ]],
        };
        assert_eq!(TiTrace::decode(&t.encode()).unwrap(), t);
    }

    #[test]
    fn summary_aggregates() {
        let s = sample().summary();
        assert_eq!(s.ops, 8);
        assert_eq!(s.sends, 1);
        assert_eq!(s.send_bytes, 8192);
        assert_eq!(s.recvs, 1);
        assert_eq!(s.waits, 2);
        assert_eq!(s.flops, 2.5e6);
    }

    #[test]
    fn intern_returns_same_pointer() {
        let a = intern_region("reduce_binomial");
        let b = intern_region("reduce_binomial");
        assert!(std::ptr::eq(a, b));
    }
}
