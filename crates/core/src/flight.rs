//! Always-on flight recorder and the deadlock/stall postmortem it feeds.
//!
//! Every rank keeps a short ring of its most recent simcalls and request
//! completions, encoded as the same [`TiOp`] lines the capture layer uses
//! (`TITRACE v1` syntax — one vocabulary for traces and diagnostics). The
//! ring is always on: its cost is one `VecDeque` push per simcall plus one
//! bounded map insert per posted request, which is noise next to the two
//! thread context switches a simcall already costs.
//!
//! When the maestro detects that the simulation cannot make progress
//! ([`crate::error::SimError`]), it snapshots the rings and the matching
//! stores into a [`Postmortem`]: for every blocked rank, its wait mode, its
//! last ops, and each pending request's specification — plus the *nearest
//! matching counterpart* found on the peer (an unmatched send with a
//! different tag, a posted receive naming a different source, …), which is
//! usually the bug.

use std::collections::{HashMap, VecDeque};

use smpi_obs::json::JsonBuf;

use crate::capture::{mode_name, TiOp};
use crate::runtime::{ReqId, WaitMode};

/// Ring depth per rank: the acceptance bar is "last ≥ 8 ops"; 16 leaves
/// room for the completions interleaved between them.
pub const FLIGHT_DEPTH: usize = 16;

/// One ring entry: an op the rank issued, or a completion it observed.
#[derive(Debug, Clone)]
enum FlightEntry {
    /// A simcall, in `TITRACE v1` vocabulary.
    Op(TiOp),
    /// A request of this rank completed (post index when still known).
    Done {
        post: Option<u32>,
        kind: &'static str,
        peer: u32,
        tag: i32,
        bytes: u64,
    },
}

impl FlightEntry {
    fn line(&self) -> String {
        match self {
            FlightEntry::Op(op) => op.line(),
            FlightEntry::Done {
                post,
                kind,
                peer,
                tag,
                bytes,
            } => {
                let post = post.map_or_else(|| "?".to_string(), |p| p.to_string());
                format!("done {kind} [post {post}] peer {peer} tag {tag} {bytes}")
            }
        }
    }
}

/// Per-rank rings of recent activity (lives in [`crate::runtime::Runtime`]).
#[derive(Debug)]
pub(crate) struct FlightRecorder {
    rings: Vec<VecDeque<FlightEntry>>,
    /// Next post index per rank (same numbering as the capture layer, so
    /// postmortem post indices line up with a captured trace).
    next_post: Vec<u32>,
    /// Live request -> (rank, post index). Entries are removed when the
    /// completion is reported, so the map is bounded by in-flight requests
    /// (unlike the capture layer, which must keep them forever).
    posts: HashMap<ReqId, (u32, u32)>,
}

impl FlightRecorder {
    pub(crate) fn new(nranks: usize) -> Self {
        FlightRecorder {
            rings: vec![VecDeque::with_capacity(FLIGHT_DEPTH); nranks],
            next_post: vec![0; nranks],
            posts: HashMap::new(),
        }
    }

    fn push(&mut self, rank: u32, entry: FlightEntry) {
        let ring = &mut self.rings[rank as usize];
        if ring.len() == FLIGHT_DEPTH {
            ring.pop_front();
        }
        ring.push_back(entry);
    }

    /// Records a posted request (send or receive).
    pub(crate) fn on_post(&mut self, rank: u32, req: ReqId, op: TiOp) {
        let idx = self.next_post[rank as usize];
        self.next_post[rank as usize] += 1;
        self.posts.insert(req, (rank, idx));
        self.push(rank, FlightEntry::Op(op));
    }

    /// Records a non-posting op (compute, sleep, region).
    pub(crate) fn on_op(&mut self, rank: u32, op: TiOp) {
        self.push(rank, FlightEntry::Op(op));
    }

    /// Records a wait, translating request ids to post indices (unknown
    /// ids — never possible today — render as the rank's own history ends).
    pub(crate) fn on_wait(&mut self, rank: u32, reqs: &[ReqId], mode: WaitMode) {
        let reqs = reqs
            .iter()
            .filter_map(|r| self.posts.get(r).map(|&(_, idx)| idx))
            .collect();
        self.push(rank, FlightEntry::Op(TiOp::Wait { reqs, mode }));
    }

    /// Records a completion observed by `rank` for request `req`.
    pub(crate) fn on_done(
        &mut self,
        rank: u32,
        req: ReqId,
        kind: &'static str,
        peer: u32,
        tag: i32,
        bytes: u64,
    ) {
        let post = self.posts.get(&req).map(|&(_, idx)| idx);
        self.push(
            rank,
            FlightEntry::Done {
                post,
                kind,
                peer,
                tag,
                bytes,
            },
        );
    }

    /// Post index of a live request, if the recorder saw it posted.
    pub(crate) fn post_of(&self, req: ReqId) -> Option<u32> {
        self.posts.get(&req).map(|&(_, idx)| idx)
    }

    /// Forgets a reported request (keeps the `posts` map bounded).
    pub(crate) fn forget(&mut self, req: ReqId) {
        self.posts.remove(&req);
    }

    /// The rank's recent history, oldest first, rendered as text lines.
    pub(crate) fn last_ops(&self, rank: u32) -> Vec<String> {
        self.rings[rank as usize]
            .iter()
            .map(FlightEntry::line)
            .collect()
    }
}

/// One pending (incomplete) request of a blocked rank.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PendingReq {
    /// The request's per-rank post index (aligned with captured traces),
    /// when known.
    pub post: Option<u32>,
    /// Human/machine-readable specification, e.g.
    /// `send dst 1 cid 0 tag 7 (131072 B, rendezvous, unmatched)`.
    pub spec: String,
    /// The nearest matching counterpart on the peer side and why it does
    /// not match, when one exists.
    pub counterpart: Option<String>,
}

/// One blocked rank's snapshot.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RankPostmortem {
    /// World rank.
    pub rank: u32,
    /// Wait mode the rank is blocked in (`all`, `any`, `some`), when it is
    /// blocked in a wait at all.
    pub wait_mode: Option<&'static str>,
    /// Incomplete requests of the wait set, in post order.
    pub pending: Vec<PendingReq>,
    /// The rank's last ops and completions, oldest first, in `TITRACE v1`
    /// vocabulary (`done …` lines for completions).
    pub last_ops: Vec<String>,
}

/// Flight-recorder snapshot attached to a [`crate::error::SimError`]:
/// everything needed to diagnose why the simulation stopped making
/// progress, without re-running under a debugger.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Postmortem {
    /// One entry per blocked rank, ascending by rank.
    pub ranks: Vec<RankPostmortem>,
}

impl Postmortem {
    /// Human-readable multi-line diagnosis (used by `SimError`'s
    /// `Display`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "postmortem: {} blocked rank(s)\n",
            self.ranks.len()
        ));
        for r in &self.ranks {
            match r.wait_mode {
                Some(mode) => out.push_str(&format!(
                    "  rank {} blocked in wait({mode}) on {} pending request(s):\n",
                    r.rank,
                    r.pending.len()
                )),
                None => out.push_str(&format!("  rank {} blocked:\n", r.rank)),
            }
            for p in &r.pending {
                let post = p.post.map_or_else(|| "?".to_string(), |ix| ix.to_string());
                out.push_str(&format!("    [post {post}] {}\n", p.spec));
                if let Some(c) = &p.counterpart {
                    out.push_str(&format!("      nearest match: {c}\n"));
                }
            }
            if !r.last_ops.is_empty() {
                out.push_str("    last ops:\n");
                for op in &r.last_ops {
                    out.push_str(&format!("      {op}\n"));
                }
            }
        }
        out
    }

    /// JSON object (the postmortem golden format).
    pub fn to_json(&self) -> String {
        let mut j = JsonBuf::new();
        j.begin_obj();
        j.key("blocked").begin_arr();
        for r in &self.ranks {
            j.uint_val(r.rank as u64);
        }
        j.end_arr();
        j.key("ranks").begin_arr();
        for r in &self.ranks {
            j.begin_obj();
            j.key("rank").uint_val(r.rank as u64);
            j.key("wait_mode");
            match r.wait_mode {
                Some(m) => j.str_val(m),
                None => j.raw_val("null"),
            };
            j.key("pending").begin_arr();
            for p in &r.pending {
                j.begin_obj();
                j.key("post");
                match p.post {
                    Some(ix) => j.uint_val(ix as u64),
                    None => j.raw_val("null"),
                };
                j.key("spec").str_val(&p.spec);
                j.key("counterpart");
                match &p.counterpart {
                    Some(c) => j.str_val(c),
                    None => j.raw_val("null"),
                };
                j.end_obj();
            }
            j.end_arr();
            j.key("last_ops").begin_arr();
            for op in &r.last_ops {
                j.str_val(op);
            }
            j.end_arr();
            j.end_obj();
        }
        j.end_arr();
        j.end_obj();
        j.finish()
    }
}

/// Formats a wait mode for postmortem text (re-exported vocabulary of the
/// capture codec).
pub(crate) fn wait_mode_name(mode: WaitMode) -> &'static str {
    mode_name(mode)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_and_keeps_the_tail() {
        let mut f = FlightRecorder::new(1);
        for i in 0..(FLIGHT_DEPTH as u64 + 5) {
            f.on_op(0, TiOp::Compute { flops: i as f64 });
        }
        let ops = f.last_ops(0);
        assert_eq!(ops.len(), FLIGHT_DEPTH);
        assert_eq!(
            ops.last().unwrap(),
            &format!("compute {}", FLIGHT_DEPTH + 4)
        );
        assert_eq!(ops.first().unwrap(), "compute 5");
    }

    #[test]
    fn posts_map_is_bounded_by_forget() {
        let mut f = FlightRecorder::new(1);
        for i in 0..100u64 {
            let r = ReqId(i);
            f.on_post(
                0,
                r,
                TiOp::Send {
                    dst: 0,
                    cid: 0,
                    tag: 0,
                    bytes: 1,
                },
            );
            f.on_done(0, r, "send", 0, 0, 1);
            f.forget(r);
        }
        assert!(f.posts.is_empty());
        // Post indices keep counting even though the map drains.
        assert_eq!(f.next_post[0], 100);
    }

    #[test]
    fn wait_entries_use_post_indices() {
        let mut f = FlightRecorder::new(1);
        let (a, b) = (ReqId(7), ReqId(8));
        let op = |dst| TiOp::Send {
            dst,
            cid: 0,
            tag: 0,
            bytes: 1,
        };
        f.on_post(0, a, op(1));
        f.on_post(0, b, op(2));
        f.on_wait(0, &[a, b], WaitMode::All);
        assert_eq!(f.last_ops(0).last().unwrap(), "wait all 0 1");
        assert_eq!(f.post_of(b), Some(1));
    }

    #[test]
    fn postmortem_renders_and_serializes() {
        let pm = Postmortem {
            ranks: vec![RankPostmortem {
                rank: 3,
                wait_mode: Some("all"),
                pending: vec![PendingReq {
                    post: Some(12),
                    spec: "send dst 1 cid 0 tag 7 (64 B, eager, unmatched)".into(),
                    counterpart: Some("rank 1 waits on tag 9 — tag mismatch".into()),
                }],
                last_ops: vec!["send 1 0 7 64".into(), "wait all 12".into()],
            }],
        };
        let text = pm.render();
        assert!(text.contains("rank 3 blocked in wait(all)"));
        assert!(text.contains("[post 12] send dst 1"));
        assert!(text.contains("nearest match: rank 1 waits on tag 9"));
        let json = pm.to_json();
        assert!(json.starts_with("{\"blocked\":[3],"));
        assert!(json.contains("\"wait_mode\":\"all\""));
        assert!(json.contains("\"counterpart\":\"rank 1 waits on tag 9"));
    }
}
