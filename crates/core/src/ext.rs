//! Extensions beyond the paper's SMPI subset (its §5.3/§8 future work).
//!
//! * [`Ctx::comm_split`] — the one communicator operation the paper's
//!   subset explicitly excluded ("and their operations (except
//!   Comm_split)"). Implemented as a real collective: an allgather of
//!   `(color, key)` pairs followed by deterministic group construction, so
//!   every member derives identical sub-communicators.
//! * [`Ctx::sample_auto`] — §8: "automate the sampling technique described
//!   in Section 3.1 to run enough iterations to obtain accurate results
//!   without resorting to a user-provided value (much like the SKaMPI tool
//!   does)". Executes a burst until the measured mean stabilizes, then
//!   replays it.
//! * [`Ctx::bcast_tuned`] / [`Ctx::scatter_tuned`] — §5.3: "detect which
//!   algorithm to use based on the message size and number of processes,
//!   just as real implementations like OpenMPI and MPICH2 do". Thresholds
//!   follow MPICH2's published heuristics.

use crate::comm::Comm;
use crate::ctx::Ctx;
use crate::datatype::Datatype;
use crate::group::Group;

/// Color value meaning "I do not join any sub-communicator"
/// (`MPI_UNDEFINED`).
pub const UNDEFINED_COLOR: i32 = -1;

impl Ctx<'_> {
    /// `MPI_Comm_split`: partitions `comm` by `color`; within each color,
    /// ranks are ordered by `(key, old rank)`. Ranks passing
    /// [`UNDEFINED_COLOR`] get `None`. Collective over `comm`.
    pub fn comm_split(&self, comm: &Comm, color: i32, key: i32) -> Option<Comm> {
        let r = self.comm_rank(comm);
        // Exchange (color, key) with everyone: 2 i64 per rank.
        let mine = [i64::from(color), i64::from(key)];
        let all = self.allgather(&mine, comm);

        if color == UNDEFINED_COLOR {
            return None;
        }
        // Deterministic membership: all ranks with my color, sorted by
        // (key, parent rank), translated to world ranks.
        let mut members: Vec<(i64, usize)> = (0..comm.size())
            .filter(|&i| all[2 * i] == i64::from(color))
            .map(|i| (all[2 * i + 1], i))
            .collect();
        members.sort_unstable();
        debug_assert!(members.iter().any(|&(_, i)| i == r));
        let group = Group::new(members.iter().map(|&(_, i)| comm.world_rank(i)).collect());
        Some(self.comm_create(comm, &group))
    }

    /// Adaptive sampling (§8): executes and times the burst until either
    /// the coefficient of variation of the measurements drops below
    /// `rel_tol` (with at least 3 measurements) or `max_n` executions have
    /// been spent; afterwards the mean is replayed. Returns `true` when the
    /// body actually ran.
    pub fn sample_auto(&self, site: &str, rel_tol: f64, max_n: u32, body: impl FnOnce()) -> bool {
        assert!(rel_tol > 0.0 && max_n >= 3);
        let rank = self.rank() as u32;
        let stats = self.shared.sampling.local_stats(site, rank);
        let (count, stable) = match stats {
            None => (0, false),
            Some(s) => {
                let stable = s.count >= 3 && s.cov() <= rel_tol;
                (s.count, stable)
            }
        };
        if stable || count >= max_n {
            // Converged (or budget exhausted): replay the mean.
            self.sample_local(site, count.max(1), body)
        } else {
            // Force one more measured execution by passing n = count + 1.
            self.sample_local(site, count + 1, body)
        }
    }

    /// Broadcast with MPICH2-style algorithm selection: binomial tree for
    /// short messages or small communicators; scatter + ring-allgather
    /// (van de Geijn) for long messages on larger communicators, which
    /// bounds the root's egress to ~2× the payload instead of `log p ×`.
    pub fn bcast_tuned<T: Datatype>(&self, buf: &mut [T], root: usize, comm: &Comm) {
        const LONG_MSG: usize = 12 * 1024; // bytes, MPICH2's 12 KiB knee
        let p = comm.size();
        let bytes = buf.len() * T::SIZE;
        if p < 8 || bytes < LONG_MSG || buf.len() < p {
            return self.bcast(buf, root, comm);
        }
        // Scatter the buffer (binomial), then allgather the pieces (ring).
        let r = self.comm_rank(comm);
        let chunk = buf.len() / p;
        let rem = buf.len() - chunk * p;
        // Uneven tail: fold the remainder into the last rank's chunk via
        // scatterv semantics.
        let mut counts = vec![chunk; p];
        counts[p - 1] += rem;
        let send = (r == root).then(|| buf.to_vec());
        let mine = self.scatterv(
            send.as_deref(),
            (r == root).then_some(&counts[..]),
            counts[r],
            root,
            comm,
        );
        let gathered = self.allgatherv(&mine, &counts, comm);
        buf.copy_from_slice(&gathered);
    }

    /// Scatter with algorithm selection: binomial tree in general, linear
    /// for tiny messages on small communicators where the tree's extra
    /// store-and-forward hops dominate.
    pub fn scatter_tuned<T: Datatype>(
        &self,
        send: Option<&[T]>,
        chunk: usize,
        root: usize,
        comm: &Comm,
    ) -> Vec<T> {
        const TINY_MSG: usize = 1024; // bytes
        let bytes = chunk * T::SIZE;
        if comm.size() <= 4 && bytes <= TINY_MSG {
            self.scatter_linear(send, chunk, root, comm)
        } else {
            self.scatter(send, chunk, root, comm)
        }
    }
}
