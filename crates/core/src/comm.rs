//! Communicators (`MPI_Comm`).
//!
//! A communicator is a [`Group`] plus a **context id** isolating its message
//! traffic from every other communicator's. Context ids must be agreed upon
//! collectively; here agreement is deterministic: all members of a group
//! execute the same sequence of communicator creations on that group, so a
//! shared registry keyed by `(group, per-group sequence number)` hands every
//! member the same id without extra communication.

use std::collections::HashMap;

use parking_lot::Mutex;

use crate::group::Group;

/// The context id of `MPI_COMM_WORLD`.
pub const WORLD_CID: u32 = 0;

/// A communicator: a group of processes plus an isolated message context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comm {
    cid: u32,
    group: Group,
}

impl Comm {
    /// The world communicator over `n` ranks.
    pub fn world(n: usize) -> Self {
        Comm {
            cid: WORLD_CID,
            group: Group::world(n),
        }
    }

    pub(crate) fn from_parts(cid: u32, group: Group) -> Self {
        Comm { cid, group }
    }

    /// The context id.
    pub fn cid(&self) -> u32 {
        self.cid
    }

    /// The communicator's group.
    pub fn group(&self) -> &Group {
        &self.group
    }

    /// Number of ranks (`MPI_Comm_size`).
    pub fn size(&self) -> usize {
        self.group.size()
    }

    /// World rank of communicator rank `r`.
    pub fn world_rank(&self, r: usize) -> u32 {
        self.group.world_rank(r)
    }

    /// Communicator rank of world rank `w`, if a member.
    pub fn local_rank(&self, w: u32) -> Option<usize> {
        self.group.local_rank(w)
    }
}

/// Deterministic context-id allocation shared by all ranks.
#[derive(Debug, Default)]
pub struct CommRegistry {
    inner: Mutex<RegistryInner>,
}

#[derive(Debug)]
struct RegistryInner {
    next_cid: u32,
    by_key: HashMap<(Vec<u32>, u64), u32>,
}

impl Default for RegistryInner {
    fn default() -> Self {
        RegistryInner {
            next_cid: WORLD_CID + 1,
            by_key: HashMap::new(),
        }
    }
}

impl CommRegistry {
    /// Creates an empty registry (cid 0 is reserved for the world).
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the context id for the `seq`-th communicator created over
    /// `group`. The first member to ask allocates; later members (same
    /// `group`, same `seq`) observe the same id.
    pub fn cid_for(&self, group: &Group, seq: u64) -> u32 {
        let mut inner = self.inner.lock();
        let key = (group.members().to_vec(), seq);
        if let Some(&cid) = inner.by_key.get(&key) {
            return cid;
        }
        let cid = inner.next_cid;
        inner.next_cid += 1;
        inner.by_key.insert(key, cid);
        cid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_comm_basics() {
        let c = Comm::world(4);
        assert_eq!(c.cid(), WORLD_CID);
        assert_eq!(c.size(), 4);
        assert_eq!(c.world_rank(3), 3);
        assert_eq!(c.local_rank(2), Some(2));
        assert_eq!(c.local_rank(9), None);
    }

    #[test]
    fn registry_same_key_same_cid() {
        let reg = CommRegistry::new();
        let g = Group::new(vec![0, 2, 4]);
        let a = reg.cid_for(&g, 0);
        let b = reg.cid_for(&g, 0);
        assert_eq!(a, b);
    }

    #[test]
    fn registry_distinguishes_sequence_numbers() {
        let reg = CommRegistry::new();
        let g = Group::new(vec![0, 1]);
        let first = reg.cid_for(&g, 0);
        let second = reg.cid_for(&g, 1);
        assert_ne!(first, second);
    }

    #[test]
    fn registry_distinguishes_groups() {
        let reg = CommRegistry::new();
        let a = reg.cid_for(&Group::new(vec![0, 1]), 0);
        let b = reg.cid_for(&Group::new(vec![0, 2]), 0);
        assert_ne!(a, b);
        assert_ne!(a, WORLD_CID);
    }

    #[test]
    fn sub_communicator_ranks_translate() {
        let g = Group::world(8).incl(&[1, 3, 5]);
        let c = Comm::from_parts(7, g);
        assert_eq!(c.size(), 3);
        assert_eq!(c.world_rank(2), 5);
        assert_eq!(c.local_rank(3), Some(1));
    }
}
