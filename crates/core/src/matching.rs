//! MPI message matching with per-(source, tag) FIFOs.
//!
//! The MPI matching rule (used by [`crate::runtime`]): a receive posted on
//! `(cid, dst)` matches the **earliest compatible unmatched message** in
//! send-post order (the non-overtaking guarantee), where the receive's
//! source/tag may each be a wildcard ([`ANY_SOURCE`]/[`ANY_TAG`]).
//!
//! A single queue per `(cid, dst)` makes every match a linear scan — at 10k+
//! ranks the unexpected-message queue of a busy destination holds thousands
//! of entries and matching dominates the maestro. This module keys the
//! queues one level deeper:
//!
//! * **pending messages** are bucketed by their *concrete* envelope
//!   `(src, tag)`. A concrete receive probes exactly one bucket front: O(1).
//!   A wildcard receive scans only the bucket *fronts* (one per distinct
//!   live envelope), not every queued message.
//! * **posted receives** are bucketed by their *specification*
//!   `(src-or-any, tag-or-any)`. An incoming message probes the at most four
//!   buckets that could match it — `(src, tag)`, `(ANY, tag)`, `(src, ANY)`,
//!   `(ANY, ANY)` — again O(1).
//!
//! Global post order is preserved by stamping every entry with a sequence
//! number at insertion; ties across buckets are broken by taking the minimum
//! sequence among candidate fronts. Each bucket is itself a FIFO, so the
//! front always carries the bucket's minimum — the scan never looks deeper.
//!
//! The structures are generic over the stored id so the differential tests
//! can drive them directly against a reference implementation.

use std::collections::{HashMap, VecDeque};

/// Wildcard source (`MPI_ANY_SOURCE`); mirrors [`crate::runtime::ANY_SOURCE`].
pub const ANY_SOURCE: i32 = -1;
/// Wildcard tag (`MPI_ANY_TAG`); mirrors [`crate::runtime::ANY_TAG`].
pub const ANY_TAG: i32 = -1;

/// `true` if an envelope `(msg_src, msg_tag)` matches a receive's
/// specification (wildcards allowed).
pub fn env_matches(want_src: i32, want_tag: i32, msg_src: u32, msg_tag: i32) -> bool {
    (want_src == ANY_SOURCE || want_src == msg_src as i32)
        && (want_tag == ANY_TAG || want_tag == msg_tag)
}

/// Per-channel buckets: second-level key -> FIFO of (seq, id).
type Buckets<K, T> = HashMap<K, VecDeque<(u64, T)>>;

/// Unmatched (unexpected) messages awaiting a receive, bucketed by
/// `(cid, dst)` and then by concrete envelope `(src, tag)`.
#[derive(Debug)]
pub struct MsgFifos<T> {
    queues: HashMap<(u32, u32), Buckets<(u32, i32), T>>,
}

impl<T> Default for MsgFifos<T> {
    fn default() -> Self {
        MsgFifos {
            queues: HashMap::new(),
        }
    }
}

impl<T: Copy> MsgFifos<T> {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues a message with envelope `(src, tag)`. `seq` must be
    /// strictly increasing across *all* pushes into one `(cid, dst)` bucket
    /// (post order); the caller's monotonically allocated message id serves.
    pub fn push(&mut self, cid: u32, dst: u32, src: u32, tag: i32, seq: u64, id: T) {
        self.queues
            .entry((cid, dst))
            .or_default()
            .entry((src, tag))
            .or_default()
            .push_back((seq, id));
    }

    /// Removes and returns the earliest message (by push order) matching a
    /// receive specification, or `None`. A concrete spec probes one bucket;
    /// a wildcard spec scans bucket fronts only.
    pub fn pop_match(&mut self, cid: u32, dst: u32, want_src: i32, want_tag: i32) -> Option<T> {
        let envs = self.queues.get_mut(&(cid, dst))?;
        let key = if want_src != ANY_SOURCE && want_tag != ANY_TAG {
            // Fully concrete: single bucket.
            let k = (want_src as u32, want_tag);
            envs.contains_key(&k).then_some(k)?
        } else {
            // Wildcard in at least one position: earliest compatible front.
            envs.iter()
                .filter(|((src, tag), _)| env_matches(want_src, want_tag, *src, *tag))
                .min_by_key(|(_, q)| q.front().expect("empty bucket not removed").0)
                .map(|(&k, _)| k)?
        };
        let q = envs.get_mut(&key).unwrap();
        let (_, id) = q.pop_front().expect("empty bucket not removed");
        if q.is_empty() {
            envs.remove(&key);
            if envs.is_empty() {
                self.queues.remove(&(cid, dst));
            }
        }
        Some(id)
    }

    /// Every unmatched message queued for `(cid, dst)` as
    /// `(src, tag, seq, id)`, in push (send-post) order. Diagnostics only —
    /// this walks every bucket.
    pub fn envelopes(&self, cid: u32, dst: u32) -> Vec<(u32, i32, u64, T)> {
        let mut out = Vec::new();
        if let Some(envs) = self.queues.get(&(cid, dst)) {
            for (&(src, tag), q) in envs {
                out.extend(q.iter().map(|&(seq, id)| (src, tag, seq, id)));
            }
        }
        out.sort_by_key(|&(_, _, seq, _)| seq);
        out
    }

    /// Locates a queued message by id, returning its
    /// `(cid, dst, src, tag)`. Diagnostics only — a full scan.
    pub fn find(&self, id: T) -> Option<(u32, u32, u32, i32)>
    where
        T: PartialEq,
    {
        for (&(cid, dst), envs) in &self.queues {
            for (&(src, tag), q) in envs {
                if q.iter().any(|&(_, i)| i == id) {
                    return Some((cid, dst, src, tag));
                }
            }
        }
        None
    }
}

/// Posted receives awaiting a message, bucketed by `(cid, dst)` and then by
/// specification `(src-or-any, tag-or-any)`.
#[derive(Debug)]
pub struct RecvFifos<T> {
    queues: HashMap<(u32, u32), Buckets<(i32, i32), T>>,
}

impl<T> Default for RecvFifos<T> {
    fn default() -> Self {
        RecvFifos {
            queues: HashMap::new(),
        }
    }
}

impl<T: Copy> RecvFifos<T> {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues a receive with specification `(src, tag)` (either may be a
    /// wildcard). `seq` must be strictly increasing across all pushes into
    /// one `(cid, dst)` bucket (post order).
    pub fn push(&mut self, cid: u32, dst: u32, src: i32, tag: i32, seq: u64, id: T) {
        self.queues
            .entry((cid, dst))
            .or_default()
            .entry((src, tag))
            .or_default()
            .push_back((seq, id));
    }

    /// Removes and returns the earliest receive (by push order) whose
    /// specification matches an incoming message's concrete envelope, or
    /// `None`. At most four buckets are probed.
    pub fn pop_match(&mut self, cid: u32, dst: u32, msg_src: u32, msg_tag: i32) -> Option<T> {
        let specs = self.queues.get_mut(&(cid, dst))?;
        let candidates = [
            (msg_src as i32, msg_tag),
            (ANY_SOURCE, msg_tag),
            (msg_src as i32, ANY_TAG),
            (ANY_SOURCE, ANY_TAG),
        ];
        let key = candidates
            .into_iter()
            .filter_map(|k| {
                specs
                    .get(&k)
                    .map(|q| (q.front().expect("empty bucket not removed").0, k))
            })
            .min()
            .map(|(_, k)| k)?;
        let q = specs.get_mut(&key).unwrap();
        let (_, id) = q.pop_front().expect("empty bucket not removed");
        if q.is_empty() {
            specs.remove(&key);
            if specs.is_empty() {
                self.queues.remove(&(cid, dst));
            }
        }
        Some(id)
    }

    /// Every unmatched receive posted on `(cid, dst)` as
    /// `(src, tag, seq, id)` (wildcards included), in push (post) order.
    /// Diagnostics only — this walks every bucket.
    pub fn specs(&self, cid: u32, dst: u32) -> Vec<(i32, i32, u64, T)> {
        let mut out = Vec::new();
        if let Some(specs) = self.queues.get(&(cid, dst)) {
            for (&(src, tag), q) in specs {
                out.extend(q.iter().map(|&(seq, id)| (src, tag, seq, id)));
            }
        }
        out.sort_by_key(|&(_, _, seq, _)| seq);
        out
    }

    /// Locates a posted receive by id, returning its
    /// `(cid, dst, src, tag)` specification. Diagnostics only — a full scan.
    pub fn find(&self, id: T) -> Option<(u32, u32, i32, i32)>
    where
        T: PartialEq,
    {
        for (&(cid, dst), specs) in &self.queues {
            for (&(src, tag), q) in specs {
                if q.iter().any(|&(_, i)| i == id) {
                    return Some((cid, dst, src, tag));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concrete_recv_pops_in_send_order() {
        let mut m = MsgFifos::new();
        m.push(0, 1, 5, 9, 10, "a");
        m.push(0, 1, 5, 9, 11, "b");
        assert_eq!(m.pop_match(0, 1, 5, 9), Some("a"));
        assert_eq!(m.pop_match(0, 1, 5, 9), Some("b"));
        assert_eq!(m.pop_match(0, 1, 5, 9), None);
    }

    #[test]
    fn wildcard_recv_takes_global_earliest() {
        let mut m = MsgFifos::new();
        m.push(0, 1, 7, 0, 3, "late-src7");
        m.push(0, 1, 2, 0, 1, "early-src2");
        assert_eq!(m.pop_match(0, 1, ANY_SOURCE, ANY_TAG), Some("early-src2"));
        assert_eq!(m.pop_match(0, 1, ANY_SOURCE, 0), Some("late-src7"));
    }

    #[test]
    fn msg_probes_all_four_recv_specs() {
        let mut r = RecvFifos::new();
        r.push(0, 1, ANY_SOURCE, ANY_TAG, 4, "aa");
        r.push(0, 1, 3, ANY_TAG, 2, "sa");
        r.push(0, 1, ANY_SOURCE, 8, 3, "at");
        r.push(0, 1, 3, 8, 1, "st");
        // Earliest matching spec wins regardless of bucket.
        assert_eq!(r.pop_match(0, 1, 3, 8), Some("st"));
        assert_eq!(r.pop_match(0, 1, 3, 8), Some("sa"));
        assert_eq!(r.pop_match(0, 1, 3, 8), Some("at"));
        assert_eq!(r.pop_match(0, 1, 3, 8), Some("aa"));
        assert_eq!(r.pop_match(0, 1, 3, 8), None);
    }

    #[test]
    fn incompatible_envelopes_do_not_match() {
        let mut m = MsgFifos::new();
        m.push(0, 1, 5, 9, 0, "x");
        assert_eq!(m.pop_match(0, 1, 6, 9), None);
        assert_eq!(m.pop_match(0, 1, 5, 8), None);
        assert_eq!(m.pop_match(0, 2, 5, 9), None);
        assert_eq!(m.pop_match(1, 1, 5, 9), None);
        assert_eq!(m.pop_match(0, 1, 5, 9), Some("x"));
    }

    #[test]
    fn inspection_apis_report_queue_contents() {
        let mut m = MsgFifos::new();
        m.push(0, 1, 5, 9, 1, "b");
        m.push(0, 1, 2, 3, 0, "a");
        assert_eq!(m.envelopes(0, 1), vec![(2, 3, 0, "a"), (5, 9, 1, "b")]);
        assert_eq!(m.envelopes(0, 9), vec![]);
        assert_eq!(m.find("b"), Some((0, 1, 5, 9)));
        assert_eq!(m.find("zz"), None);
        let mut r = RecvFifos::new();
        r.push(0, 2, ANY_SOURCE, 7, 4, "x");
        assert_eq!(r.specs(0, 2), vec![(ANY_SOURCE, 7, 4, "x")]);
        assert_eq!(r.find("x"), Some((0, 2, ANY_SOURCE, 7)));
        assert_eq!(r.find("y"), None);
    }

    #[test]
    fn communicators_are_isolated() {
        let mut r = RecvFifos::new();
        r.push(0, 1, ANY_SOURCE, ANY_TAG, 0, "cid0");
        r.push(1, 1, ANY_SOURCE, ANY_TAG, 1, "cid1");
        assert_eq!(r.pop_match(1, 1, 0, 0), Some("cid1"));
        assert_eq!(r.pop_match(1, 1, 0, 0), None);
        assert_eq!(r.pop_match(0, 1, 0, 0), Some("cid0"));
    }
}
