//! Reduction operators (`MPI_Op`).
//!
//! Predefined operators plus user-defined ones (the paper lists "predefined
//! and user-defined operators" in SMPI's supported subset). An operator
//! combines an incoming contribution into an accumulator element-wise:
//! `acc[i] = op(acc[i], contrib[i])` — the `MPI_Reduce` convention where the
//! accumulator holds the value from the *higher* tree level.

use crate::datatype::Datatype;

/// An element-wise reduction operator over `T`.
#[derive(Clone, Copy)]
pub struct Op<T> {
    /// MPI-style display name.
    pub name: &'static str,
    combine: fn(T, T) -> T,
    /// Whether the operation is commutative (all predefined ops are; this
    /// matters for which reduction trees are legal).
    pub commutative: bool,
}

impl<T> std::fmt::Debug for Op<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Op({})", self.name)
    }
}

impl<T: Datatype> Op<T> {
    /// Defines a user operator.
    pub fn user(name: &'static str, combine: fn(T, T) -> T, commutative: bool) -> Self {
        Op {
            name,
            combine,
            commutative,
        }
    }

    /// Applies the operator to one pair.
    pub fn apply(&self, acc: T, contrib: T) -> T {
        (self.combine)(acc, contrib)
    }

    /// Reduces `contrib` into `acc` element-wise.
    pub fn fold_into(&self, acc: &mut [T], contrib: &[T]) {
        assert_eq!(acc.len(), contrib.len(), "reduction length mismatch");
        for (a, &c) in acc.iter_mut().zip(contrib) {
            *a = (self.combine)(*a, c);
        }
    }
}

/// `MPI_SUM` for any numeric datatype.
pub fn sum<T: Datatype + std::ops::Add<Output = T>>() -> Op<T> {
    Op {
        name: "MPI_SUM",
        combine: |a, b| a + b,
        commutative: true,
    }
}

/// `MPI_PROD`.
pub fn prod<T: Datatype + std::ops::Mul<Output = T>>() -> Op<T> {
    Op {
        name: "MPI_PROD",
        combine: |a, b| a * b,
        commutative: true,
    }
}

/// `MPI_MAX`.
pub fn max<T: Datatype + PartialOrd>() -> Op<T> {
    Op {
        name: "MPI_MAX",
        combine: |a, b| if b > a { b } else { a },
        commutative: true,
    }
}

/// `MPI_MIN`.
pub fn min<T: Datatype + PartialOrd>() -> Op<T> {
    Op {
        name: "MPI_MIN",
        combine: |a, b| if b < a { b } else { a },
        commutative: true,
    }
}

/// `MPI_LAND` (logical and) over integers: nonzero = true.
pub fn land() -> Op<i32> {
    Op {
        name: "MPI_LAND",
        combine: |a, b| i32::from(a != 0 && b != 0),
        commutative: true,
    }
}

/// `MPI_LOR` (logical or) over integers.
pub fn lor() -> Op<i32> {
    Op {
        name: "MPI_LOR",
        combine: |a, b| i32::from(a != 0 || b != 0),
        commutative: true,
    }
}

/// `MPI_BAND` (bitwise and).
pub fn band() -> Op<u64> {
    Op {
        name: "MPI_BAND",
        combine: |a, b| a & b,
        commutative: true,
    }
}

/// `MPI_BOR` (bitwise or).
pub fn bor() -> Op<u64> {
    Op {
        name: "MPI_BOR",
        combine: |a, b| a | b,
        commutative: true,
    }
}

/// `MPI_BXOR` (bitwise xor).
pub fn bxor() -> Op<u64> {
    Op {
        name: "MPI_BXOR",
        combine: |a, b| a ^ b,
        commutative: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predefined_ops() {
        assert_eq!(sum::<i32>().apply(2, 3), 5);
        assert_eq!(prod::<f64>().apply(2.0, 3.5), 7.0);
        assert_eq!(max::<i32>().apply(2, 3), 3);
        assert_eq!(min::<i32>().apply(2, 3), 2);
        assert_eq!(land().apply(1, 0), 0);
        assert_eq!(lor().apply(1, 0), 1);
        assert_eq!(band().apply(0b1100, 0b1010), 0b1000);
        assert_eq!(bor().apply(0b1100, 0b1010), 0b1110);
        assert_eq!(bxor().apply(0b1100, 0b1010), 0b0110);
    }

    #[test]
    fn fold_into_is_elementwise() {
        let mut acc = vec![1i32, 2, 3];
        sum::<i32>().fold_into(&mut acc, &[10, 20, 30]);
        assert_eq!(acc, [11, 22, 33]);
    }

    #[test]
    fn user_op_non_commutative() {
        // "Keep left" — order-sensitive, like MPI_REPLACE.
        let keep_left = Op::<i32>::user("KEEP_LEFT", |a, _| a, false);
        assert!(!keep_left.commutative);
        assert_eq!(keep_left.apply(7, 9), 7);
    }

    #[test]
    #[should_panic]
    fn length_mismatch_panics() {
        let mut acc = vec![1i32];
        sum::<i32>().fold_into(&mut acc, &[1, 2]);
    }
}
