//! The rank-side MPI API.
//!
//! A [`Ctx`] is handed to every rank's body closure; all MPI operations go
//! through it. The supported subset follows §5.1 of the paper: Send, Recv,
//! Isend, Irecv, Sendrecv, Send_init/Recv_init/Start/Startall, Test(any),
//! Wait(any/all/some), plus the collectives of [`crate::coll`].
//!
//! Buffers are typed slices; receives return owned `Vec<T>`s (the Rust
//! equivalent of receiving into a caller buffer, without borrowing across
//! the blocking call). Message *data is real*: this is on-line simulation,
//! so reductions, scans and application logic all compute true values.
//!
//! Calls split into two tiers. **Maestro simcalls** (sends, receives,
//! waits, compute, sleep) describe simulated work, so they yield the baton
//! and cost two thread context switches. **Local simcalls** — pure
//! bookkeeping with no simulated cost — are answered on the actor thread
//! from [`crate::state::SharedState`] without yielding: `wtime` reads the
//! published clock, sampling decisions consult the shared sample tables,
//! `shared_malloc` hits the folded heap, and communicator/rank metadata
//! (`rank`, `size`, `comm_create`) never leaves the rank. The baton
//! guarantees exclusivity, so local reads race with nothing.

use std::cell::RefCell;
use std::collections::HashMap;
use std::marker::PhantomData;
use std::sync::Arc;

use crate::comm::Comm;
use crate::datatype::{from_bytes, to_bytes, Datatype};
use crate::group::Group;
use crate::runtime::{Completion, ReqId, SimResp, Simcall, SxHandle, WaitMode, ANY_SOURCE};
use crate::state::SharedState;

/// Delivery status of a completed receive (`MPI_Status`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Status {
    /// Source rank, local to the communicator of the receive.
    pub source: usize,
    /// Message tag.
    pub tag: i32,
    /// Message size in bytes.
    pub bytes: u64,
}

impl Status {
    /// Number of `T` elements received (`MPI_Get_count`).
    pub fn count<T: Datatype>(&self) -> usize {
        assert_eq!(self.bytes as usize % T::SIZE, 0, "partial element received");
        self.bytes as usize / T::SIZE
    }
}

/// Handle to a pending send.
#[derive(Debug)]
#[must_use = "pending sends must be waited on"]
pub struct SendRequest(pub(crate) ReqId);

/// Handle to a pending typed receive.
#[derive(Debug)]
#[must_use = "pending receives must be waited on"]
pub struct RecvRequest<T: Datatype> {
    pub(crate) id: ReqId,
    _t: PhantomData<T>,
}

impl SendRequest {
    /// Type-erases the request for the heterogeneous wait family.
    pub fn into_any(self) -> AnyRequest {
        AnyRequest::Send(self.0)
    }
}

impl<T: Datatype> RecvRequest<T> {
    /// Type-erases the request for the heterogeneous wait family (payloads
    /// are then returned raw; decode with [`crate::datatype::from_bytes`]).
    pub fn into_any(self) -> AnyRequest {
        AnyRequest::Recv(self.id)
    }
}

/// Handle to a pending data-less receive (sized-message API).
#[derive(Debug)]
#[must_use = "pending receives must be waited on"]
pub struct SizedRecvRequest(pub(crate) ReqId);

/// A type-erased request, for heterogeneous `wait_any`/`wait_some` sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnyRequest {
    /// A send in the set.
    Send(ReqId),
    /// A receive in the set (data is returned raw).
    Recv(ReqId),
}

/// Raw completion from the heterogeneous wait family.
#[derive(Debug)]
pub struct RawCompletion {
    /// Index of the request in the waited slice.
    pub index: usize,
    /// Source world rank (translate with the communicator if needed).
    pub source_world: u32,
    /// Message tag.
    pub tag: i32,
    /// Message size in bytes.
    pub bytes: u64,
    /// Payload for receives; `None` for sends.
    pub data: Option<Box<[u8]>>,
}

/// A persistent send (`MPI_Send_init`): the envelope and a payload snapshot,
/// restartable with [`Ctx::start_send`].
#[derive(Debug)]
pub struct PersistentSend {
    dst: usize,
    tag: i32,
    comm: Comm,
    payload: Vec<u8>,
}

/// A persistent receive (`MPI_Recv_init`), restartable with
/// [`Ctx::start_recv`].
#[derive(Debug)]
pub struct PersistentRecv<T: Datatype> {
    src: i32,
    tag: i32,
    comm: Comm,
    max_len: usize,
    _t: PhantomData<T>,
}

/// The per-rank MPI context.
pub struct Ctx<'h> {
    handle: &'h SxHandle,
    world: Comm,
    pub(crate) shared: Arc<SharedState>,
    /// Per-(group) counters for deterministic context-id agreement.
    comm_seq: RefCell<HashMap<Vec<u32>, u64>>,
}

impl<'h> Ctx<'h> {
    pub(crate) fn new(handle: &'h SxHandle, world_size: usize, shared: Arc<SharedState>) -> Self {
        Ctx {
            handle,
            world: Comm::world(world_size),
            shared,
            comm_seq: RefCell::new(HashMap::new()),
        }
    }

    pub(crate) fn call(&self, req: Simcall) -> SimResp {
        self.handle.simcall(req)
    }

    /// Marks the enclosing scope as a named collective on this rank's
    /// observability timeline. Free when metrics are off: no simcall is
    /// issued at all (the flag is read from shared state, not the maestro).
    pub(crate) fn coll_region(&self, name: &'static str) -> CollRegion<'_, 'h> {
        let on = self.shared.config.obs;
        if on {
            match self.call(Simcall::Region { name, enter: true }) {
                SimResp::Unit => {}
                other => unreachable!("bad response {other:?}"),
            }
        }
        CollRegion {
            ctx: self,
            name,
            on,
        }
    }

    /// This rank within `MPI_COMM_WORLD`.
    pub fn rank(&self) -> usize {
        self.handle.id().0 as usize
    }

    /// World size (`MPI_Comm_size` on the world).
    pub fn size(&self) -> usize {
        self.world.size()
    }

    /// The world communicator.
    pub fn world(&self) -> Comm {
        self.world.clone()
    }

    /// Simulated time in seconds (`MPI_Wtime`).
    ///
    /// Local simcall tier: answered from the maestro-published
    /// [`crate::state::SimClock`] without yielding the baton. Simulated
    /// time only advances while every rank is blocked, so the value is
    /// identical to what a maestro round-trip ([`Simcall::Now`]) returns —
    /// minus the two thread context switches.
    pub fn wtime(&self) -> f64 {
        self.shared.count_local_call();
        self.shared.clock.now()
    }

    /// Burns `flops` of computation on this rank's host.
    pub fn compute(&self, flops: f64) {
        match self.call(Simcall::Exec { flops }) {
            SimResp::Unit => {}
            other => unreachable!("bad response {other:?}"),
        }
    }

    /// Advances simulated time without consuming resources.
    pub fn sleep(&self, secs: f64) {
        match self.call(Simcall::Sleep { secs }) {
            SimResp::Unit => {}
            other => unreachable!("bad response {other:?}"),
        }
    }

    // ----- point-to-point ------------------------------------------------

    /// Nonblocking send of a typed buffer (`MPI_Isend`).
    pub fn isend<T: Datatype>(&self, buf: &[T], dst: usize, tag: i32, comm: &Comm) -> SendRequest {
        let payload = to_bytes(buf).into_boxed_slice();
        let dst_world = comm.world_rank(dst);
        match self.call(Simcall::Isend {
            dst: dst_world,
            cid: comm.cid(),
            tag,
            payload,
        }) {
            SimResp::Req(id) => SendRequest(id),
            other => unreachable!("bad response {other:?}"),
        }
    }

    /// Nonblocking receive of up to `max_len` elements (`MPI_Irecv`).
    /// `src` is a communicator rank, or [`ANY_SOURCE`]; `tag` may be
    /// [`crate::runtime::ANY_TAG`].
    pub fn irecv<T: Datatype>(
        &self,
        src: i32,
        tag: i32,
        max_len: usize,
        comm: &Comm,
    ) -> RecvRequest<T> {
        let src_world = if src == ANY_SOURCE {
            ANY_SOURCE
        } else {
            comm.world_rank(src as usize) as i32
        };
        match self.call(Simcall::Irecv {
            src: src_world,
            cid: comm.cid(),
            tag,
            max_bytes: (max_len * T::SIZE) as u64,
        }) {
            SimResp::Req(id) => RecvRequest {
                id,
                _t: PhantomData,
            },
            other => unreachable!("bad response {other:?}"),
        }
    }

    fn wait_ids(&self, ids: Vec<ReqId>, mode: WaitMode) -> Vec<Completion> {
        match self.call(Simcall::Wait { reqs: ids, mode }) {
            SimResp::Done(c) => c,
            other => unreachable!("bad response {other:?}"),
        }
    }

    /// Waits for a send to complete (`MPI_Wait`).
    pub fn wait_send(&self, req: SendRequest) {
        let done = self.wait_ids(vec![req.0], WaitMode::All);
        debug_assert_eq!(done.len(), 1);
    }

    /// Waits for a receive and returns its data (`MPI_Wait`).
    pub fn wait_recv<T: Datatype>(&self, req: RecvRequest<T>, comm: &Comm) -> (Vec<T>, Status) {
        let mut done = self.wait_ids(vec![req.id], WaitMode::All);
        debug_assert_eq!(done.len(), 1);
        let c = done.pop().unwrap();
        completion_to_typed(c, comm)
    }

    /// Waits for all listed sends (`MPI_Waitall` on sends).
    pub fn wait_all_sends(&self, reqs: Vec<SendRequest>) {
        if reqs.is_empty() {
            return;
        }
        let ids: Vec<ReqId> = reqs.into_iter().map(|r| r.0).collect();
        let n = ids.len();
        let done = self.wait_ids(ids, WaitMode::All);
        debug_assert_eq!(done.len(), n);
    }

    /// Waits for all listed receives, returning data in request order
    /// (`MPI_Waitall` on receives).
    pub fn wait_all_recvs<T: Datatype>(
        &self,
        reqs: Vec<RecvRequest<T>>,
        comm: &Comm,
    ) -> Vec<(Vec<T>, Status)> {
        if reqs.is_empty() {
            return Vec::new();
        }
        let ids: Vec<ReqId> = reqs.into_iter().map(|r| r.id).collect();
        let n = ids.len();
        let mut done = self.wait_ids(ids, WaitMode::All);
        debug_assert_eq!(done.len(), n);
        done.sort_by_key(|c| c.index);
        done.into_iter()
            .map(|c| completion_to_typed(c, comm))
            .collect()
    }

    /// Waits for all requests in a heterogeneous set (`MPI_Waitall`).
    pub fn wait_all(&self, reqs: &[AnyRequest]) -> Vec<RawCompletion> {
        if reqs.is_empty() {
            return Vec::new();
        }
        let ids: Vec<ReqId> = reqs.iter().map(any_id).collect();
        let mut done = self.wait_ids(ids, WaitMode::All);
        done.sort_by_key(|c| c.index);
        done.into_iter().map(raw).collect()
    }

    /// Blocks until at least one request completes; returns exactly one
    /// completion (`MPI_Waitany`).
    pub fn wait_any(&self, reqs: &[AnyRequest]) -> RawCompletion {
        let ids: Vec<ReqId> = reqs.iter().map(any_id).collect();
        let mut done = self.wait_ids(ids, WaitMode::Any);
        debug_assert_eq!(done.len(), 1);
        raw(done.pop().unwrap())
    }

    /// Blocks until at least one request completes; returns all that did
    /// (`MPI_Waitsome`).
    pub fn wait_some(&self, reqs: &[AnyRequest]) -> Vec<RawCompletion> {
        let ids: Vec<ReqId> = reqs.iter().map(any_id).collect();
        let mut done = self.wait_ids(ids, WaitMode::Some);
        done.sort_by_key(|c| c.index);
        done.into_iter().map(raw).collect()
    }

    /// Non-blocking poll of a request set (`MPI_Test`/`MPI_Testany`):
    /// returns whatever is complete right now, possibly nothing.
    pub fn test(&self, reqs: &[AnyRequest]) -> Vec<RawCompletion> {
        let ids: Vec<ReqId> = reqs.iter().map(any_id).collect();
        let mut done = self.wait_ids(ids, WaitMode::Poll);
        done.sort_by_key(|c| c.index);
        done.into_iter().map(raw).collect()
    }

    /// Blocking standard-mode send (`MPI_Send`).
    pub fn send<T: Datatype>(&self, buf: &[T], dst: usize, tag: i32, comm: &Comm) {
        let r = self.isend(buf, dst, tag, comm);
        self.wait_send(r);
    }

    /// Blocking receive into a caller buffer (`MPI_Recv`); returns the
    /// status. Elements beyond the message length are left untouched.
    /// Decodes the payload directly into `buf` (no intermediate vector) —
    /// this is the hot path of every collective.
    pub fn recv<T: Datatype>(&self, buf: &mut [T], src: i32, tag: i32, comm: &Comm) -> Status {
        let r = self.irecv::<T>(src, tag, buf.len(), comm);
        self.wait_recv_into(r, buf, comm)
    }

    /// Waits for a receive, decoding the payload directly into `buf`
    /// (`MPI_Wait` + unpack, allocation-free on the receive side).
    pub fn wait_recv_into<T: Datatype>(
        &self,
        req: RecvRequest<T>,
        buf: &mut [T],
        comm: &Comm,
    ) -> Status {
        let mut done = self.wait_ids(vec![req.id], WaitMode::All);
        debug_assert_eq!(done.len(), 1);
        let c = done.pop().unwrap();
        let status = Status {
            source: comm
                .local_rank(c.source)
                .expect("message source is in the communicator"),
            tag: c.tag,
            bytes: c.bytes,
        };
        let bytes = c.data.expect("receive completion carries data");
        let n = bytes.len() / T::SIZE;
        from_bytes(&bytes, &mut buf[..n]);
        status
    }

    /// Blocking receive returning an owned vector.
    pub fn recv_vec<T: Datatype>(
        &self,
        src: i32,
        tag: i32,
        max_len: usize,
        comm: &Comm,
    ) -> (Vec<T>, Status) {
        let r = self.irecv::<T>(src, tag, max_len, comm);
        self.wait_recv(r, comm)
    }

    /// Combined send+receive (`MPI_Sendrecv`): both progress concurrently,
    /// which is what makes exchange patterns deadlock-free.
    #[allow(clippy::too_many_arguments)] // mirrors MPI_Sendrecv
    pub fn sendrecv<T: Datatype>(
        &self,
        send_buf: &[T],
        dst: usize,
        send_tag: i32,
        recv_buf: &mut [T],
        src: i32,
        recv_tag: i32,
        comm: &Comm,
    ) -> Status {
        let rr = self.irecv::<T>(src, recv_tag, recv_buf.len(), comm);
        let sr = self.isend(send_buf, dst, send_tag, comm);
        let status = self.wait_recv_into(rr, recv_buf, comm);
        self.wait_send(sr);
        status
    }

    // ----- sized (data-less) messages --------------------------------------

    /// Nonblocking *data-less* send of `bytes` (§3.2 technique #2): when a
    /// computation was bypassed, the arrays it would have produced are never
    /// referenced, so only the message size needs to travel. The receiver
    /// must use [`recv_sized`](Self::recv_sized)/[`irecv_sized`](Self::irecv_sized).
    pub fn isend_sized(&self, bytes: u64, dst: usize, tag: i32, comm: &Comm) -> SendRequest {
        let dst_world = comm.world_rank(dst);
        match self.call(Simcall::IsendSized {
            dst: dst_world,
            cid: comm.cid(),
            tag,
            bytes,
        }) {
            SimResp::Req(id) => SendRequest(id),
            other => unreachable!("bad response {other:?}"),
        }
    }

    /// Blocking data-less send.
    pub fn send_sized(&self, bytes: u64, dst: usize, tag: i32, comm: &Comm) {
        let r = self.isend_sized(bytes, dst, tag, comm);
        self.wait_send(r);
    }

    /// Nonblocking receive matching a data-less send of up to `max_bytes`.
    pub fn irecv_sized(&self, src: i32, tag: i32, max_bytes: u64, comm: &Comm) -> SizedRecvRequest {
        let src_world = if src == ANY_SOURCE {
            ANY_SOURCE
        } else {
            comm.world_rank(src as usize) as i32
        };
        match self.call(Simcall::Irecv {
            src: src_world,
            cid: comm.cid(),
            tag,
            max_bytes,
        }) {
            SimResp::Req(id) => SizedRecvRequest(id),
            other => unreachable!("bad response {other:?}"),
        }
    }

    /// Waits for a data-less receive; only the status is produced.
    pub fn wait_recv_sized(&self, req: SizedRecvRequest, comm: &Comm) -> Status {
        let mut done = self.wait_ids(vec![req.0], WaitMode::All);
        debug_assert_eq!(done.len(), 1);
        let c = done.pop().unwrap();
        Status {
            source: comm
                .local_rank(c.source)
                .expect("message source is in the communicator"),
            tag: c.tag,
            bytes: c.bytes,
        }
    }

    /// Blocking data-less receive.
    pub fn recv_sized(&self, src: i32, tag: i32, max_bytes: u64, comm: &Comm) -> Status {
        let r = self.irecv_sized(src, tag, max_bytes, comm);
        self.wait_recv_sized(r, comm)
    }

    /// Combined data-less exchange (the sized `MPI_Sendrecv`).
    #[allow(clippy::too_many_arguments)] // mirrors MPI_Sendrecv
    pub fn sendrecv_sized(
        &self,
        send_bytes: u64,
        dst: usize,
        send_tag: i32,
        recv_max: u64,
        src: i32,
        recv_tag: i32,
        comm: &Comm,
    ) -> Status {
        let rr = self.irecv_sized(src, recv_tag, recv_max, comm);
        let sr = self.isend_sized(send_bytes, dst, send_tag, comm);
        let status = self.wait_recv_sized(rr, comm);
        self.wait_send(sr);
        status
    }

    // ----- raw replay interface --------------------------------------------
    //
    // The `smpi-replay` scheduler re-issues captured time-independent ops
    // without any application data or communicator bookkeeping: context ids
    // and *world* ranks come straight from the trace, payloads never exist
    // (data-less messages), and requests are identified positionally by the
    // caller. These entry points deliberately bypass the typed API above.

    /// Replays a captured send post: data-less, addressed by world rank and
    /// raw context id. Returns the raw request id (replay tracks requests
    /// positionally, not through the typed wrappers).
    pub fn replay_send(&self, dst_world: u32, cid: u32, tag: i32, bytes: u64) -> ReqId {
        match self.call(Simcall::IsendSized {
            dst: dst_world,
            cid,
            tag,
            bytes,
        }) {
            SimResp::Req(id) => id,
            other => unreachable!("bad response {other:?}"),
        }
    }

    /// Replays a captured receive post ([`ANY_SOURCE`]/`ANY_TAG` wildcards
    /// pass through unchanged).
    pub fn replay_recv(&self, src_world: i32, cid: u32, tag: i32, max_bytes: u64) -> ReqId {
        match self.call(Simcall::Irecv {
            src: src_world,
            cid,
            tag,
            max_bytes,
        }) {
            SimResp::Req(id) => id,
            other => unreachable!("bad response {other:?}"),
        }
    }

    /// Replays a captured wait over raw request ids; returns the raw
    /// completions (unsorted, as delivered by the maestro).
    pub fn replay_wait(&self, reqs: Vec<ReqId>, mode: WaitMode) -> Vec<Completion> {
        self.wait_ids(reqs, mode)
    }

    /// Replays a captured region annotation. Gated on metrics being enabled,
    /// like the collectives' own region guards.
    pub fn replay_region(&self, name: &'static str, enter: bool) {
        if self.shared.config.obs {
            match self.call(Simcall::Region { name, enter }) {
                SimResp::Unit => {}
                other => unreachable!("bad response {other:?}"),
            }
        }
    }

    // ----- persistent requests -------------------------------------------

    /// `MPI_Send_init`: captures the envelope and a snapshot of the payload.
    pub fn send_init<T: Datatype>(
        &self,
        buf: &[T],
        dst: usize,
        tag: i32,
        comm: &Comm,
    ) -> PersistentSend {
        PersistentSend {
            dst,
            tag,
            comm: comm.clone(),
            payload: to_bytes(buf),
        }
    }

    /// `MPI_Recv_init`.
    pub fn recv_init<T: Datatype>(
        &self,
        src: i32,
        tag: i32,
        max_len: usize,
        comm: &Comm,
    ) -> PersistentRecv<T> {
        PersistentRecv {
            src,
            tag,
            comm: comm.clone(),
            max_len,
            _t: PhantomData,
        }
    }

    /// `MPI_Start` on a persistent send.
    pub fn start_send(&self, p: &PersistentSend) -> SendRequest {
        let dst_world = p.comm.world_rank(p.dst);
        match self.call(Simcall::Isend {
            dst: dst_world,
            cid: p.comm.cid(),
            tag: p.tag,
            payload: p.payload.clone().into_boxed_slice(),
        }) {
            SimResp::Req(id) => SendRequest(id),
            other => unreachable!("bad response {other:?}"),
        }
    }

    /// `MPI_Start` on a persistent receive.
    pub fn start_recv<T: Datatype>(&self, p: &PersistentRecv<T>) -> RecvRequest<T> {
        self.irecv::<T>(p.src, p.tag, p.max_len, &p.comm)
    }

    // ----- communicator management ----------------------------------------

    /// Creates a communicator over a sub-group (`MPI_Comm_create`). Must be
    /// called by every member of `group` (callers outside the group get a
    /// communicator they must not use, mirroring `MPI_COMM_NULL`).
    pub fn comm_create(&self, parent: &Comm, group: &Group) -> Comm {
        let _ = parent;
        let key = group.members().to_vec();
        let seq = {
            let mut seqs = self.comm_seq.borrow_mut();
            let c = seqs.entry(key).or_insert(0);
            let s = *c;
            *c += 1;
            s
        };
        let cid = self.shared.registry.cid_for(group, seq);
        Comm::from_parts(cid, group.clone())
    }

    /// Duplicates a communicator with a fresh context (`MPI_Comm_dup`).
    pub fn comm_dup(&self, comm: &Comm) -> Comm {
        self.comm_create(comm, comm.group())
    }
}

/// Scope guard for a collective's observability region; exits the region
/// on drop (including early returns inside the collective).
pub(crate) struct CollRegion<'a, 'h> {
    ctx: &'a Ctx<'h>,
    name: &'static str,
    on: bool,
}

impl Drop for CollRegion<'_, '_> {
    fn drop(&mut self) {
        if self.on {
            let _ = self.ctx.call(Simcall::Region {
                name: self.name,
                enter: false,
            });
        }
    }
}

fn any_id(r: &AnyRequest) -> ReqId {
    match r {
        AnyRequest::Send(id) | AnyRequest::Recv(id) => *id,
    }
}

fn raw(c: Completion) -> RawCompletion {
    RawCompletion {
        index: c.index,
        source_world: c.source,
        tag: c.tag,
        bytes: c.bytes,
        data: c.data,
    }
}

fn completion_to_typed<T: Datatype>(c: Completion, comm: &Comm) -> (Vec<T>, Status) {
    let bytes = c.data.expect("receive completion carries data");
    assert_eq!(
        bytes.len() % T::SIZE,
        0,
        "message is not a whole number of {} elements",
        T::NAME
    );
    let out: Vec<T> = bytes.chunks_exact(T::SIZE).map(T::from_bytes).collect();
    let status = Status {
        source: comm
            .local_rank(c.source)
            .expect("message source is in the communicator"),
        tag: c.tag,
        bytes: c.bytes,
    };
    (out, status)
}
