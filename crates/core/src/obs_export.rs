//! Exporting a run's observability data: Paje traces, JSON dumps and
//! critical-path analysis.
//!
//! [`crate::world::RunReport`] carries the raw material (event trace,
//! metrics snapshot, self-profile); this module turns it into artifacts:
//!
//! * [`RunReport::paje`] — a Paje trace (the format SimGrid's own tracing
//!   subsystem emits) with one container per rank carrying its state
//!   timeline, one container per network link carrying its utilization
//!   variable, and an arrow per wire transfer — routed hop by hop through
//!   the link containers of its route when contention attribution is
//!   available;
//! * [`RunReport::to_json`] — a single JSON object with the timings,
//!   trace statistics, metrics, contention attribution, self-profile and
//!   (when enabled) the run's time series; [`RunReport::write_json`] is
//!   the streaming variant that writes the same bytes section by section
//!   to any [`std::io::Write`] sink without building the whole report in
//!   memory first;
//! * [`RunReport::chrome_trace`] — a Chrome Trace Event Format export
//!   (load in `chrome://tracing` or Perfetto): one complete ("X") event
//!   per rank-state interval from the metrics timelines, plus counter
//!   ("C") tracks sampled from the time series;
//!   [`RunReport::write_chrome_trace`] streams the same bytes to any
//!   sink, so large runs never materialize the export in memory;
//! * [`RunReport::critical_path`] — the longest dependency chain through
//!   the trace, attributing each segment to a rank or — when contention
//!   attribution names a bottleneck — to a specific network link.

use std::collections::{HashMap, VecDeque};
use std::io;

use smpi_obs::json::{num, JsonBuf};
use smpi_obs::paje::PajeWriter;
use smpi_obs::FlowRecord;

use crate::trace::{self, TraceKind};
use crate::world::RunReport;

/// Fixed palette for rank-state entity values (cycled when states outnumber
/// entries); indices are assigned in order of first appearance.
const PALETTE: &[&str] = &[
    "0.2 0.6 0.2", // running: green
    "0.9 0.5 0.1", // computing: orange
    "0.8 0.1 0.1", // blocked_in_recv: red
    "0.6 0.1 0.6", // blocked_in_send: purple
    "0.3 0.3 0.9", // collectives: blue
    "0.5 0.5 0.5", // sleeping / finished: grey
    "0.1 0.7 0.7",
    "0.7 0.7 0.1",
];

/// One timed line of the Paje body, buffered so events from different
/// sources (timelines, gauges, trace arrows) can be merged in time order.
enum PajeEvent {
    SetState(u32, &'static str),
    PushState(u32, &'static str),
    PopState(u32),
    SetVariable(String, f64),
    /// Arrow endpoints carry the endpoint container's alias (a rank or a
    /// link container, once arrows are routed through their links).
    StartLink(String, u64),
    EndLink(String, u64),
}

/// Parses a link index out of a `surf.link.{ix}.util` gauge key.
fn link_util_index(key: &str) -> Option<usize> {
    key.strip_prefix("surf.link.")?
        .strip_suffix(".util")?
        .parse()
        .ok()
}

/// FIFO queues of a run's flow records per (src, dst) rank pair. Flow
/// records are appended in delivery order, so pairing them FIFO against the
/// trace's `Delivered` events per pair reunites each record with its trace
/// event (the wire preserves per-pair ordering).
fn flow_queues(flows: &[FlowRecord]) -> HashMap<(u32, u32), VecDeque<&FlowRecord>> {
    let mut q: HashMap<(u32, u32), VecDeque<&FlowRecord>> = HashMap::new();
    for f in flows {
        q.entry((f.src, f.dst)).or_default().push_back(f);
    }
    q
}

impl<R> RunReport<R> {
    /// Renders the run as a Paje trace. Rank state timelines come from the
    /// metrics snapshot (needs [`crate::world::World::metrics`]); message
    /// arrows come from the event trace (needs
    /// [`crate::world::World::tracing`]). Either half may be absent; the
    /// header and rank containers are always emitted.
    pub fn paje(&self) -> String {
        let mut w = PajeWriter::new();
        let nranks = self.finish_times.len();
        let end = self.sim_time;

        w.define_container_type("CT_sim", "0", "Simulation");
        w.define_container_type("CT_rank", "CT_sim", "MPIRank");
        w.define_container_type("CT_link", "CT_sim", "NetworkLink");
        w.define_state_type("ST_rank", "CT_rank", "rank state");
        w.define_variable_type("VT_util", "CT_link", "utilization");
        w.define_link_type("LT_msg", "CT_sim", "CT_rank", "CT_rank", "message");

        // Entity values for every distinct rank state, first-seen order.
        let mut states: Vec<&'static str> = Vec::new();
        if let Some(m) = &self.metrics {
            for tl in m.timelines_of("rank") {
                for ev in &tl.events {
                    let s = match ev.op {
                        smpi_obs::StateOp::Push(s) | smpi_obs::StateOp::Set(s) => s,
                        smpi_obs::StateOp::Pop => continue,
                    };
                    if !states.contains(&s) {
                        states.push(s);
                    }
                }
            }
        }
        for (i, s) in states.iter().enumerate() {
            w.define_entity_value(s, "ST_rank", s, PALETTE[i % PALETTE.len()]);
        }

        w.create_container(0.0, "sim", "CT_sim", "0", "simulation");
        for r in 0..nranks {
            w.create_container(
                0.0,
                &format!("rank{r}"),
                "CT_rank",
                "sim",
                &format!("rank {r}"),
            );
        }
        let mut links: Vec<usize> = self
            .metrics
            .iter()
            .flat_map(|m| m.gauges.iter())
            .filter_map(|(k, _)| link_util_index(k))
            .collect();
        // Arrows are routed through every link a flow crossed; each such
        // link needs a container even without a utilization gauge (e.g. the
        // packet backend's channels).
        if let Some(c) = &self.contention {
            links.extend(
                c.flows
                    .iter()
                    .flat_map(|f| f.attr.route.iter().map(|&l| l as usize)),
            );
        }
        links.sort_unstable();
        links.dedup();
        for &l in &links {
            let name = match &self.contention {
                Some(c) => c.link_name(l as u32),
                None => format!("link {l}"),
            };
            w.create_container(0.0, &format!("link{l}"), "CT_link", "sim", &name);
        }

        // Merge every timed event source, then emit in time order. The
        // sequence number keeps the sort stable across equal timestamps.
        let mut body: Vec<(f64, usize, PajeEvent)> = Vec::new();
        let mut seq = 0usize;
        let mut push = |body: &mut Vec<(f64, usize, PajeEvent)>, t: f64, ev: PajeEvent| {
            body.push((t, seq, ev));
            seq += 1;
        };

        if let Some(m) = &self.metrics {
            for tl in m.timelines_of("rank") {
                for ev in &tl.events {
                    let pe = match ev.op {
                        smpi_obs::StateOp::Set(s) => PajeEvent::SetState(tl.id, s),
                        smpi_obs::StateOp::Push(s) => PajeEvent::PushState(tl.id, s),
                        smpi_obs::StateOp::Pop => PajeEvent::PopState(tl.id),
                    };
                    push(&mut body, ev.time, pe);
                }
            }
            for (key, series) in &m.gauges {
                if let Some(l) = link_util_index(key) {
                    for &(t, v) in series {
                        push(&mut body, t, PajeEvent::SetVariable(format!("link{l}"), v));
                    }
                }
            }
        }

        // Message arrows, paired FIFO per (src, dst) — the wire preserves
        // per-pair ordering. With contention attribution each arrow is
        // routed hop by hop through its route's link containers (the
        // transfer window split evenly across the hops); without it, one
        // rank-to-rank arrow per transfer.
        let mut flow_q = self
            .contention
            .as_ref()
            .map(|c| flow_queues(&c.flows))
            .unwrap_or_default();
        let mut in_flight: HashMap<(u32, u32), VecDeque<f64>> = HashMap::new();
        let mut next_key = 0u64;
        for e in &self.trace {
            match e.kind {
                TraceKind::TransferStarted { src, dst, .. } => {
                    in_flight.entry((src, dst)).or_default().push_back(e.time);
                }
                // Self-messages never hit the wire: no arrow.
                TraceKind::Delivered { src, dst, .. } if src != dst => {
                    let Some(start) = in_flight.entry((src, dst)).or_default().pop_front() else {
                        continue;
                    };
                    let route: Vec<u32> = flow_q
                        .get_mut(&(src, dst))
                        .and_then(|q| q.pop_front())
                        .map(|f| f.attr.route.clone())
                        .unwrap_or_default();
                    let mut stops = Vec::with_capacity(route.len() + 2);
                    stops.push(format!("rank{src}"));
                    stops.extend(route.iter().map(|l| format!("link{l}")));
                    stops.push(format!("rank{dst}"));
                    let dt = (e.time - start) / (stops.len() - 1) as f64;
                    for (hop, pair) in stops.windows(2).enumerate() {
                        let key = next_key;
                        next_key += 1;
                        let t0 = start + dt * hop as f64;
                        // The last hop lands exactly on the delivery time.
                        let t1 = if hop + 2 == stops.len() {
                            e.time
                        } else {
                            start + dt * (hop + 1) as f64
                        };
                        push(&mut body, t0, PajeEvent::StartLink(pair[0].clone(), key));
                        push(&mut body, t1, PajeEvent::EndLink(pair[1].clone(), key));
                    }
                }
                _ => {}
            }
        }

        body.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        for (t, _, ev) in body {
            match ev {
                PajeEvent::SetState(r, s) => w.set_state(t, "ST_rank", &format!("rank{r}"), s),
                PajeEvent::PushState(r, s) => w.push_state(t, "ST_rank", &format!("rank{r}"), s),
                PajeEvent::PopState(r) => w.pop_state(t, "ST_rank", &format!("rank{r}")),
                PajeEvent::SetVariable(c, v) => w.set_variable(t, "VT_util", &c, v),
                PajeEvent::StartLink(c, k) => w.start_link(t, "LT_msg", "sim", "msg", &c, k),
                PajeEvent::EndLink(c, k) => w.end_link(t, "LT_msg", "sim", "msg", &c, k),
            }
        }

        for &l in &links {
            w.destroy_container(end, "CT_link", &format!("link{l}"));
        }
        for r in 0..nranks {
            w.destroy_container(end, "CT_rank", &format!("rank{r}"));
        }
        w.destroy_container(end, "CT_sim", "sim");
        w.into_string()
    }

    /// Serializes the whole report (timings, trace statistics, metrics,
    /// self-profile, and the time series when enabled) as one JSON object.
    /// Rank results are not included — they are application data of
    /// arbitrary type. Delegates to [`write_json`](Self::write_json), so
    /// the two produce identical bytes by construction.
    pub fn to_json(&self) -> String {
        let mut buf = Vec::new();
        self.write_json(&mut buf)
            .expect("in-memory JSON write cannot fail");
        String::from_utf8(buf).expect("JSON output is UTF-8")
    }

    /// Streams the report JSON to `out` section by section: each top-level
    /// section (trace stats, metrics, contention, profile, time series) is
    /// rendered and written independently, so the peak allocation is one
    /// section rather than the whole report. The bytes are identical to
    /// [`to_json`](Self::to_json).
    ///
    /// The `timeseries` key is present only when the run collected one,
    /// keeping reports from telemetry-free runs byte-identical to earlier
    /// versions of this format.
    pub fn write_json<W: io::Write>(&self, out: &mut W) -> io::Result<()> {
        write!(out, "{{\"sim_time\":{}", num(self.sim_time))?;
        write!(out, ",\"wall_seconds\":{}", num(self.wall.as_secs_f64()))?;
        {
            let mut j = JsonBuf::new();
            j.begin_arr();
            for &t in &self.finish_times {
                j.num_val(t);
            }
            j.end_arr();
            write!(out, ",\"finish_times\":{}", j.finish())?;
        }
        {
            let stats = trace::stats(&self.trace);
            let mut j = JsonBuf::new();
            j.begin_obj();
            j.key("sends").uint_val(stats.sends as u64);
            j.key("eager_sends").uint_val(stats.eager_sends as u64);
            j.key("recvs").uint_val(stats.recvs as u64);
            j.key("transfers").uint_val(stats.transfers as u64);
            j.key("wire_bytes").uint_val(stats.wire_bytes);
            j.key("delivered").uint_val(stats.delivered as u64);
            j.key("bytes_delivered").uint_val(stats.bytes_delivered);
            j.key("execs").uint_val(stats.execs as u64);
            j.key("flops").num_val(stats.flops);
            j.key("finished").uint_val(stats.finished as u64);
            j.end_obj();
            write!(out, ",\"trace_stats\":{}", j.finish())?;
        }
        match &self.metrics {
            Some(m) => write!(out, ",\"metrics\":{}", m.to_json())?,
            None => out.write_all(b",\"metrics\":null")?,
        }
        match &self.contention {
            Some(c) => write!(out, ",\"contention\":{}", c.to_json())?,
            None => out.write_all(b",\"contention\":null")?,
        }
        write!(out, ",\"profile\":{}", self.profile.to_json())?;
        if let Some(ts) = &self.timeseries {
            write!(out, ",\"timeseries\":{}", ts.to_json())?;
        }
        out.write_all(b"}")
    }

    /// Renders the run as a Chrome Trace Event Format JSON object (open in
    /// `chrome://tracing` or <https://ui.perfetto.dev>). Rank-state
    /// intervals from the metrics timelines (needs
    /// [`crate::world::World::metrics`]) become complete (`"X"`) events on
    /// one thread row per rank; time-series buckets (needs
    /// [`crate::world::World::timeseries`]) become counter (`"C"`) tracks
    /// for simcall/woken activity, network utilization and memory
    /// high-water mark. Timestamps are simulated microseconds. Either half
    /// may be absent; the metadata header is always emitted.
    pub fn chrome_trace(&self) -> String {
        let mut buf = Vec::new();
        self.write_chrome_trace(&mut buf)
            .expect("in-memory chrome-trace write cannot fail");
        String::from_utf8(buf).expect("chrome trace is UTF-8")
    }

    /// Streaming variant of [`RunReport::chrome_trace`]: writes the same
    /// bytes event by event to any [`io::Write`] sink. A long run's
    /// counter tracks (three events per time-series bucket) never have to
    /// be materialized as one giant string — mirror of
    /// [`RunReport::write_json`].
    pub fn write_chrome_trace<W: io::Write>(&self, out: &mut W) -> io::Result<()> {
        use smpi_obs::json::escape;
        let us = |t: f64| t * 1e6;
        write!(out, "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")?;
        // Metadata: name the process and one thread per rank.
        write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\
             \"args\":{{\"name\":\"smpi simulation\"}}}}"
        )?;
        for r in 0..self.finish_times.len() {
            write!(
                out,
                ",{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{r},\
                 \"args\":{{\"name\":\"rank {r}\"}}}}"
            )?;
        }
        // Rank-state intervals: walk each rank's push/pop/set stack; every
        // closed (or end-of-run truncated) state becomes an "X" event.
        if let Some(m) = &self.metrics {
            let emit = |out: &mut W, rank: u32, state: &str, t0: f64, t1: f64| {
                write!(
                    out,
                    ",{{\"name\":\"{}\",\"cat\":\"rank\",\"ph\":\"X\",\"ts\":{},\
                     \"dur\":{},\"pid\":0,\"tid\":{rank}}}",
                    escape(state),
                    num(us(t0)),
                    num(us(t1 - t0)),
                )
            };
            for tl in m.timelines_of("rank") {
                let mut stack: Vec<(&str, f64)> = Vec::new();
                for ev in &tl.events {
                    match ev.op {
                        smpi_obs::StateOp::Push(s) => stack.push((s, ev.time)),
                        smpi_obs::StateOp::Pop => {
                            if let Some((s, t0)) = stack.pop() {
                                emit(out, tl.id, s, t0, ev.time)?;
                            }
                        }
                        smpi_obs::StateOp::Set(s) => {
                            if let Some((prev, t0)) = stack.pop() {
                                emit(out, tl.id, prev, t0, ev.time)?;
                            }
                            stack.push((s, ev.time));
                        }
                    }
                }
                // States still open at the end of the run.
                while let Some((s, t0)) = stack.pop() {
                    emit(out, tl.id, s, t0, self.sim_time)?;
                }
            }
        }
        // Counter tracks from the time-series buckets.
        if let Some(ts) = &self.timeseries {
            let mut t = 0.0;
            for s in &ts.samples {
                let counter = |out: &mut W, name: &str, args: &[(&str, f64)]| {
                    write!(
                        out,
                        ",{{\"name\":\"{name}\",\"ph\":\"C\",\"ts\":{},\"pid\":0,\"args\":{{",
                        num(us(t))
                    )?;
                    for (i, &(k, v)) in args.iter().enumerate() {
                        if i > 0 {
                            write!(out, ",")?;
                        }
                        write!(out, "\"{k}\":{}", num(v))?;
                    }
                    write!(out, "}}}}")
                };
                counter(
                    out,
                    "activity",
                    &[("simcalls", s.simcalls as f64), ("woken", s.woken as f64)],
                )?;
                counter(
                    out,
                    "network",
                    &[
                        ("active_max", s.active_max as f64),
                        ("util_max", s.util_max),
                    ],
                )?;
                counter(out, "memory", &[("mem_hwm", s.mem_hwm as f64)])?;
                t += ts.interval;
            }
        }
        write!(out, "]}}")
    }

    /// Longest dependency chain through the event trace (`None` when
    /// tracing was off or the trace is empty). Local program order chains
    /// events of the same rank; a delivery additionally depends on its
    /// wire-transfer start on the sender. Each segment of the winning
    /// chain is attributed to the rank that was waiting through it; a
    /// cross-rank message edge goes to `link:<name>` — the dominant
    /// bottleneck of that flow's contention attribution — when available,
    /// and to the anonymous `network` bucket otherwise.
    pub fn critical_path(&self) -> Option<CriticalPath> {
        if self.trace.is_empty() {
            return None;
        }
        let rank_of = |k: &TraceKind| -> u32 {
            match *k {
                TraceKind::SendPosted { src, .. } => src,
                TraceKind::RecvPosted { dst, .. } => dst,
                TraceKind::TransferStarted { src, .. } => src,
                TraceKind::Delivered { dst, .. } => dst,
                TraceKind::ExecStarted { rank, .. } => rank,
                TraceKind::RankFinished { rank } => rank,
            }
        };

        // Predecessors: last event of the same rank, plus (for deliveries)
        // the matching transfer start, FIFO per (src, dst). Deliveries are
        // also FIFO-paired with the run's flow records so a message edge on
        // the winning chain can name the link that bottlenecked it.
        let n = self.trace.len();
        let mut pred: Vec<Option<(usize, bool)>> = vec![None; n]; // (index, is_message_edge)
        let mut last_of_rank: HashMap<u32, usize> = HashMap::new();
        let mut transfers: HashMap<(u32, u32), Vec<usize>> = HashMap::new();
        let mut flow_q = self
            .contention
            .as_ref()
            .map(|c| flow_queues(&c.flows))
            .unwrap_or_default();
        let mut deliv_flow: HashMap<usize, &FlowRecord> = HashMap::new();
        for (i, e) in self.trace.iter().enumerate() {
            let r = rank_of(&e.kind);
            let mut best: Option<(usize, bool)> = last_of_rank.get(&r).map(|&p| (p, false));
            match e.kind {
                TraceKind::TransferStarted { src, dst, .. } => {
                    transfers.entry((src, dst)).or_default().push(i);
                }
                TraceKind::Delivered { src, dst, .. } if src != dst => {
                    if let Some(f) = flow_q.get_mut(&(src, dst)).and_then(|q| q.pop_front()) {
                        deliv_flow.insert(i, f);
                    }
                    if let Some(q) = transfers.get_mut(&(src, dst)) {
                        if !q.is_empty() {
                            let sender = q.remove(0);
                            // The binding dependency is the later of the two.
                            let take = match best {
                                Some((p, _)) => self.trace[sender].time >= self.trace[p].time,
                                None => true,
                            };
                            if take {
                                best = Some((sender, true));
                            }
                        }
                    }
                }
                _ => {}
            }
            pred[i] = best;
            last_of_rank.insert(r, i);
        }

        // Walk back from the last event (ties broken by trace order).
        let mut cur = (0..n).max_by(|&a, &b| {
            self.trace[a]
                .time
                .total_cmp(&self.trace[b].time)
                .then(a.cmp(&b))
        })?;
        let total = self.trace[cur].time;
        let mut acc: HashMap<String, f64> = HashMap::new();
        let mut steps = 0usize;
        let mut message_hops = 0usize;
        while let Some((p, is_msg)) = pred[cur] {
            let dt = self.trace[cur].time - self.trace[p].time;
            let who = if is_msg {
                message_hops += 1;
                match (
                    &self.contention,
                    deliv_flow
                        .get(&cur)
                        .and_then(|f| f.attr.dominant_bottleneck()),
                ) {
                    (Some(c), Some(l)) => format!("link:{}", c.link_name(l)),
                    _ => "network".to_string(),
                }
            } else {
                format!("rank{}", rank_of(&self.trace[cur].kind))
            };
            *acc.entry(who).or_default() += dt;
            steps += 1;
            cur = p;
        }
        let mut segments: Vec<(String, f64)> = acc.into_iter().collect();
        segments.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        Some(CriticalPath {
            total,
            segments,
            steps,
            message_hops,
        })
    }
}

impl<R> smpi_obs::Deterministic for RunReport<R> {
    /// Strips every host-dependent field of the report tree: the
    /// wall-clock duration, the self-profile's timing half and the time
    /// series' solver timings. Two reports of identical simulated runs
    /// compare — and serialize — byte-identically afterwards.
    fn strip_nondeterminism(&mut self) {
        self.wall = std::time::Duration::ZERO;
        self.profile.strip_nondeterminism();
        self.timeseries.strip_nondeterminism();
    }
}

/// The longest dependency chain through a traced run.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    /// Simulated time at the chain's last event (= trace makespan).
    pub total: f64,
    /// Seconds of the chain attributed per participant (`rank{r}`,
    /// `link:<name>` for message edges with a known bottleneck, or
    /// `"network"` for anonymous ones), largest first.
    pub segments: Vec<(String, f64)>,
    /// Number of edges on the chain.
    pub steps: usize,
    /// How many of those edges are cross-rank message deliveries.
    pub message_hops: usize,
}

impl CriticalPath {
    /// Human-readable multi-line summary.
    pub fn render(&self) -> String {
        let mut out = format!(
            "critical path: {:.6} s over {} steps ({} message hops)\n",
            self.total, self.steps, self.message_hops
        );
        for (who, secs) in &self.segments {
            let pct = if self.total > 0.0 {
                100.0 * secs / self.total
            } else {
                0.0
            };
            out.push_str(&format!("  {who:<10} {:>12.6} s ({pct:>4.1}%)\n", secs));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceEvent;

    #[test]
    fn link_util_keys_parse() {
        assert_eq!(link_util_index("surf.link.3.util"), Some(3));
        assert_eq!(link_util_index("surf.link.12.util"), Some(12));
        assert_eq!(link_util_index("surf.link.3.bytes"), None);
        assert_eq!(link_util_index("packetnet.chan.3.util"), None);
    }

    #[test]
    fn critical_path_attributes_message_edges_to_network() {
        // rank0 computes 0..2, sends; wire 2..5; rank1 finishes at 5.
        let trace = vec![
            TraceEvent {
                time: 0.0,
                kind: TraceKind::ExecStarted {
                    rank: 0,
                    flops: 1e9,
                },
            },
            TraceEvent {
                time: 2.0,
                kind: TraceKind::TransferStarted {
                    src: 0,
                    dst: 1,
                    bytes: 1000,
                },
            },
            TraceEvent {
                time: 5.0,
                kind: TraceKind::Delivered {
                    src: 0,
                    dst: 1,
                    tag: 0,
                    bytes: 1000,
                },
            },
            TraceEvent {
                time: 5.0,
                kind: TraceKind::RankFinished { rank: 1 },
            },
        ];
        let report = RunReport::<()> {
            sim_time: 5.0,
            wall: std::time::Duration::from_millis(1),
            finish_times: vec![2.0, 5.0],
            results: vec![],
            memory: Default::default(),
            metrics: None,
            profile: Default::default(),
            trace,
            ti_trace: None,
            contention: None,
            timeseries: None,
        };
        let cp = report.critical_path().unwrap();
        assert_eq!(cp.total, 5.0);
        assert_eq!(cp.message_hops, 1);
        // network carries the 3 s wire edge, rank0 the 2 s compute edge.
        let get = |who: &str| {
            cp.segments
                .iter()
                .find(|(w, _)| w == who)
                .map(|(_, s)| *s)
                .unwrap_or(0.0)
        };
        assert!((get("network") - 3.0).abs() < 1e-12);
        assert!((get("rank0") - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_has_no_critical_path() {
        let report = RunReport::<()> {
            sim_time: 0.0,
            wall: std::time::Duration::ZERO,
            finish_times: vec![],
            results: vec![],
            memory: Default::default(),
            metrics: None,
            profile: Default::default(),
            trace: vec![],
            ti_trace: None,
            contention: None,
            timeseries: None,
        };
        assert!(report.critical_path().is_none());
        // The JSON export still works without metrics or trace.
        let json = report.to_json();
        assert!(json.contains("\"metrics\":null"));
        assert!(json.contains("\"contention\":null"));
        assert!(json.contains("\"trace_stats\":"));
    }

    #[test]
    fn write_json_streams_the_same_bytes_and_splices_timeseries() {
        use smpi_obs::{TimeSeries, TsInstant};
        let mut ts = TimeSeries::new(4);
        ts.record(
            TsInstant {
                t: 1e-6,
                active: 1,
                woken: 1,
                simcalls: 3,
                tokens: 3,
                solver_ns: 0.0,
                mem_hwm: 0,
            },
            &[0.5],
        );
        let mut report = RunReport::<()> {
            sim_time: 1e-6,
            wall: std::time::Duration::from_millis(1),
            finish_times: vec![1e-6],
            results: vec![],
            memory: Default::default(),
            metrics: None,
            profile: Default::default(),
            trace: vec![],
            ti_trace: None,
            contention: None,
            timeseries: Some(ts),
        };
        let mut buf = Vec::new();
        report.write_json(&mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), report.to_json());
        assert!(report.to_json().contains("\"timeseries\":{\"budget\":4,"));
        // Telemetry-free reports keep the pre-timeseries byte format.
        report.timeseries = None;
        assert!(!report.to_json().contains("timeseries"));
    }

    #[test]
    fn chrome_trace_has_metadata_and_counter_tracks() {
        use smpi_obs::{TimeSeries, TsInstant};
        let mut ts = TimeSeries::new(4);
        ts.record(
            TsInstant {
                t: 1e-6,
                active: 2,
                woken: 1,
                simcalls: 5,
                tokens: 5,
                solver_ns: 0.0,
                mem_hwm: 128,
            },
            &[0.75],
        );
        let report = RunReport::<()> {
            sim_time: 1e-6,
            wall: std::time::Duration::from_millis(1),
            finish_times: vec![1e-6, 1e-6],
            results: vec![],
            memory: Default::default(),
            metrics: None,
            profile: Default::default(),
            trace: vec![],
            ti_trace: None,
            contention: None,
            timeseries: Some(ts),
        };
        let ct = report.chrome_trace();
        assert!(ct.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(ct.contains("\"name\":\"rank 0\""));
        assert!(ct.contains("\"name\":\"rank 1\""));
        assert!(ct.contains("\"ph\":\"C\""));
        assert!(ct.contains("\"name\":\"activity\""));
        assert!(ct.contains("\"mem_hwm\":128"));
        // The streaming export writes the same bytes, event for event —
        // including the exact counter formatting the builder produced.
        let mut buf = Vec::new();
        report.write_chrome_trace(&mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), ct);
        assert!(ct.contains(
            "{\"name\":\"activity\",\"ph\":\"C\",\"ts\":1,\"pid\":0,\
             \"args\":{\"simcalls\":5,\"woken\":1}}"
        ));
        assert!(ct.ends_with("]}"));
    }

    #[test]
    fn chrome_trace_streams_rank_state_intervals() {
        use smpi_obs::{MetricsReport, StateEvent, StateOp, TimelineSnapshot};
        let mut m = MetricsReport::default();
        m.timelines.push(TimelineSnapshot {
            kind: "rank",
            id: 1,
            events: vec![
                StateEvent {
                    time: 0.0,
                    op: StateOp::Push("compute"),
                },
                StateEvent {
                    time: 2.0,
                    op: StateOp::Set("wait"),
                },
            ],
        });
        let report = RunReport::<()> {
            sim_time: 5.0,
            wall: std::time::Duration::ZERO,
            finish_times: vec![5.0, 5.0],
            results: vec![],
            memory: Default::default(),
            metrics: Some(m),
            profile: Default::default(),
            trace: vec![],
            ti_trace: None,
            contention: None,
            timeseries: None,
        };
        let ct = report.chrome_trace();
        // Closed interval (compute, 0 -> 2 s) and the end-of-run
        // truncated one (wait, 2 -> 5 s), both on tid 1.
        assert!(ct.contains(
            "{\"name\":\"compute\",\"cat\":\"rank\",\"ph\":\"X\",\"ts\":0,\
             \"dur\":2000000,\"pid\":0,\"tid\":1}"
        ));
        assert!(ct.contains(
            "{\"name\":\"wait\",\"cat\":\"rank\",\"ph\":\"X\",\"ts\":2000000,\
             \"dur\":3000000,\"pid\":0,\"tid\":1}"
        ));
        let mut buf = Vec::new();
        report.write_chrome_trace(&mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), ct);
    }

    #[test]
    fn critical_path_names_the_bottleneck_link() {
        use smpi_obs::{ContentionReport, FlowAttribution};
        let trace = vec![
            TraceEvent {
                time: 0.0,
                kind: TraceKind::TransferStarted {
                    src: 0,
                    dst: 1,
                    bytes: 1000,
                },
            },
            TraceEvent {
                time: 4.0,
                kind: TraceKind::Delivered {
                    src: 0,
                    dst: 1,
                    tag: 0,
                    bytes: 1000,
                },
            },
        ];
        let mut attr = FlowAttribution::new(vec![0, 1]);
        attr.share_bytes = 1000.0;
        attr.add_bottleneck(1, 4.0);
        let contention = ContentionReport {
            link_names: vec!["uplink".into(), "spine".into()],
            flows: vec![smpi_obs::FlowRecord {
                src: 0,
                dst: 1,
                bytes: 1000,
                attr,
            }],
        };
        let report = RunReport::<()> {
            sim_time: 4.0,
            wall: std::time::Duration::from_millis(1),
            finish_times: vec![0.0, 4.0],
            results: vec![],
            memory: Default::default(),
            metrics: None,
            profile: Default::default(),
            trace,
            ti_trace: None,
            contention: Some(contention),
            timeseries: None,
        };
        let cp = report.critical_path().unwrap();
        assert_eq!(cp.message_hops, 1);
        assert_eq!(cp.segments[0], ("link:spine".to_string(), 4.0));
        // The Paje export routes the arrow through both link containers:
        // rank0 -> link0 -> link1 -> rank1 is three start/end pairs.
        let paje = report.paje();
        assert_eq!(paje.matches("\n11 ").count(), 3, "got:\n{paje}");
        assert_eq!(paje.matches("\n12 ").count(), 3, "got:\n{paje}");
        assert!(paje.contains("spine"), "got:\n{paje}");
    }
}
