//! Communication tracing.
//!
//! SimGrid ships a Paje-compatible tracing subsystem; simulation is only
//! half the value of a simulator — the other half is *seeing* what the
//! application did. When enabled on the [`crate::world::World`], the
//! runtime records a timestamped event for every protocol transition, and
//! the run report carries the full trace.
//!
//! Events deliberately mirror the off-line simulators' log format described
//! in §2 of the paper ("time-stamp, source, destination, data size"), so a
//! recorded trace could drive a trace-replay tool.

/// One timestamped simulation event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Simulated time of the event, seconds.
    pub time: f64,
    /// What happened.
    pub kind: TraceKind,
}

/// Event payloads.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceKind {
    /// A rank posted a send.
    SendPosted {
        /// Sender world rank.
        src: u32,
        /// Destination world rank.
        dst: u32,
        /// Message tag.
        tag: i32,
        /// Payload size in bytes.
        bytes: u64,
        /// Eager or rendezvous protocol.
        eager: bool,
    },
    /// A rank posted a receive.
    RecvPosted {
        /// Receiver world rank.
        dst: u32,
        /// Requested source (-1 for any).
        src: i32,
        /// Requested tag (-1 for any).
        tag: i32,
    },
    /// A message's wire transfer started.
    TransferStarted {
        /// Sender world rank.
        src: u32,
        /// Destination world rank.
        dst: u32,
        /// Bytes on the wire.
        bytes: u64,
    },
    /// A message fully arrived at its receiver.
    Delivered {
        /// Sender world rank.
        src: u32,
        /// Destination world rank.
        dst: u32,
        /// Message tag.
        tag: i32,
        /// Payload size in bytes.
        bytes: u64,
    },
    /// A rank started a compute burst.
    ExecStarted {
        /// The computing rank.
        rank: u32,
        /// Amount of work.
        flops: f64,
    },
    /// A rank finished (its body returned).
    RankFinished {
        /// The rank.
        rank: u32,
    },
}

/// Renders a trace as aligned text, one event per line.
pub fn render(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 48);
    for e in events {
        out.push_str(&format!("{:>14.9}  ", e.time));
        match &e.kind {
            TraceKind::SendPosted {
                src,
                dst,
                tag,
                bytes,
                eager,
            } => out.push_str(&format!(
                "send-post   {src} -> {dst}  tag={tag} bytes={bytes} ({})",
                if *eager { "eager" } else { "rendezvous" }
            )),
            TraceKind::RecvPosted { dst, src, tag } => {
                out.push_str(&format!("recv-post   {dst} <- {src}  tag={tag}"))
            }
            TraceKind::TransferStarted { src, dst, bytes } => {
                out.push_str(&format!("wire-start  {src} -> {dst}  bytes={bytes}"))
            }
            TraceKind::Delivered {
                src,
                dst,
                tag,
                bytes,
            } => out.push_str(&format!(
                "delivered   {src} -> {dst}  tag={tag} bytes={bytes}"
            )),
            TraceKind::ExecStarted { rank, flops } => {
                out.push_str(&format!("exec        rank {rank}  flops={flops}"))
            }
            TraceKind::RankFinished { rank } => out.push_str(&format!("finished    rank {rank}")),
        }
        out.push('\n');
    }
    out
}

/// Simple aggregate statistics over a trace.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TraceStats {
    /// Number of messages posted.
    pub sends: usize,
    /// Number of sends that used the eager protocol.
    pub eager_sends: usize,
    /// Number of receives posted.
    pub recvs: usize,
    /// Number of wire transfers started.
    pub transfers: usize,
    /// Total bytes put on the wire (post-efficiency volume; differs from
    /// `bytes_delivered` by the profile's `wire_efficiency` and by
    /// self-messages, which never touch the wire).
    pub wire_bytes: u64,
    /// Number of messages delivered.
    pub delivered: usize,
    /// Total payload bytes delivered.
    pub bytes_delivered: u64,
    /// Number of compute bursts.
    pub execs: usize,
    /// Total flops burned.
    pub flops: f64,
    /// Number of ranks that finished.
    pub finished: usize,
}

/// Computes aggregate statistics.
pub fn stats(events: &[TraceEvent]) -> TraceStats {
    let mut s = TraceStats::default();
    for e in events {
        match &e.kind {
            TraceKind::SendPosted { eager, .. } => {
                s.sends += 1;
                if *eager {
                    s.eager_sends += 1;
                }
            }
            TraceKind::RecvPosted { .. } => s.recvs += 1,
            TraceKind::TransferStarted { bytes, .. } => {
                s.transfers += 1;
                s.wire_bytes += bytes;
            }
            TraceKind::Delivered { bytes, .. } => {
                s.delivered += 1;
                s.bytes_delivered += bytes;
            }
            TraceKind::ExecStarted { flops, .. } => {
                s.execs += 1;
                s.flops += flops;
            }
            TraceKind::RankFinished { .. } => s.finished += 1,
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One event of every [`TraceKind`] variant.
    fn sample() -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                time: 0.0,
                kind: TraceKind::SendPosted {
                    src: 0,
                    dst: 1,
                    tag: 5,
                    bytes: 100,
                    eager: true,
                },
            },
            TraceEvent {
                time: 0.0,
                kind: TraceKind::RecvPosted {
                    dst: 1,
                    src: 0,
                    tag: 5,
                },
            },
            TraceEvent {
                time: 1e-5,
                kind: TraceKind::TransferStarted {
                    src: 0,
                    dst: 1,
                    bytes: 104,
                },
            },
            TraceEvent {
                time: 5e-5,
                kind: TraceKind::ExecStarted {
                    rank: 1,
                    flops: 2.5e6,
                },
            },
            TraceEvent {
                time: 1.5e-4,
                kind: TraceKind::Delivered {
                    src: 0,
                    dst: 1,
                    tag: 5,
                    bytes: 100,
                },
            },
            TraceEvent {
                time: 2e-4,
                kind: TraceKind::RankFinished { rank: 1 },
            },
        ]
    }

    #[test]
    fn render_is_line_per_event() {
        let text = render(&sample());
        assert_eq!(text.lines().count(), 6);
        assert!(text.contains("send-post   0 -> 1"));
        assert!(text.contains("eager"));
        assert!(text.contains("wire-start  0 -> 1"));
        assert!(text.contains("exec        rank 1"));
        assert!(text.contains("delivered"));
        assert!(text.contains("finished    rank 1"));
    }

    #[test]
    fn stats_aggregate_every_variant() {
        let s = stats(&sample());
        assert_eq!(s.sends, 1);
        assert_eq!(s.eager_sends, 1);
        assert_eq!(s.recvs, 1);
        assert_eq!(s.transfers, 1);
        assert_eq!(s.wire_bytes, 104);
        assert_eq!(s.delivered, 1);
        assert_eq!(s.bytes_delivered, 100);
        assert_eq!(s.execs, 1);
        assert_eq!(s.flops, 2.5e6);
        assert_eq!(s.finished, 1);
    }

    #[test]
    fn stats_distinguish_rendezvous_sends() {
        let events = vec![
            TraceEvent {
                time: 0.0,
                kind: TraceKind::SendPosted {
                    src: 0,
                    dst: 1,
                    tag: 0,
                    bytes: 1 << 20,
                    eager: false,
                },
            },
            TraceEvent {
                time: 0.0,
                kind: TraceKind::SendPosted {
                    src: 1,
                    dst: 0,
                    tag: 0,
                    bytes: 8,
                    eager: true,
                },
            },
        ];
        let s = stats(&events);
        assert_eq!(s.sends, 2);
        assert_eq!(s.eager_sends, 1);
    }

    #[test]
    fn stats_accumulate_across_events() {
        let mut events = sample();
        events.extend(sample());
        let s = stats(&events);
        assert_eq!(s.sends, 2);
        assert_eq!(s.wire_bytes, 208);
        assert_eq!(s.flops, 5e6);
        assert_eq!(s.finished, 2);
    }
}
