//! Reduction collectives: reduce, allreduce, scan, reduce_scatter.

use super::{tree, TAG_ALLREDUCE, TAG_REDUCE, TAG_SCAN};
use crate::comm::Comm;
use crate::ctx::Ctx;
use crate::datatype::Datatype;
use crate::op::Op;

impl Ctx<'_> {
    /// `MPI_Reduce`: element-wise reduction of every rank's `send` to the
    /// root. Commutative operators use a binomial tree; non-commutative
    /// operators fall back to a linear gather folded in rank order (the
    /// MPI-mandated evaluation order).
    pub fn reduce<T: Datatype>(
        &self,
        send: &[T],
        op: &Op<T>,
        root: usize,
        comm: &Comm,
    ) -> Option<Vec<T>> {
        let _region = self.coll_region("reduce");
        if op.commutative {
            self.reduce_binomial(send, op, root, comm)
        } else {
            self.reduce_linear(send, op, root, comm)
        }
    }

    /// Binomial-tree reduction (commutative operators).
    pub fn reduce_binomial<T: Datatype>(
        &self,
        send: &[T],
        op: &Op<T>,
        root: usize,
        comm: &Comm,
    ) -> Option<Vec<T>> {
        let _region = self.coll_region("reduce_binomial");
        let p = comm.size();
        let r = self.comm_rank(comm);
        let v = (r + p - root) % p;
        let mut acc = send.to_vec();
        let mut tmp = vec![T::default(); send.len()];
        // Children combine in ascending order (reverse of the send order).
        for c in tree::children(v, p).into_iter().rev() {
            let child = (c + root) % p;
            let status = self.recv(&mut tmp, child as i32, TAG_REDUCE, comm);
            debug_assert_eq!(status.count::<T>(), tmp.len());
            op.fold_into(&mut acc, &tmp);
        }
        if v == 0 {
            Some(acc)
        } else {
            let parent = (tree::parent(v) + root) % p;
            self.send(&acc, parent, TAG_REDUCE, comm);
            None
        }
    }

    /// Linear reduction preserving rank order (non-commutative operators):
    /// the root receives every contribution and folds 0 ⊕ 1 ⊕ … ⊕ (p−1).
    pub fn reduce_linear<T: Datatype>(
        &self,
        send: &[T],
        op: &Op<T>,
        root: usize,
        comm: &Comm,
    ) -> Option<Vec<T>> {
        let _region = self.coll_region("reduce_linear");
        let p = comm.size();
        let r = self.comm_rank(comm);
        if r == root {
            // Collect all contributions, then fold in rank order.
            let mut parts: Vec<Vec<T>> = Vec::with_capacity(p);
            let mut reqs = Vec::new();
            for i in 0..p {
                if i == root {
                    continue;
                }
                reqs.push((i, self.irecv::<T>(i as i32, TAG_REDUCE, send.len(), comm)));
            }
            let mut by_rank: Vec<Option<Vec<T>>> = vec![None; p];
            by_rank[root] = Some(send.to_vec());
            for (i, req) in reqs {
                let (data, _) = self.wait_recv(req, comm);
                by_rank[i] = Some(data);
            }
            let mut iter = by_rank.into_iter().flatten();
            let mut acc = iter.next().expect("p >= 1");
            for part in iter {
                op.fold_into(&mut acc, &part);
            }
            parts.clear();
            Some(acc)
        } else {
            self.send(send, root, TAG_REDUCE, comm);
            None
        }
    }

    /// `MPI_Allreduce`: recursive doubling on power-of-two communicators
    /// with commutative operators; reduce + bcast otherwise.
    pub fn allreduce<T: Datatype>(&self, send: &[T], op: &Op<T>, comm: &Comm) -> Vec<T> {
        let _region = self.coll_region("allreduce");
        let p = comm.size();
        if p.is_power_of_two() && op.commutative {
            self.allreduce_rdb(send, op, comm)
        } else {
            let root = 0;
            let reduced = self.reduce(send, op, root, comm);
            let mut buf = reduced.unwrap_or_else(|| vec![T::default(); send.len()]);
            self.bcast(&mut buf, root, comm);
            buf
        }
    }

    /// Recursive-doubling allreduce (power-of-two ranks, commutative op).
    pub fn allreduce_rdb<T: Datatype>(&self, send: &[T], op: &Op<T>, comm: &Comm) -> Vec<T> {
        let _region = self.coll_region("allreduce_rdb");
        let p = comm.size();
        assert!(p.is_power_of_two());
        let r = self.comm_rank(comm);
        let mut acc = send.to_vec();
        let mut incoming = vec![T::default(); send.len()];
        let mut k = 1usize;
        while k < p {
            let partner = r ^ k;
            self.sendrecv(
                &acc,
                partner,
                TAG_ALLREDUCE,
                &mut incoming,
                partner as i32,
                TAG_ALLREDUCE,
                comm,
            );
            op.fold_into(&mut acc, &incoming);
            k <<= 1;
        }
        acc
    }

    /// `MPI_Scan` (inclusive prefix reduction): rank `r` returns
    /// `send₀ ⊕ send₁ ⊕ … ⊕ send_r`. Distance-doubling (Hillis–Steele),
    /// correct for non-commutative operators too.
    pub fn scan<T: Datatype>(&self, send: &[T], op: &Op<T>, comm: &Comm) -> Vec<T> {
        let _region = self.coll_region("scan");
        let p = comm.size();
        let r = self.comm_rank(comm);
        let mut acc = send.to_vec();
        let mut incoming = vec![T::default(); send.len()];
        let mut k = 1usize;
        while k < p {
            let outgoing = acc.clone();
            let send_to = r + k;
            let recv_from = r.checked_sub(k);
            match (send_to < p, recv_from) {
                (true, Some(from)) => {
                    self.sendrecv(
                        &outgoing,
                        send_to,
                        TAG_SCAN,
                        &mut incoming,
                        from as i32,
                        TAG_SCAN,
                        comm,
                    );
                    // incoming holds the prefix ending at r-k: it goes on
                    // the left.
                    let mut merged = incoming.clone();
                    op.fold_into(&mut merged, &acc);
                    acc = merged;
                }
                (true, None) => self.send(&outgoing, send_to, TAG_SCAN, comm),
                (false, Some(from)) => {
                    let status = self.recv(&mut incoming, from as i32, TAG_SCAN, comm);
                    debug_assert_eq!(status.count::<T>(), incoming.len());
                    let mut merged = incoming.clone();
                    op.fold_into(&mut merged, &acc);
                    acc = merged;
                }
                (false, None) => {}
            }
            k <<= 1;
        }
        acc
    }

    /// `MPI_Reduce_scatter`: reduce `send` (length = Σ counts) element-wise
    /// over all ranks, then scatter segment `i` (of `counts[i]` elements) to
    /// rank `i`. Implemented as reduce-to-0 + scatterv, the MPICH2 fallback
    /// algorithm.
    pub fn reduce_scatter<T: Datatype>(
        &self,
        send: &[T],
        counts: &[usize],
        op: &Op<T>,
        comm: &Comm,
    ) -> Vec<T> {
        let _region = self.coll_region("reduce_scatter");
        let p = comm.size();
        assert_eq!(counts.len(), p);
        assert_eq!(send.len(), counts.iter().sum::<usize>());
        let r = self.comm_rank(comm);
        let root = 0;
        let reduced = self.reduce(send, op, root, comm);
        self.scatterv(
            reduced.as_deref(),
            if r == root { Some(counts) } else { None },
            counts[r],
            root,
            comm,
        )
    }
}
