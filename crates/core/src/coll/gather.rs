//! Scatter, gather and allgather families.
//!
//! `scatter`/`gather` use the binomial tree of Fig. 6 (the algorithm whose
//! accuracy Figs. 7–9 evaluate); the `v` variants are linear, as in MPICH2;
//! `allgather` uses recursive doubling on power-of-two communicators and a
//! ring otherwise.

use super::{tree, TAG_ALLGATHER, TAG_GATHER, TAG_SCATTER};
use crate::comm::Comm;
use crate::ctx::Ctx;
use crate::datatype::Datatype;

impl Ctx<'_> {
    /// `MPI_Scatter` (binomial tree): `send` on the root holds `p * chunk`
    /// elements ordered by destination rank; every rank gets its `chunk`.
    pub fn scatter<T: Datatype>(
        &self,
        send: Option<&[T]>,
        chunk: usize,
        root: usize,
        comm: &Comm,
    ) -> Vec<T> {
        let _region = self.coll_region("scatter");
        let p = comm.size();
        let r = self.comm_rank(comm);
        let v = (r + p - root) % p;

        // Working buffer holds this node's whole subtree in *relative* rank
        // order.
        let mut block: Vec<T>;
        if r == root {
            let data = send.expect("root must supply the scatter buffer");
            assert_eq!(data.len(), p * chunk, "scatter buffer size mismatch");
            if root == 0 {
                // Rotation is the identity: send slices of `data` directly
                // (avoids duplicating a potentially huge root buffer).
                for c in tree::children(0, p) {
                    let child_span = tree::subtree_span(c, p);
                    self.send(
                        &data[c * chunk..(c + child_span) * chunk],
                        c,
                        TAG_SCATTER,
                        comm,
                    );
                }
                return data[..chunk].to_vec();
            }
            // Rotate into relative order so block[v*chunk..] belongs to
            // relative rank v.
            block = Vec::with_capacity(p * chunk);
            for rel in 0..p {
                let abs = (root + rel) % p;
                block.extend_from_slice(&data[abs * chunk..(abs + 1) * chunk]);
            }
        } else {
            let span = tree::subtree_span(v, p);
            block = vec![T::default(); span * chunk];
            let parent = (tree::parent(v) + root) % p;
            let status = self.recv(&mut block, parent as i32, TAG_SCATTER, comm);
            debug_assert_eq!(status.count::<T>(), block.len());
        }

        // Forward each child its subtree slice (largest subtree first, as
        // the root does in the paper's Fig. 6 description).
        for c in tree::children(v, p) {
            let child_span = tree::subtree_span(c, p);
            let off = (c - v) * chunk;
            let child = (c + root) % p;
            self.send(
                &block[off..off + child_span * chunk],
                child,
                TAG_SCATTER,
                comm,
            );
        }
        block.truncate(chunk);
        block
    }

    /// `MPI_Gather` (binomial tree, the reverse of [`Ctx::scatter`]): every rank
    /// contributes `send`; the root returns the concatenation in rank order.
    pub fn gather<T: Datatype>(&self, send: &[T], root: usize, comm: &Comm) -> Option<Vec<T>> {
        let _region = self.coll_region("gather");
        let p = comm.size();
        let chunk = send.len();
        let r = self.comm_rank(comm);
        let v = (r + p - root) % p;
        let span = tree::subtree_span(v, p);

        let mut block = vec![T::default(); span * chunk];
        block[..chunk].copy_from_slice(send);
        // Collect children smallest-first (reverse send order of scatter).
        for c in tree::children(v, p).into_iter().rev() {
            let child_span = tree::subtree_span(c, p);
            let off = (c - v) * chunk;
            let child = (c + root) % p;
            let status = self.recv(
                &mut block[off..off + child_span * chunk],
                child as i32,
                TAG_GATHER,
                comm,
            );
            debug_assert_eq!(status.count::<T>(), child_span * chunk);
        }
        if v == 0 {
            // Rotate back to absolute rank order.
            let mut out = vec![T::default(); p * chunk];
            for rel in 0..p {
                let abs = (root + rel) % p;
                out[abs * chunk..(abs + 1) * chunk]
                    .copy_from_slice(&block[rel * chunk..(rel + 1) * chunk]);
            }
            Some(out)
        } else {
            let parent = (tree::parent(v) + root) % p;
            self.send(&block, parent, TAG_GATHER, comm);
            None
        }
    }

    /// `MPI_Scatterv` (linear): the root sends rank `i` its `counts[i]`
    /// elements; every rank passes its own expected count as `my_count`.
    pub fn scatterv<T: Datatype>(
        &self,
        send: Option<&[T]>,
        counts: Option<&[usize]>,
        my_count: usize,
        root: usize,
        comm: &Comm,
    ) -> Vec<T> {
        let _region = self.coll_region("scatterv");
        let p = comm.size();
        let r = self.comm_rank(comm);
        if r == root {
            let data = send.expect("root must supply the scatterv buffer");
            let counts = counts.expect("root must supply scatterv counts");
            assert_eq!(counts.len(), p);
            assert_eq!(data.len(), counts.iter().sum::<usize>());
            assert_eq!(my_count, counts[root]);
            let mut offset = 0usize;
            let mut own = Vec::new();
            let mut pending = Vec::new();
            for (i, &c) in counts.iter().enumerate() {
                let piece = &data[offset..offset + c];
                offset += c;
                if i == r {
                    own = piece.to_vec();
                } else {
                    pending.push(self.isend(piece, i, TAG_SCATTER, comm));
                }
            }
            self.wait_all_sends(pending);
            own
        } else {
            let (data, _) = self.recv_vec::<T>(root as i32, TAG_SCATTER, my_count, comm);
            data
        }
    }

    /// `MPI_Gatherv` (linear): the root returns the concatenation of every
    /// rank's contribution, sized by `counts` on the root.
    pub fn gatherv<T: Datatype>(
        &self,
        send: &[T],
        counts: Option<&[usize]>,
        root: usize,
        comm: &Comm,
    ) -> Option<Vec<T>> {
        let _region = self.coll_region("gatherv");
        let p = comm.size();
        let r = self.comm_rank(comm);
        if r == root {
            let counts = counts.expect("root must supply gatherv counts");
            assert_eq!(counts.len(), p);
            assert_eq!(send.len(), counts[root]);
            let offsets: Vec<usize> = counts
                .iter()
                .scan(0usize, |acc, &c| {
                    let o = *acc;
                    *acc += c;
                    Some(o)
                })
                .collect();
            let total: usize = counts.iter().sum();
            let mut out = vec![T::default(); total];
            out[offsets[root]..offsets[root] + counts[root]].copy_from_slice(send);
            let mut reqs = Vec::new();
            for (i, &cnt) in counts.iter().enumerate() {
                if i != root {
                    reqs.push((i, self.irecv::<T>(i as i32, TAG_GATHER, cnt, comm)));
                }
            }
            for (i, req) in reqs {
                let (data, _) = self.wait_recv(req, comm);
                assert_eq!(data.len(), counts[i]);
                out[offsets[i]..offsets[i] + counts[i]].copy_from_slice(&data);
            }
            Some(out)
        } else {
            self.send(send, root, TAG_GATHER, comm);
            None
        }
    }

    /// `MPI_Allgather`: recursive doubling on power-of-two sizes, ring
    /// otherwise. Every rank contributes `send` (equal lengths) and gets the
    /// concatenation in rank order.
    pub fn allgather<T: Datatype>(&self, send: &[T], comm: &Comm) -> Vec<T> {
        let _region = self.coll_region("allgather");
        if comm.size().is_power_of_two() {
            self.allgather_rdb(send, comm)
        } else {
            self.allgather_ring(send, comm)
        }
    }

    /// Recursive-doubling allgather (requires power-of-two ranks).
    pub fn allgather_rdb<T: Datatype>(&self, send: &[T], comm: &Comm) -> Vec<T> {
        let _region = self.coll_region("allgather_rdb");
        let p = comm.size();
        assert!(p.is_power_of_two());
        let chunk = send.len();
        let r = self.comm_rank(comm);
        let mut out = vec![T::default(); p * chunk];
        out[r * chunk..(r + 1) * chunk].copy_from_slice(send);
        // Invariant: before a round with stride k, each rank holds the k
        // blocks of its k-rank subcube [r & !(k-1), r & !(k-1) + k).
        let mut k = 1usize;
        while k < p {
            let partner = r ^ k;
            let my_base = r & !(k - 1);
            let partner_base = partner & !(k - 1);
            let outgoing = out[my_base * chunk..(my_base + k) * chunk].to_vec();
            let mut incoming = vec![T::default(); k * chunk];
            self.sendrecv(
                &outgoing,
                partner,
                TAG_ALLGATHER,
                &mut incoming,
                partner as i32,
                TAG_ALLGATHER,
                comm,
            );
            out[partner_base * chunk..(partner_base + k) * chunk].copy_from_slice(&incoming);
            k <<= 1;
        }
        out
    }

    /// Ring allgather (works for any communicator size): p-1 steps, each
    /// forwarding the most recently received block to the right neighbour.
    pub fn allgather_ring<T: Datatype>(&self, send: &[T], comm: &Comm) -> Vec<T> {
        let _region = self.coll_region("allgather_ring");
        let p = comm.size();
        let chunk = send.len();
        let r = self.comm_rank(comm);
        let mut out = vec![T::default(); p * chunk];
        out[r * chunk..(r + 1) * chunk].copy_from_slice(send);
        let right = (r + 1) % p;
        let left = (r + p - 1) % p;
        for s in 0..p.saturating_sub(1) {
            let send_block = (r + p - s) % p;
            let recv_block = (r + p - s - 1) % p;
            let outgoing = out[send_block * chunk..(send_block + 1) * chunk].to_vec();
            let mut incoming = vec![T::default(); chunk];
            self.sendrecv(
                &outgoing,
                right,
                TAG_ALLGATHER,
                &mut incoming,
                left as i32,
                TAG_ALLGATHER,
                comm,
            );
            out[recv_block * chunk..(recv_block + 1) * chunk].copy_from_slice(&incoming);
        }
        out
    }

    /// `MPI_Allgatherv` (ring): contributions of varying sizes; `counts[i]`
    /// is rank `i`'s length, known everywhere.
    pub fn allgatherv<T: Datatype>(&self, send: &[T], counts: &[usize], comm: &Comm) -> Vec<T> {
        let _region = self.coll_region("allgatherv");
        let p = comm.size();
        assert_eq!(counts.len(), p);
        let r = self.comm_rank(comm);
        assert_eq!(send.len(), counts[r]);
        let offsets: Vec<usize> = counts
            .iter()
            .scan(0usize, |acc, &c| {
                let o = *acc;
                *acc += c;
                Some(o)
            })
            .collect();
        let total: usize = counts.iter().sum();
        let mut out = vec![T::default(); total];
        out[offsets[r]..offsets[r] + counts[r]].copy_from_slice(send);
        let right = (r + 1) % p;
        let left = (r + p - 1) % p;
        for s in 0..p.saturating_sub(1) {
            let send_block = (r + p - s) % p;
            let recv_block = (r + p - s - 1) % p;
            let outgoing =
                out[offsets[send_block]..offsets[send_block] + counts[send_block]].to_vec();
            let mut incoming = vec![T::default(); counts[recv_block]];
            self.sendrecv(
                &outgoing,
                right,
                TAG_ALLGATHER,
                &mut incoming,
                left as i32,
                TAG_ALLGATHER,
                comm,
            );
            out[offsets[recv_block]..offsets[recv_block] + counts[recv_block]]
                .copy_from_slice(&incoming);
        }
        out
    }
}
