//! Many-to-many collectives: the pairwise exchange algorithm of Fig. 10.
//!
//! The pairwise algorithm runs in `p` steps; at step `s`, rank `r` sends its
//! block for rank `(r + s) mod p` and receives from rank `(r − s) mod p`
//! (step 0 is the local copy). Every step is a full permutation of
//! concurrent transfers — the pattern whose contention behaviour Figs. 11
//! and 12 evaluate.

use super::TAG_ALLTOALL;
use crate::comm::Comm;
use crate::ctx::Ctx;
use crate::datatype::Datatype;

/// The send/receive peers of one pairwise step (relative to rank `r` among
/// `p`): `(send_to, recv_from)`. Exposed for the Fig. 10 scheme generator.
pub fn pairwise_peers(r: usize, p: usize, step: usize) -> (usize, usize) {
    ((r + step) % p, (r + p - step) % p)
}

impl Ctx<'_> {
    /// `MPI_Alltoall` (pairwise): `send` holds `p` equal blocks of
    /// `send.len() / p` elements, block `i` destined to rank `i`; returns
    /// the received blocks in source-rank order.
    pub fn alltoall<T: Datatype>(&self, send: &[T], comm: &Comm) -> Vec<T> {
        let _region = self.coll_region("alltoall");
        let p = comm.size();
        assert_eq!(send.len() % p, 0, "alltoall buffer not divisible by p");
        let chunk = send.len() / p;
        let counts = vec![chunk; p];
        self.alltoallv(send, &counts, &counts, comm)
    }

    /// `MPI_Alltoallv` (pairwise): `send_counts[i]` elements go to rank `i`;
    /// `recv_counts[i]` elements arrive from rank `i`. Returns the received
    /// data concatenated in source-rank order.
    pub fn alltoallv<T: Datatype>(
        &self,
        send: &[T],
        send_counts: &[usize],
        recv_counts: &[usize],
        comm: &Comm,
    ) -> Vec<T> {
        let _region = self.coll_region("alltoallv");
        let p = comm.size();
        assert_eq!(send_counts.len(), p);
        assert_eq!(recv_counts.len(), p);
        assert_eq!(send.len(), send_counts.iter().sum::<usize>());
        let r = self.comm_rank(comm);

        let send_offsets: Vec<usize> = prefix(send_counts);
        let recv_offsets: Vec<usize> = prefix(recv_counts);
        let total_recv: usize = recv_counts.iter().sum();
        let mut out = vec![T::default(); total_recv];

        // Step 0: local block.
        out[recv_offsets[r]..recv_offsets[r] + recv_counts[r]]
            .copy_from_slice(&send[send_offsets[r]..send_offsets[r] + send_counts[r]]);

        for step in 1..p {
            let (to, from) = pairwise_peers(r, p, step);
            let outgoing = &send[send_offsets[to]..send_offsets[to] + send_counts[to]];
            let mut incoming = vec![T::default(); recv_counts[from]];
            self.sendrecv(
                outgoing,
                to,
                TAG_ALLTOALL,
                &mut incoming,
                from as i32,
                TAG_ALLTOALL,
                comm,
            );
            out[recv_offsets[from]..recv_offsets[from] + recv_counts[from]]
                .copy_from_slice(&incoming);
        }
        out
    }
}

fn prefix(counts: &[usize]) -> Vec<usize> {
    counts
        .iter()
        .scan(0usize, |acc, &c| {
            let o = *acc;
            *acc += c;
            Some(o)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure10_schedule_for_4_processes() {
        // Step 1 with 4 processes: 0->1, 1->2, 2->3, 3->0.
        for r in 0..4 {
            let (to, from) = pairwise_peers(r, 4, 1);
            assert_eq!(to, (r + 1) % 4);
            assert_eq!(from, (r + 3) % 4);
        }
        // Step 0 is the identity (self exchange).
        assert_eq!(pairwise_peers(2, 4, 0), (2, 2));
    }

    #[test]
    fn every_step_is_a_permutation() {
        for p in [2usize, 3, 5, 8, 16] {
            for step in 0..p {
                let mut seen_to = vec![false; p];
                for r in 0..p {
                    let (to, from) = pairwise_peers(r, p, step);
                    assert!(!seen_to[to]);
                    seen_to[to] = true;
                    // Reciprocity: if I send to X at step s, X receives from me.
                    assert_eq!(pairwise_peers(to, p, step).1, r);
                    let _ = from;
                }
            }
        }
    }

    #[test]
    fn prefix_offsets() {
        assert_eq!(prefix(&[3, 1, 4]), vec![0, 3, 4]);
        assert_eq!(prefix(&[]), Vec::<usize>::new());
    }
}
