//! Binomial-tree shape helpers.
//!
//! The binomial tree of Fig. 6 (for 16 processes):
//!
//! ```text
//! 0 ── 8 ── 12 ── 14, 13
//! │    │     └ 10 ── 11 …
//! ├ 4, 2, 1 …
//! ```
//!
//! In *relative* rank space (rank 0 = root): the parent of `v` clears `v`'s
//! lowest set bit; the children of `v` are `v + 2^k` for every `2^k` smaller
//! than `v`'s lowest set bit (all powers for the root), bounded by `p`.
//! A node's subtree spans `[v, v + subtree_span(v, p))`, which is what makes
//! the scatter/gather data movement of Figs. 6–9 work: process 0 sends 8
//! chunks to process 8, 4 to process 4, and so on.

/// Parent of relative rank `v` (`v != 0`): clear the lowest set bit.
pub fn parent(v: usize) -> usize {
    debug_assert!(v != 0, "the root has no parent");
    v & (v - 1)
}

/// Children of relative rank `v` among `p` processes, **largest subtree
/// first** (the order the root sends in the paper's description of Fig. 6).
pub fn children(v: usize, p: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let limit = if v == 0 {
        p.next_power_of_two()
    } else {
        v & v.wrapping_neg() // lowest set bit
    };
    let mut mask = limit >> 1;
    while mask > 0 {
        let child = v + mask;
        if child < p {
            out.push(child);
        }
        mask >>= 1;
    }
    out
}

/// Number of ranks in the subtree rooted at relative rank `v` (including
/// `v` itself): `min(lowbit(v), p - v)`, with the whole tree for the root.
pub fn subtree_span(v: usize, p: usize) -> usize {
    if v == 0 {
        p
    } else {
        let low = v & v.wrapping_neg();
        low.min(p - v)
    }
}

/// All edges `(from, to)` of the binomial tree over `p` relative ranks, in
/// root-send order. Used to regenerate the communication scheme of Fig. 6.
pub fn edges(p: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for v in 0..p {
        for c in children(v, p) {
            out.push((v, c));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure6_shape_for_16_processes() {
        // Root sends to 8, 4, 2, 1 — in that order.
        assert_eq!(children(0, 16), vec![8, 4, 2, 1]);
        assert_eq!(children(8, 16), vec![12, 10, 9]);
        assert_eq!(children(4, 16), vec![6, 5]);
        assert_eq!(children(12, 16), vec![14, 13]);
        assert_eq!(children(2, 16), vec![3]);
        assert_eq!(children(15, 16), Vec::<usize>::new());
    }

    #[test]
    fn parents_invert_children() {
        for p in [1usize, 2, 3, 5, 8, 16, 21, 48] {
            for v in 0..p {
                for c in children(v, p) {
                    assert_eq!(parent(c), v, "p={p} v={v} c={c}");
                }
            }
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // r is the rank under test
    fn subtree_spans_cover_the_tree() {
        // The subtree spans of the root's children partition 1..p.
        for p in [2usize, 3, 7, 16, 21, 100] {
            let mut covered = vec![false; p];
            covered[0] = true;
            for c in children(0, p) {
                for r in c..c + subtree_span(c, p) {
                    assert!(!covered[r], "rank {r} covered twice (p={p})");
                    covered[r] = true;
                }
            }
            assert!(covered.iter().all(|&c| c), "not all ranks covered (p={p})");
        }
    }

    #[test]
    fn root_subtree_is_everything() {
        assert_eq!(subtree_span(0, 16), 16);
        assert_eq!(subtree_span(8, 16), 8);
        assert_eq!(subtree_span(12, 16), 4);
        assert_eq!(subtree_span(8, 12), 4); // truncated by p
    }

    #[test]
    fn edge_count_is_p_minus_one() {
        for p in [1usize, 2, 5, 16, 31, 64] {
            assert_eq!(edges(p).len(), p - 1 + usize::from(p == 0));
        }
    }
}
