//! Collective communication operations (paper §4.2, §5.3).
//!
//! SMPI does **not** model collectives monolithically: each collective is a
//! literal set of point-to-point messages that contend with each other in
//! the network model, exactly like a real MPI implementation. The
//! algorithms mirror the MPICH2 implementations the paper copied
//! ("cut-modify-and-paste", §5.3), plus the pairwise many-to-many algorithm
//! of OpenMPI:
//!
//! | operation | algorithm |
//! |---|---|
//! | `barrier` | dissemination |
//! | `bcast` | binomial tree |
//! | `scatter` / `gather` | binomial tree (Fig. 6) |
//! | `scatterv` / `gatherv` | linear (root-rooted) |
//! | `allgather` | recursive doubling (2^k ranks) or ring |
//! | `reduce` | binomial (commutative ops), linear otherwise |
//! | `allreduce` | recursive doubling, or reduce+bcast |
//! | `scan` | distance doubling (Hillis-Steele) |
//! | `reduce_scatter` | reduce + scatterv |
//! | `alltoall` / `alltoallv` | pairwise exchange (Fig. 10) |
//!
//! Alternative algorithms for ablation studies live in [`variants`].

pub mod alltoall;
pub mod basic;
pub mod gather;
pub mod reduce;
pub mod tree;
pub mod variants;

use crate::comm::Comm;
use crate::ctx::Ctx;

/// Reserved tag space for collective traffic (applications should use tags
/// below this; context ids already isolate communicators, the tag only
/// separates phases within one collective).
pub const COLL_TAG_BASE: i32 = 1 << 20;

pub(crate) const TAG_BARRIER: i32 = COLL_TAG_BASE;
pub(crate) const TAG_BCAST: i32 = COLL_TAG_BASE + 1;
pub(crate) const TAG_SCATTER: i32 = COLL_TAG_BASE + 2;
pub(crate) const TAG_GATHER: i32 = COLL_TAG_BASE + 3;
pub(crate) const TAG_ALLGATHER: i32 = COLL_TAG_BASE + 4;
pub(crate) const TAG_REDUCE: i32 = COLL_TAG_BASE + 5;
pub(crate) const TAG_ALLREDUCE: i32 = COLL_TAG_BASE + 6;
pub(crate) const TAG_SCAN: i32 = COLL_TAG_BASE + 7;
pub(crate) const TAG_ALLTOALL: i32 = COLL_TAG_BASE + 8;

impl Ctx<'_> {
    /// This rank within `comm` (`MPI_Comm_rank`). Panics when the caller is
    /// not a member.
    pub fn comm_rank(&self, comm: &Comm) -> usize {
        comm.local_rank(self.rank() as u32)
            .expect("caller is not a member of this communicator")
    }
}
