//! Barrier and broadcast.

use super::{tree, TAG_BARRIER, TAG_BCAST};
use crate::comm::Comm;
use crate::ctx::Ctx;
use crate::datatype::Datatype;

impl Ctx<'_> {
    /// `MPI_Barrier`: dissemination algorithm — ⌈log₂ p⌉ rounds of
    /// zero-byte exchanges with exponentially growing stride.
    pub fn barrier(&self, comm: &Comm) {
        let _region = self.coll_region("barrier");
        let p = comm.size();
        let r = self.comm_rank(comm);
        let mut k = 1usize;
        let empty: [u8; 0] = [];
        let mut sink: [u8; 0] = [];
        while k < p {
            let to = (r + k) % p;
            let from = (r + p - k) % p;
            self.sendrecv(
                &empty,
                to,
                TAG_BARRIER,
                &mut sink,
                from as i32,
                TAG_BARRIER,
                comm,
            );
            k <<= 1;
        }
    }

    /// `MPI_Bcast` over a binomial tree: `buf` holds the payload on `root`
    /// and receives it everywhere else (all callers pass the same length).
    pub fn bcast<T: Datatype>(&self, buf: &mut [T], root: usize, comm: &Comm) {
        let _region = self.coll_region("bcast");
        let p = comm.size();
        if p == 1 {
            return;
        }
        let r = self.comm_rank(comm);
        let v = (r + p - root) % p; // relative rank
        if v != 0 {
            let parent = (tree::parent(v) + root) % p;
            let status = self.recv(buf, parent as i32, TAG_BCAST, comm);
            debug_assert_eq!(status.count::<T>(), buf.len());
        }
        for c in tree::children(v, p) {
            let child = (c + root) % p;
            self.send(buf, child, TAG_BCAST, comm);
        }
    }
}

#[cfg(test)]
mod tests {
    // Exercised end-to-end in the crate's integration tests (they need a
    // full World); the tree shape itself is unit-tested in `tree`.
}
