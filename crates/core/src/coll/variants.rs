//! Alternative collective algorithms for ablation studies.
//!
//! §5.3 of the paper notes that "there is no unique algorithm for any
//! collective operation, each variant being best in particular settings"
//! and plans multiple selectable variants as future work. These variants
//! exist so the `ablation_collectives` bench can compare them against the
//! defaults under the same network model.

use super::{TAG_BCAST, TAG_SCATTER};
use crate::comm::Comm;
use crate::ctx::Ctx;
use crate::datatype::Datatype;

impl Ctx<'_> {
    /// Flat-tree (linear) scatter: the root sends every rank its chunk
    /// directly. Asymptotically worse than the binomial tree at the root's
    /// uplink, better for tiny messages on very small communicators.
    pub fn scatter_linear<T: Datatype>(
        &self,
        send: Option<&[T]>,
        chunk: usize,
        root: usize,
        comm: &Comm,
    ) -> Vec<T> {
        let _region = self.coll_region("scatter_linear");
        let p = comm.size();
        let counts = vec![chunk; p];
        let r = self.comm_rank(comm);
        let _ = r;
        self.scatterv(
            send,
            if self.comm_rank(comm) == root {
                Some(&counts)
            } else {
                None
            },
            chunk,
            root,
            comm,
        )
    }

    /// Flat-tree broadcast: the root sends the whole buffer to every rank.
    pub fn bcast_linear<T: Datatype>(&self, buf: &mut [T], root: usize, comm: &Comm) {
        let _region = self.coll_region("bcast_linear");
        let p = comm.size();
        let r = self.comm_rank(comm);
        if r == root {
            let mut reqs = Vec::new();
            for i in 0..p {
                if i != root {
                    reqs.push(self.isend(buf, i, TAG_BCAST, comm));
                }
            }
            self.wait_all_sends(reqs);
        } else {
            self.recv(buf, root as i32, TAG_BCAST, comm);
        }
    }

    /// Scatter over a chain (pipeline) — each rank forwards the remainder
    /// to the next. The worst reasonable algorithm; useful as a lower
    /// baseline in ablations.
    pub fn scatter_chain<T: Datatype>(
        &self,
        send: Option<&[T]>,
        chunk: usize,
        root: usize,
        comm: &Comm,
    ) -> Vec<T> {
        let _region = self.coll_region("scatter_chain");
        let p = comm.size();
        let r = self.comm_rank(comm);
        let v = (r + p - root) % p; // position along the chain
        let mut block: Vec<T>;
        if v == 0 {
            let data = send.expect("root must supply the scatter buffer");
            assert_eq!(data.len(), p * chunk);
            // Rotate into chain order.
            block = Vec::with_capacity(p * chunk);
            for rel in 0..p {
                let abs = (root + rel) % p;
                block.extend_from_slice(&data[abs * chunk..(abs + 1) * chunk]);
            }
        } else {
            let prev = (v - 1 + root) % p;
            block = vec![T::default(); (p - v) * chunk];
            self.recv(&mut block, prev as i32, TAG_SCATTER, comm);
        }
        if v + 1 < p {
            let next = (v + 1 + root) % p;
            self.send(&block[chunk..], next, TAG_SCATTER, comm);
        }
        block.truncate(chunk);
        block
    }
}
